// Differential suite for the RPB_SIMD layer (support/simd.h): every
// vectorized entry point against its scalar body, across sizes that
// straddle the vector widths (2/4/8 lanes) and block boundaries,
// across unaligned arena offsets, over poison-filled UninitBuf inputs,
// and parametrized over RPB_SIMD level × RPB_ARENA mode. The scalar
// bodies are the semantic definition; these tests pin the vector
// bodies to them bit-for-bit. The checked-tier test at the bottom pins
// the determinism contract: failure messages (index included) are
// byte-identical between RPB_SIMD=on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/checks.h"
#include "core/patterns.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/thread_pool.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/prng.h"
#include "support/simd.h"
#include "test_guards.h"
#include "text/suffix_array.h"

namespace rpb {
namespace {

class SimdEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kSimdEnv =
    ::testing::AddGlobalTestEnvironment(new SimdEnv);

// Sizes straddle the SSE2 (2), AVX2 (4) and unrolled-prefix (8) lane
// widths, the check engine's 4-offset chunks, and go large enough to
// cross parallel block boundaries in the kernel tests.
const std::size_t kSizes[] = {0,  1,  2,   3,   4,   5,    7,    8,   9,
                              15, 16, 17,  31,  32,  33,   63,   64,  65,
                              100, 255, 256, 257, 1000, 4095, 4096, 4097,
                              100001};

std::vector<support::SimdLevel> vector_levels() {
  std::vector<support::SimdLevel> levels;
  if (support::simd_detected() >= support::SimdLevel::kSse2) {
    levels.push_back(support::SimdLevel::kSse2);
  }
  if (support::simd_detected() >= support::SimdLevel::kAvx2) {
    levels.push_back(support::SimdLevel::kAvx2);
  }
  return levels;
}

// Leases an n-word buffer placed at an odd word offset inside a larger
// arena block, so vector loads/stores never see 16/32-byte alignment —
// the layer's contract is "no alignment assumptions on arena buffers".
struct UnalignedU64 {
  explicit UnalignedU64(support::ArenaLease& arena, std::size_t n)
      : buf(uninit_buf<u64>(arena, n + 5)) {
    p = buf.data() + 3;  // 8-byte aligned, never 32-byte aligned
  }
  UninitBuf<u64> buf;
  u64* p;
};

TEST(SimdDispatch, LevelNamesAndClamping) {
  const support::SimdLevel prev = support::simd_level();
  EXPECT_STREQ(support::simd_level_name(support::SimdLevel::kScalar),
               "scalar");
  EXPECT_STREQ(support::simd_level_name(support::SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(support::simd_level_name(support::SimdLevel::kAvx2), "avx2");
  // set_simd_level clamps to the detected maximum.
  support::set_simd_level(support::SimdLevel::kAvx2);
  EXPECT_LE(support::simd_level(), support::simd_detected());
  support::set_simd_mode(false);
  EXPECT_EQ(support::simd_level(), support::SimdLevel::kScalar);
  EXPECT_FALSE(support::simd_enabled());
  support::set_simd_mode(true);
  EXPECT_EQ(support::simd_level(), support::simd_detected());
  support::set_simd_level(prev);
}

TEST(SimdDiff, SumMatchesScalar) {
  Rng rng(0x51D0);
  for (std::size_t n : kSizes) {
    support::ArenaLease arena;
    UnalignedU64 in(arena, n);
    u64 want = 0;
    for (std::size_t i = 0; i < n; ++i) {
      in.p[i] = rng.bits(i);
      want += in.p[i];
    }
    for (support::SimdLevel level : vector_levels()) {
      SimdModeGuard guard(level);
      EXPECT_EQ(simd::sum_u64(in.p, n), want)
          << "n=" << n << " level=" << support::simd_level_name(level);
    }
  }
}

TEST(SimdDiff, PrefixSumsMatchScalar) {
  Rng rng(0x51D1);
  for (std::size_t n : kSizes) {
    std::vector<u64> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = rng.bits(i);
    const u64 seed = rng.bits(n) & 0xffff;

    // Scalar references, computed once per size.
    std::vector<u64> want_ex(input), want_in(input), want_into(n);
    const u64 total_ex =
        simd::detail::prefix_ex_u64_scalar(want_ex.data(), n, seed);
    const u64 total_in =
        simd::detail::prefix_in_u64_scalar(want_in.data(), n, seed);
    simd::detail::prefix_ex_into_u64_scalar(input.data(), want_into.data(),
                                            n, seed);

    for (support::SimdLevel level : vector_levels()) {
      SimdModeGuard guard(level);
      support::ArenaLease arena;
      UnalignedU64 work(arena, n);
      UnalignedU64 out(arena, n);

      std::copy(input.begin(), input.end(), work.p);
      EXPECT_EQ(simd::prefix_exclusive_sum_u64(work.p, n, seed), total_ex);
      EXPECT_TRUE(std::equal(want_ex.begin(), want_ex.end(), work.p))
          << "exclusive n=" << n
          << " level=" << support::simd_level_name(level);

      std::copy(input.begin(), input.end(), work.p);
      EXPECT_EQ(simd::prefix_inclusive_sum_u64(work.p, n, seed), total_in);
      EXPECT_TRUE(std::equal(want_in.begin(), want_in.end(), work.p))
          << "inclusive n=" << n
          << " level=" << support::simd_level_name(level);

      std::copy(input.begin(), input.end(), work.p);
      EXPECT_EQ(
          simd::prefix_exclusive_sum_into_u64(work.p, out.p, n, seed),
          total_ex);
      EXPECT_TRUE(std::equal(want_into.begin(), want_into.end(), out.p))
          << "into n=" << n << " level=" << support::simd_level_name(level);
    }
  }
}

// The sparse layer's dense-panel axpy (spmm.h) promises bit-identical
// results across dispatch levels: every lane is an independent
// mul-then-add chain (no FMA), so vector and scalar disagree nowhere.
TEST(SimdDiff, AxpyMatchesScalarBitForBit) {
  Rng rng(0x51DD);
  for (std::size_t n : kSizes) {
    if (n > 10000) continue;
    support::ArenaLease arena;
    // Odd element offsets so vector loads/stores never see 16/32-byte
    // alignment (the arena contract the other kernels pin too).
    auto f32buf = uninit_buf<f32>(arena, 2 * (n + 9));
    auto f64buf = uninit_buf<f64>(arena, 2 * (n + 5));
    f32* x32 = f32buf.data() + 3;
    f32* out32 = f32buf.data() + n + 9 + 3;
    f64* x64 = f64buf.data() + 3;
    f64* out64 = f64buf.data() + n + 5 + 3;
    std::vector<f32> want32(n), base32(n);
    std::vector<f64> want64(n), base64(n);
    for (std::size_t i = 0; i < n; ++i) {
      x32[i] = static_cast<f32>(rng.uniform(i) * 2.0 - 1.0);
      x64[i] = rng.uniform(i + 1000000) * 2.0 - 1.0;
      base32[i] = static_cast<f32>(rng.uniform(i + 2000000));
      base64[i] = rng.uniform(i + 3000000);
    }
    const f32 a32 = 1.75f;
    const f64 a64 = -2.625;
    std::copy(base32.begin(), base32.end(), want32.begin());
    std::copy(base64.begin(), base64.end(), want64.begin());
    simd::detail::axpy_f32_scalar(want32.data(), x32, a32, n);
    simd::detail::axpy_f64_scalar(want64.data(), x64, a64, n);
    for (support::SimdLevel level : vector_levels()) {
      SimdModeGuard guard(level);
      std::copy(base32.begin(), base32.end(), out32);
      std::copy(base64.begin(), base64.end(), out64);
      simd::axpy(out32, x32, a32, n);
      simd::axpy(out64, x64, a64, n);
      EXPECT_TRUE(n == 0 || std::memcmp(out32, want32.data(),
                                        n * sizeof(f32)) == 0)
          << "f32 n=" << n << " level=" << support::simd_level_name(level);
      EXPECT_TRUE(n == 0 || std::memcmp(out64, want64.data(),
                                        n * sizeof(f64)) == 0)
          << "f64 n=" << n << " level=" << support::simd_level_name(level);
    }
  }
}

TEST(SimdDiff, PopcountWordsMatchesScalar) {
  Rng rng(0x51D2);
  for (std::size_t nw : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                         std::size_t{3}, std::size_t{4}, std::size_t{7},
                         std::size_t{8}, std::size_t{33}, std::size_t{1000}}) {
    support::ArenaLease arena;
    UnalignedU64 words(arena, nw);
    std::size_t want = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      words.p[w] = rng.bits(w);
      want += static_cast<std::size_t>(std::popcount(words.p[w]));
    }
    for (support::SimdLevel level : vector_levels()) {
      SimdModeGuard guard(level);
      EXPECT_EQ(simd::popcount_words(words.p, nw), want)
          << "nw=" << nw << " level=" << support::simd_level_name(level);
    }
  }
}

TEST(SimdDiff, DigitCountMatchesScalarAcrossStrides) {
  Rng rng(0x51D3);
  for (std::size_t n : kSizes) {
    if (n > 10000) continue;  // stride 3 materializes 3n words
    for (std::size_t stride : {std::size_t{1}, std::size_t{2},
                               std::size_t{3}}) {
      support::ArenaLease arena;
      UnalignedU64 keys(arena, n * stride);
      for (std::size_t i = 0; i < n * stride; ++i) keys.p[i] = rng.bits(i);
      for (int shift : {0, 8, 56}) {
        alignas(32) u64 want[256] = {};
        simd::detail::digit_count_u64_scalar(keys.p, stride, n, shift, want);
        for (support::SimdLevel level : vector_levels()) {
          SimdModeGuard guard(level);
          alignas(32) u64 got[256] = {};
          simd::digit_count_u64(keys.p, stride, n, shift, got);
          EXPECT_TRUE(std::equal(want, want + 256, got))
              << "n=" << n << " stride=" << stride << " shift=" << shift
              << " level=" << support::simd_level_name(level);
        }
      }
    }
  }
}

TEST(SimdDiff, BinCountMatchesScalar) {
  Rng rng(0x51D4);
  for (std::size_t n : kSizes) {
    for (std::size_t buckets : {std::size_t{1}, std::size_t{3},
                                std::size_t{256}}) {
      support::ArenaLease arena;
      UnalignedU64 keys(arena, n);
      for (std::size_t i = 0; i < n; ++i) keys.p[i] = rng.next(i, buckets);
      std::vector<u64> want(buckets, 0);
      simd::detail::bin_count_u64_scalar(keys.p, n, want.data());
      for (support::SimdLevel level : vector_levels()) {
        SimdModeGuard guard(level);
        std::vector<u64> got(buckets, 0);
        std::vector<u64> scratch(simd::bin_count_extra_lanes() * buckets, 0);
        simd::bin_count_u64(keys.p, n, got.data(), scratch.data(), buckets);
        EXPECT_EQ(got, want)
            << "n=" << n << " buckets=" << buckets
            << " level=" << support::simd_level_name(level);
      }
    }
  }
}

TEST(SimdDiff, FlagAdjacentNeqMatchesScalar) {
  Rng rng(0x51D5);
  for (std::size_t n : kSizes) {
    if (n > 10000) continue;
    for (std::size_t stride : {std::size_t{1}, std::size_t{2}}) {
      support::ArenaLease arena;
      UnalignedU64 base(arena, n * stride);
      // Runs of equal keys so both flag outcomes occur.
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t w = 0; w < stride; ++w) {
          base.p[i * stride + w] = w == 0 ? rng.bits(i / 3) : i;
        }
      }
      // Sub-ranges: whole span, interior block, tail block.
      const std::size_t los[] = {0, std::min<std::size_t>(n, 5),
                                 n - std::min<std::size_t>(n, 3)};
      for (std::size_t lo : los) {
        std::vector<u64> want(n, ~u64{0});
        const u64 want_sum = simd::detail::flag_neq_u64_scalar(
            base.p, stride, lo, n, want.data());
        for (support::SimdLevel level : vector_levels()) {
          SimdModeGuard guard(level);
          std::vector<u64> got(n, ~u64{0});
          const u64 got_sum =
              simd::flag_adjacent_neq_u64(base.p, stride, lo, n, got.data());
          EXPECT_EQ(got_sum, want_sum);
          EXPECT_EQ(got, want)
              << "n=" << n << " stride=" << stride << " lo=" << lo
              << " level=" << support::simd_level_name(level);
        }
      }
    }
  }
}

TEST(SimdDiff, VisitSetBitsAndTailMask) {
  EXPECT_EQ(simd::tail_word_mask(0), ~u64{0});  // whole-word convention
  EXPECT_EQ(simd::tail_word_mask(1), u64{1});
  EXPECT_EQ(simd::tail_word_mask(63), (u64{1} << 63) - 1);
  Rng rng(0x51D6);
  for (int trial = 0; trial < 50; ++trial) {
    u64 word = rng.bits(trial) & rng.bits(trial + 1000);
    std::vector<std::size_t> got, want;
    for (std::size_t b = 0; b < 64; ++b) {
      if (word >> b & 1) want.push_back(700 + b);
    }
    simd::visit_set_bits(word, 700, [&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want) << "word=" << word;
  }
}

// --- Kernel-level differential: same results at every dispatch level,
// under every arena mode, over poison-filled scratch. -----------------

class SimdKernels
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override {
    const auto levels = vector_levels();
    const std::size_t which = static_cast<std::size_t>(std::get<0>(GetParam()));
    if (which >= levels.size()) GTEST_SKIP() << "level not supported here";
    level_ = levels[which];
    static constexpr support::ArenaMode kModes[] = {
        support::ArenaMode::kOn, support::ArenaMode::kOff,
        support::ArenaMode::kZeroed};
    arena_saved_ = support::arena_mode();
    support::set_arena_mode(kModes[std::get<1>(GetParam())]);
    poison_saved_ = buf_poison();
    set_buf_poison(true);  // uninitialized reads become loud differences
  }
  void TearDown() override {
    support::set_arena_mode(arena_saved_);
    set_buf_poison(poison_saved_);
  }

  support::SimdLevel level_ = support::SimdLevel::kScalar;
  support::ArenaMode arena_saved_ = support::ArenaMode::kOn;
  bool poison_saved_ = false;
};

INSTANTIATE_TEST_SUITE_P(LevelsByArenaMode, SimdKernels,
                         ::testing::Combine(::testing::Range(0, 2),
                                            ::testing::Range(0, 3)));

TEST_P(SimdKernels, ScanFamilyMatchesScalarLevel) {
  Rng rng(0x51D7);
  for (std::size_t n : {std::size_t{0}, std::size_t{5}, std::size_t{4097},
                        std::size_t{100001}}) {
    std::vector<u64> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = rng.bits(i) & 0xffff;

    std::vector<u64> want(input);
    u64 want_total;
    {
      SimdModeGuard guard(support::SimdLevel::kScalar);
      want_total = par::scan_exclusive_sum(std::span<u64>(want));
    }
    std::vector<u64> got(input);
    u64 got_total;
    {
      SimdModeGuard guard(level_);
      got_total = par::scan_exclusive_sum(std::span<u64>(got));
    }
    EXPECT_EQ(got_total, want_total) << "n=" << n;
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST_P(SimdKernels, HistogramMatchesScalarLevel) {
  Rng rng(0x51D8);
  const std::size_t n = 50000, buckets = 97;
  std::vector<u64> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = rng.next(i, buckets);
  std::vector<u64> want, got;
  {
    SimdModeGuard guard(support::SimdLevel::kScalar);
    want = seq::histogram(keys, buckets, AccessMode::kUnchecked);
  }
  {
    SimdModeGuard guard(level_);
    got = seq::histogram(keys, buckets, AccessMode::kUnchecked);
  }
  EXPECT_EQ(got, want);
}

TEST_P(SimdKernels, IntegerSortMatchesScalarLevel) {
  Rng rng(0x51D9);
  for (std::size_t n : {std::size_t{2}, std::size_t{1000},
                        std::size_t{33000}}) {
    std::vector<u64> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = rng.bits(i);
    std::vector<u64> want(input), got(input);
    {
      SimdModeGuard guard(support::SimdLevel::kScalar);
      seq::integer_sort(want, 64, AccessMode::kUnchecked);
    }
    {
      SimdModeGuard guard(level_);
      seq::integer_sort(got, 64, AccessMode::kUnchecked);
    }
    EXPECT_EQ(got, want) << "n=" << n;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  }
}

TEST_P(SimdKernels, SuffixArrayMatchesScalarLevel) {
  Rng rng(0x51DA);
  std::vector<u8> text(5000);
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<u8>('a' + rng.next(i, 4));
  }
  // kAtomic, not kUnchecked: this test is sanitize-labeled, and the
  // unchecked tier deliberately routes alphabet compression through
  // the paper's same-value-race mark_present arm, which TSAN (rightly)
  // flags when two workers hit one byte's shadow cell. The atomic arm
  // produces the identical array, and the SIMD dispatch under test is
  // orthogonal to the access tier. The racy expression stays covered
  // by determinism_test, which does not run under TSAN.
  std::vector<u32> want, got;
  {
    SimdModeGuard guard(support::SimdLevel::kScalar);
    want = text::suffix_array(std::span<const u8>(text),
                              AccessMode::kAtomic);
  }
  {
    SimdModeGuard guard(level_);
    got = text::suffix_array(std::span<const u8>(text),
                             AccessMode::kAtomic);
  }
  EXPECT_EQ(got, want);
}

// --- Checked tier: the lane-parallel candidate scan must preserve the
// deterministic first-failure contract byte for byte. ----------------

// Runs check_unique_offsets at the given level and returns the failure
// message ("" when the check passes).
std::string check_message(std::span<const u64> offsets, std::size_t bound,
                          support::SimdLevel level) {
  SimdModeGuard guard(level);
  try {
    par::check_unique_offsets(offsets, bound);
  } catch (const CheckFailure& e) {
    return e.what();
  }
  return "";
}

TEST(SimdChecked, FailureMessagesByteIdenticalToScalar) {
  Rng rng(0x51DB);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{9},
                        std::size_t{100}, std::size_t{4096}}) {
    std::vector<u64> perm(n);
    std::iota(perm.begin(), perm.end(), u64{0});
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next(i, i)]);
    }
    // A clean permutation passes at every level.
    for (support::SimdLevel level : vector_levels()) {
      EXPECT_EQ(check_message(perm, n, level), "") << "n=" << n;
    }
    // Violations at every position (both kinds): the reported message
    // must match the scalar engine's exactly — same index, same text.
    for (std::size_t bad = 0; bad < n; ++bad) {
      for (bool oob : {false, true}) {
        std::vector<u64> offsets(perm);
        offsets[bad] = oob ? n + 7 : offsets[(bad + 1) % n];
        if (!oob && n == 1) continue;  // cannot duplicate with one slot
        const std::string want =
            check_message(offsets, n, support::SimdLevel::kScalar);
        ASSERT_NE(want, "");
        for (support::SimdLevel level : vector_levels()) {
          EXPECT_EQ(check_message(offsets, n, level), want)
              << "n=" << n << " bad=" << bad << " oob=" << oob
              << " level=" << support::simd_level_name(level);
        }
      }
    }
  }
}

TEST(SimdChecked, FusedApplySameWritesBeforeFailure) {
  // Sequential fused contract: exactly the writes before the reported
  // index land. The lane-parallel engine must not change that.
  const std::size_t n = 1000;
  std::vector<u64> offsets(n);
  std::iota(offsets.begin(), offsets.end(), u64{0});
  offsets[617] = offsets[2];  // duplicate detected at i=617
  auto run = [&](support::SimdLevel level) {
    SimdModeGuard guard(level);
    std::vector<u64> cells(n, ~u64{0});
    std::string message;
    try {
      par::fused_check_apply(
          std::span<const u64>(offsets), n,
          [&](std::size_t i, std::size_t off) { cells[off] = i; });
    } catch (const CheckFailure& e) {
      message = e.what();
    }
    return std::pair(cells, message);
  };
  const auto [want_cells, want_message] = run(support::SimdLevel::kScalar);
  EXPECT_NE(want_message, "");
  for (support::SimdLevel level : vector_levels()) {
    const auto [cells, message] = run(level);
    EXPECT_EQ(message, want_message)
        << support::simd_level_name(level);
    EXPECT_EQ(cells, want_cells) << support::simd_level_name(level);
  }
}

TEST(SimdChecked, PatternsAgreeAcrossLevelsAndCheckModes) {
  // par_ind_iter_mut end to end: every (check mode × level) produces
  // the same final array on a clean permutation.
  Rng rng(0x51DC);
  const std::size_t n = 3000;
  std::vector<u64> offsets(n);
  std::iota(offsets.begin(), offsets.end(), u64{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(offsets[i - 1], offsets[rng.next(i, i)]);
  }
  std::vector<u64> want;
  for (par::CheckMode mode : {par::CheckMode::kBitmap, par::CheckMode::kSplit,
                              par::CheckMode::kFused}) {
    for (support::SimdLevel level : vector_levels()) {
      SimdModeGuard guard(level);
      par::set_check_mode(mode);
      std::vector<u64> data(n, 0);
      par::par_ind_iter_mut(std::span<u64>(data),
                            std::span<const u64>(offsets),
                            [](std::size_t i, u64& slot) { slot = i + 1; },
                            AccessMode::kChecked);
      if (want.empty()) {
        want = data;
      } else {
        EXPECT_EQ(data, want)
            << "mode=" << static_cast<int>(mode)
            << " level=" << support::simd_level_name(level);
      }
    }
  }
  par::set_check_mode(par::CheckMode::kFused);
}

}  // namespace
}  // namespace rpb
