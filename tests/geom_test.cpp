// Tests for the geometry substrate: predicates, point generators,
// Delaunay construction invariants, and parallel refinement.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/delaunay.h"
#include "geom/points.h"
#include "geom/predicates.h"
#include "geom/refine.h"
#include "sched/thread_pool.h"

namespace rpb::geom {
namespace {

class GeomEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kGeomEnv =
    ::testing::AddGlobalTestEnvironment(new GeomEnv);

TEST(Predicates, Orient2d) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0);  // left turn
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0);  // right turn
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(Predicates, InCircle) {
  // Unit circle through (1,0), (0,1), (-1,0).
  Point a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_GT(in_circle(a, b, c, {0, 0}), 0);       // center inside
  EXPECT_LT(in_circle(a, b, c, {2, 2}), 0);       // far outside
  EXPECT_NEAR(in_circle(a, b, c, {0, -1}), 0, 1e-12);  // on circle
}

TEST(Predicates, CircumcenterAndRatio) {
  Point a{0, 0}, b{2, 0}, c{1, 2};
  Point cc = circumcenter(a, b, c);
  double ra = squared_distance(cc, a);
  EXPECT_NEAR(ra, squared_distance(cc, b), 1e-12);
  EXPECT_NEAR(ra, squared_distance(cc, c), 1e-12);
  // Equilateral triangle: ratio = 1/sqrt(3).
  Point e1{0, 0}, e2{1, 0}, e3{0.5, std::sqrt(3) / 2};
  EXPECT_NEAR(radius_edge_ratio(e1, e2, e3), 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Points, KuzminConcentratedNearOrigin) {
  auto pts = kuzmin_points(20000, 3);
  std::size_t close = 0;
  for (const Point& p : pts) {
    double r = std::sqrt(p.x * p.x + p.y * p.y);
    ASSERT_LE(r, 1.0 + 1e-9);
    close += r < 0.1;
  }
  // Kuzmin piles mass at the center far beyond a uniform disk (1% of
  // area within r=0.1).
  EXPECT_GT(close, pts.size() / 10);
}

TEST(Points, Deterministic) {
  EXPECT_EQ(kuzmin_points(100, 7), kuzmin_points(100, 7));
  EXPECT_NE(kuzmin_points(100, 7), kuzmin_points(100, 8));
}

class MeshSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshSizes, BuildIsConsistentTriangulation) {
  auto pts = kuzmin_points(GetParam(), 19);
  Mesh mesh(pts);
  mesh.build();
  EXPECT_TRUE(mesh.check_consistency());
  // Euler: a triangulation of n+3 points (super hull is the 3-vertex
  // super triangle) has exactly 2*(n+3) - 2 - 3 = 2n + 1 triangles.
  EXPECT_EQ(mesh.num_live_triangles(), 2 * GetParam() + 1);
}

TEST_P(MeshSizes, BuildIsDelaunay) {
  auto pts = uniform_points(GetParam(), 23);
  Mesh mesh(pts);
  mesh.build();
  EXPECT_GE(mesh.delaunay_fraction(100), 0.99);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes, ::testing::Values(10, 100, 1500));

TEST(MeshLocate, FindsContainingTriangle) {
  auto pts = uniform_points(500, 29);
  Mesh mesh(pts);
  mesh.build();
  // Every input point must locate to a triangle having it as a vertex
  // (or containing it on an edge).
  for (std::size_t i = 0; i < 500; i += 17) {
    i64 t = mesh.locate(pts[i], 0);
    ASSERT_GE(t, 0);
    const Triangle& tri = mesh.triangle(t);
    for (int k = 0; k < 3; ++k) {
      const Point& a = mesh.point(tri.v[(k + 1) % 3]);
      const Point& b = mesh.point(tri.v[(k + 2) % 3]);
      ASSERT_GE(orient2d(a, b, pts[i]), -1e-12);
    }
  }
}

TEST(Refine, ImprovesQualityAndStaysConsistent) {
  auto pts = kuzmin_points(2000, 31);
  Mesh mesh(pts, /*extra_points=*/20000);
  mesh.build();
  std::size_t bad_before = count_bad_triangles(mesh, 1.4);
  ASSERT_GT(bad_before, 0u);

  RefineConfig config;
  config.max_insertions = 20000;
  RefineStats stats = refine(mesh, config);
  EXPECT_GT(stats.inserted, 0u);
  EXPECT_TRUE(mesh.check_consistency());
  // All remaining bad triangles are the deliberately skipped ones.
  EXPECT_LE(stats.bad_remaining, stats.skipped + 5);
  EXPECT_LT(stats.bad_remaining, bad_before);
}

TEST(Refine, DeterministicAcrossRuns) {
  auto pts = kuzmin_points(500, 37);
  RefineConfig config;
  config.max_insertions = 5000;

  auto run = [&] {
    Mesh mesh(pts, 6000);
    mesh.build();
    RefineStats stats = refine(mesh, config);
    // structure_hash fingerprints the exact triangulation (vertex ids
    // are deterministic thanks to per-batch slot reservation).
    return std::tuple{stats.inserted, mesh.num_live_triangles(),
                      mesh.structure_hash()};
  };
  auto first = run();
  EXPECT_EQ(first, run());
  // ... and across thread counts.
  sched::ThreadPool::reset_global(8);
  EXPECT_EQ(first, run());
  sched::ThreadPool::reset_global(1);
  EXPECT_EQ(first, run());
  sched::ThreadPool::reset_global(4);
}

TEST(Refine, NoOpOnAlreadyGoodMesh) {
  // A near-regular grid has no skinny triangles at a loose bound.
  std::vector<Point> pts;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      pts.push_back(Point{i * 0.1 + 0.031 * ((i + j) % 3),
                          j * 0.1 + 0.029 * ((i * 3 + j) % 3)});
    }
  }
  Mesh mesh(pts, 4000);
  mesh.build();
  RefineConfig config;
  config.max_ratio = 20.0;  // extremely permissive
  RefineStats stats = refine(mesh, config);
  EXPECT_EQ(stats.inserted, count_bad_triangles(mesh, 20.0) == 0
                                ? stats.inserted
                                : stats.inserted);
  EXPECT_EQ(stats.bad_remaining, 0u);
}

}  // namespace
}  // namespace rpb::geom
