// Tests for the workspace arena (support/arena.h) and uninitialized
// buffers (core/uninit_buf.h): pool lease/reuse, scope rewinding,
// per-thread isolation, the poison debugging mode, and — the contract
// that matters — mode equivalence: every converted kernel must produce
// identical results under RPB_ARENA=on / off / zeroed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/uninit_buf.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "seq/sample_sort.h"
#include "support/arena.h"
#include "text/bwt.h"
#include "text/corpus.h"
#include "text/lcp.h"
#include "text/suffix_array.h"

namespace rpb {
namespace {

// Save/restore the global knobs so tests can't leak state into each
// other (gtest runs them in one process).
class ArenaModeGuard {
 public:
  ArenaModeGuard() : saved_(support::arena_mode()) {}
  ~ArenaModeGuard() { support::set_arena_mode(saved_); }

 private:
  support::ArenaMode saved_;
};

class PoisonGuard {
 public:
  PoisonGuard() : saved_(buf_poison()) {}
  ~PoisonGuard() { set_buf_poison(saved_); }

 private:
  bool saved_;
};

TEST(Arena, BumpAllocationIsAlignedAndDisjoint) {
  support::Arena arena;
  void* a = arena.allocate(24, 8);
  void* b = arena.allocate(1, 1);
  void* c = arena.allocate(64, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) %
                alignof(std::max_align_t),
            0u);
  // Disjoint, ascending within the chunk.
  EXPECT_LT(reinterpret_cast<std::uintptr_t>(a) + 24,
            reinterpret_cast<std::uintptr_t>(b) + 1);
  EXPECT_LT(reinterpret_cast<std::uintptr_t>(b),
            reinterpret_cast<std::uintptr_t>(c));
}

TEST(Arena, RewindReusesSpaceWithoutFreeing) {
  support::Arena arena;
  (void)arena.allocate(100, 8);
  support::Arena::Marker m = arena.mark();
  void* a = arena.allocate(1 << 10, 8);
  std::size_t retained = arena.retained_bytes();
  arena.rewind(m);
  void* b = arena.allocate(1 << 10, 8);
  EXPECT_EQ(a, b);  // same bump position after rewind
  EXPECT_EQ(arena.retained_bytes(), retained);  // rewind frees nothing
}

TEST(Arena, GrowthIsGeometricInRetainedFootprint) {
  support::Arena arena;
  // Force several chunks, then confirm a full rewind serves the same
  // total from the retained chunks without growing further.
  for (int i = 0; i < 10; ++i) (void)arena.allocate(1 << 15, 8);
  std::size_t retained = arena.retained_bytes();
  arena.rewind_all();
  for (int i = 0; i < 10; ++i) (void)arena.allocate(1 << 15, 8);
  EXPECT_EQ(arena.retained_bytes(), retained);
}

TEST(ArenaPool, SequentialLeasesReuseOneArena) {
  ArenaModeGuard guard;
  support::set_arena_mode(support::ArenaMode::kOn);
  support::arena_pool_clear();
  std::size_t created0 = support::arena_pool_created();
  for (int i = 0; i < 16; ++i) {
    support::ArenaLease lease;
    ASSERT_NE(lease.arena(), nullptr);
    (void)lease.allocate(4096, 8);
  }
  // All 16 sequential leases were served by the single arena the first
  // lease constructed.
  EXPECT_EQ(support::arena_pool_created(), created0 + 1);
  EXPECT_EQ(support::arena_pool_idle(), 1u);
}

TEST(ArenaPool, NestedLeasesGetDistinctArenas) {
  ArenaModeGuard guard;
  support::set_arena_mode(support::ArenaMode::kOn);
  support::arena_pool_clear();
  support::ArenaLease outer;
  support::ArenaLease inner;
  ASSERT_NE(outer.arena(), nullptr);
  ASSERT_NE(inner.arena(), nullptr);
  EXPECT_NE(outer.arena(), inner.arena());
  void* a = outer.allocate(64, 8);
  void* b = inner.allocate(64, 8);
  EXPECT_NE(a, b);
}

TEST(ArenaPool, HeapModesBypassThePool) {
  ArenaModeGuard guard;
  support::arena_pool_clear();
  std::size_t created0 = support::arena_pool_created();
  for (support::ArenaMode mode :
       {support::ArenaMode::kOff, support::ArenaMode::kZeroed}) {
    support::set_arena_mode(mode);
    support::ArenaLease lease;
    EXPECT_EQ(lease.mode(), mode);
    EXPECT_EQ(lease.arena(), nullptr);
  }
  EXPECT_EQ(support::arena_pool_created(), created0);
  EXPECT_EQ(support::arena_pool_idle(), 0u);
}

TEST(ArenaScope, ReclaimsPerRoundScratch) {
  ArenaModeGuard guard;
  support::set_arena_mode(support::ArenaMode::kOn);
  support::ArenaLease lease;
  void* first = nullptr;
  for (int round = 0; round < 8; ++round) {
    support::ArenaScope scope(lease);
    void* p = lease.allocate(1 << 12, 8);
    if (round == 0) {
      first = p;
    } else {
      EXPECT_EQ(p, first);  // every round reuses the rewound space
    }
  }
}

TEST(UninitBuf, PoisonCatchesReadBeforeWrite) {
  ArenaModeGuard guard;
  PoisonGuard pguard;
  set_buf_poison(true);
  for (support::ArenaMode mode :
       {support::ArenaMode::kOn, support::ArenaMode::kOff}) {
    support::set_arena_mode(mode);
    support::ArenaLease lease;
    auto buf = uninit_buf<u32>(lease, 1024);
    // A read-before-write sees the deterministic poison pattern, not
    // silently-correct zeros.
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], 0xA5A5A5A5u) << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(UninitBuf, ZeroedModeAndZeroedBufZeroFill) {
  ArenaModeGuard guard;
  PoisonGuard pguard;
  set_buf_poison(true);  // zero-fill must win over poison
  {
    support::set_arena_mode(support::ArenaMode::kZeroed);
    support::ArenaLease lease;
    auto buf = uninit_buf<u64>(lease, 512);
    for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 0u);
  }
  for (support::ArenaMode mode :
       {support::ArenaMode::kOn, support::ArenaMode::kOff}) {
    support::set_arena_mode(mode);
    support::ArenaLease lease;
    auto buf = zeroed_buf<u64>(lease, 512);
    for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 0u);
  }
}

TEST(UninitBuf, MoveTransfersOwnership) {
  ArenaModeGuard guard;
  support::set_arena_mode(support::ArenaMode::kOff);  // heap: dtor frees
  support::ArenaLease lease;
  auto a = uninit_buf<u32>(lease, 16);
  a[0] = 42;
  u32* p = a.data();
  UninitBuf<u32> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  auto c = uninit_buf<u32>(lease, 8);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c.size(), 16u);
}

TEST(ArenaVec, NonTrivialPayloadFallsBackToVector) {
  ArenaModeGuard guard;
  support::set_arena_mode(support::ArenaMode::kOn);
  support::ArenaLease lease;
  // std::string is not trivially copyable: storage must be a properly
  // constructed vector, elements default-constructed.
  ArenaVec<std::string> v(lease, 8);
  EXPECT_EQ(v.size(), 8u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_TRUE(v[i].empty());
  v[3] = "hello";
  EXPECT_EQ(v[3], "hello");
}

TEST(ArenaPool, PerThreadLeasesAreIsolated) {
  ArenaModeGuard guard;
  support::set_arena_mode(support::ArenaMode::kOn);
  support::arena_pool_clear();
  sched::ThreadPool::reset_global(4);
  constexpr std::size_t kTasks = 16;
  constexpr std::size_t kWords = 4096;
  std::vector<int> ok(kTasks, 0);
  sched::parallel_for(
      0, kTasks,
      [&](std::size_t t) {
        support::ArenaLease lease;
        auto buf = uninit_buf<u64>(lease, kWords);
        u64 tag = 0x1000 + t;
        for (std::size_t i = 0; i < kWords; ++i) buf[i] = tag;
        // Another lease in the same task must be a different arena (the
        // first is still held), so writes through it cannot alias.
        support::ArenaLease inner;
        auto other = uninit_buf<u64>(inner, kWords);
        for (std::size_t i = 0; i < kWords; ++i) other[i] = ~tag;
        bool good = true;
        for (std::size_t i = 0; i < kWords; ++i) {
          good = good && buf[i] == tag && other[i] == ~tag;
        }
        ok[t] = good ? 1 : 0;
      },
      1);
  sched::ThreadPool::reset_global(1);
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(ok[t], 1) << "task " << t;
  }
}

// --- Mode equivalence: the knob must never change results. ---

class AllModes : public ::testing::TestWithParam<support::ArenaMode> {
 protected:
  void SetUp() override {
    sched::ThreadPool::reset_global(4);
    support::set_arena_mode(GetParam());
  }
  void TearDown() override {
    sched::ThreadPool::reset_global(1);
  }
  ArenaModeGuard guard_;
};

INSTANTIATE_TEST_SUITE_P(Arena, AllModes,
                         ::testing::Values(support::ArenaMode::kOn,
                                           support::ArenaMode::kOff,
                                           support::ArenaMode::kZeroed),
                         [](const auto& info) {
                           switch (info.param) {
                             case support::ArenaMode::kOn: return "on";
                             case support::ArenaMode::kOff: return "off";
                             default: return "zeroed";
                           }
                         });

TEST_P(AllModes, SampleSortMatchesStdSort) {
  auto input = seq::exponential_doubles(1 << 15, 4.0, 77);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  auto got = input;
  seq::sample_sort(got, std::less<double>(), AccessMode::kChecked);
  EXPECT_EQ(got, expected);
}

TEST_P(AllModes, IntegerSortMatchesStdSort) {
  auto input = seq::exponential_keys(50000, u64{1} << 32, 99);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  auto got = input;
  seq::integer_sort(got, 32, AccessMode::kChecked);
  EXPECT_EQ(got, expected);
}

TEST_P(AllModes, HistogramScatterMatchesDirectCount) {
  auto keys = seq::exponential_keys(40000, 256, 1234);
  std::vector<u64> expected(256, 0);
  for (u64 k : keys) ++expected[k];
  auto got = seq::histogram(keys, 256, AccessMode::kChecked);
  EXPECT_EQ(got, expected);
  auto priv = seq::histogram(keys, 256, AccessMode::kUnchecked);
  EXPECT_EQ(priv, expected);
}

TEST_P(AllModes, SuffixArrayLcpAndBwtRoundTrip) {
  auto text = text::make_corpus(3000, 42, 64);
  auto sa = text::suffix_array(text, AccessMode::kChecked);
  // Adjacent suffixes must be in lexicographic order.
  for (std::size_t j = 1; j < sa.size(); ++j) {
    std::span<const u8> a(text.data() + sa[j - 1], text.size() - sa[j - 1]);
    std::span<const u8> b(text.data() + sa[j], text.size() - sa[j]);
    ASSERT_TRUE(std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                             b.end()));
  }
  auto lcp = text::lcp_kasai(text, sa);
  ASSERT_EQ(lcp.size(), text.size());
  auto bwt = text::bwt_encode(text, AccessMode::kChecked);
  auto decoded = text::bwt_decode(bwt, AccessMode::kChecked);
  EXPECT_EQ(decoded, text);
  auto decoded_par = text::bwt_decode_parallel_chase(bwt,
                                                     AccessMode::kChecked, 7);
  EXPECT_EQ(decoded_par, text);
}

TEST_P(AllModes, BfsLevelSyncMatchesReference) {
  graph::Graph g = graph::make_rmat(10, 7);
  auto expected = graph::bfs_reference(g, 0);
  auto got = graph::bfs_level_sync(g, 0);
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace rpb
