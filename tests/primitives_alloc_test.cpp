// Pins the acceptance claim that the fused primitives are
// allocation-free in steady state: with the arena pool warm, pack /
// pack_index / scan_exclusive / map_scan / pack_index_bits perform
// ZERO heap allocations per call. The global operator new/delete pair
// is replaced with a counting shim (arena chunks come from
// make_unique<std::byte[]>, i.e. operator new[], so chunk growth is
// visible to it too). Kept out of the sanitize label: TSAN interposes
// operator new itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/thread_pool.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/hash.h"

namespace {

std::atomic<std::size_t> g_news{0};

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rpb {
namespace {

class AllocEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    // One thread: the lazy-split scheduler inlines parallel_for without
    // touching the heap, so any surviving allocation is the
    // primitive's own.
    sched::ThreadPool::reset_global(1);
    support::set_arena_mode(support::ArenaMode::kOn);
    support::arena_pool_clear();
  }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kAllocEnv =
    ::testing::AddGlobalTestEnvironment(new AllocEnv);

constexpr std::size_t kN = 100001;  // several blocks even at 1 thread

std::vector<u64> inputs() {
  std::vector<u64> v(kN);
  for (std::size_t i = 0; i < kN; ++i) v[i] = hash64(i) % 1000;
  return v;
}

// Run `body` once to warm the arena pool (growing chunks to their
// steady-state footprint), then re-run it counting heap allocations.
template <class Body>
std::size_t steady_state_allocs(Body body) {
  body();
  body();  // second warm-up pass: chunk growth is geometric, settle it
  std::size_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(PrimitivesAlloc, ScanExclusiveSumIsAllocationFree) {
  std::vector<u64> data = inputs();
  EXPECT_EQ(steady_state_allocs([&] {
              par::scan_exclusive_sum(std::span<u64>(data));
            }),
            0u);
}

TEST(PrimitivesAlloc, ScanExclusiveIntoIsAllocationFree) {
  std::vector<u64> in = inputs();
  std::vector<u64> out(kN);
  EXPECT_EQ(steady_state_allocs([&] {
              par::scan_exclusive_sum_into(std::span<const u64>(in),
                                           std::span<u64>(out));
            }),
            0u);
}

TEST(PrimitivesAlloc, MapScanExclusiveIsAllocationFree) {
  std::vector<u64> out(kN);
  EXPECT_EQ(steady_state_allocs([&] {
              par::map_scan_exclusive_sum(
                  kN, [](std::size_t i) { return u64{i & 7}; },
                  std::span<u64>(out));
            }),
            0u);
}

TEST(PrimitivesAlloc, PackIsAllocationFree) {
  std::vector<u64> in = inputs();
  EXPECT_EQ(steady_state_allocs([&] {
              support::ArenaLease lease;
              auto kept = par::pack(lease, std::span<const u64>(in),
                                    [](u64 x) { return (x & 1) == 0; });
              ASSERT_GT(kept.size(), 0u);
            }),
            0u);
}

TEST(PrimitivesAlloc, PackIndexIsAllocationFree) {
  std::vector<u8> flags(kN);
  for (std::size_t i = 0; i < kN; ++i) flags[i] = hash64(i) & 1;
  EXPECT_EQ(steady_state_allocs([&] {
              support::ArenaLease lease;
              auto idx = par::pack_index(lease, std::span<const u8>(flags));
              ASSERT_GT(idx.size(), 0u);
            }),
            0u);
}

TEST(PrimitivesAlloc, BitFlagPackIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs([&] {
              support::ArenaLease lease;
              auto words = uninit_buf<u64>(lease, par::bit_words(kN));
              par::fill_bit_flags(words.span(), kN, [](std::size_t i) {
                return (hash64(i) & 3) == 0;
              });
              auto idx =
                  par::pack_index_bits<u32>(lease, words.cspan(), kN);
              ASSERT_GT(idx.size(), 0u);
            }),
            0u);
}

}  // namespace
}  // namespace rpb
