// Tests for the support layer: PRNG properties, CLI parsing, the
// Synchronized<T> wrapper, and the bench harness utilities.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "support/cli.h"
#include "support/hash.h"
#include "support/prng.h"
#include "support/synchronized.h"

namespace rpb {
namespace {

TEST(Hash, IsDeterministicAndMixes) {
  EXPECT_EQ(hash64(42), hash64(42));
  // Avalanche smoke test: consecutive inputs land far apart. A truly
  // random byte function yields ~256*(1-1/e) ~ 162 distinct values.
  std::set<u64> top_bytes;
  for (u64 i = 0; i < 256; ++i) top_bytes.insert(hash64(i) >> 56);
  EXPECT_GT(top_bytes.size(), 140u);
  EXPECT_LT(top_bytes.size(), 185u);
}

TEST(Prng, StreamsAreIndependent) {
  Rng a(1), b(2);
  EXPECT_NE(a.bits(0), b.bits(0));
  Rng fork = a.fork(7);
  EXPECT_NE(a.bits(0), fork.bits(0));
  // Same (seed, index) -> same value; counter-based.
  EXPECT_EQ(Rng(1).bits(99), a.bits(99));
}

TEST(Prng, UniformInRangeAndRoughlyFlat) {
  Rng rng(3);
  int low = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double u = rng.uniform(static_cast<u64>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    low += u < 0.5;
  }
  EXPECT_NEAR(low, kN / 2, kN / 50);
}

TEST(Prng, ExponentialHasRightMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(static_cast<u64>(i), 2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);  // mean of Exp(rate=2) is 1/2
}

TEST(CliParsing, FlagsFormsAndPositionals) {
  // Note: a bare "--flag value" consumes the next token as its value,
  // so boolean flags must use "--flag=true", come last, or precede
  // another --flag. Positionals therefore go before bare flags.
  const char* argv[] = {"prog",           "input.txt", "--threads", "8",
                        "--mode=checked", "--verbose", nullptr};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("threads", 1), 8);
  EXPECT_EQ(cli.get("mode", ""), "checked");
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose", ""), "true");
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_EQ(cli.get_int("absent", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(SynchronizedValue, ExclusiveAndSharedAccess) {
  Synchronized<std::vector<int>> list;
  list.write()->push_back(1);
  list.with([](std::vector<int>& v) { v.push_back(2); });
  EXPECT_EQ(list.read()->size(), 2u);
  EXPECT_EQ((*list.read())[1], 2);
}

TEST(SynchronizedValue, ConcurrentIncrementsDontRace) {
  Synchronized<long> counter(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) *counter.write() += 1;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(*counter.read(), 80000);
}

TEST(Harness, GmeanKnownValues) {
  EXPECT_DOUBLE_EQ(bench::gmean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(bench::gmean({8.0}), 8.0);
  EXPECT_EQ(bench::gmean({}), 0.0);
}

TEST(Harness, MeasureRunsSetupBeforeEachRep) {
  int setups = 0, runs = 0;
  auto m = bench::measure_with_setup([&] { ++setups; }, [&] { ++runs; }, 3);
  EXPECT_EQ(m.repeats, 3u);
  EXPECT_EQ(setups, 4);  // warmup + 3 reps
  EXPECT_EQ(runs, 4);
  EXPECT_GE(m.mean_seconds, 0.0);
  EXPECT_LE(m.min_seconds, m.mean_seconds + 1e-12);
}

TEST(Harness, FormattersPickSensibleUnits) {
  EXPECT_EQ(bench::fmt_seconds(0.5e-6), "0.5 us");
  EXPECT_EQ(bench::fmt_seconds(0.002), "2.00 ms");
  EXPECT_EQ(bench::fmt_seconds(1.5), "1.500 s");
  EXPECT_EQ(bench::fmt_ratio(1.2345), "1.23x");
}

}  // namespace
}  // namespace rpb
