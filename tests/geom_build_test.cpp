// Tests for the grid-decomposed Delaunay build (geom/build.h): policy
// equivalence against the serial incremental build, bitwise determinism
// across thread counts and arena modes, duplicate-point handling, the
// forced-stitch path, and the checked bucketing/cavity tier.
// Sanitize-labeled so the TSAN preset runs the wave and stitch phases.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "geom/build.h"
#include "geom/delaunay.h"
#include "geom/points.h"
#include "geom/refine.h"
#include "sched/thread_pool.h"
#include "support/arena.h"
#include "support/error.h"
#include "test_guards.h"

namespace rpb::geom {
namespace {

class GeomBuildEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kGeomBuildEnv =
    ::testing::AddGlobalTestEnvironment(new GeomBuildEnv);

// Build `pts` under the given policy and return the structure hash,
// asserting the basic invariants every build must satisfy.
u64 build_hash(const std::vector<Point>& pts, DrPolicy policy,
               AccessMode mode = AccessMode::kUnchecked,
               const BuildConfig& config = BuildConfig()) {
  Mesh mesh(pts);
  const BuildStats stats = build_delaunay(mesh, policy, mode, config);
  EXPECT_TRUE(mesh.check_consistency());
  EXPECT_EQ(stats.inserted + stats.skipped, pts.size());
  EXPECT_EQ(mesh.num_live_triangles(), 2 * stats.inserted + 1);
  return mesh.structure_hash();
}

TEST(DecomposedBuild, MatchesIncrementalStructure) {
  // Distinct general-position inputs: both policies triangulate the
  // same vertex ids, and the Delaunay triangulation is unique, so the
  // fingerprints must agree exactly.
  for (u64 seed : {7u, 81u}) {
    auto uniform = uniform_points(4000, seed);
    EXPECT_EQ(build_hash(uniform, DrPolicy::kIncremental),
              build_hash(uniform, DrPolicy::kDecomposed))
        << "uniform seed " << seed;
  }
  auto kuzmin = kuzmin_points(4000, 11);
  EXPECT_EQ(build_hash(kuzmin, DrPolicy::kIncremental),
            build_hash(kuzmin, DrPolicy::kDecomposed));
  auto clustered = clustered_points(4000, 13);
  EXPECT_EQ(build_hash(clustered, DrPolicy::kIncremental),
            build_hash(clustered, DrPolicy::kDecomposed));
}

TEST(DecomposedBuild, DecomposedIsDelaunay) {
  auto pts = uniform_points(3000, 5);
  Mesh mesh(pts);
  build_delaunay(mesh, DrPolicy::kDecomposed);
  EXPECT_GE(mesh.delaunay_fraction(), 0.999);
}

TEST(DecomposedBuild, DeterministicAcrossThreadsAndArenas) {
  auto pts = uniform_points(3000, 29);
  const u64 expect = build_hash(pts, DrPolicy::kIncremental);
  const support::ArenaMode saved = support::arena_mode();
  for (std::size_t threads : {1u, 4u}) {
    sched::ThreadPool::reset_global(threads);
    for (support::ArenaMode mode :
         {support::ArenaMode::kOn, support::ArenaMode::kOff,
          support::ArenaMode::kZeroed}) {
      support::set_arena_mode(mode);
      EXPECT_EQ(build_hash(pts, DrPolicy::kDecomposed), expect)
          << "threads=" << threads << " arena=" << static_cast<int>(mode);
    }
  }
  support::set_arena_mode(saved);
  sched::ThreadPool::reset_global(4);
}

TEST(DecomposedBuild, DuplicatePointsDeterministic) {
  // Exact duplicates land in the same grid cell, where the stable
  // bucket order serializes them; the survivor is deterministic per
  // policy, so same-policy hashes agree at every thread count.
  auto pts = uniform_points(2000, 17);
  for (std::size_t i = 0; i < 50; ++i) {
    pts.push_back(pts[i * 7]);
  }
  sched::ThreadPool::reset_global(1);
  Mesh mesh1(pts);
  const BuildStats s1 = build_delaunay(mesh1, DrPolicy::kDecomposed);
  const u64 h1 = mesh1.structure_hash();
  sched::ThreadPool::reset_global(4);
  Mesh mesh4(pts);
  const BuildStats s4 = build_delaunay(mesh4, DrPolicy::kDecomposed);
  EXPECT_TRUE(mesh4.check_consistency());
  EXPECT_EQ(mesh4.structure_hash(), h1);
  EXPECT_GE(s1.skipped, 50u);
  EXPECT_EQ(s1.skipped, s4.skipped);
  EXPECT_EQ(s1.inserted, s4.inserted);
}

TEST(DecomposedBuild, StatsAccountForEveryPoint) {
  auto pts = uniform_points(6000, 23);
  Mesh mesh(pts);
  const BuildStats stats = build_delaunay(mesh, DrPolicy::kDecomposed);
  EXPECT_EQ(stats.seed_inserts + stats.interior_inserts +
                stats.stitch_inserts + stats.skipped,
            pts.size());
  EXPECT_GT(stats.grid, 1u);
  EXPECT_GT(stats.waves, 0u);
  // Large uniform inputs must mostly go through the reservation-free
  // wave path — the whole point of the decomposition.
  EXPECT_GT(stats.interior_inserts, pts.size() / 2);
}

TEST(DecomposedBuild, ForcedStitchMatchesIncremental) {
  // wave_max_cavity = 0 fails every wave collection, so everything
  // except the bootstrap goes through the spec_for stitch. Exercises
  // the reservation engine heavily (the TSAN target) and must still
  // produce the same triangulation.
  auto pts = uniform_points(1500, 37);
  BuildConfig config;
  config.wave_max_cavity = 0;
  Mesh mesh(pts);
  const BuildStats stats =
      build_delaunay(mesh, DrPolicy::kDecomposed, AccessMode::kUnchecked,
                     config);
  EXPECT_TRUE(mesh.check_consistency());
  EXPECT_GT(stats.stitch_inserts, 0u);
  EXPECT_EQ(stats.interior_inserts, 0u);
  EXPECT_EQ(mesh.structure_hash(), build_hash(pts, DrPolicy::kIncremental));
}

TEST(DecomposedBuild, CheckedTierMatchesUnchecked) {
  auto pts = clustered_points(2000, 41);
  EXPECT_EQ(build_hash(pts, DrPolicy::kDecomposed, AccessMode::kChecked),
            build_hash(pts, DrPolicy::kDecomposed, AccessMode::kUnchecked));
}

TEST(DecomposedBuild, CheckedCavityOverflowDeterministicMessage) {
  // An absurd stitch cap makes some cavity overflow; the checked tier
  // must name the same vertex at every thread count (write_min on the
  // deferral order — the PR 2 first-failure convention).
  auto pts = uniform_points(800, 43);
  BuildConfig config;
  config.wave_max_cavity = 0;   // defer everything to the stitch
  config.stitch_max_cavity = 3; // then overflow there (real cavities
                                // at this density run 4+ triangles)
  std::string first_message;
  for (std::size_t threads : {1u, 4u}) {
    sched::ThreadPool::reset_global(threads);
    Mesh mesh(pts);
    try {
      build_delaunay(mesh, DrPolicy::kDecomposed, AccessMode::kChecked,
                     config);
      FAIL() << "expected CheckFailure at threads=" << threads;
    } catch (const CheckFailure& e) {
      if (first_message.empty()) {
        first_message = e.what();
        EXPECT_NE(first_message.find("dr: cavity overflow"),
                  std::string::npos);
      } else {
        EXPECT_EQ(first_message, e.what());
      }
    }
  }
  sched::ThreadPool::reset_global(4);
}

TEST(DecomposedBuild, RefineAfterDecomposedMatchesIncremental) {
  auto pts = uniform_points(1500, 47);
  u64 hashes[2];
  int i = 0;
  for (DrPolicy policy : {DrPolicy::kIncremental, DrPolicy::kDecomposed}) {
    Mesh mesh(pts, pts.size() * 4);
    build_delaunay(mesh, policy);
    RefineConfig config;
    config.max_insertions = pts.size() * 3;
    refine(mesh, config);
    EXPECT_TRUE(mesh.check_consistency());
    hashes[i++] = mesh.structure_hash();
  }
  // Same post-build mesh + deterministic refinement = same refined mesh.
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(DecomposedBuild, GridInputBuildsConsistently) {
  // Exactly-cocircular quadruples everywhere: the triangulation is not
  // unique, so no cross-policy claim — but the decomposed build must
  // stay internally consistent and schedule-independent.
  std::vector<Point> pts;
  for (int x = 0; x < 15; ++x) {
    for (int y = 0; y < 15; ++y) {
      pts.push_back(Point{0.1 * x, 0.1 * y});
    }
  }
  u64 hashes[2];
  int i = 0;
  for (std::size_t threads : {1u, 4u}) {
    sched::ThreadPool::reset_global(threads);
    Mesh mesh(pts);
    build_delaunay(mesh, DrPolicy::kDecomposed);
    EXPECT_TRUE(mesh.check_consistency());
    hashes[i++] = mesh.structure_hash();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  sched::ThreadPool::reset_global(4);
}

TEST(DrPolicyKnob, ParseAndGuard) {
  EXPECT_EQ(parse_dr_policy("incremental"), DrPolicy::kIncremental);
  EXPECT_EQ(parse_dr_policy("decomposed"), DrPolicy::kDecomposed);
  EXPECT_THROW(parse_dr_policy("speculative"), std::invalid_argument);
  const DrPolicy before = dr_policy();
  {
    DrPolicyGuard guard(DrPolicy::kIncremental);
    EXPECT_EQ(dr_policy(), DrPolicy::kIncremental);
  }
  EXPECT_EQ(dr_policy(), before);
}

TEST(DrPolicyKnob, IncrementalDispatchesToSerialBuild) {
  auto pts = uniform_points(500, 53);
  Mesh a(pts);
  const BuildStats stats = build_delaunay(a, DrPolicy::kIncremental);
  EXPECT_EQ(stats.inserted, pts.size());
  EXPECT_EQ(stats.seed_inserts, 0u);
  EXPECT_EQ(stats.waves, 0u);
  Mesh b(pts);
  b.build();
  EXPECT_EQ(a.structure_hash(), b.structure_hash());
}

}  // namespace
}  // namespace rpb::geom
