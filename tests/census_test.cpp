// Meta-tests pinning the pattern census: all 14 benchmarks registered,
// the Table 1 matrix shape the paper's claims depend on, and the
// Fig. 3 headline (a substantial irregular share) hold by construction.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/census.h"
#include "../bench/suite.h"

namespace rpb::census {
namespace {

std::vector<const BenchmarkCensus*> all() {
  return bench::Suite::all_censuses();
}

TEST(Census, FourteenUniqueBenchmarks) {
  auto censuses = all();
  EXPECT_EQ(censuses.size(), 14u);
  std::set<std::string> names;
  for (const auto* c : censuses) {
    EXPECT_FALSE(c->sites.empty()) << c->name;
    names.insert(c->name);
  }
  EXPECT_EQ(names.size(), 14u);
}

TEST(Census, EveryBenchmarkHasIrregularParallelism) {
  // The paper's headline: "All RPB benchmarks have irregular
  // parallelism" — SngInd, RngInd or AW in every row.
  for (const auto* c : all()) {
    EXPECT_TRUE(c->uses(Pattern::kSngInd) || c->uses(Pattern::kRngInd) ||
                c->uses(Pattern::kAW))
        << c->name << " claims to be fully regular";
  }
}

TEST(Census, EveryBenchmarkReadsSharedData) {
  for (const auto* c : all()) {
    EXPECT_TRUE(c->uses(Pattern::kRO)) << c->name;
  }
}

TEST(Census, DynamicDispatchIsExactlyTheMqBenchmarks) {
  for (const auto* c : all()) {
    bool is_mq = c->name == "bfs" || c->name == "sssp";
    EXPECT_EQ(c->dispatch == Dispatch::kDynamic, is_mq) << c->name;
  }
}

TEST(Census, SortIsComfortableButNotFearless) {
  // Paper: "sort only has RngInd, so is comfortable to express but not
  // fearless."
  for (const auto* c : all()) {
    if (c->name != "sort") continue;
    EXPECT_TRUE(c->uses(Pattern::kRngInd));
    EXPECT_FALSE(c->uses(Pattern::kSngInd));
    EXPECT_FALSE(c->uses(Pattern::kAW));
  }
}

TEST(Census, IrregularShareIsSubstantial) {
  int total = 0, irregular = 0;
  for (const auto* c : all()) {
    total += c->total_accesses();
    irregular += c->accesses(Pattern::kSngInd) + c->accesses(Pattern::kRngInd) +
                 c->accesses(Pattern::kAW);
  }
  double share = static_cast<double>(irregular) / total;
  // Paper reports 29%; our implementations land nearby. Pin the claim
  // loosely so honest recounts don't break it but regressions do.
  EXPECT_GT(share, 0.15);
  EXPECT_LT(share, 0.50);
}

TEST(Census, FearTiersMatchTable3) {
  EXPECT_EQ(fear_of(Pattern::kRO), Fear::kFearless);
  EXPECT_EQ(fear_of(Pattern::kStride), Fear::kFearless);
  EXPECT_EQ(fear_of(Pattern::kBlock), Fear::kFearless);
  EXPECT_EQ(fear_of(Pattern::kDC), Fear::kFearless);
  EXPECT_EQ(fear_of(Pattern::kSngInd), Fear::kComfortable);
  EXPECT_EQ(fear_of(Pattern::kRngInd), Fear::kComfortable);
  EXPECT_EQ(fear_of(Pattern::kAW), Fear::kScared);
}

TEST(Census, NamesAndExpressionsAreStable) {
  for (Pattern p : kAllPatterns) {
    EXPECT_STRNE(name_of(p), "?");
    EXPECT_STRNE(expression_of(p), "?");
  }
  EXPECT_STREQ(name_of(Dispatch::kStatic), "static");
  EXPECT_STREQ(name_of(Fear::kScared), "Scared");
}

}  // namespace
}  // namespace rpb::census
