// Tests for the sequence substrate: generators, hash set, histogram
// variants, integer sort, sample sort, and dedup.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "sched/thread_pool.h"
#include "seq/dedup.h"
#include "seq/generators.h"
#include "seq/hash_table.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "seq/sample_sort.h"

namespace rpb::seq {
namespace {

class SeqEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kSeqEnv =
    ::testing::AddGlobalTestEnvironment(new SeqEnv);

TEST(Generators, Deterministic) {
  auto a = exponential_keys(1000, 1 << 16, 42);
  auto b = exponential_keys(1000, 1 << 16, 42);
  auto c = exponential_keys(1000, 1 << 16, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Generators, ExponentialIsSkewedAndBounded) {
  const u64 range = 1 << 16;
  auto keys = exponential_keys(100000, range, 1);
  std::size_t low_half = 0;
  for (u64 k : keys) {
    ASSERT_LT(k, range);
    low_half += k < range / 2;
  }
  // Exponential: far more than half the mass below the midpoint.
  EXPECT_GT(low_half, keys.size() * 8 / 10);
}

TEST(Generators, PermutationIsPermutation) {
  auto p = random_permutation(5000, 9);
  std::vector<u8> seen(5000, 0);
  for (u32 v : p) {
    ASSERT_LT(v, 5000u);
    ASSERT_EQ(seen[v], 0);
    seen[v] = 1;
  }
}

TEST(HashSet, InsertContains) {
  ConcurrentHashSet set(100, AccessMode::kAtomic);
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));
  EXPECT_TRUE(set.insert(6));
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(7));
  EXPECT_THROW(set.insert(ConcurrentHashSet::kEmpty), std::invalid_argument);
}

class HashSetModes : public ::testing::TestWithParam<AccessMode> {};

TEST_P(HashSetModes, ParallelInsertExactlyOneWinnerPerKey) {
  const std::size_t n = 50000;
  ConcurrentHashSet set(n, GetParam());
  // Each key inserted 4 times concurrently; exactly one insert wins.
  std::atomic<u64> winners{0};
  sched::parallel_for(0, 4 * n, [&](std::size_t i) {
    if (set.insert(i % n)) winners.fetch_add(1);
  });
  EXPECT_EQ(winners.load(), n);
  auto keys = set.keys();
  EXPECT_EQ(keys.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Modes, HashSetModes,
                         ::testing::Values(AccessMode::kAtomic,
                                           AccessMode::kLocked));

class HistogramModes : public ::testing::TestWithParam<AccessMode> {};

TEST_P(HistogramModes, MatchesSerialCount) {
  const std::size_t buckets = 1024;
  auto keys = exponential_keys(200000, buckets, 5);
  std::vector<u64> expected(buckets, 0);
  for (u64 k : keys) ++expected[k];
  auto got = histogram(std::span<const u64>(keys), buckets, GetParam());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, HistogramModes,
                         ::testing::Values(AccessMode::kUnchecked,
                                           AccessMode::kChecked,
                                           AccessMode::kAtomic,
                                           AccessMode::kLocked));

TEST(HistogramStats, PrivateAndLockedAgree) {
  const std::size_t buckets = 256;
  auto keys = exponential_keys(100000, buckets, 6);
  auto a = histogram_stats(std::span<const u64>(keys), buckets,
                           AccessMode::kUnchecked);
  auto b = histogram_stats(std::span<const u64>(keys), buckets,
                           AccessMode::kLocked);
  EXPECT_EQ(a, b);
}

TEST(HistogramStats, AtomicModeRejected) {
  std::vector<u64> keys{1, 2, 3};
  EXPECT_THROW(
      histogram_stats(std::span<const u64>(keys), 8, AccessMode::kAtomic),
      std::invalid_argument);
}

TEST(HistogramStats, StatsFieldsCorrect) {
  std::vector<u64> keys{3, 3, 3, 7};
  auto stats = histogram_stats(std::span<const u64>(keys), 8,
                               AccessMode::kUnchecked);
  EXPECT_EQ(stats[3].count, 3u);
  EXPECT_EQ(stats[3].sum, 9u);
  EXPECT_EQ(stats[3].min, 3u);
  EXPECT_EQ(stats[3].max, 3u);
  EXPECT_EQ(stats[3].sum_squares, 27u);
  EXPECT_EQ(stats[7].count, 1u);
  EXPECT_EQ(stats[0].count, 0u);
}

class SortModes : public ::testing::TestWithParam<AccessMode> {};

TEST_P(SortModes, IntegerSortMatchesStdSort) {
  for (std::size_t n : {0ul, 1ul, 2ul, 1000ul, 100000ul}) {
    auto keys = exponential_keys(n, u64{1} << 40, n + 1);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    integer_sort(keys, 40, GetParam());
    ASSERT_EQ(keys, expected) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, SortModes,
                         ::testing::Values(AccessMode::kUnchecked,
                                           AccessMode::kChecked,
                                           AccessMode::kAtomic));

TEST(IntegerSort, StableOnPairs) {
  // Sort (key, original index) pairs by key only; stability means index
  // order is preserved within equal keys.
  const std::size_t n = 50000;
  auto keys = exponential_keys(n, 64, 17);  // few distinct keys
  std::vector<std::pair<u64, u32>> items(n);
  for (std::size_t i = 0; i < n; ++i) items[i] = {keys[i], static_cast<u32>(i)};
  integer_sort_by(items, 6, [](const auto& p) { return p.first; });
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(items[i - 1].first, items[i].first);
    if (items[i - 1].first == items[i].first) {
      ASSERT_LT(items[i - 1].second, items[i].second);
    }
  }
}

TEST_P(SortModes, SampleSortMatchesStdSort) {
  for (std::size_t n : {0ul, 1ul, 100ul, 9000ul, 300000ul}) {
    auto values = exponential_doubles(n, 1.0, n + 3);
    auto expected = values;
    std::sort(expected.begin(), expected.end());
    sample_sort(values, std::less<double>(), GetParam());
    ASSERT_EQ(values, expected) << "n=" << n;
  }
}

TEST(SampleSort, CustomComparatorDescending) {
  auto values = exponential_doubles(50000, 1.0, 11);
  auto expected = values;
  std::sort(expected.begin(), expected.end(), std::greater<double>());
  sample_sort(values, std::greater<double>(), AccessMode::kChecked);
  EXPECT_EQ(values, expected);
}

TEST(SampleSort, AllEqualKeys) {
  std::vector<double> values(100000, 3.14);
  sample_sort(values, std::less<double>(), AccessMode::kChecked);
  EXPECT_TRUE(std::all_of(values.begin(), values.end(),
                          [](double v) { return v == 3.14; }));
}

// Adversarial distributions for the splitter logic: duplicated sample
// picks used to collapse the splitter set and funnel everything into
// one bucket; the deduped 2m+1 bucket scheme must stay balanced (and
// correct) on them.
TEST(SampleSort, AlreadySortedInput) {
  std::vector<double> values(120000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  auto expected = values;
  sample_sort(values, std::less<double>(), AccessMode::kChecked);
  EXPECT_EQ(values, expected);
}

TEST(SampleSort, ReverseSortedInput) {
  std::vector<double> values(120000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(values.size() - i);
  }
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  sample_sort(values, std::less<double>(), AccessMode::kChecked);
  EXPECT_EQ(values, expected);
}

TEST(SampleSort, TwoDistinctValues) {
  std::vector<double> values(100000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = (i * 2654435761u) % 3 == 0 ? 1.0 : 2.0;
  }
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  sample_sort(values, std::less<double>(), AccessMode::kChecked);
  EXPECT_EQ(values, expected);
}

TEST(SampleSort, FewDistinctValues) {
  std::vector<u64> values(150000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = (i * 2654435761u) % 7;
  }
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  sample_sort(values, std::less<u64>(), AccessMode::kChecked);
  EXPECT_EQ(values, expected);
}

class DedupModes : public ::testing::TestWithParam<AccessMode> {};

TEST_P(DedupModes, MatchesStdSet) {
  auto keys = exponential_keys(100000, 5000, 23);  // lots of duplicates
  auto got = dedup(std::span<const u64>(keys), GetParam());
  std::set<u64> expected(keys.begin(), keys.end());
  std::set<u64> got_set(got.begin(), got.end());
  EXPECT_EQ(got.size(), expected.size());  // no duplicates in output
  EXPECT_EQ(got_set, expected);
}

INSTANTIATE_TEST_SUITE_P(Modes, DedupModes,
                         ::testing::Values(AccessMode::kAtomic,
                                           AccessMode::kLocked));

TEST(Dedup, RejectsUnsynchronizedModes) {
  std::vector<u64> keys{1, 2, 1};
  EXPECT_THROW(dedup(std::span<const u64>(keys), AccessMode::kUnchecked),
               std::invalid_argument);
}

TEST(Dedup, EmptyInput) {
  std::vector<u64> keys;
  EXPECT_TRUE(dedup(std::span<const u64>(keys), AccessMode::kAtomic).empty());
}

}  // namespace
}  // namespace rpb::seq
