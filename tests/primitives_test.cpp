// Differential tests for the fused scan/pack primitive family against
// the std:: serial references: scans vs std::exclusive_scan /
// std::inclusive_scan (including a non-commutative op), packs vs
// std::copy_if, bit-flag packs vs a serial bit walk. Each suite runs
// across every arena mode (on / off / zeroed), and the exactly-once
// contract of map_scan / pack predicates is pinned with counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <iterator>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/thread_pool.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/prng.h"

namespace rpb {
namespace {

class PrimEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kPrimEnv =
    ::testing::AddGlobalTestEnvironment(new PrimEnv);

// An associative but NON-commutative monoid: affine maps x -> mul*x +
// add under composition. Catches any implementation that reorders or
// re-associates operands incorrectly.
struct Affine {
  u64 mul, add;
  bool operator==(const Affine&) const = default;
};
constexpr Affine kAffineId{1, 0};

Affine compose(Affine a, Affine b) {
  // Apply a first, then b: b(a(x)) = b.mul*a.mul*x + b.mul*a.add + b.add.
  return Affine{a.mul * b.mul, a.add * b.mul + b.add};
}

// Sizes straddle the serial cutoff and block boundaries at 4 threads
// (default_block(n, 4) = max(2048, n/32 + 1)).
constexpr std::size_t kSizes[] = {0, 1, 2, 63, 64, 65, 2048, 2049, 100001};

struct ModeCase {
  support::ArenaMode mode;
  const char* name;
};
constexpr ModeCase kModes[] = {
    {support::ArenaMode::kOn, "on"},
    {support::ArenaMode::kOff, "off"},
    {support::ArenaMode::kZeroed, "zeroed"},
};

class PrimModes
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {
 protected:
  void SetUp() override {
    saved_ = support::arena_mode();
    support::set_arena_mode(kModes[std::get<1>(GetParam())].mode);
  }
  void TearDown() override {
    support::set_arena_mode(saved_);
    support::arena_pool_clear();
  }
  std::size_t size() const { return std::get<0>(GetParam()); }

 private:
  support::ArenaMode saved_;
};

std::string mode_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, int>>& info) {
  return std::to_string(std::get<0>(info.param)) + "_" +
         kModes[std::get<1>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(SizesByMode, PrimModes,
                         ::testing::Combine(::testing::ValuesIn(kSizes),
                                            ::testing::Range(0, 3)),
                         mode_name);

std::vector<u64> random_u64(std::size_t n, u64 seed, u64 bound) {
  Rng rng(seed);
  std::vector<u64> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.next(i, bound);
  return v;
}

TEST_P(PrimModes, ScanExclusiveSumMatchesStd) {
  const std::size_t n = size();
  std::vector<u64> data = random_u64(n, 11, 1000);
  std::vector<u64> expected(n);
  std::exclusive_scan(data.begin(), data.end(), expected.begin(), u64{0});
  u64 expected_total = std::reduce(data.begin(), data.end(), u64{0});
  u64 total = par::scan_exclusive_sum(std::span<u64>(data));
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(data, expected);
}

TEST_P(PrimModes, ScanInclusiveSumMatchesStd) {
  const std::size_t n = size();
  std::vector<u64> data = random_u64(n, 12, 1000);
  std::vector<u64> expected(n);
  std::inclusive_scan(data.begin(), data.end(), expected.begin());
  u64 expected_total = std::reduce(data.begin(), data.end(), u64{0});
  u64 total = par::scan_inclusive_sum(std::span<u64>(data));
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(data, expected);
}

TEST_P(PrimModes, ScanExclusiveNonCommutativeOp) {
  const std::size_t n = size();
  Rng rng(13);
  std::vector<Affine> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Wrap-around multiplication is fine: u64 arithmetic mod 2^64 is
    // still an associative, non-commutative monoid.
    data[i] = Affine{rng.next(i, 7) + 1, rng.next(i + n, 100)};
  }
  std::vector<Affine> expected(n, kAffineId);
  Affine acc = kAffineId;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = acc;
    acc = compose(acc, data[i]);
  }
  Affine total = par::scan_exclusive(std::span<Affine>(data), kAffineId,
                                     [](Affine a, Affine b) {
                                       return compose(a, b);
                                     });
  EXPECT_EQ(total, acc);
  EXPECT_EQ(data, expected);
}

TEST_P(PrimModes, ScanExclusiveIntoMatchesInPlaceAndPreservesInput) {
  const std::size_t n = size();
  std::vector<u64> in = random_u64(n, 14, 1000);
  const std::vector<u64> snapshot = in;
  std::vector<u64> out(n, 0xDEADBEEF);
  std::vector<u64> expected(n);
  std::exclusive_scan(in.begin(), in.end(), expected.begin(), u64{0});
  u64 total = par::scan_exclusive_sum_into(std::span<const u64>(in),
                                           std::span<u64>(out));
  EXPECT_EQ(total, std::reduce(in.begin(), in.end(), u64{0}));
  EXPECT_EQ(out, expected);
  EXPECT_EQ(in, snapshot);  // input untouched
}

TEST_P(PrimModes, MapScanExclusiveInvokesMapOncePerIndex) {
  const std::size_t n = size();
  std::vector<u64> values = random_u64(n, 15, 1000);
  std::vector<u64> out(n, 0);
  std::vector<std::atomic<u32>> calls(n);
  u64 total = par::map_scan_exclusive_sum(
      n,
      [&](std::size_t i) {
        calls[i].fetch_add(1, std::memory_order_relaxed);
        return values[i];
      },
      std::span<u64>(out));
  std::vector<u64> expected(n);
  std::exclusive_scan(values.begin(), values.end(), expected.begin(), u64{0});
  EXPECT_EQ(total, std::reduce(values.begin(), values.end(), u64{0}));
  EXPECT_EQ(out, expected);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(calls[i].load(), 1u) << "map called " << calls[i].load()
                                   << " times at index " << i;
  }
}

TEST_P(PrimModes, MapScanInclusiveMatchesStd) {
  const std::size_t n = size();
  std::vector<u64> values = random_u64(n, 16, 1000);
  std::vector<u64> out(n, 0);
  u64 total = par::map_scan_inclusive_sum(
      n, [&](std::size_t i) { return values[i]; }, std::span<u64>(out));
  std::vector<u64> expected(n);
  std::inclusive_scan(values.begin(), values.end(), expected.begin());
  EXPECT_EQ(total, std::reduce(values.begin(), values.end(), u64{0}));
  EXPECT_EQ(out, expected);
}

TEST_P(PrimModes, PackMatchesStdCopyIf) {
  const std::size_t n = size();
  std::vector<u64> in = random_u64(n, 17, 1000);
  auto keep = [](u64 x) { return x % 3 == 0; };
  std::vector<u64> expected;
  std::copy_if(in.begin(), in.end(), std::back_inserter(expected), keep);
  support::ArenaLease lease;
  auto got = par::pack(lease, std::span<const u64>(in), keep);
  EXPECT_EQ(std::vector<u64>(got.begin(), got.end()), expected);
}

TEST_P(PrimModes, PackPredicateCalledOncePerElementInOrderWithinBlocks) {
  const std::size_t n = size();
  std::vector<u64> in = random_u64(n, 18, 1000);
  std::vector<std::atomic<u32>> calls(n);
  support::ArenaLease lease;
  auto got = par::pack_indexed(lease, std::span<const u64>(in),
                               [&](std::size_t i, u64 x) {
                                 calls[i].fetch_add(1,
                                                    std::memory_order_relaxed);
                                 return x % 2 == 0;
                               });
  std::vector<u64> expected;
  std::copy_if(in.begin(), in.end(), std::back_inserter(expected),
               [](u64 x) { return x % 2 == 0; });
  EXPECT_EQ(std::vector<u64>(got.begin(), got.end()), expected);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(calls[i].load(), 1u) << "pred called " << calls[i].load()
                                   << " times at index " << i;
  }
}

TEST_P(PrimModes, PackIntoMatchesAndCountsSurvivors) {
  const std::size_t n = size();
  std::vector<u64> in = random_u64(n, 19, 7);
  std::vector<u64> dst(n, 0xABAD1DEA);
  auto keep = [](u64 x) { return x < 3; };
  std::size_t cnt =
      par::pack_into(std::span<const u64>(in), keep, std::span<u64>(dst));
  std::vector<u64> expected;
  std::copy_if(in.begin(), in.end(), std::back_inserter(expected), keep);
  EXPECT_EQ(cnt, expected.size());
  EXPECT_EQ(std::vector<u64>(dst.begin(),
                             dst.begin() + static_cast<std::ptrdiff_t>(cnt)),
            expected);
}

TEST_P(PrimModes, PackAllTrueAndAllFalse) {
  const std::size_t n = size();
  std::vector<u64> in = random_u64(n, 20, 1000);
  support::ArenaLease lease;
  auto everything =
      par::pack(lease, std::span<const u64>(in), [](u64) { return true; });
  EXPECT_EQ(std::vector<u64>(everything.begin(), everything.end()), in);
  auto nothing =
      par::pack(lease, std::span<const u64>(in), [](u64) { return false; });
  EXPECT_EQ(nothing.size(), 0u);
}

TEST_P(PrimModes, PackIndexIfMatchesSerial) {
  const std::size_t n = size();
  support::ArenaLease lease;
  auto pred = [](std::size_t i) { return i % 5 == 2; };
  auto got = par::pack_index_if<std::size_t>(lease, n, pred);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) expected.push_back(i);
  }
  EXPECT_EQ(std::vector<std::size_t>(got.begin(), got.end()), expected);
}

TEST_P(PrimModes, BitFlagsRoundTripThroughPackIndexBits) {
  const std::size_t n = size();
  Rng rng(21);
  std::vector<u8> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = rng.next(i, 4) == 0 ? 1 : 0;

  support::ArenaLease lease;
  auto words = uninit_buf<u64>(lease, par::bit_words(n));
  par::fill_bit_flags(words.span(), n,
                      [&](std::size_t i) { return ref[i] != 0; });

  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (ref[i]) expected.push_back(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(par::test_bit(words.cspan(), i), ref[i] != 0);
  }
  EXPECT_EQ(par::count_bits(words.cspan(), n), expected.size());
  auto got = par::pack_index_bits<std::size_t>(lease, words.cspan(), n);
  EXPECT_EQ(std::vector<std::size_t>(got.begin(), got.end()), expected);
}

TEST_P(PrimModes, BitFlagTailWordBitsAreZero) {
  const std::size_t n = size();
  if (n == 0) return;
  support::ArenaLease lease;
  auto words = uninit_buf<u64>(lease, par::bit_words(n));
  par::fill_bit_flags(words.span(), n, [](std::size_t) { return true; });
  if ((n & 63) != 0) {
    u64 tail = words[par::bit_words(n) - 1];
    EXPECT_EQ(tail, (u64{1} << (n & 63)) - 1);
  }
  EXPECT_EQ(par::count_bits(words.cspan(), n), n);
}

// A dense all-true pack whose output straddles every block boundary:
// any off-by-one in the concat offsets shows up as a permuted output.
TEST_P(PrimModes, PackIndexIfDenseIsExactlyIota) {
  const std::size_t n = size();
  support::ArenaLease lease;
  auto got =
      par::pack_index_if<u32>(lease, n, [](std::size_t) { return true; });
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], static_cast<u32>(i));
  }
}

}  // namespace
}  // namespace rpb
