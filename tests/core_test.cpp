// Tests for the core pattern vocabulary: scan/pack primitives, the
// fearless patterns, the checked irregular patterns (including that the
// checks actually catch contract violations), reservations, and the
// deterministic-reservations speculative_for.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/access_mode.h"
#include "core/atomics.h"
#include "core/patterns.h"
#include "core/primitives.h"
#include "core/reservation.h"
#include "core/spec_for.h"
#include "sched/thread_pool.h"
#include "support/arena.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/prng.h"
#include "seq/generators.h"

#include <mutex>

namespace rpb {
namespace {

class CoreEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kCoreEnv =
    ::testing::AddGlobalTestEnvironment(new CoreEnv);

using par::scan_exclusive_sum;

class CoreSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoreSizes, ScanExclusiveSumMatchesSerial) {
  const std::size_t n = GetParam();
  Rng rng(42);
  std::vector<u64> data(n), expected(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = rng.next(i, 1000);
  u64 acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = acc;
    acc += data[i];
  }
  u64 total = scan_exclusive_sum(std::span<u64>(data));
  EXPECT_EQ(total, acc);
  EXPECT_EQ(data, expected);
}

TEST_P(CoreSizes, PackIndexFindsExactlyTheFlagged) {
  const std::size_t n = GetParam();
  Rng rng(7);
  std::vector<u8> flags(n);
  for (std::size_t i = 0; i < n; ++i) flags[i] = rng.next(i, 3) == 0 ? 1 : 0;
  support::ArenaLease lease;
  auto idx = par::pack_index(lease, std::span<const u8>(flags));
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < n; ++i) {
    if (flags[i]) expected.push_back(i);
  }
  EXPECT_EQ(std::vector<std::size_t>(idx.begin(), idx.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoreSizes,
                         ::testing::Values(0, 1, 2, 100, 4096, 100001));

TEST(Primitives, ScanGenericOpMax) {
  std::vector<u64> data{3, 1, 4, 1, 5, 9, 2, 6};
  u64 total = par::scan_exclusive(
      std::span<u64>(data), u64{0}, [](u64 a, u64 b) { return std::max(a, b); });
  EXPECT_EQ(total, 9u);
  EXPECT_EQ(data, (std::vector<u64>{0, 3, 3, 4, 4, 5, 9, 9}));
}

TEST(Primitives, PackPredicate) {
  std::vector<int> in{5, 2, 8, 1, 9, 4};
  support::ArenaLease lease;
  auto evens =
      par::pack(lease, std::span<const int>(in), [](int x) { return x % 2 == 0; });
  EXPECT_EQ(std::vector<int>(evens.begin(), evens.end()),
            (std::vector<int>{2, 8, 4}));
}

TEST(Primitives, CountIf) {
  EXPECT_EQ(par::count_if(0, 1000, [](std::size_t i) { return i % 7 == 0; }),
            143u);
}

TEST(Patterns, ParIterReadsAll) {
  std::vector<u32> data(5000, 2);
  std::atomic<u64> sum{0};
  par::par_iter(std::span<const u32>(data),
                [&](std::size_t, const u32& v) { sum.fetch_add(v); });
  EXPECT_EQ(sum.load(), 10000u);
}

TEST(Patterns, ParIterMutStride) {
  std::vector<u64> data(10000);
  std::iota(data.begin(), data.end(), 0);
  par::par_iter_mut(std::span<u64>(data),
                    [](std::size_t, u64& v) { v *= v; });
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], i * i);
}

TEST(Patterns, ParChunksMutCoversAllWithShortTail) {
  std::vector<int> data(1003, 0);
  std::vector<std::size_t> chunk_sizes;
  std::mutex mu;
  par::par_chunks_mut(std::span<int>(data), 100,
                      [&](std::size_t c, std::span<int> chunk) {
                        for (int& v : chunk) v = static_cast<int>(c) + 1;
                        std::lock_guard<std::mutex> guard(mu);
                        chunk_sizes.push_back(chunk.size());
                      });
  EXPECT_EQ(chunk_sizes.size(), 11u);  // 10 full + 1 tail of 3
  EXPECT_TRUE(std::all_of(data.begin(), data.end(), [](int v) { return v > 0; }));
  EXPECT_EQ(std::count(chunk_sizes.begin(), chunk_sizes.end(), 3u), 1);
}

TEST(Patterns, SngIndUncheckedScatters) {
  const std::size_t n = 20000;
  auto offsets = seq::random_permutation(n, 123);
  std::vector<u64> out(n, 0);
  par::par_ind_iter_mut(
      std::span<u64>(out), std::span<const u32>(offsets),
      [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kUnchecked);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[offsets[i]], i);
}

TEST(Patterns, SngIndCheckedAcceptsPermutation) {
  const std::size_t n = 20000;
  auto offsets = seq::random_permutation(n, 123);
  std::vector<u64> out(n, 0);
  EXPECT_NO_THROW(par::par_ind_iter_mut(
      std::span<u64>(out), std::span<const u32>(offsets),
      [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kChecked));
}

TEST(Patterns, SngIndCheckedThrowsOnDuplicate) {
  const std::size_t n = 20000;
  auto offsets = seq::random_permutation(n, 123);
  offsets[n / 2] = offsets[10];  // plant the bug
  std::vector<u64> out(n, 0);
  EXPECT_THROW(par::par_ind_iter_mut(
                   std::span<u64>(out), std::span<const u32>(offsets),
                   [](std::size_t i, u64& slot) { slot = i; },
                   AccessMode::kChecked),
               CheckFailure);
}

TEST(Patterns, SngIndCheckedThrowsOutOfBounds) {
  std::vector<u32> offsets{0, 1, 2, 100};
  std::vector<u64> out(4, 0);
  EXPECT_THROW(par::par_ind_iter_mut(
                   std::span<u64>(out), std::span<const u32>(offsets),
                   [](std::size_t, u64&) {}, AccessMode::kChecked),
               CheckFailure);
}

TEST(Patterns, RngIndCheckedAcceptsMonotone) {
  std::vector<u64> data(100, 0);
  std::vector<u32> offsets{0, 10, 10, 55, 100};
  par::par_ind_chunks_mut(
      std::span<u64>(data), std::span<const u32>(offsets),
      [](std::size_t c, std::span<u64> chunk) {
        for (u64& v : chunk) v = c + 1;
      },
      AccessMode::kChecked);
  EXPECT_EQ(data[0], 1u);
  EXPECT_EQ(data[10], 3u);  // chunk 1 is empty
  EXPECT_EQ(data[54], 3u);
  EXPECT_EQ(data[99], 4u);
}

TEST(Patterns, RngIndGrainBatchingCoversAllChunks) {
  // grain batches consecutive chunks per task; any grain must produce
  // the same coverage (0 = scheduler default, 7 doesn't divide 33).
  std::vector<u32> offsets(34);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    offsets[i] = static_cast<u32>(3 * i);
  }
  for (std::size_t grain : {std::size_t{0}, std::size_t{7}}) {
    std::vector<u64> data(99, 0);
    par::par_ind_chunks_mut(
        std::span<u64>(data), std::span<const u32>(offsets),
        [](std::size_t c, std::span<u64> chunk) {
          for (u64& v : chunk) v = c + 1;
        },
        AccessMode::kChecked, grain);
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(data[i], i / 3 + 1) << "grain " << grain;
    }
  }
}

TEST(Patterns, RngIndCheckedThrowsOnNonMonotone) {
  std::vector<u64> data(100, 0);
  std::vector<u32> offsets{0, 60, 40, 100};
  EXPECT_THROW(par::par_ind_chunks_mut(
                   std::span<u64>(data), std::span<const u32>(offsets),
                   [](std::size_t, std::span<u64>) {}, AccessMode::kChecked),
               CheckFailure);
}

TEST(Patterns, RngIndCheckedThrowsPastEnd) {
  std::vector<u64> data(50, 0);
  std::vector<u32> offsets{0, 25, 51};
  EXPECT_THROW(par::par_ind_chunks_mut(
                   std::span<u64>(data), std::span<const u32>(offsets),
                   [](std::size_t, std::span<u64>) {}, AccessMode::kChecked),
               CheckFailure);
}

TEST(Atomics, WriteMinMaxAndCas) {
  u64 cell = 100;
  EXPECT_TRUE(write_min(&cell, u64{50}));
  EXPECT_FALSE(write_min(&cell, u64{70}));
  EXPECT_EQ(cell, 50u);
  EXPECT_TRUE(write_max(&cell, u64{90}));
  EXPECT_FALSE(write_max(&cell, u64{10}));
  EXPECT_EQ(cell, 90u);
  EXPECT_TRUE(cas(&cell, u64{90}, u64{7}));
  EXPECT_FALSE(cas(&cell, u64{90}, u64{8}));
  EXPECT_EQ(cell, 7u);
}

TEST(Atomics, ConcurrentWriteMinFindsGlobalMin) {
  sched::ThreadPool::reset_global(4);
  u64 cell = ~u64{0};
  sched::parallel_for(0, 100000, [&](std::size_t i) {
    write_min(&cell, hash64(i) % 1000000);
  });
  u64 expected = ~u64{0};
  for (std::size_t i = 0; i < 100000; ++i) {
    expected = std::min(expected, hash64(i) % 1000000);
  }
  EXPECT_EQ(cell, expected);
  sched::ThreadPool::reset_global(1);
}

TEST(Reservation, PriorityWins) {
  par::Reservation r;
  EXPECT_FALSE(r.reserved());
  r.reserve(10);
  r.reserve(5);
  r.reserve(8);
  EXPECT_TRUE(r.check(5));
  EXPECT_FALSE(r.check(8));
  r.reset();
  EXPECT_FALSE(r.reserved());
}

// A toy spec_for problem with real conflicts: greedy sequential
// "claim your slot" — task i claims slot (i % kSlots); only the
// lowest-index unclaimed task per slot may commit per round, so the
// final owner of each slot must be the first task mapped to it.
struct SlotClaimStep {
  std::vector<par::Reservation>& r;
  std::vector<i64>& owner;

  bool reserve(std::size_t i) {
    std::size_t slot = i % owner.size();
    if (relaxed_load(&owner[slot]) >= 0) return false;  // taken: drop
    r[slot].reserve(static_cast<i64>(i));
    return true;
  }
  bool commit(std::size_t i) {
    std::size_t slot = i % owner.size();
    if (r[slot].check(static_cast<i64>(i))) {
      relaxed_store(&owner[slot], static_cast<i64>(i));
      r[slot].reset();
      return true;
    }
    return false;
  }
};

TEST(SpeculativeFor, DeterministicSlotClaim) {
  sched::ThreadPool::reset_global(4);
  constexpr std::size_t kSlots = 97, kTasks = 5000;
  std::vector<par::Reservation> reservations(kSlots);
  std::vector<i64> owner(kSlots, -1);
  SlotClaimStep step{reservations, owner};
  auto stats = par::speculative_for(step, 0, kTasks, 512);
  EXPECT_GE(stats.rounds, 1u);
  for (std::size_t s = 0; s < kSlots; ++s) {
    // First task hitting slot s is s itself.
    EXPECT_EQ(owner[s], static_cast<i64>(s));
  }
  sched::ThreadPool::reset_global(1);
}

TEST(AccessModeRoundTrip, ParseAndPrint) {
  for (AccessMode m : {AccessMode::kUnchecked, AccessMode::kChecked,
                       AccessMode::kAtomic, AccessMode::kLocked}) {
    EXPECT_EQ(parse_access_mode(to_string(m)), m);
  }
  EXPECT_THROW(parse_access_mode("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace rpb
