// Cross-thread-count determinism: the deterministic benchmarks must
// produce bit-identical results no matter how many workers run them —
// the property deterministic reservations and priority-based rounds
// buy (Blelloch et al.'s "internally deterministic" programs).
#include <gtest/gtest.h>

#include <vector>

#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "graph/mis.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "seq/mark_present.h"
#include "seq/sample_sort.h"
#include "text/corpus.h"
#include "text/suffix_array.h"

namespace rpb {
namespace {

const std::size_t kThreadCounts[] = {1, 3, 8};

// Runs fn under each thread count and checks all results are equal.
template <class Fn>
void expect_same_result_across_threads(Fn fn) {
  using Result = decltype(fn());
  std::vector<Result> results;
  for (std::size_t t : kThreadCounts) {
    sched::ThreadPool::reset_global(t);
    results.push_back(fn());
  }
  sched::ThreadPool::reset_global(1);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "thread count changed the result";
  }
}

TEST(Determinism, SuffixArray) {
  auto text = text::make_corpus(30000, 3);
  expect_same_result_across_threads(
      [&] { return text::suffix_array(std::span<const u8>(text)); });
}

TEST(Determinism, IntegerSort) {
  auto keys = seq::exponential_keys(100000, u64{1} << 40, 5);
  expect_same_result_across_threads([&] {
    auto copy = keys;
    seq::integer_sort(copy, 40);
    return copy;
  });
}

TEST(Determinism, SampleSort) {
  auto values = seq::exponential_doubles(100000, 1.0, 7);
  expect_same_result_across_threads([&] {
    auto copy = values;
    seq::sample_sort(copy);
    return copy;
  });
}

TEST(Determinism, Histogram) {
  auto keys = seq::exponential_keys(100000, 512, 9);
  expect_same_result_across_threads([&] {
    return seq::histogram(std::span<const u64>(keys), 512,
                          AccessMode::kAtomic);
  });
}

TEST(Determinism, MarkPresentBothExpressions) {
  auto text = text::make_corpus(50000, 11);
  for (AccessMode mode : {AccessMode::kAtomic, AccessMode::kUnchecked}) {
    expect_same_result_across_threads([&] {
      auto present = seq::mark_present(std::span<const u8>(text), mode);
      return std::vector<u8>(present.begin(), present.end());
    });
  }
}

TEST(Determinism, MaximalIndependentSet) {
  graph::Graph g = graph::make_named("rmat", 11, 13);
  expect_same_result_across_threads(
      [&] { return graph::maximal_independent_set(g, AccessMode::kAtomic); });
}

TEST(Determinism, MaximalMatching) {
  graph::Graph g = graph::make_named("road", 12, 15);
  auto edges = g.undirected_edges();
  expect_same_result_across_threads([&] {
    return graph::maximal_matching(g.num_vertices(), edges).matched_edges;
  });
}

TEST(Determinism, MinimumSpanningForest) {
  graph::Graph g = graph::make_named("link", 11, 17);
  auto edges = g.undirected_edges();
  expect_same_result_across_threads([&] {
    return graph::minimum_spanning_forest(g.num_vertices(), edges).edges;
  });
}

TEST(Determinism, SpanningForestIsKruskalOfInputOrder) {
  // sf with priorities = input order equals sequential greedy.
  graph::Graph g = graph::make_named("rmat", 11, 19);
  auto edges = g.undirected_edges();
  expect_same_result_across_threads([&] {
    return graph::spanning_forest(g.num_vertices(), edges).edges;
  });
}

TEST(MarkPresent, FindsExactlyTheDistinctBytes) {
  std::vector<u8> text{'a', 'b', 'a', 'z'};
  auto present = seq::mark_present(std::span<const u8>(text));
  for (int c = 0; c < 256; ++c) {
    bool expected = c == 'a' || c == 'b' || c == 'z';
    EXPECT_EQ(present[static_cast<std::size_t>(c)] != 0, expected) << c;
  }
}

}  // namespace
}  // namespace rpb
