// Tests for the epoch-stamped mark-table pool and the three uniqueness
// check expressions (core/mark_table.h, core/checks.h): epoch
// wraparound, pool reuse under concurrent nested checks, the documented
// fused mid-write failure semantics, and deterministic lowest-index
// error reporting across modes and schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checks.h"
#include "core/mark_table.h"
#include "core/patterns.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "support/error.h"

namespace rpb {
namespace {

class MarkTableEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kMarkTableEnv =
    ::testing::AddGlobalTestEnvironment(new MarkTableEnv);

// Save/restore the check knobs so tests that pin a mode or threshold
// can't leak into each other (mirrors sched_test's SplitModeGuard).
class CheckModeGuard {
 public:
  CheckModeGuard()
      : mode_(par::check_mode()), threshold_(par::check_fuse_threshold()) {}
  ~CheckModeGuard() {
    par::set_check_mode(mode_);
    par::set_check_fuse_threshold(threshold_);
  }

 private:
  par::CheckMode mode_;
  std::size_t threshold_;
};

std::string check_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckFailure& e) {
    return e.what();
  }
  return "<no CheckFailure thrown>";
}

TEST(MarkTable, EpochWraparoundResetsSlots) {
  par::MarkTable table;
  EXPECT_EQ(table.begin_check(64), 1u);
  table.slots()[5] = 1;

  table.set_epoch_for_test(UINT32_MAX - 1);
  u32 stamp = table.begin_check(64);
  EXPECT_EQ(stamp, UINT32_MAX);
  table.slots()[5] = stamp;
  table.slots()[7] = stamp;

  // ++UINT32_MAX wraps to 0: the table must reset every slot and
  // restart at 1, otherwise the stale UINT32_MAX stamps above would
  // never collide but stale stamp-1 marks from the first check would.
  u32 reissued = table.begin_check(64);
  EXPECT_EQ(reissued, 1u);
  EXPECT_EQ(table.epoch(), 1u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(table.slots()[i], 0u) << "slot " << i << " survived wraparound";
  }
}

TEST(MarkTable, WraparoundEndToEndThroughPool) {
  CheckModeGuard guard;
  par::set_check_mode(par::CheckMode::kFused);
  // Park a table on the verge of wraparound as the only idle one, so
  // the next checked calls lease exactly it (single-threaded here).
  par::mark_table_pool_clear();
  { par::MarkTableLease lease; lease->set_epoch_for_test(UINT32_MAX - 1); }

  const std::size_t n = 512;
  auto offsets = seq::random_permutation(n, 99);
  std::vector<u64> out(n, 0);
  auto run = [&] {
    par::par_ind_iter_mut(
        std::span<u64>(out), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kChecked);
  };
  EXPECT_NO_THROW(run());  // stamp UINT32_MAX
  EXPECT_NO_THROW(run());  // wraparound reset, stamp 1
  // Post-wraparound the check must still catch a real duplicate.
  offsets[n / 2] = offsets[3];
  EXPECT_THROW(run(), CheckFailure);
}

TEST(MarkTable, PoolReusesTablesAcrossSequentialChecks) {
  CheckModeGuard guard;
  par::set_check_mode(par::CheckMode::kFused);
  par::mark_table_pool_clear();
  const std::size_t created_before = par::mark_table_pool_created();

  const std::size_t n = 20000;  // above the fuse threshold: parallel path
  auto offsets = seq::random_permutation(n, 7);
  std::vector<u64> out(n, 0);
  for (int round = 0; round < 100; ++round) {
    par::par_ind_iter_mut(
        std::span<u64>(out), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kChecked);
  }
  // Steady state is one leased table handed back and forth; 100 checks
  // must not construct 100 tables.
  EXPECT_EQ(par::mark_table_pool_created() - created_before, 1u);
  EXPECT_GE(par::mark_table_pool_idle(), 1u);
}

TEST(MarkTable, PoolHandlesConcurrentNestedChecks) {
  CheckModeGuard guard;
  par::set_check_mode(par::CheckMode::kFused);
  constexpr std::size_t kTasks = 16;
  constexpr std::size_t kInner = 512;  // below threshold: sequential fused
  std::atomic<std::size_t> ok{0}, caught{0};
  sched::parallel_for(
      0, kTasks,
      [&](std::size_t t) {
        auto offsets = seq::random_permutation(kInner, 1000 + t);
        if (t == 3) offsets[kInner / 2] = offsets[1];  // one task is buggy
        std::vector<u64> out(kInner, 0);
        try {
          par::par_ind_iter_mut(
              std::span<u64>(out), std::span<const u32>(offsets),
              [](std::size_t i, u64& slot) { slot = i; },
              AccessMode::kChecked);
          for (std::size_t i = 0; i < kInner; ++i) {
            ASSERT_EQ(out[offsets[i]], i);
          }
          ok.fetch_add(1);
        } catch (const CheckFailure&) {
          caught.fetch_add(1);
        }
      },
      1);
  EXPECT_EQ(ok.load(), kTasks - 1);
  EXPECT_EQ(caught.load(), 1u);
}

TEST(FusedCheck, ParallelFailureSemanticsValidWritesLand) {
  CheckModeGuard guard;
  par::set_check_mode(par::CheckMode::kFused);
  par::set_check_fuse_threshold(0);  // force the parallel fused region

  const std::size_t n = 20000;
  const std::size_t i1 = 10, i2 = n / 2;
  auto offsets = seq::random_permutation(n, 123);
  const u32 orphan = offsets[i2];  // after planting, nobody targets this
  offsets[i2] = offsets[i1];
  std::vector<u64> out(n, 0);

  std::string msg = check_message([&] {
    par::par_ind_iter_mut(
        std::span<u64>(out), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i + 1; }, AccessMode::kChecked);
  });
  // Canonical report: the serial rescan blames i2 (where left-to-right
  // validation first fails), whichever task lost the parallel claim.
  EXPECT_EQ(msg, "par_ind_iter_mut: duplicate offset " +
                     std::to_string(offsets[i1]) + " at index " +
                     std::to_string(i2));

  // Documented mid-write semantics: the region completes, so every
  // validated index's write has landed; the duplicated slot holds
  // whichever claimant won (never a torn/other value); the orphaned
  // offset was written by nobody.
  for (std::size_t i = 0; i < n; ++i) {
    if (i == i1 || i == i2) continue;
    ASSERT_EQ(out[offsets[i]], i + 1) << "validated write lost at " << i;
  }
  EXPECT_TRUE(out[offsets[i1]] == i1 + 1 || out[offsets[i1]] == i2 + 1);
  EXPECT_EQ(out[orphan], 0u);
}

TEST(FusedCheck, SequentialFallbackStopsAtFirstViolation) {
  CheckModeGuard guard;
  par::set_check_mode(par::CheckMode::kFused);
  const std::size_t n = 1000;
  par::set_check_fuse_threshold(n);  // force the sequential fallback

  auto offsets = seq::random_permutation(n, 5);
  const std::size_t dup_at = 600;
  const u32 orphan = offsets[dup_at];
  offsets[dup_at] = offsets[100];
  std::vector<u64> out(n, 0);

  std::string msg = check_message([&] {
    par::par_ind_iter_mut(
        std::span<u64>(out), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i + 1; }, AccessMode::kChecked);
  });
  EXPECT_EQ(msg, "par_ind_iter_mut: duplicate offset " +
                     std::to_string(offsets[100]) + " at index " +
                     std::to_string(dup_at));
  // Prefix semantics: exactly the writes before the reported index.
  for (std::size_t i = 0; i < dup_at; ++i) {
    ASSERT_EQ(out[offsets[i]], i + 1);
  }
  for (std::size_t i = dup_at + 1; i < n; ++i) {
    ASSERT_EQ(out[offsets[i]], 0u) << "write past the violation at " << i;
  }
  EXPECT_EQ(out[orphan], 0u);
}

TEST(FusedCheck, LowestViolatingIndexIsDeterministicAcrossModes) {
  CheckModeGuard guard;
  par::set_check_fuse_threshold(0);  // parallel regions even at this n

  const std::size_t n = 20000;
  auto offsets = seq::random_permutation(n, 77);
  offsets[17000] = static_cast<u32>(n + 5);  // out of bounds, later...
  offsets[9000] = offsets[3000];             // ...than this duplicate
  const std::string expected = "par_ind_iter_mut: duplicate offset " +
                               std::to_string(offsets[3000]) +
                               " at index 9000";
  std::vector<u64> out(n, 0);
  for (par::CheckMode mode :
       {par::CheckMode::kBitmap, par::CheckMode::kSplit,
        par::CheckMode::kFused}) {
    par::set_check_mode(mode);
    for (int rep = 0; rep < 10; ++rep) {
      std::string msg = check_message([&] {
        par::par_ind_iter_mut(
            std::span<u64>(out), std::span<const u32>(offsets),
            [](std::size_t i, u64& slot) { slot = i; },
            AccessMode::kChecked);
      });
      ASSERT_EQ(msg, expected)
          << "mode " << static_cast<int>(mode) << " rep " << rep;
    }
  }
}

TEST(FusedCheck, OutOfBoundsAloneReportsLowestIndex) {
  CheckModeGuard guard;
  par::set_check_mode(par::CheckMode::kFused);
  par::set_check_fuse_threshold(0);
  const std::size_t n = 20000;
  auto offsets = seq::random_permutation(n, 21);
  offsets[15000] = static_cast<u32>(n);
  offsets[4000] = static_cast<u32>(n + 9);
  std::vector<u64> out(n, 0);
  std::string msg = check_message([&] {
    par::par_ind_iter_mut(
        std::span<u64>(out), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kChecked);
  });
  EXPECT_EQ(msg, "par_ind_iter_mut: offset out of bounds at index 4000");
}

TEST(MonotonicCheck, ReportsLowestDescent) {
  std::vector<u32> offsets(100);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    offsets[i] = static_cast<u32>(4 * i);
  }
  offsets[6] = offsets[5] - 1;    // descent at index 5
  offsets[51] = offsets[50] - 1;  // and a later one at 50
  std::vector<u64> data(400, 0);
  for (int rep = 0; rep < 10; ++rep) {
    std::string msg = check_message([&] {
      par::par_ind_chunks_mut(
          std::span<u64>(data), std::span<const u32>(offsets),
          [](std::size_t, std::span<u64>) {}, AccessMode::kChecked);
    });
    ASSERT_EQ(msg, "par_ind_chunks_mut: offsets not monotonic at index 5");
  }
}

TEST(CheckKnobs, ModeAndThresholdRoundTrip) {
  CheckModeGuard guard;
  for (par::CheckMode mode :
       {par::CheckMode::kBitmap, par::CheckMode::kSplit,
        par::CheckMode::kFused}) {
    par::set_check_mode(mode);
    EXPECT_EQ(par::check_mode(), mode);
  }
  par::set_check_fuse_threshold(123);
  EXPECT_EQ(par::check_fuse_threshold(), 123u);
  par::set_check_fuse_threshold(0);
  EXPECT_EQ(par::check_fuse_threshold(), 0u);
}

TEST(CheckModes, AllModesAgreeOnValidInput) {
  CheckModeGuard guard;
  const std::size_t n = 10000;
  auto offsets = seq::random_permutation(n, 31);
  for (par::CheckMode mode :
       {par::CheckMode::kBitmap, par::CheckMode::kSplit,
        par::CheckMode::kFused}) {
    par::set_check_mode(mode);
    std::vector<u64> out(n, 0);
    par::par_ind_iter_mut(
        std::span<u64>(out), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i + 1; }, AccessMode::kChecked);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[offsets[i]], i + 1) << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(CheckModes, FnVariantAgreesAndCatchesViolations) {
  CheckModeGuard guard;
  const std::size_t n = 10000;
  auto perm = seq::random_permutation(n, 63);
  for (par::CheckMode mode :
       {par::CheckMode::kBitmap, par::CheckMode::kSplit,
        par::CheckMode::kFused}) {
    par::set_check_mode(mode);
    std::vector<u64> out(n, 0);
    par::par_ind_iter_mut_fn(
        std::span<u64>(out), n, [&](std::size_t i) { return perm[i]; },
        [](std::size_t i, u64& slot) { slot = i + 1; }, AccessMode::kChecked);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[perm[i]], i + 1);
    // Constant index function: every task collides on 0.
    EXPECT_THROW(par::par_ind_iter_mut_fn(
                     std::span<u64>(out), n,
                     [](std::size_t) { return std::size_t{0}; },
                     [](std::size_t, u64&) {}, AccessMode::kChecked),
                 CheckFailure);
  }
}

}  // namespace
}  // namespace rpb
