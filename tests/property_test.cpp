// A final layer of cross-cutting property tests: spec_for's round
// hook, brute-force LRS verification, post-refinement Delaunay quality,
// and MqExecutor ordering statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/reservation.h"
#include "core/spec_for.h"
#include "geom/points.h"
#include "geom/refine.h"
#include "sched/mq_executor.h"
#include "sched/thread_pool.h"
#include "support/hash.h"
#include "text/corpus.h"
#include "text/lcp.h"

namespace rpb {
namespace {

class PropEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kPropEnv =
    ::testing::AddGlobalTestEnvironment(new PropEnv);

TEST(SpeculativeForHook, RoundEndFiresOncePerRound) {
  constexpr std::size_t kSlots = 31, kTasks = 1000;
  std::vector<par::Reservation> reservations(kSlots);
  std::vector<i64> owner(kSlots, -1);
  struct Step {
    std::vector<par::Reservation>& r;
    std::vector<i64>& owner;
    bool reserve(std::size_t i) {
      std::size_t slot = i % owner.size();
      if (relaxed_load(&owner[slot]) >= 0) return false;
      r[slot].reserve(static_cast<i64>(i));
      return true;
    }
    bool commit(std::size_t i) {
      std::size_t slot = i % owner.size();
      if (!r[slot].check(static_cast<i64>(i))) return false;
      relaxed_store(&owner[slot], static_cast<i64>(i));
      r[slot].reset();
      return true;
    }
  } step{reservations, owner};
  std::size_t hook_calls = 0;
  auto stats = par::speculative_for(step, 0, kTasks, 128,
                                    [&] { ++hook_calls; });
  EXPECT_EQ(hook_calls, stats.rounds);
  EXPECT_GE(stats.rounds, kTasks / 128);
}

// Brute-force longest repeated substring for small inputs.
u32 brute_force_lrs(const std::vector<u8>& text) {
  u32 best = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (std::size_t j = i + 1; j < text.size(); ++j) {
      u32 h = 0;
      while (j + h < text.size() && text[i + h] == text[j + h]) ++h;
      best = std::max(best, h);
    }
  }
  return best;
}

TEST(LrsProperty, MatchesBruteForceOnRandomCorpora) {
  for (u64 seed = 1; seed <= 6; ++seed) {
    auto text = text::make_corpus(400 + seed * 37, seed);
    auto result = text::longest_repeated_substring(std::span<const u8>(text));
    EXPECT_EQ(result.length, brute_force_lrs(text)) << "seed " << seed;
    // The reported occurrences really do match and are distinct.
    if (result.length > 0) {
      EXPECT_NE(result.position_a, result.position_b);
      for (u32 k = 0; k < result.length; ++k) {
        ASSERT_EQ(text[result.position_a + k], text[result.position_b + k]);
      }
    }
  }
}

TEST(RefineProperty, RefinedMeshStaysNearDelaunay) {
  auto pts = geom::kuzmin_points(800, 51);
  geom::Mesh mesh(pts, 10000);
  mesh.build();
  geom::refine(mesh);
  EXPECT_TRUE(mesh.check_consistency());
  // Bowyer-Watson inserts keep the (super-triangle-bounded) mesh
  // Delaunay; sample-verify after a full refinement pass.
  EXPECT_GE(mesh.delaunay_fraction(100), 0.97);
}

TEST(MqExecutorProperty, RespectsRoughPriorityOrder) {
  struct Key {
    u64 operator()(u64 v) const { return v; }
  };
  // Single worker: pops come from best-of-two sampling, so the average
  // observed rank must be far below uniform-random popping.
  sched::MqExecutor<u64, Key> executor(1, 4);
  std::vector<u64> order;
  executor.run(
      [&](auto& handle) {
        for (u64 i = 0; i < 4000; ++i) handle.push(hash64(i) % 100000);
      },
      [&](u64 item, auto&) { order.push_back(item); });
  ASSERT_EQ(order.size(), 4000u);
  // Count strict inversions against the final sorted order prefix: the
  // first quarter of pops should be dominated by small keys.
  std::vector<u64> sorted(order);
  std::sort(sorted.begin(), sorted.end());
  u64 early_sum = 0, late_sum = 0;
  for (std::size_t i = 0; i < 1000; ++i) early_sum += order[i];
  for (std::size_t i = 3000; i < 4000; ++i) late_sum += order[i];
  EXPECT_LT(early_sum, late_sum);
}

}  // namespace
}  // namespace rpb
