// RAII knob guards shared by the test binaries: restore the default
// (or prior) state even if a test body throws. Declared in namespace
// rpb so `SplitModeGuard` resolves unqualified from any rpb::* test
// namespace via enclosing-namespace lookup.
#pragma once

#include "geom/build.h"
#include "obs/obs.h"
#include "sched/parallel.h"
#include "serve/knobs.h"
#include "sparse/spmv.h"
#include "support/simd.h"

namespace rpb {

// Restores the default splitting strategy even if a test body throws.
class SplitModeGuard {
 public:
  explicit SplitModeGuard(sched::SplitMode mode) {
    sched::set_split_mode(mode);
  }
  ~SplitModeGuard() { sched::set_split_mode(sched::SplitMode::kLazy); }
  SplitModeGuard(const SplitModeGuard&) = delete;
  SplitModeGuard& operator=(const SplitModeGuard&) = delete;
};

// Restores the prior observability mode (not a hardcoded default: obs
// tests nest guards to layer counters under trace).
class ObsModeGuard {
 public:
  explicit ObsModeGuard(obs::ObsMode mode) : prev_(obs::mode()) {
    obs::set_mode(mode);
  }
  ~ObsModeGuard() { obs::set_mode(prev_); }
  ObsModeGuard(const ObsModeGuard&) = delete;
  ObsModeGuard& operator=(const ObsModeGuard&) = delete;

 private:
  obs::ObsMode prev_;
};

// Pins the SIMD dispatch level (clamped to what the box supports) and
// restores the prior level — not a hardcoded default, so tests nest
// correctly inside an RPB_SIMD=off environment.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(support::SimdLevel level)
      : prev_(support::simd_level()) {
    support::set_simd_level(level);
  }
  ~SimdModeGuard() { support::set_simd_level(prev_); }
  SimdModeGuard(const SimdModeGuard&) = delete;
  SimdModeGuard& operator=(const SimdModeGuard&) = delete;

 private:
  support::SimdLevel prev_;
};

// Pins the SpMV load-balancing policy and restores the prior one —
// not a hardcoded default, so tests nest inside RPB_SPMV=rowpar runs.
class SpmvPolicyGuard {
 public:
  explicit SpmvPolicyGuard(sparse::SpmvPolicy policy)
      : prev_(sparse::spmv_policy()) {
    sparse::set_spmv_policy(policy);
  }
  ~SpmvPolicyGuard() { sparse::set_spmv_policy(prev_); }
  SpmvPolicyGuard(const SpmvPolicyGuard&) = delete;
  SpmvPolicyGuard& operator=(const SpmvPolicyGuard&) = delete;

 private:
  sparse::SpmvPolicy prev_;
};

// Pins the whole RPB_SERVE knob family (scheduling policy, per-tenant
// queue bound, batch window) and restores the prior values — not
// hardcoded defaults, so tests nest inside RPB_SERVE=fifo runs.
class ServeKnobGuard {
 public:
  ServeKnobGuard(serve::ServePolicy policy, std::size_t queue_bound,
                 std::size_t batch_window)
      : prev_policy_(serve::serve_policy()),
        prev_queue_(serve::serve_queue_bound()),
        prev_batch_(serve::serve_batch_window()) {
    serve::set_serve_policy(policy);
    serve::set_serve_queue_bound(queue_bound);
    serve::set_serve_batch_window(batch_window);
  }
  ~ServeKnobGuard() {
    serve::set_serve_policy(prev_policy_);
    serve::set_serve_queue_bound(prev_queue_);
    serve::set_serve_batch_window(prev_batch_);
  }
  ServeKnobGuard(const ServeKnobGuard&) = delete;
  ServeKnobGuard& operator=(const ServeKnobGuard&) = delete;

 private:
  serve::ServePolicy prev_policy_;
  std::size_t prev_queue_;
  std::size_t prev_batch_;
};

// Pins the Delaunay construction policy and restores the prior one —
// not a hardcoded default, so tests nest inside RPB_DR=incremental runs.
class DrPolicyGuard {
 public:
  explicit DrPolicyGuard(geom::DrPolicy policy) : prev_(geom::dr_policy()) {
    geom::set_dr_policy(policy);
  }
  ~DrPolicyGuard() { geom::set_dr_policy(prev_); }
  DrPolicyGuard(const DrPolicyGuard&) = delete;
  DrPolicyGuard& operator=(const DrPolicyGuard&) = delete;

 private:
  geom::DrPolicy prev_;
};

}  // namespace rpb
