// RAII knob guards shared by the test binaries: restore the default
// (or prior) state even if a test body throws. Declared in namespace
// rpb so `SplitModeGuard` resolves unqualified from any rpb::* test
// namespace via enclosing-namespace lookup.
#pragma once

#include "obs/obs.h"
#include "sched/parallel.h"

namespace rpb {

// Restores the default splitting strategy even if a test body throws.
class SplitModeGuard {
 public:
  explicit SplitModeGuard(sched::SplitMode mode) {
    sched::set_split_mode(mode);
  }
  ~SplitModeGuard() { sched::set_split_mode(sched::SplitMode::kLazy); }
  SplitModeGuard(const SplitModeGuard&) = delete;
  SplitModeGuard& operator=(const SplitModeGuard&) = delete;
};

// Restores the prior observability mode (not a hardcoded default: obs
// tests nest guards to layer counters under trace).
class ObsModeGuard {
 public:
  explicit ObsModeGuard(obs::ObsMode mode) : prev_(obs::mode()) {
    obs::set_mode(mode);
  }
  ~ObsModeGuard() { obs::set_mode(prev_); }
  ObsModeGuard(const ObsModeGuard&) = delete;
  ObsModeGuard& operator=(const ObsModeGuard&) = delete;

 private:
  obs::ObsMode prev_;
};

}  // namespace rpb
