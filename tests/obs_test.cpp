// Observability subsystem tests: counter aggregation across workers,
// ring-buffer wraparound semantics (drop oldest, never block), Chrome
// trace JSON shape, work/span sanity, and the zero-cost-off contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/counters.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "test_guards.h"

namespace rpb::obs {
namespace {

// Counts brace/bracket balance outside strings — the same structural
// check bench_util's validator applies.
bool balanced_json(const std::string& text) {
  int obj = 0, arr = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++obj;
    if (c == '}') --obj;
    if (c == '[') ++arr;
    if (c == ']') --arr;
    if (obj < 0 || arr < 0) return false;
  }
  return obj == 0 && arr == 0 && !in_string;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ObsMode, OffModeEmitsNothing) {
  ObsModeGuard guard(ObsMode::kOff);
  reset_counters();
  clear_trace();
  sched::ThreadPool::reset_global(2);
  std::atomic<u64> total{0};
  sched::parallel_for(0, 10000, [&](std::size_t i) {
    total.fetch_add(i, std::memory_order_relaxed);
  }, 1);
  sched::ThreadPool::reset_global(1);
  EXPECT_EQ(total.load(), u64{10000} * 9999 / 2);
  StatsSnapshot snap = snapshot_counters();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(snap.totals[i], 0u) << kCounterNames[i];
  }
  EXPECT_TRUE(snap.per_worker.empty());
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(ObsCounters, AggregationAcrossWorkers) {
  ObsModeGuard guard(ObsMode::kCounters);
  reset_counters();
  sched::ThreadPool::reset_global(4);
  std::atomic<u64> total{0};
  // grain 1 forces real forking, so spawns/jobs land on several slots.
  sched::parallel_for(0, 100000, [&](std::size_t i) {
    total.fetch_add(i, std::memory_order_relaxed);
  }, 1);
  StatsSnapshot snap = snapshot_counters();
  sched::ThreadPool::reset_global(1);
  EXPECT_EQ(total.load(), u64{100000} * 99999 / 2);
  EXPECT_GT(snap.total(Counter::kSpawns), 0u);
  EXPECT_GE(snap.total(Counter::kInjectedJobs), 1u);
  EXPECT_GT(snap.total(Counter::kJobsExecuted), 0u);
  EXPECT_FALSE(snap.per_worker.empty());
  // Rows must sum to the totals (snapshot taken at quiescence).
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    u64 sum = 0;
    for (const auto& row : snap.per_worker) sum += row.c[c];
    EXPECT_EQ(sum, snap.totals[c]) << kCounterNames[c];
  }
}

TEST(ObsCounters, SnapshotJsonWellFormed) {
  ObsModeGuard guard(ObsMode::kCounters);
  reset_counters();
  bump(Counter::kSpawns, 3);
  bump(Counter::kStealsAttempted);
  StatsSnapshot snap = snapshot_counters();
  std::string json = snap.to_json();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"per_worker\": ["), std::string::npos);
  EXPECT_NE(json.find("\"spawns\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"steals_attempted\": 1"), std::string::npos);
  reset_counters();
  EXPECT_EQ(snapshot_counters().total(Counter::kSpawns), 0u);
}

TEST(ObsTrace, RingWraparoundDropsOldestNeverBlocks) {
  ObsModeGuard guard(ObsMode::kTrace);
  clear_trace();
  // Single-threaded: everything lands in this thread's one ring.
  // 5000 scopes = 10000 events > 4096 capacity.
  constexpr std::size_t kScopes = 5000;
  for (std::size_t i = 0; i < kScopes; ++i) {
    OBS_SCOPE("wrap_test");
  }
  EXPECT_EQ(trace_event_count(), kTraceRingCapacity);
  EXPECT_EQ(trace_dropped_count(), 2 * kScopes - kTraceRingCapacity);
  // The live window holds the newest events in order.
  auto events = drain_trace_events();
  ASSERT_EQ(events.size(), kTraceRingCapacity);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  clear_trace();
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST(ObsTrace, WriteTraceProducesValidChromeJson) {
  ObsModeGuard guard(ObsMode::kTrace);
  clear_trace();
  sched::ThreadPool::reset_global(4);
  {
    OBS_SCOPE("obs_test.region");
    std::atomic<u64> total{0};
    sched::parallel_for(0, 50000, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    }, 1);
  }
  sched::ThreadPool::reset_global(1);
  ASSERT_GT(trace_event_count(), 0u);

  std::string path =
      std::string(::testing::TempDir()) + "rpb_obs_test_trace.json";
  ASSERT_TRUE(write_trace(path));
  std::string text = slurp(path);
  std::remove(path.c_str());
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(balanced_json(text));
  EXPECT_NE(text.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"obs_test.region\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\": "), std::string::npos);
  EXPECT_NE(text.find("\"ts\": "), std::string::npos);
  clear_trace();
}

TEST(ObsTrace, WorkSpanSanity) {
  ObsModeGuard guard(ObsMode::kTrace);
  clear_trace();
  sched::ThreadPool::reset_global(4);
  {
    OBS_SCOPE("obs_test.workspan");
    std::atomic<u64> sink{0};
    sched::parallel_for(0, 200000, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    }, 1);
  }
  sched::ThreadPool::reset_global(1);
  WorkSpan ws = work_span();
  EXPECT_GT(ws.scopes, 0u);
  EXPECT_GT(ws.work_seconds, 0.0);
  EXPECT_GT(ws.span_seconds, 0.0);
  EXPECT_GE(ws.work_seconds, ws.span_seconds);
  EXPECT_GE(ws.parallelism(), 1.0);
  clear_trace();
}

TEST(ObsMode, GuardRestoresPriorMode) {
  ObsMode before = mode();
  {
    ObsModeGuard outer(ObsMode::kCounters);
    EXPECT_EQ(mode(), ObsMode::kCounters);
    EXPECT_TRUE(counters_enabled());
    EXPECT_FALSE(trace_enabled());
    {
      ObsModeGuard inner(ObsMode::kTrace);
      EXPECT_TRUE(trace_enabled());
    }
    EXPECT_EQ(mode(), ObsMode::kCounters);
  }
  EXPECT_EQ(mode(), before);
}

}  // namespace
}  // namespace rpb::obs
