// Failure-injection tests for the geometry substrate: arena
// exhaustion, dead-hint point location, refinement with impossible
// budgets, and degenerate point sets.
#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/delaunay.h"
#include "geom/points.h"
#include "geom/refine.h"
#include "sched/thread_pool.h"

namespace rpb::geom {
namespace {

TEST(MeshFailure, PointArenaExhaustionThrows) {
  auto pts = uniform_points(50, 3);
  Mesh mesh(pts, /*extra_points=*/2);
  mesh.build();
  EXPECT_NO_THROW(mesh.push_point(Point{0.5, 0.5}));
  EXPECT_NO_THROW(mesh.push_point(Point{0.6, 0.6}));
  EXPECT_THROW(mesh.push_point(Point{0.7, 0.7}), std::length_error);
}

TEST(MeshFailure, RefineStopsCleanlyWhenArenaFills) {
  // Tiny extra budget: refinement must stop with length_error swallowed
  // and the mesh left consistent.
  auto pts = kuzmin_points(500, 5);
  Mesh mesh(pts, /*extra_points=*/10);
  mesh.build();
  RefineConfig config;
  config.max_insertions = 1u << 20;  // arena, not this, is the binding limit
  RefineStats stats = refine(mesh, config);
  EXPECT_LE(stats.inserted, 10u);
  EXPECT_TRUE(mesh.check_consistency());
}

TEST(MeshFailure, RefineRespectsMaxInsertions) {
  auto pts = kuzmin_points(500, 7);
  Mesh mesh(pts, 5000);
  mesh.build();
  RefineConfig config;
  config.max_insertions = 25;
  RefineStats stats = refine(mesh, config);
  // The cap is checked per batch round, so allow one round of slack.
  EXPECT_LE(stats.inserted, 25u + config.batch_size);
  EXPECT_TRUE(mesh.check_consistency());
}

TEST(MeshFailure, LocateRecoversFromDeadHint) {
  auto pts = uniform_points(300, 9);
  Mesh mesh(pts);
  mesh.build();
  // Slot 0 is the original super triangle — long dead after build.
  ASSERT_FALSE(mesh.alive(0));
  i64 t = mesh.locate(Point{0.5, 0.5}, /*hint=*/0);
  ASSERT_GE(t, 0);
  EXPECT_TRUE(mesh.alive(t));
}

TEST(MeshFailure, CollectCavityRejectsDeadStart) {
  auto pts = uniform_points(100, 11);
  Mesh mesh(pts);
  mesh.build();
  Mesh::Cavity cavity;
  cavity.tris.push_back(-7);  // stale garbage from a previous collection
  EXPECT_FALSE(mesh.collect_cavity(Point{0.5, 0.5}, 0, cavity));
  // Failure must leave the cavity EMPTY, not partially filled — a
  // caller retrying with the same Cavity would otherwise commit junk.
  EXPECT_TRUE(cavity.tris.empty());
  EXPECT_TRUE(cavity.boundary.empty());
}

TEST(MeshFailure, CollectCavityClearsOutputOnOverflow) {
  auto pts = uniform_points(300, 19);
  Mesh mesh(pts);
  mesh.build();
  const Point p{0.5, 0.5};
  i64 t = mesh.locate(p, 3);
  ASSERT_GE(t, 0);
  Mesh::Cavity cavity;
  // An interior point's cavity has >= 1 triangle and >= 3 boundary
  // edges; max_cavity=0 must fail and leave nothing behind.
  EXPECT_FALSE(mesh.collect_cavity(p, t, cavity, /*max_cavity=*/0));
  EXPECT_TRUE(cavity.tris.empty());
  EXPECT_TRUE(cavity.boundary.empty());
  // The same Cavity object then works for a real collection.
  EXPECT_TRUE(mesh.collect_cavity(p, t, cavity));
  EXPECT_FALSE(cavity.tris.empty());
  EXPECT_GE(cavity.boundary.size(), 3u);
}

TEST(MeshDegenerate, GridWithCollinearRowsStillBuilds) {
  // Axis-aligned grid points produce many cocircular quadruples — the
  // stress case for the floating-point predicates.
  std::vector<Point> pts;
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 15; ++j) {
      pts.push_back(Point{i * 0.05, j * 0.05});
    }
  }
  Mesh mesh(pts);
  EXPECT_NO_THROW(mesh.build());
  EXPECT_TRUE(mesh.check_consistency());
  EXPECT_EQ(mesh.num_live_triangles(), 2 * pts.size() + 1);
}

TEST(MeshDegenerate, DuplicatePointsAreTolerated) {
  std::vector<Point> pts = uniform_points(64, 13);
  pts.push_back(pts[10]);  // exact duplicate
  pts.push_back(pts[20]);
  Mesh mesh(pts);
  // A duplicate lands exactly on an existing vertex; the cavity walk
  // still yields a valid (degenerate-adjacent) retriangulation or the
  // build reports the degeneracy — either way, no UB and no crash.
  try {
    mesh.build();
    EXPECT_TRUE(mesh.check_consistency());
  } catch (const std::logic_error&) {
    SUCCEED();  // detected and reported
  }
}

TEST(RefineConfigTest, TightRatioInsertsMoreThanLooseRatio) {
  auto pts = kuzmin_points(800, 17);
  auto run = [&](double ratio) {
    Mesh mesh(pts, 20000);
    mesh.build();
    RefineConfig config;
    config.max_ratio = ratio;
    return refine(mesh, config).inserted;
  };
  EXPECT_GT(run(1.0), run(2.5));
}

}  // namespace
}  // namespace rpb::geom
