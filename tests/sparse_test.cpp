// Differential + unit suite for the sparse kernel layer (src/sparse):
// the merge-path partition machinery (search, task sizing, carry
// fix-up), SpMV under both RPB_SPMV policies against the serial
// reference — byte-exact for integer-valued floats and rowpar always,
// ULP-bounded for mergepath on general floats — across sizes, access
// tiers, arena modes and thread counts; SpMM and SpGEMM byte-compared
// against their serial references; the checked tier's deterministic
// failure messages; the zero-copy from_graph contract by pointer
// identity; and the generators' power-law skew via Graph::max_degree
// (satellite coverage — the SpMV ablation's premise is that skew
// exists, so a test pins it).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/access_mode.h"
#include "graph/generators.h"
#include "sched/thread_pool.h"
#include "sparse/sparse.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/error.h"
#include "support/prng.h"
#include "test_guards.h"

namespace rpb {
namespace {

class SparseEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kSparseEnv =
    ::testing::AddGlobalTestEnvironment(new SparseEnv);

// Row counts straddling the merge-path grain (4096 work items), the
// schedulers' leaf sizes, and the empty/one-row corners.
const std::size_t kRowSizes[] = {0,   1,    2,    3,    7,     8,
                                 64,  257,  1000, 4095, 4096,  4097,
                                 100001};

struct Csr {
  std::vector<u64> offsets;
  std::vector<u32> cols;
  std::vector<f64> vals;
  std::size_t num_cols = 0;

  sparse::CsrView<f64> view() const {
    return {std::span<const u64>(offsets), std::span<const u32>(cols),
            std::span<const f64>(vals), num_cols};
  }
};

// Random CSR with geometric-ish row degrees (many empty rows, a few
// heavy ones — the shape the merge path exists for). integer_valued
// keeps every value and x entry a small integer, making f64 addition
// exact and order-independent, so split-row summation cannot change
// bits.
Csr make_csr(std::size_t rows, std::size_t num_cols, u64 seed,
             bool integer_valued) {
  Rng rng(seed);
  Csr m;
  m.num_cols = num_cols;
  m.offsets.assign(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    u64 draw = rng.bits(r);
    // deg 0 (25%), 1..4 (50%), 5..20 (~22%), 21..148 (~3%)
    std::size_t deg;
    switch (draw & 3) {
      case 0: deg = 0; break;
      case 1: case 2: deg = 1 + (draw >> 2) % 4; break;
      default:
        deg = (draw >> 2) % 32 == 0 ? 21 + (draw >> 8) % 128
                                    : 5 + (draw >> 8) % 16;
    }
    m.offsets[r + 1] = m.offsets[r] + deg;
  }
  const auto nnz = static_cast<std::size_t>(m.offsets[rows]);
  m.cols.resize(nnz);
  m.vals.resize(nnz);
  const Rng crng = rng.fork(1), vrng = rng.fork(2);
  for (std::size_t z = 0; z < nnz; ++z) {
    m.cols[z] = static_cast<u32>(crng.next(z, num_cols == 0 ? 1 : num_cols));
    m.vals[z] = integer_valued
                    ? static_cast<f64>(1 + (vrng.bits(z) & 0xf))
                    : vrng.uniform(z) * 2.0 - 1.0;
  }
  return m;
}

std::vector<f64> make_x(std::size_t n, u64 seed, bool integer_valued) {
  Rng rng(seed);
  std::vector<f64> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = integer_valued ? static_cast<f64>(rng.bits(i) & 0xff)
                          : rng.uniform(i) * 2.0 - 1.0;
  }
  return x;
}

bool bytes_equal(std::span<const f64> a, std::span<const f64> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f64)) == 0);
}

// --- Merge-path partition machinery ---------------------------------

TEST(MergePath, SearchCornersAndMonotonicity) {
  // Empty matrix: no offsets at all, and zero-row offsets.
  EXPECT_EQ(sparse::merge_path_search({}, 0), (sparse::MergeCoord{0, 0}));

  // 3 rows with degrees 2, 0, 3: offsets 0 2 2 5, items = 3 + 5 = 8.
  const std::vector<u64> offsets = {0, 2, 2, 5};
  const std::span<const u64> o(offsets);
  EXPECT_EQ(sparse::merge_path_search(o, 0), (sparse::MergeCoord{0, 0}));
  // Full diagonal consumes everything: all rows, all nonzeros.
  EXPECT_EQ(sparse::merge_path_search(o, 8), (sparse::MergeCoord{3, 5}));
  // Ties consume the row-end marker first: at diag 3 the path has eaten
  // nonzeros 0,1 and row 0's end marker — not three nonzeros.
  EXPECT_EQ(sparse::merge_path_search(o, 3), (sparse::MergeCoord{1, 2}));
  // The empty row 1 is flushed immediately after: diag 4 eats its end
  // marker rather than a nonzero of row 2.
  EXPECT_EQ(sparse::merge_path_search(o, 4), (sparse::MergeCoord{2, 2}));

  // Monotone in diag, one step per diagonal, nz >= offsets[row].
  sparse::MergeCoord prev{0, 0};
  for (std::size_t d = 1; d <= 8; ++d) {
    const sparse::MergeCoord c = sparse::merge_path_search(o, d);
    EXPECT_EQ(c.row + c.nz, d);
    EXPECT_GE(c.row, prev.row);
    EXPECT_GE(c.nz, prev.nz);
    EXPECT_GE(c.nz, static_cast<std::size_t>(offsets[c.row]));
    prev = c;
  }

  // All nonzeros in one row: the path must stay in that row until the
  // nonzeros run out.
  const std::vector<u64> one_row = {0, 6};
  for (std::size_t d = 0; d <= 6; ++d) {
    EXPECT_EQ(sparse::merge_path_search(one_row, d),
              (sparse::MergeCoord{0, d}));
  }
  EXPECT_EQ(sparse::merge_path_search(one_row, 7), (sparse::MergeCoord{1, 6}));

  // All rows empty: pure row-marker consumption.
  const std::vector<u64> empties = {0, 0, 0, 0};
  for (std::size_t d = 0; d <= 3; ++d) {
    EXPECT_EQ(sparse::merge_path_search(empties, d),
              (sparse::MergeCoord{d, 0}));
  }
}

TEST(MergePath, TaskCountRounding) {
  EXPECT_EQ(sparse::merge_path_tasks(0, 0), 0u);
  EXPECT_EQ(sparse::merge_path_tasks(1, 0), 1u);
  EXPECT_EQ(sparse::merge_path_tasks(10, 10, 20), 1u);
  EXPECT_EQ(sparse::merge_path_tasks(10, 11, 20), 2u);
  EXPECT_EQ(sparse::merge_path_tasks(4096, 0), 1u);
  EXPECT_EQ(sparse::merge_path_tasks(4096, 1), 2u);
}

TEST(MergePath, PolicyKnobRoundTrip) {
  const sparse::SpmvPolicy prev = sparse::spmv_policy();
  sparse::set_spmv_policy(sparse::SpmvPolicy::kRowPar);
  EXPECT_EQ(sparse::spmv_policy(), sparse::SpmvPolicy::kRowPar);
  EXPECT_STREQ(sparse::spmv_policy_name(sparse::spmv_policy()), "rowpar");
  sparse::set_spmv_policy(sparse::SpmvPolicy::kMergePath);
  EXPECT_STREQ(sparse::spmv_policy_name(sparse::spmv_policy()), "mergepath");
  EXPECT_EQ(sparse::parse_spmv_policy("rowpar"), sparse::SpmvPolicy::kRowPar);
  EXPECT_EQ(sparse::parse_spmv_policy("mergepath"),
            sparse::SpmvPolicy::kMergePath);
  EXPECT_THROW(sparse::parse_spmv_policy("quicksort"), std::invalid_argument);
  sparse::set_spmv_policy(prev);
}

// --- SpMV differential: policies × tiers × arena modes --------------

class SpmvDiff : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    static constexpr support::ArenaMode kModes[] = {
        support::ArenaMode::kOn, support::ArenaMode::kOff,
        support::ArenaMode::kZeroed};
    saved_ = support::arena_mode();
    support::set_arena_mode(kModes[GetParam()]);
    poison_saved_ = buf_poison();
    set_buf_poison(true);  // reads of stale carry slots become loud
  }
  void TearDown() override {
    support::set_arena_mode(saved_);
    set_buf_poison(poison_saved_);
  }

  support::ArenaMode saved_ = support::ArenaMode::kOn;
  bool poison_saved_ = false;
};

INSTANTIATE_TEST_SUITE_P(ArenaModes, SpmvDiff, ::testing::Range(0, 3));

TEST_P(SpmvDiff, IntegerValuedMatchesSerialByteForByte) {
  for (std::size_t rows : kRowSizes) {
    const Csr m = make_csr(rows, rows / 2 + 3, 0x5Af0 + rows, true);
    const sparse::CsrView<f64> a = m.view();
    const std::vector<f64> x = make_x(a.num_cols, 0x5Af1, true);
    std::vector<f64> want(rows, -1.0);
    sparse::spmv_serial(a, std::span<const f64>(x), std::span<f64>(want));

    for (sparse::SpmvPolicy policy :
         {sparse::SpmvPolicy::kRowPar, sparse::SpmvPolicy::kMergePath}) {
      for (AccessMode mode : {AccessMode::kUnchecked, AccessMode::kChecked}) {
        std::vector<f64> got(rows, 7.0);
        sparse::spmv(a, std::span<const f64>(x), std::span<f64>(got), mode,
                     policy);
        EXPECT_TRUE(bytes_equal(got, want))
            << "rows=" << rows << " policy=" << sparse::spmv_policy_name(policy)
            << " checked=" << (mode == AccessMode::kChecked);
      }
    }

    // Tiny grain forces many tasks and split rows even on small inputs,
    // exercising the carry fix-up far harder than the default grain.
    std::vector<f64> got(rows, 7.0);
    sparse::spmv_merge_path(a, std::span<const f64>(x), std::span<f64>(got),
                            8);
    EXPECT_TRUE(bytes_equal(got, want)) << "rows=" << rows << " grain=8";
  }
}

TEST_P(SpmvDiff, GeneralFloatsRowparExactMergepathUlpBounded) {
  for (std::size_t rows : kRowSizes) {
    if (rows > 10000) continue;  // ULP loop is per-element
    const Csr m = make_csr(rows, rows / 2 + 3, 0x5Af2 + rows, false);
    const sparse::CsrView<f64> a = m.view();
    const std::vector<f64> x = make_x(a.num_cols, 0x5Af3, false);
    std::vector<f64> want(rows);
    sparse::spmv_serial(a, std::span<const f64>(x), std::span<f64>(want));

    std::vector<f64> got(rows);
    sparse::spmv(a, std::span<const f64>(x), std::span<f64>(got),
                 AccessMode::kUnchecked, sparse::SpmvPolicy::kRowPar);
    EXPECT_TRUE(bytes_equal(got, want)) << "rowpar rows=" << rows;

    // Mergepath at grain=8 splits nearly every nontrivial row; the only
    // permitted deviation is the extra rounding a carry's regrouped sum
    // adds — O(eps · row magnitude), far below any real defect (a wrong
    // value, column or carry row lands O(1) off). Absolute tolerance
    // because cancellation makes ULP distance unbounded near zero.
    sparse::spmv_merge_path(a, std::span<const f64>(x), std::span<f64>(got),
                            8);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(got[r], want[r], 1e-9)
          << "rows=" << rows << " r=" << r;
    }
  }
}

TEST_P(SpmvDiff, MergepathBitwiseStableAcrossThreadCounts) {
  const std::size_t rows = 20000;
  const Csr m = make_csr(rows, rows, 0x5Af4, false);
  const sparse::CsrView<f64> a = m.view();
  const std::vector<f64> x = make_x(rows, 0x5Af5, false);

  std::vector<f64> baseline;
  for (std::size_t threads : {1u, 2u, 4u}) {
    sched::ThreadPool::reset_global(threads);
    std::vector<f64> y(rows);
    sparse::spmv(a, std::span<const f64>(x), std::span<f64>(y),
                 AccessMode::kUnchecked, sparse::SpmvPolicy::kMergePath);
    if (baseline.empty()) {
      baseline = y;
    } else {
      EXPECT_TRUE(bytes_equal(y, baseline)) << "threads=" << threads;
    }
  }
  sched::ThreadPool::reset_global(4);
}

// f32 instantiation: the kernels are value-type generic; integer-valued
// f32 data keeps addition exact so both policies byte-match serial.
TEST(SpmvDiffF32, IntegerValuedMatchesSerial) {
  const Csr m = make_csr(5000, 2500, 0x5AFE, true);
  std::vector<u64> offsets(m.offsets);
  std::vector<u32> cols(m.cols);
  std::vector<f32> vals(m.vals.begin(), m.vals.end());
  const auto mat = sparse::CsrMatrix<f32>::from_csr(
      std::move(offsets), std::move(cols), std::move(vals), m.num_cols);
  const sparse::CsrView<f32> a = mat.view();
  Rng rng(0x5AFF);
  std::vector<f32> x(a.num_cols);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<f32>(rng.bits(i) & 0xff);
  }
  std::vector<f32> want(a.num_rows());
  sparse::spmv_serial(a, std::span<const f32>(x), std::span<f32>(want));
  for (sparse::SpmvPolicy policy :
       {sparse::SpmvPolicy::kRowPar, sparse::SpmvPolicy::kMergePath}) {
    std::vector<f32> got(a.num_rows(), -1.0f);
    sparse::spmv(a, std::span<const f32>(x), std::span<f32>(got),
                 AccessMode::kChecked, policy);
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                             got.size() * sizeof(f32)))
        << sparse::spmv_policy_name(policy);
  }
  // SpMM's f32 axpy path, byte-compared too.
  const std::size_t k = 4;
  std::vector<f32> xm(a.num_cols * k);
  for (std::size_t i = 0; i < xm.size(); ++i) {
    xm[i] = static_cast<f32>(rng.bits(i + 1) & 0xff);
  }
  std::vector<f32> wm(a.num_rows() * k), gm(a.num_rows() * k);
  sparse::spmm_serial(a, std::span<const f32>(xm), std::span<f32>(wm), k);
  sparse::spmm(a, std::span<const f32>(xm), std::span<f32>(gm), k);
  EXPECT_EQ(0, std::memcmp(gm.data(), wm.data(), gm.size() * sizeof(f32)));
}

// --- SpMM ------------------------------------------------------------

TEST(SpmmDiff, MatchesSerialByteForByteAcrossSimdLevels) {
  std::vector<support::SimdLevel> levels = {support::SimdLevel::kScalar};
  if (support::simd_detected() >= support::SimdLevel::kSse2) {
    levels.push_back(support::SimdLevel::kSse2);
  }
  if (support::simd_detected() >= support::SimdLevel::kAvx2) {
    levels.push_back(support::SimdLevel::kAvx2);
  }
  for (std::size_t rows : {std::size_t{0}, std::size_t{1}, std::size_t{257},
                           std::size_t{4097}}) {
    const Csr m = make_csr(rows, rows / 2 + 3, 0x5AF6 + rows, false);
    const sparse::CsrView<f64> a = m.view();
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const std::vector<f64> x = make_x(a.num_cols * k, 0x5AF7, false);
      std::vector<f64> want(rows * k, -1.0);
      {
        SimdModeGuard guard(support::SimdLevel::kScalar);
        sparse::spmm_serial(a, std::span<const f64>(x), std::span<f64>(want),
                            k);
      }
      for (support::SimdLevel level : levels) {
        SimdModeGuard guard(level);
        std::vector<f64> got(rows * k, 7.0);
        sparse::spmm(a, std::span<const f64>(x), std::span<f64>(got), k,
                     AccessMode::kChecked);
        EXPECT_TRUE(bytes_equal(got, want))
            << "rows=" << rows << " k=" << k
            << " level=" << support::simd_level_name(level);
      }
    }
    // k == 0: a no-op, not a crash.
    std::vector<f64> empty;
    sparse::spmm(a, std::span<const f64>(empty), std::span<f64>(empty), 0,
                 AccessMode::kChecked);
  }
}

// --- SpGEMM ----------------------------------------------------------

TEST(SpgemmDiff, KnownTinyProduct) {
  // A = [1 2; 0 3], B = [0 1; 4 0]  =>  A·B = [8 1; 12 0].
  auto a = sparse::CsrMatrix<f64>::from_csr({0, 2, 3}, {0, 1, 1},
                                            {1.0, 2.0, 3.0}, 2);
  auto b = sparse::CsrMatrix<f64>::from_csr({0, 1, 2}, {1, 0}, {1.0, 4.0}, 2);
  const auto c = sparse::spgemm<f64>(a.view(), b.view());
  const sparse::CsrView<f64> v = c.view();
  ASSERT_EQ(v.num_rows(), 2u);
  ASSERT_EQ(v.nnz(), 3u);
  EXPECT_EQ(std::vector<u64>(v.offsets.begin(), v.offsets.end()),
            (std::vector<u64>{0, 2, 3}));
  EXPECT_EQ(std::vector<u32>(v.cols.begin(), v.cols.end()),
            (std::vector<u32>{0, 1, 0}));
  EXPECT_EQ(std::vector<f64>(v.vals.begin(), v.vals.end()),
            (std::vector<f64>{8.0, 1.0, 12.0}));
}

TEST(SpgemmDiff, MatchesSerialByteForByte) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                        std::size_t{1000}, std::size_t{4097}}) {
    const Csr am = make_csr(n, n, 0x5AF8 + n, false);
    const Csr bm = make_csr(n, n == 0 ? 0 : n - n / 3, 0x5AF9 + n, false);
    // A's columns must index B's rows.
    Csr a2 = am;
    a2.num_cols = n;
    const auto want = sparse::spgemm_serial<f64>(a2.view(), bm.view());
    for (AccessMode mode : {AccessMode::kUnchecked, AccessMode::kChecked}) {
      const auto got = sparse::spgemm<f64>(a2.view(), bm.view(), mode);
      const sparse::CsrView<f64> gw = got.view(), ww = want.view();
      ASSERT_EQ(gw.nnz(), ww.nnz()) << "n=" << n;
      EXPECT_TRUE(std::equal(gw.offsets.begin(), gw.offsets.end(),
                             ww.offsets.begin()))
          << "n=" << n;
      EXPECT_TRUE(std::equal(gw.cols.begin(), gw.cols.end(),
                             ww.cols.begin()))
          << "n=" << n;
      EXPECT_TRUE(bytes_equal(gw.vals, ww.vals)) << "n=" << n;
    }
  }
}

TEST(SpgemmDiff, InnerDimensionMismatchThrows) {
  const Csr am = make_csr(8, 5, 0x5AFA, false);
  const Csr bm = make_csr(6, 4, 0x5AFB, false);  // 5 != 6
  EXPECT_THROW(sparse::spgemm<f64>(am.view(), bm.view()),
               std::invalid_argument);
  EXPECT_THROW(sparse::spgemm_serial<f64>(am.view(), bm.view()),
               std::invalid_argument);
}

// --- Checked tier: deterministic failure messages -------------------

std::string spmv_checked_message(const sparse::CsrView<f64>& a) {
  std::vector<f64> x(a.num_cols, 1.0), y(a.num_rows());
  try {
    sparse::spmv(a, std::span<const f64>(x), std::span<f64>(y),
                 AccessMode::kChecked);
  } catch (const CheckFailure& e) {
    return e.what();
  }
  return "";
}

TEST(SparseChecked, FailureMessagesAreStable) {
  Csr m = make_csr(100, 50, 0x5AFC, true);

  // Column out of bounds: the lowest violating nonzero is reported no
  // matter the schedule.
  {
    Csr bad = m;
    bad.cols[17] = 50;
    bad.cols[93] = 1000;
    EXPECT_EQ(spmv_checked_message(bad.view()),
              "sparse: column index out of bounds at nonzero 17");
  }
  // Non-monotone offsets.
  {
    Csr bad = m;
    bad.offsets[40] = bad.offsets[41] + 1;
    EXPECT_EQ(spmv_checked_message(bad.view()),
              "par_ind_chunks_mut: offsets not monotonic at index 40");
  }
  // Offsets not bracketed by [0, nnz].
  {
    Csr bad = m;
    bad.offsets.back() -= 1;
    EXPECT_EQ(spmv_checked_message(bad.view()),
              "sparse: offsets not bracketed by [0, nnz]");
  }
  // The clean matrix passes in every kernel's checked tier.
  EXPECT_EQ(spmv_checked_message(m.view()), "");

  // The unchecked tier of spmv must not validate (the paper's "scary"
  // fast path): same corrupt columns, in-bounds gather target, no throw.
  {
    Csr bad = m;
    bad.cols[17] = 49;
    std::vector<f64> x(bad.num_cols, 1.0), y(100);
    EXPECT_NO_THROW(sparse::spmv(bad.view(), std::span<const f64>(x),
                                 std::span<f64>(y), AccessMode::kUnchecked));
  }
}

// --- Zero-copy adoption of graph CSR arrays -------------------------

TEST(CsrMatrix, FromGraphBorrowsTopologyByPointer) {
  const auto edges = graph::rmat_edges(8, 6.0, 0.25, 0.25, 0.25, 11);
  const auto g = graph::Graph::from_edges(256, edges, false, false);
  const auto m = sparse::CsrMatrix<f64>::from_graph(g);
  EXPECT_TRUE(m.borrows_topology());
  const sparse::CsrView<f64> v = m.view();
  EXPECT_EQ(v.offsets.data(), g.raw_offsets().data());
  EXPECT_EQ(v.cols.data(), g.raw_targets().data());
  EXPECT_EQ(v.num_cols, g.num_vertices());
  EXPECT_EQ(v.nnz(), g.num_edges());
  // Unweighted graphs materialize unit values.
  for (std::size_t z = 0; z < std::min<std::size_t>(v.nnz(), 64); ++z) {
    EXPECT_EQ(v.vals[z], 1.0);
  }

  // Weighted graphs convert the u32 weights.
  const auto gw = graph::make_rmat(8, 13);
  const auto mw = sparse::CsrMatrix<f64>::from_graph(gw);
  ASSERT_TRUE(gw.weighted());
  const sparse::CsrView<f64> vw = mw.view();
  const std::span<const u32> w = gw.raw_weights();
  for (std::size_t z = 0; z < std::min<std::size_t>(vw.nnz(), 64); ++z) {
    EXPECT_EQ(vw.vals[z], static_cast<f64>(w[z]));
  }

  // A matrix built from scratch owns everything.
  const auto own = sparse::CsrMatrix<f64>::from_csr({0, 1}, {0}, {2.0}, 1);
  EXPECT_FALSE(own.borrows_topology());
  EXPECT_THROW(sparse::CsrMatrix<f64>::from_csr({0, 2}, {0}, {2.0}, 1),
               std::invalid_argument);
}

// --- Generator skew (the ablation's premise) ------------------------

TEST(GeneratorSkew, SkewedRmatHasPowerLawTail) {
  const int scale = 12;
  const std::size_t n = std::size_t{1} << scale;
  const auto uni_edges = graph::rmat_edges(scale, 8.0, 0.25, 0.25, 0.25, 17);
  const auto skw_edges = graph::rmat_edges(scale, 8.0, 0.60, 0.19, 0.19, 17);
  const auto uni = graph::Graph::from_edges(n, uni_edges, false, false);
  const auto skw = graph::Graph::from_edges(n, skw_edges, false, false);

  // Comparable sizes: both draw n*avg_degree samples.
  EXPECT_NEAR(static_cast<double>(uni.num_edges()),
              static_cast<double>(skw.num_edges()),
              0.05 * static_cast<double>(uni.num_edges()));

  // Uniform quadrants concentrate degrees near the mean; the skewed
  // generator's hub must dwarf that. Empirically (seed 17): uniform
  // max_degree ~19, skewed ~1874 — the bounds leave wide margins so any
  // seed drift stays green while a broken generator still fails.
  EXPECT_LT(uni.max_degree(), 64u);
  EXPECT_GT(skw.max_degree(), 256u);
  EXPECT_GT(skw.max_degree(), 8 * uni.max_degree());

  // Tail mass: the heaviest 1% of skewed rows must own a far larger
  // edge share than the uniform generator's top 1%.
  auto tail_mass = [n](const graph::Graph& g) {
    std::vector<std::size_t> deg(n);
    for (std::size_t v = 0; v < n; ++v) {
      deg[v] = g.degree(static_cast<graph::VertexId>(v));
    }
    std::sort(deg.begin(), deg.end(), std::greater<>());
    const std::size_t top = n / 100;
    const auto head = std::accumulate(deg.begin(),
                                      deg.begin() + static_cast<std::ptrdiff_t>(top),
                                      std::size_t{0});
    return static_cast<double>(head) / static_cast<double>(g.num_edges());
  };
  const double uni_tail = tail_mass(uni), skw_tail = tail_mass(skw);
  EXPECT_LT(uni_tail, 0.10);
  EXPECT_GT(skw_tail, 0.25);
  EXPECT_GT(skw_tail, 2.0 * uni_tail);

  // Seed-determinism: the generator is a pure function of its inputs.
  EXPECT_EQ(graph::rmat_edges(scale, 8.0, 0.60, 0.19, 0.19, 17).size(),
            skw_edges.size());
  const auto skw2 =
      graph::Graph::from_edges(n, skw_edges, false, false);
  EXPECT_EQ(skw2.max_degree(), skw.max_degree());

  // Both paper inputs carry a power-law marker: a hub far above the
  // average degree (empirically ~90x for rmat, ~40x for link at this
  // scale — the 16x floor leaves margin while a degenerate generator,
  // whose max is within a few x of the mean, still fails).
  const auto rmat = graph::make_rmat(11, 5);
  const auto link = graph::make_link(11, 5);
  EXPECT_GT(static_cast<double>(rmat.max_degree()),
            16.0 * rmat.average_degree());
  EXPECT_GT(static_cast<double>(link.max_degree()),
            16.0 * link.average_degree());
}

// Knob smoke: spmv through the env-resolved policy path still matches
// the serial reference (whatever RPB_SPMV the environment pinned).
TEST(GeneratorSkew, SpmvOverRmatMatchesSerialUnderBothPolicies) {
  const auto edges = graph::rmat_edges(10, 6.0, 0.55, 0.2, 0.2, 3);
  const auto g = graph::Graph::from_edges(1024, edges, false, false);
  const auto m = sparse::CsrMatrix<f64>::from_graph(g);
  const sparse::CsrView<f64> a = m.view();
  const std::vector<f64> x = make_x(a.num_cols, 0x5AFD, true);
  std::vector<f64> want(a.num_rows());
  sparse::spmv_serial(a, std::span<const f64>(x), std::span<f64>(want));
  for (sparse::SpmvPolicy policy :
       {sparse::SpmvPolicy::kRowPar, sparse::SpmvPolicy::kMergePath}) {
    SpmvPolicyGuard guard(policy);
    std::vector<f64> got(a.num_rows());
    sparse::spmv(a, std::span<const f64>(x), std::span<f64>(got));
    EXPECT_TRUE(bytes_equal(got, want))
        << sparse::spmv_policy_name(policy);
  }
}

}  // namespace
}  // namespace rpb
