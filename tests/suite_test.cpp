// Integration smoke test over the benchmark suite itself: every one of
// the paper's 20 benchmark-input pairs runs once under every variant
// the fig4/fig5 harnesses will request, at a small scale. This is the
// end-to-end guard for the reproduction pipeline.
#include <gtest/gtest.h>

#include "../bench/suite.h"
#include "sched/thread_pool.h"

namespace rpb::bench {
namespace {

class SuiteEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kSuiteEnv =
    ::testing::AddGlobalTestEnvironment(new SuiteEnv);

Suite& small_suite() {
  static Suite suite(-4);  // inputs shrunk 16x
  return suite;
}

TEST(SuiteSmoke, HasTheTwentyPaperPairs) {
  auto& cases = small_suite().cases();
  EXPECT_EQ(cases.size(), 20u);
  std::size_t with_census = 0;
  for (const auto& c : cases) {
    EXPECT_FALSE(c.name.empty());
    with_census += c.census != nullptr;
  }
  EXPECT_EQ(with_census, cases.size());
}

TEST(SuiteSmoke, EveryCaseRunsEveryVariant) {
  for (auto& c : small_suite().cases()) {
    for (Variant v : {Variant::kPerf, Variant::kRecommended, Variant::kChecked,
                      Variant::kSync}) {
      // kChecked/kSync alias kPerf for cases without that knob; all
      // four must run without throwing either way.
      c.setup();
      EXPECT_NO_THROW(c.run(v)) << c.name << " variant " << name_of(v);
    }
  }
}

TEST(SuiteSmoke, DistinctnessFlagsAreHonest) {
  // If a case advertises a distinct checked/sync expression, the
  // corresponding benchmark must expose that knob (spot checks).
  for (const auto& c : small_suite().cases()) {
    if (c.benchmark == "hist") EXPECT_TRUE(c.sync_is_distinct);
    if (c.benchmark == "sa") {
      EXPECT_TRUE(c.check_is_distinct);
      EXPECT_TRUE(c.sync_is_distinct);
    }
    if (c.benchmark == "mm" || c.benchmark == "sf" || c.benchmark == "msf") {
      EXPECT_FALSE(c.sync_is_distinct);
    }
  }
}

}  // namespace
}  // namespace rpb::bench
