// Tests for the extension algorithms: parallel merge sort (the paper's
// Listing 9) and PageRank (the paper's Sec. 5.2 AW example).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/generators.h"
#include "graph/pagerank.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/merge_sort.h"

namespace rpb {
namespace {

class AlgoEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kAlgoEnv =
    ::testing::AddGlobalTestEnvironment(new AlgoEnv);

class MergeSortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeSortSizes, MatchesStdSort) {
  auto values = seq::exponential_doubles(GetParam(), 1.0, GetParam() + 1);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  seq::merge_sort(values);
  EXPECT_EQ(values, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSortSizes,
                         ::testing::Values(0, 1, 2, 100, 4096, 5000, 200000,
                                           1 << 19));

TEST(MergeSort, IsStable) {
  // Pairs sorted by key only: equal keys must keep index order.
  const std::size_t n = 120000;
  auto keys = seq::exponential_keys(n, 32, 7);  // heavy duplication
  std::vector<std::pair<u64, u32>> items(n);
  for (std::size_t i = 0; i < n; ++i) items[i] = {keys[i], static_cast<u32>(i)};
  seq::merge_sort(items, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(items[i - 1].first, items[i].first);
    if (items[i - 1].first == items[i].first) {
      ASSERT_LT(items[i - 1].second, items[i].second) << "instability at " << i;
    }
  }
}

TEST(MergeSort, CustomComparatorAndAllEqual) {
  auto values = seq::exponential_doubles(50000, 1.0, 3);
  auto expected = values;
  std::sort(expected.begin(), expected.end(), std::greater<double>());
  seq::merge_sort(values, std::greater<double>());
  EXPECT_EQ(values, expected);

  std::vector<int> same(100000, 5);
  seq::merge_sort(same);
  EXPECT_TRUE(std::all_of(same.begin(), same.end(), [](int v) { return v == 5; }));
}

TEST(PageRank, PushAndPullAgree) {
  for (const char* name : {"rmat", "road", "link"}) {
    graph::Graph g = graph::make_named(name, 11, 41);
    auto push = graph::pagerank_push(g);
    auto pull = graph::pagerank_pull(g);
    ASSERT_EQ(push.rank.size(), pull.rank.size());
    for (std::size_t v = 0; v < push.rank.size(); ++v) {
      ASSERT_NEAR(push.rank[v], pull.rank[v], 1e-6) << name << " vertex " << v;
    }
  }
}

TEST(PageRank, MassIsConserved) {
  graph::Graph g = graph::make_named("rmat", 11, 43);
  auto result = graph::pagerank_pull(g);
  double total = std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(g.num_vertices()),
              1e-6 * static_cast<double>(g.num_vertices()));
}

TEST(PageRank, SymmetricCliqueIsUniform) {
  // In a complete symmetric graph every vertex is equivalent.
  std::vector<graph::Edge> edges;
  for (u32 i = 0; i < 8; ++i) {
    for (u32 j = i + 1; j < 8; ++j) edges.push_back({i, j, 1});
  }
  graph::Graph g = graph::Graph::from_edges(8, edges, true, false);
  auto result = graph::pagerank_push(g);
  for (double r : result.rank) EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(PageRank, HubOutranksLeaves) {
  // Star graph: the hub must dominate.
  std::vector<graph::Edge> edges;
  for (u32 leaf = 1; leaf < 20; ++leaf) edges.push_back({0, leaf, 1});
  graph::Graph g = graph::Graph::from_edges(20, edges, true, false);
  auto result = graph::pagerank_pull(g);
  for (std::size_t leaf = 1; leaf < 20; ++leaf) {
    EXPECT_GT(result.rank[0], 3.0 * result.rank[leaf]);
  }
}

TEST(PageRank, ConvergesAndReportsIterations) {
  graph::Graph g = graph::make_named("road", 11, 47);
  graph::PageRankConfig config;
  config.tolerance = 1e-8;
  auto result = graph::pagerank_push(g, config);
  EXPECT_LT(result.final_delta, config.tolerance);
  EXPECT_GT(result.iterations, 3u);
  EXPECT_LE(result.iterations, config.max_iterations);
}

TEST(PageRank, EmptyGraph) {
  graph::Graph g;
  auto result = graph::pagerank_push(g);
  EXPECT_TRUE(result.rank.empty());
}

}  // namespace
}  // namespace rpb
