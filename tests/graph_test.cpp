// Tests for the graph substrate: CSR construction, generators,
// union-find, and the six graph benchmarks against reference
// implementations / invariant checkers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <cstdio>

#include "graph/bfs.h"
#include "graph/csr.h"
#include "graph/forest.h"
#include "graph/io.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "graph/mis.h"
#include "graph/sssp.h"
#include "graph/union_find.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"

namespace rpb::graph {
namespace {

class GraphEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kGraphEnv =
    ::testing::AddGlobalTestEnvironment(new GraphEnv);

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3 tail, 4 isolated.
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 1}, {0, 2, 2}, {2, 3, 7}};
  return Graph::from_edges(5, edges, /*symmetrize=*/true, /*weighted=*/true);
}

TEST(Csr, BuildsSymmetricAdjacency) {
  Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected edges, both directions
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 0u);
  auto n0 = g.neighbors(0);
  std::vector<VertexId> sorted0(n0.begin(), n0.end());
  std::sort(sorted0.begin(), sorted0.end());
  EXPECT_EQ(sorted0, (std::vector<VertexId>{1, 2}));
}

TEST(Csr, DropsSelfLoopsAndOutOfRange) {
  std::vector<Edge> edges{{0, 0, 1}, {0, 1, 1}, {9, 1, 1}};
  Graph g = Graph::from_edges(3, edges, true, false);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Csr, UndirectedEdgesRoundTrip) {
  Graph g = triangle_plus_tail();
  auto edges = g.undirected_edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
  u64 weight_sum = 0;
  for (const Edge& e : edges) weight_sum += e.weight;
  EXPECT_EQ(weight_sum, 15u);
}

TEST(Generators, RmatShape) {
  Graph g = make_rmat(12, 1);
  EXPECT_EQ(g.num_vertices(), 4096u);
  // Target |E|/|V| ~ 6 after symmetrization (Table 2), minus dropped
  // self-loops.
  EXPECT_GT(g.average_degree(), 4.0);
  EXPECT_LT(g.average_degree(), 7.0);
  EXPECT_TRUE(g.weighted());
}

TEST(Generators, LinkIsSkewed) {
  Graph g = make_link(12, 2);
  // Power-law-ish: the max degree dwarfs the average.
  std::size_t max_degree = 0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(static_cast<VertexId>(v)));
  }
  EXPECT_GT(static_cast<double>(max_degree), 20.0 * g.average_degree());
}

TEST(Generators, RoadIsSparseAndDeterministic) {
  Graph a = make_road(64, 64, 0.6, 3);
  Graph b = make_road(64, 64, 0.6, 3);
  EXPECT_EQ(a.num_vertices(), 4096u);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_GT(a.average_degree(), 1.5);
  EXPECT_LT(a.average_degree(), 3.2);
}

TEST(UnionFindTest, BasicUnite) {
  UnionFind uf(10);
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(2, 1));
  EXPECT_TRUE(uf.unite(3, 4));
  EXPECT_TRUE(uf.unite(1, 4));
  EXPECT_TRUE(uf.same(2, 3));
  EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFindTest, ConcurrentUnionsFormOneComponent) {
  const std::size_t n = 100000;
  UnionFind uf(n);
  std::atomic<std::size_t> merges{0};
  // A chain united from many threads: exactly n-1 successful unions.
  sched::parallel_for(0, n - 1, [&](std::size_t i) {
    if (uf.unite(static_cast<VertexId>(i), static_cast<VertexId>(i + 1))) {
      merges.fetch_add(1);
    }
  });
  EXPECT_EQ(merges.load(), n - 1);
  VertexId root = uf.find(0);
  for (std::size_t i = 0; i < n; i += 997) {
    EXPECT_EQ(uf.find(static_cast<VertexId>(i)), root);
  }
}

class MisParam
    : public ::testing::TestWithParam<std::tuple<std::string, AccessMode>> {};

TEST_P(MisParam, ProducesValidMis) {
  auto [name, mode] = GetParam();
  Graph g = make_named(name, 11, 7);
  auto state = maximal_independent_set(g, mode);
  EXPECT_TRUE(is_valid_mis(g, state));
}

TEST_P(MisParam, DeterministicAcrossRuns) {
  auto [name, mode] = GetParam();
  Graph g = make_named(name, 10, 7);
  auto a = maximal_independent_set(g, mode);
  auto b = maximal_independent_set(g, mode);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, MisParam,
    ::testing::Combine(::testing::Values("rmat", "road", "link"),
                       ::testing::Values(AccessMode::kUnchecked,
                                         AccessMode::kAtomic)));

class GraphNames : public ::testing::TestWithParam<std::string> {};

TEST_P(GraphNames, MatchingIsMaximal) {
  Graph g = make_named(GetParam(), 11, 13);
  auto edges = g.undirected_edges();
  auto result = maximal_matching(g.num_vertices(), edges);
  EXPECT_TRUE(is_valid_maximal_matching(g.num_vertices(), edges, result));
}

TEST_P(GraphNames, MatchingDeterministic) {
  Graph g = make_named(GetParam(), 10, 13);
  auto edges = g.undirected_edges();
  auto a = maximal_matching(g.num_vertices(), edges);
  auto b = maximal_matching(g.num_vertices(), edges);
  EXPECT_EQ(a.matched_edges, b.matched_edges);
}

TEST_P(GraphNames, SpanningForestValid) {
  Graph g = make_named(GetParam(), 11, 17);
  auto edges = g.undirected_edges();
  auto forest = spanning_forest(g.num_vertices(), edges);
  EXPECT_TRUE(is_spanning_forest(g.num_vertices(), edges, forest));
}

TEST_P(GraphNames, MsfMatchesKruskalWeight) {
  Graph g = make_named(GetParam(), 10, 19);
  auto edges = g.undirected_edges();
  auto parallel = minimum_spanning_forest(g.num_vertices(), edges);
  auto reference = kruskal_reference(g.num_vertices(), edges);
  EXPECT_TRUE(is_spanning_forest(g.num_vertices(), edges, parallel));
  EXPECT_EQ(parallel.total_weight, reference.total_weight);
  // With (weight, index) tie-breaking the MSF is unique: exact match.
  EXPECT_EQ(parallel.edges, reference.edges);
}

TEST_P(GraphNames, BfsMatchesReference) {
  Graph g = make_named(GetParam(), 11, 23);
  auto expected = bfs_reference(g, 0);
  auto got = bfs_multiqueue(g, 0, 4);
  EXPECT_EQ(got, expected);
}

TEST_P(GraphNames, SsspMatchesDijkstra) {
  Graph g = make_named(GetParam(), 11, 29);
  auto expected = sssp_reference(g, 0);
  auto got = sssp_multiqueue(g, 0, 4);
  EXPECT_EQ(got, expected);
}

TEST_P(GraphNames, LevelSyncBfsMatchesReference) {
  Graph g = make_named(GetParam(), 11, 23);
  EXPECT_EQ(bfs_level_sync(g, 0), bfs_reference(g, 0));
}

TEST_P(GraphNames, DeltaSteppingMatchesDijkstra) {
  Graph g = make_named(GetParam(), 11, 29);
  auto expected = sssp_reference(g, 0);
  // Sweep deltas: tiny (Dijkstra-like), heuristic, huge (Bellman-Ford-like).
  for (u64 delta : {u64{1}, u64{0}, u64{100000}}) {
    EXPECT_EQ(sssp_delta_stepping(g, 0, delta), expected) << "delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, GraphNames,
                         ::testing::Values("rmat", "road", "link"));

TEST(Bfs, IsolatedSourceReachesOnlyItself) {
  std::vector<Edge> edges{{1, 2, 1}};
  Graph g = Graph::from_edges(3, edges, true, true);
  auto dist = bfs_multiqueue(g, 0, 2);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], kUnreached);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(Sssp, PicksLighterLongerPath) {
  // 0->2 direct weight 10; 0->1->2 total weight 3.
  std::vector<Edge> edges{{0, 2, 10}, {0, 1, 1}, {1, 2, 2}};
  Graph g = Graph::from_edges(3, edges, true, true);
  auto dist = sssp_multiqueue(g, 0, 2);
  EXPECT_EQ(dist[2], 3u);
}

TEST(Csr, DirectedConstruction) {
  // symmetrize=false keeps edges one-directional.
  std::vector<Edge> edges{{0, 1, 3}, {1, 2, 4}, {0, 2, 5}};
  Graph g = Graph::from_edges(3, edges, /*symmetrize=*/false, true);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 0u);
  // Weights ride along with their targets.
  auto n1 = g.neighbors(1);
  ASSERT_EQ(n1.size(), 1u);
  EXPECT_EQ(n1[0], 2u);
  EXPECT_EQ(g.weights_of(1)[0], 4u);
}

TEST(Csr, WeightsFollowTargetsUnderSymmetrization) {
  std::vector<Edge> edges{{0, 1, 7}};
  Graph g = Graph::from_edges(2, edges, true, true);
  EXPECT_EQ(g.weights_of(0)[0], 7u);
  EXPECT_EQ(g.weights_of(1)[0], 7u);
}

TEST(Generators, WeightsDeterministicAndInRange) {
  Graph g = make_rmat(10, 5);
  Graph h = make_rmat(10, 5);
  for (std::size_t v = 0; v < g.num_vertices(); v += 37) {
    auto gw = g.weights_of(static_cast<VertexId>(v));
    auto hw = h.weights_of(static_cast<VertexId>(v));
    ASSERT_EQ(std::vector<u32>(gw.begin(), gw.end()),
              std::vector<u32>(hw.begin(), hw.end()));
    for (u32 w : gw) {
      ASSERT_GE(w, 1u);
      ASSERT_LE(w, 255u);
    }
  }
}

TEST(GraphIo, RoundTripsAllFamilies) {
  for (const char* name : {"rmat", "road", "link"}) {
    Graph g = make_named(name, 10, 31);
    std::string path = std::string("/tmp/rpb_io_test_") + name + ".bin";
    save_graph(path, g);
    Graph loaded = load_graph(path);
    EXPECT_EQ(loaded, g) << name;
    std::remove(path.c_str());
  }
}

TEST(GraphIo, UnweightedRoundTrip) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}};
  Graph g = Graph::from_edges(3, edges, true, /*weighted=*/false);
  save_graph("/tmp/rpb_io_unweighted.bin", g);
  Graph loaded = load_graph("/tmp/rpb_io_unweighted.bin");
  EXPECT_EQ(loaded, g);
  EXPECT_FALSE(loaded.weighted());
  std::remove("/tmp/rpb_io_unweighted.bin");
}

TEST(GraphIo, RejectsGarbage) {
  EXPECT_THROW(load_graph("/tmp/rpb_does_not_exist.bin"), std::runtime_error);
  std::FILE* f = std::fopen("/tmp/rpb_garbage.bin", "wb");
  std::fputs("not a graph at all, sorry", f);
  std::fclose(f);
  EXPECT_THROW(load_graph("/tmp/rpb_garbage.bin"), std::runtime_error);
  std::remove("/tmp/rpb_garbage.bin");
}

TEST(GraphIo, FromCsrValidatesShape) {
  EXPECT_THROW(Graph::from_csr({0, 2}, {1}, {}), std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 1}, {0}, {5, 6}), std::invalid_argument);
  Graph g = Graph::from_csr({0, 1, 1}, {1}, {});
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Msf, TieBreakingIsDeterministic) {
  // All weights equal: MSF must still be deterministic (index order).
  std::vector<Edge> edges;
  for (u32 i = 0; i < 50; ++i) {
    for (u32 j = i + 1; j < 50; ++j) edges.push_back({i, j, 7});
  }
  auto a = minimum_spanning_forest(50, edges);
  auto b = minimum_spanning_forest(50, edges);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edges.size(), 49u);
}

}  // namespace
}  // namespace rpb::graph
