// Tests for the 2D stencil utility: correctness against a serial
// reference, boundary behaviour, conservation-flavoured properties,
// and parameterized grid-shape sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sched/thread_pool.h"
#include "seq/stencil.h"
#include "support/prng.h"

namespace rpb::seq {
namespace {

std::vector<double> serial_jacobi_step(const std::vector<double>& in,
                                       std::size_t rows, std::size_t cols) {
  std::vector<double> out(in.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      std::size_t i = r * cols + c;
      if (r == 0 || r + 1 == rows || c == 0 || c + 1 == cols) {
        out[i] = in[i];
      } else {
        out[i] = 0.2 * (in[i] + in[i - 1] + in[i + 1] + in[i - cols] +
                        in[i + cols]);
      }
    }
  }
  return out;
}

class StencilShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(StencilShapes, MatchesSerialReference) {
  sched::ThreadPool::reset_global(4);
  auto [rows, cols] = GetParam();
  Rng rng(11);
  std::vector<double> grid(rows * cols);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = rng.uniform(i);
  std::vector<double> out(grid.size());
  jacobi_step(std::span<const double>(grid), std::span<double>(out), rows,
              cols);
  auto expected = serial_jacobi_step(grid, rows, cols);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], expected[i]) << "cell " << i;
  }
  sched::ThreadPool::reset_global(1);
}

using Shape = std::pair<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, StencilShapes,
                         ::testing::Values(Shape{1, 1}, Shape{1, 64},
                                           Shape{64, 1}, Shape{3, 3},
                                           Shape{17, 129}, Shape{200, 200}));

TEST(Stencil, HotSpotDiffusesOutward) {
  const std::size_t n = 65;
  std::vector<double> grid(n * n, 0.0);
  grid[(n / 2) * n + n / 2] = 1000.0;
  auto after = jacobi(grid, n, n, 50);
  // Peak decays, neighbors warm up, nothing goes negative.
  EXPECT_LT(after[(n / 2) * n + n / 2], 1000.0);
  EXPECT_GT(after[(n / 2) * n + n / 2 + 5], 0.0);
  for (double v : after) EXPECT_GE(v, 0.0);
}

TEST(Stencil, UniformFieldIsFixedPoint) {
  const std::size_t rows = 40, cols = 30;
  std::vector<double> grid(rows * cols, 3.25);
  auto after = jacobi(grid, rows, cols, 10);
  for (double v : after) ASSERT_DOUBLE_EQ(v, 3.25);
}

TEST(Stencil, SizeMismatchThrows) {
  std::vector<double> in(10), out(12);
  EXPECT_THROW(jacobi_step(std::span<const double>(in),
                           std::span<double>(out), 2, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace rpb::seq
