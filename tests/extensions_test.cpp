// Tests for the extension features: the ordered pipeline pattern, the
// concurrent hash map, and the function-indexed SngInd generalization.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/patterns.h"
#include "sched/parallel.h"
#include "sched/pipeline.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/hash_map.h"
#include "support/error.h"
#include "support/hash.h"

namespace rpb {
namespace {

TEST(Pipeline, OrderedEndToEnd) {
  constexpr std::size_t kItems = 10000;
  std::size_t produced = 0;
  std::vector<u64> consumed;
  sched::run_pipeline(
      [&]() -> std::optional<u64> {
        if (produced == kItems) return std::nullopt;
        return produced++;
      },
      [](u64 v) { return hash64(v); },
      [&](u64 v) { consumed.push_back(v); },
      /*workers=*/4, /*capacity=*/32);
  ASSERT_EQ(consumed.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(consumed[i], hash64(i)) << "out of order at " << i;
  }
}

TEST(Pipeline, EmptyProducer) {
  int consumed = 0;
  sched::run_pipeline([]() -> std::optional<int> { return std::nullopt; },
                      [](int v) { return v; }, [&](int) { ++consumed; }, 2, 8);
  EXPECT_EQ(consumed, 0);
}

TEST(Pipeline, SingleWorkerStaysOrdered) {
  std::size_t produced = 0;
  std::vector<int> consumed;
  sched::run_pipeline(
      [&]() -> std::optional<int> {
        if (produced == 100) return std::nullopt;
        return static_cast<int>(produced++);
      },
      [](int v) { return v * 2; }, [&](int v) { consumed.push_back(v); },
      /*workers=*/1, /*capacity=*/1);
  ASSERT_EQ(consumed.size(), 100u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(consumed[static_cast<std::size_t>(i)], 2 * i);
}

TEST(Pipeline, TransformExceptionPropagates) {
  std::size_t produced = 0;
  EXPECT_THROW(
      sched::run_pipeline(
          [&]() -> std::optional<int> {
            if (produced == 100000) return std::nullopt;
            return static_cast<int>(produced++);
          },
          [](int v) -> int {
            if (v == 777) throw std::runtime_error("transform boom");
            return v;
          },
          [](int) {}, 4, 16),
      std::runtime_error);
}

TEST(Pipeline, ProducerExceptionPropagates) {
  EXPECT_THROW(
      sched::run_pipeline(
          [&]() -> std::optional<int> { throw std::logic_error("prod"); },
          [](int v) { return v; }, [](int) {}, 2, 4),
      std::logic_error);
}

TEST(Pipeline, ConsumerExceptionPropagates) {
  std::size_t produced = 0;
  EXPECT_THROW(
      sched::run_pipeline(
          [&]() -> std::optional<int> {
            if (produced == 1000) return std::nullopt;
            return static_cast<int>(produced++);
          },
          [](int v) { return v; },
          [](int v) {
            if (v == 500) throw std::runtime_error("consume boom");
          },
          3, 8),
      std::runtime_error);
}

TEST(HashMap, InsertOrAddSerial) {
  seq::ConcurrentHashMap map(100);
  map.insert_or_add(7, 3);
  map.insert_or_add(7, 4);
  map.insert_or_add(9, 1);
  EXPECT_EQ(map.get(7), std::optional<u64>(7));
  EXPECT_EQ(map.get(9), std::optional<u64>(1));
  EXPECT_EQ(map.get(8), std::nullopt);
  EXPECT_THROW(map.insert_or_add(seq::ConcurrentHashMap::kEmptyKey, 1),
               std::invalid_argument);
}

TEST(HashMap, MinMaxCombinators) {
  seq::ConcurrentHashMap mins(10), maxs(10);
  for (u64 v : {5, 3, 9, 4}) {
    mins.insert_or_min(1, v);
    maxs.insert_or_max(1, v);
  }
  EXPECT_EQ(mins.get(1), std::optional<u64>(3));
  EXPECT_EQ(maxs.get(1), std::optional<u64>(9));
}

TEST(HashMap, ParallelCountByKeyMatchesSerial) {
  sched::ThreadPool::reset_global(4);
  const std::size_t n = 200000, keys = 500;
  auto input = seq::exponential_keys(n, keys, 3);
  seq::ConcurrentHashMap map(keys);
  sched::parallel_for(0, n,
                      [&](std::size_t i) { map.insert_or_add(input[i], 1); });
  std::vector<u64> expected(keys, 0);
  for (u64 k : input) ++expected[k];
  u64 total = 0;
  for (auto [k, v] : map.entries()) {
    EXPECT_EQ(v, expected[k]) << "key " << k;
    total += v;
  }
  EXPECT_EQ(total, n);
  sched::ThreadPool::reset_global(1);
}

TEST(HashMap, ParallelMinByKey) {
  sched::ThreadPool::reset_global(4);
  const std::size_t n = 100000, keys = 64;
  seq::ConcurrentHashMap map(keys);
  sched::parallel_for(0, n, [&](std::size_t i) {
    map.insert_or_min(i % keys, hash64(i) % 1000000);
  });
  for (std::size_t k = 0; k < keys; ++k) {
    u64 expected = ~u64{0};
    for (std::size_t i = k; i < n; i += keys) {
      expected = std::min(expected, hash64(i) % 1000000);
    }
    EXPECT_EQ(map.get(k), std::optional<u64>(expected));
  }
  sched::ThreadPool::reset_global(1);
}

TEST(IndIterFn, FunctionIndexedScatter) {
  const std::size_t n = 10000;
  std::vector<u64> data(n, 0);
  // Index function: a fixed permutation computed on the fly.
  auto perm = seq::random_permutation(n, 5);
  par::par_ind_iter_mut_fn(
      std::span<u64>(data), n, [&](std::size_t i) { return perm[i]; },
      [](std::size_t i, u64& slot) { slot = i + 1; }, AccessMode::kChecked);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(data[perm[i]], i + 1);
}

TEST(IndIterFn, CheckedCatchesNonInjectiveFunction) {
  std::vector<u64> data(100, 0);
  EXPECT_THROW(par::par_ind_iter_mut_fn(
                   std::span<u64>(data), 100,
                   [](std::size_t i) { return i / 2; },  // collides!
                   [](std::size_t, u64&) {}, AccessMode::kChecked),
               CheckFailure);
}

TEST(IndIterFn, UncheckedTrustsTheCaller) {
  std::vector<u64> data(64, 0);
  par::par_ind_iter_mut_fn(
      std::span<u64>(data), 64,
      [](std::size_t i) { return (i * 17) % 64; },  // 17 coprime to 64
      [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kUnchecked);
  u64 sum = std::accumulate(data.begin(), data.end(), u64{0});
  EXPECT_EQ(sum, u64{64} * 63 / 2);
}

}  // namespace
}  // namespace rpb
