// Serve-layer tests: digest parity between served and direct batch
// calls, deterministic fair-share/EDF/shed behavior (paused start +
// one lane + batch window 1 makes dispatch a pure function of the
// queue state), typed admission verdicts, per-request obs windows
// summing to pool totals, and the concurrent-submitter path that the
// sanitize (TSAN) preset exercises.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "sched/thread_pool.h"
#include "serve/knobs.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "serve/workload.h"
#include "test_guards.h"

namespace rpb::serve {
namespace {

// One shared (immutable, concurrently read) workload for the suite;
// sized small so construction is cheap.
const Workload& test_workload() {
  static const Workload* w = [] {
    WorkloadConfig config;
    config.num_keys = std::size_t{1} << 14;
    config.graph_scale = 8;
    config.text_bytes = std::size_t{1} << 12;
    return new Workload(config);
  }();
  return *w;
}

ServerConfig base_config(std::size_t tenants, std::size_t lanes = 1) {
  ServerConfig config;
  config.tenants.assign(tenants, TenantConfig{});
  config.num_threads = 4;
  config.lanes = lanes;
  config.policy = ServePolicy::kFairShare;
  config.queue_bound = 1 << 12;
  config.batch_window = 1;
  return config;
}

JobRequest make_request(u32 tenant, Kernel kernel, u64 seed, std::size_t n,
                        u64 deadline = 0, u32 priority = 0) {
  JobRequest req;
  req.tenant = tenant;
  req.priority = priority;
  req.deadline = deadline;
  req.kernel = kernel;
  req.seed = seed;
  req.n = n;
  return req;
}

TEST(ServeWorkload, ServedDigestMatchesDirectBatchCall) {
  const Workload& workload = test_workload();
  JobServer server(workload, base_config(1));
  for (std::size_t k = 0; k < kNumKernels; ++k) {
    const Kernel kernel = static_cast<Kernel>(k);
    for (std::size_t n : {std::size_t{64}, std::size_t{1000}}) {
      const u64 seed = 0xabcd00 + k;
      SubmitOutcome outcome =
          server.submit(make_request(0, kernel, seed, n));
      ASSERT_EQ(outcome.verdict, Verdict::kAdmitted);
      const JobResult& result = outcome.ticket->wait();
      EXPECT_EQ(result.verdict, Verdict::kAdmitted);
      // The direct batch call: same function, caller's own arena lease,
      // no server in sight. Structure-level outputs must be identical.
      EXPECT_EQ(result.digest, workload.run(kernel, seed, n))
          << "kernel=" << kernel_name(kernel) << " n=" << n;
    }
  }
}

TEST(ServeScheduler, FairShareInterleavesPastHogBacklog) {
  // Paused start + 1 lane + batch window 1: dispatch order is a pure
  // function of the queue state. The hog floods 20 equal-cost jobs
  // before the light tenant queues 4; DRR must alternate rather than
  // drain the hog first.
  ServerConfig config = base_config(2);
  config.start_paused = true;
  config.deficit_quantum = 1024;
  JobServer server(test_workload(), config);
  std::vector<std::shared_ptr<Ticket>> hog, light;
  for (int i = 0; i < 20; ++i) {
    hog.push_back(
        server.submit(make_request(1, Kernel::kSort, 100 + i, 1000)).ticket);
  }
  for (int i = 0; i < 4; ++i) {
    light.push_back(
        server.submit(make_request(0, Kernel::kSort, 200 + i, 1000)).ticket);
  }
  server.resume();
  server.drain();
  std::vector<u64> light_seq, hog_seq;
  for (auto& t : light) light_seq.push_back(t->wait().stats.batch_seq);
  for (auto& t : hog) hog_seq.push_back(t->wait().stats.batch_seq);
  // Tenant 0 (cursor start) dispatches on the even turns until it
  // drains; the hog takes the odd ones and then the rest.
  EXPECT_EQ(light_seq, (std::vector<u64>{0, 2, 4, 6}));
  EXPECT_EQ(*std::max_element(light_seq.begin(), light_seq.end()), 6u);
  EXPECT_EQ(*std::min_element(hog_seq.begin(), hog_seq.end()), 1u);
}

TEST(ServeScheduler, FifoDrainsHogBeforeLateArrivals) {
  ServerConfig config = base_config(2);
  config.policy = ServePolicy::kFifo;
  config.start_paused = true;
  JobServer server(test_workload(), config);
  std::vector<std::shared_ptr<Ticket>> hog, light;
  for (int i = 0; i < 20; ++i) {
    hog.push_back(
        server.submit(make_request(1, Kernel::kSort, 100 + i, 1000)).ticket);
  }
  for (int i = 0; i < 4; ++i) {
    light.push_back(
        server.submit(make_request(0, Kernel::kSort, 200 + i, 1000)).ticket);
  }
  server.resume();
  server.drain();
  // Arrival order: every hog job dispatched before any light one.
  for (auto& t : light) {
    EXPECT_GE(t->wait().stats.batch_seq, 20u);
  }
  for (auto& t : hog) {
    EXPECT_LT(t->wait().stats.batch_seq, 20u);
  }
}

TEST(ServeScheduler, DeadlineOrderedDispatchWithinTenant) {
  ServerConfig config = base_config(1);
  config.start_paused = true;
  JobServer server(test_workload(), config);
  // Arrival order deliberately scrambles the deadlines; costs are tiny
  // (10 units each) so nothing sheds. 0 = no deadline = dispatches
  // last; ties broken by priority then arrival.
  auto none = server.submit(make_request(0, Kernel::kSort, 1, 10, 0)).ticket;
  auto d500 = server.submit(make_request(0, Kernel::kSort, 2, 10, 500)).ticket;
  auto d100 = server.submit(make_request(0, Kernel::kSort, 3, 10, 100)).ticket;
  auto d300 = server.submit(make_request(0, Kernel::kSort, 4, 10, 300)).ticket;
  auto d300hi =
      server.submit(make_request(0, Kernel::kSort, 5, 10, 300, /*priority=*/9))
          .ticket;
  server.resume();
  server.drain();
  EXPECT_EQ(d100->wait().stats.batch_seq, 0u);
  EXPECT_EQ(d300hi->wait().stats.batch_seq, 1u);  // beats d300 on priority
  EXPECT_EQ(d300->wait().stats.batch_seq, 2u);
  EXPECT_EQ(d500->wait().stats.batch_seq, 3u);
  EXPECT_EQ(none->wait().stats.batch_seq, 4u);
}

TEST(ServeScheduler, ShedVerdictsAreDeterministic) {
  // Virtual clock: each dispatched job advances it by its cost (100).
  // With every deadline at 250, exactly the first three jobs dispatch
  // (clock 0/100/200 at their pops) and the rest shed — on every rerun.
  std::vector<Verdict> first_run;
  for (int rep = 0; rep < 3; ++rep) {
    ServerConfig config = base_config(1);
    config.start_paused = true;
    JobServer server(test_workload(), config);
    std::vector<std::shared_ptr<Ticket>> tickets;
    for (int i = 0; i < 10; ++i) {
      tickets.push_back(
          server.submit(make_request(0, Kernel::kHistogram, i, 100, 250))
              .ticket);
    }
    server.resume();
    server.drain();
    std::vector<Verdict> verdicts;
    for (auto& t : tickets) verdicts.push_back(t->wait().verdict);
    if (rep == 0) {
      first_run = verdicts;
      std::vector<Verdict> expected(10, Verdict::kShedDeadline);
      expected[0] = expected[1] = expected[2] = Verdict::kAdmitted;
      EXPECT_EQ(verdicts, expected);
      TenantTotals totals = server.tenant_totals(0);
      EXPECT_EQ(totals.admitted, 10u);
      EXPECT_EQ(totals.completed, 3u);
      EXPECT_EQ(totals.shed_deadline, 7u);
    } else {
      EXPECT_EQ(verdicts, first_run) << "rerun " << rep;
    }
  }
}

TEST(ServeAdmission, QueueBoundRejectsWithTypedVerdict) {
  ServerConfig config = base_config(1);
  config.start_paused = true;  // nothing drains: the queue really fills
  config.queue_bound = 4;
  JobServer server(test_workload(), config);
  std::vector<Verdict> verdicts;
  for (int i = 0; i < 6; ++i) {
    SubmitOutcome outcome =
        server.submit(make_request(0, Kernel::kSort, i, 256));
    verdicts.push_back(outcome.verdict);
    EXPECT_EQ(outcome.ticket != nullptr,
              outcome.verdict == Verdict::kAdmitted);
  }
  std::vector<Verdict> expected(6, Verdict::kAdmitted);
  expected[4] = expected[5] = Verdict::kRejectedQueueFull;
  EXPECT_EQ(verdicts, expected);
  TenantTotals totals = server.tenant_totals(0);
  EXPECT_EQ(totals.submitted, 6u);
  EXPECT_EQ(totals.admitted, 4u);
  EXPECT_EQ(totals.rejected_queue, 2u);
  server.resume();
  server.drain();
}

TEST(ServeAdmission, ShareRuleCapsQueuedCostPerTenant) {
  ServerConfig config = base_config(2);
  config.start_paused = true;
  config.share_capacity = 1000;  // equal weights: 500 per tenant
  JobServer server(test_workload(), config);
  EXPECT_EQ(server.submit(make_request(0, Kernel::kSort, 1, 300)).verdict,
            Verdict::kAdmitted);
  EXPECT_EQ(server.submit(make_request(0, Kernel::kSort, 2, 300)).verdict,
            Verdict::kRejectedShare);
  // The other tenant's slice is untouched by tenant 0's usage.
  EXPECT_EQ(server.submit(make_request(1, Kernel::kSort, 3, 300)).verdict,
            Verdict::kAdmitted);
  TenantTotals totals = server.tenant_totals(0);
  EXPECT_EQ(totals.rejected_share, 1u);
  server.resume();
  server.drain();
  // Dispatch releases queued cost: the rejected size is admissible now.
  EXPECT_EQ(server.submit(make_request(0, Kernel::kSort, 4, 300)).verdict,
            Verdict::kAdmitted);
}

TEST(ServeObs, PerRequestWindowsSumToPoolTotals) {
  ObsModeGuard obs_guard(obs::ObsMode::kCounters);
  // One lane, batch window 1: windows tile the serving interval, so
  // the per-request deltas of the happens-before-safe counters must
  // sum exactly to the pool-level delta.
  ServerConfig config = base_config(1);
  config.start_paused = true;
  JobServer server(test_workload(), config);
  std::vector<std::shared_ptr<Ticket>> tickets;
  const Kernel kernels[] = {Kernel::kSort, Kernel::kHistogram, Kernel::kSpmv,
                            Kernel::kDedup};
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(
        server.submit(make_request(0, kernels[i % 4], 50 + i, 800)).ticket);
  }
  obs::StatsSnapshot before = obs::snapshot_counters();
  server.resume();
  server.drain();
  for (auto& t : tickets) t->wait();
  obs::StatsSnapshot after = obs::snapshot_counters();

  JobStats sum;
  for (auto& t : tickets) {
    const JobStats& s = t->wait().stats;
    EXPECT_EQ(s.batch_jobs, 1u);
    sum.jobs_executed += s.jobs_executed;
    sum.spawns += s.spawns;
    sum.steals += s.steals;
    sum.injected += s.injected;
    sum.arena_leases += s.arena_leases;
  }
  auto delta = [&](obs::Counter c) { return after.total(c) - before.total(c); };
  EXPECT_EQ(sum.jobs_executed, delta(obs::Counter::kJobsExecuted));
  EXPECT_EQ(sum.spawns, delta(obs::Counter::kSpawns));
  EXPECT_EQ(sum.steals, delta(obs::Counter::kStealsSucceeded));
  EXPECT_EQ(sum.injected, delta(obs::Counter::kInjectedJobs));
  EXPECT_EQ(sum.arena_leases, delta(obs::Counter::kArenaLeaseReuses) +
                                  delta(obs::Counter::kArenaLeaseCreates));
  EXPECT_EQ(sum.injected, 8u);          // one root region per request
  EXPECT_GE(sum.jobs_executed, 8u);     // at least the roots ran
  EXPECT_GE(sum.arena_leases, 8u);      // each request leased its own
}

TEST(ServeBatching, SmallSameKernelJobsCoalesce) {
  ServerConfig config = base_config(1);
  config.start_paused = true;
  config.batch_window = 4;
  config.small_job_n = 1 << 13;
  JobServer server(test_workload(), config);
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(
        server.submit(make_request(0, Kernel::kSort, i, 512)).ticket);
  }
  server.resume();
  server.drain();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tickets[i]->wait().stats.batch_seq, 0u);
    EXPECT_EQ(tickets[i]->wait().stats.batch_jobs, 4u);
  }
  for (int i = 4; i < 6; ++i) {
    EXPECT_EQ(tickets[i]->wait().stats.batch_seq, 1u);
    EXPECT_EQ(tickets[i]->wait().stats.batch_jobs, 2u);
  }
  // Coalesced digests still match the direct batch call per request.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(tickets[i]->wait().digest,
              test_workload().run(Kernel::kSort, i, 512));
  }
}

TEST(ServeBatching, KernelChangeBreaksTheBatch) {
  ServerConfig config = base_config(1);
  config.start_paused = true;
  config.batch_window = 8;
  JobServer server(test_workload(), config);
  auto a = server.submit(make_request(0, Kernel::kSort, 1, 512)).ticket;
  auto b = server.submit(make_request(0, Kernel::kHistogram, 2, 512)).ticket;
  auto c = server.submit(make_request(0, Kernel::kSort, 3, 512)).ticket;
  server.resume();
  server.drain();
  // EDF order here is arrival order; a batch never spans two kernels.
  EXPECT_EQ(a->wait().stats.batch_seq, 0u);
  EXPECT_EQ(b->wait().stats.batch_seq, 1u);
  EXPECT_EQ(c->wait().stats.batch_seq, 2u);
}

TEST(ServePool, NoStraySingletonTouchFromServedRequests) {
  const u64 before = sched::ThreadPool::global_touches_while_banned();
  JobServer server(test_workload(), base_config(1, /*lanes=*/2));
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (std::size_t k = 0; k < kNumKernels; ++k) {
    tickets.push_back(
        server
            .submit(make_request(0, static_cast<Kernel>(k), 7 * k + 1, 900))
            .ticket);
  }
  for (auto& t : tickets) {
    EXPECT_EQ(t->wait().verdict, Verdict::kAdmitted);
  }
  server.drain();
  // Every kernel resolved its pool through the current_pool() seam;
  // nothing inside a served request reached for the global singleton.
  EXPECT_EQ(sched::ThreadPool::global_touches_while_banned(), before);
}

TEST(ServeConcurrency, ConcurrentSubmittersAcrossTenants) {
  // The TSAN target: 4 submitter threads race against 2 dispatch lanes
  // on one server; results must still match direct batch calls.
  const Workload& workload = test_workload();
  ServerConfig config = base_config(2, /*lanes=*/2);
  config.batch_window = 4;
  JobServer server(workload, config);
  constexpr int kPerThread = 12;
  std::vector<std::vector<std::shared_ptr<Ticket>>> tickets(4);
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerThread; ++i) {
        const Kernel kernel = static_cast<Kernel>(i % kNumKernels);
        auto outcome = server.submit(make_request(
            static_cast<u32>(s % 2), kernel, 1000 + s * 100 + i, 700));
        ASSERT_EQ(outcome.verdict, Verdict::kAdmitted);
        tickets[s].push_back(std::move(outcome.ticket));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < kPerThread; ++i) {
      const Kernel kernel = static_cast<Kernel>(i % kNumKernels);
      EXPECT_EQ(tickets[s][i]->wait().digest,
                workload.run(kernel, 1000 + s * 100 + i, 700));
    }
  }
  server.drain();
  TenantTotals t0 = server.tenant_totals(0);
  TenantTotals t1 = server.tenant_totals(1);
  EXPECT_EQ(t0.completed + t1.completed, 4u * kPerThread);
}

TEST(ServeLifecycle, DestructorDrainsAdmittedJobs) {
  std::vector<std::shared_ptr<Ticket>> tickets;
  {
    ServerConfig config = base_config(1);
    config.start_paused = true;  // nothing dispatched before teardown
    JobServer server(test_workload(), config);
    for (int i = 0; i < 3; ++i) {
      tickets.push_back(
          server.submit(make_request(0, Kernel::kSort, i, 512)).ticket);
    }
  }  // destructor overrides pause and drains
  for (auto& t : tickets) {
    EXPECT_TRUE(t->done());
    EXPECT_EQ(t->wait().verdict, Verdict::kAdmitted);
  }
}

TEST(ServeTrace, BuildTraceIsDeterministic) {
  TraceSpec spec;
  spec.seed = 99;
  TenantTraffic a;
  a.tenant = 0;
  a.kernels = {Kernel::kSort, Kernel::kSpmv};
  a.count = 25;
  a.deadline_slack = 5000;
  TenantTraffic b;
  b.tenant = 1;
  b.count = 40;
  b.rate_hz = 5000;
  spec.tenants = {a, b};
  auto t1 = build_trace(spec);
  auto t2 = build_trace(spec);
  ASSERT_EQ(t1.size(), 65u);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].at_s, t2[i].at_s);
    EXPECT_EQ(t1[i].req.tenant, t2[i].req.tenant);
    EXPECT_EQ(t1[i].req.seed, t2[i].req.seed);
    EXPECT_EQ(t1[i].req.n, t2[i].req.n);
    EXPECT_EQ(t1[i].req.deadline, t2[i].req.deadline);
  }
  // Deadlines only where requested.
  for (const TimedRequest& r : t1) {
    if (r.req.tenant == 0) {
      EXPECT_GT(r.req.deadline, 0u);
    } else {
      EXPECT_EQ(r.req.deadline, 0u);
    }
  }
}

TEST(ServeKnobs, GuardPinsAndRestoresTheFamily) {
  const ServePolicy prev_policy = serve_policy();
  const std::size_t prev_queue = serve_queue_bound();
  const std::size_t prev_batch = serve_batch_window();
  {
    ServeKnobGuard guard(ServePolicy::kFifo, 7, 3);
    EXPECT_EQ(serve_policy(), ServePolicy::kFifo);
    EXPECT_EQ(serve_queue_bound(), 7u);
    EXPECT_EQ(serve_batch_window(), 3u);
    // A server constructed now captures the pinned knobs (queue bound
    // 7: the 8th outstanding submit bounces).
    ServerConfig config;
    config.tenants = {TenantConfig{}};
    config.num_threads = 2;
    config.start_paused = true;
    JobServer server(test_workload(), config);
    for (int i = 0; i < 7; ++i) {
      EXPECT_EQ(server.submit(make_request(0, Kernel::kSort, i, 64)).verdict,
                Verdict::kAdmitted);
    }
    EXPECT_EQ(server.submit(make_request(0, Kernel::kSort, 9, 64)).verdict,
              Verdict::kRejectedQueueFull);
    server.resume();
    server.drain();
  }
  EXPECT_EQ(serve_policy(), prev_policy);
  EXPECT_EQ(serve_queue_bound(), prev_queue);
  EXPECT_EQ(serve_batch_window(), prev_batch);
}

}  // namespace
}  // namespace rpb::serve
