// Tests for the text substrate: corpus generation, suffix array vs a
// brute-force reference, LCP/LRS (including the planted repeat), and
// BWT round-tripping.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "sched/thread_pool.h"
#include "text/bwt.h"
#include "text/corpus.h"
#include "text/lcp.h"
#include "text/suffix_array.h"

namespace rpb::text {
namespace {

class TextEnv : public ::testing::Environment {
 public:
  void SetUp() override { sched::ThreadPool::reset_global(4); }
  void TearDown() override { sched::ThreadPool::reset_global(1); }
};
const ::testing::Environment* const kTextEnv =
    ::testing::AddGlobalTestEnvironment(new TextEnv);

std::vector<u8> to_bytes(const std::string& s) {
  return std::vector<u8>(s.begin(), s.end());
}

std::vector<u32> brute_force_sa(std::span<const u8> text) {
  std::vector<u32> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](u32 a, u32 b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

TEST(Corpus, DeterministicAndPrintable) {
  auto a = make_corpus(10000, 5);
  auto b = make_corpus(10000, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10000u);
  for (u8 ch : a) {
    ASSERT_TRUE(ch == ' ' || (ch >= 'a' && ch <= 'z'));
  }
}

TEST(Corpus, PlantedRepeatIsPresent) {
  const std::size_t repeat = 200;
  auto text = make_corpus(20000, 5, repeat);
  auto result = longest_repeated_substring(std::span<const u8>(text));
  EXPECT_GE(result.length, repeat);
}

class SaModes : public ::testing::TestWithParam<AccessMode> {};

TEST_P(SaModes, MatchesBruteForceOnStrings) {
  for (const std::string& s :
       {std::string("banana"), std::string("mississippi"),
        std::string("aaaaaaaaaa"), std::string("abcabcabcabcx"),
        std::string("z"), std::string("ba")}) {
    auto text = to_bytes(s);
    auto got = suffix_array(std::span<const u8>(text), GetParam());
    EXPECT_EQ(got, brute_force_sa(text)) << s;
  }
}

TEST_P(SaModes, MatchesBruteForceOnCorpus) {
  auto text = make_corpus(3000, 11);
  auto got = suffix_array(std::span<const u8>(text), GetParam());
  EXPECT_EQ(got, brute_force_sa(text));
}

INSTANTIATE_TEST_SUITE_P(Modes, SaModes,
                         ::testing::Values(AccessMode::kUnchecked,
                                           AccessMode::kChecked,
                                           AccessMode::kAtomic));

TEST(SuffixArray, EmptyAndSingle) {
  std::vector<u8> empty;
  EXPECT_TRUE(suffix_array(std::span<const u8>(empty)).empty());
  auto one = to_bytes("x");
  EXPECT_EQ(suffix_array(std::span<const u8>(one)), (std::vector<u32>{0}));
}

TEST(SuffixArray, LargeCorpusIsValidPermutationInOrder) {
  auto text = make_corpus(100000, 13);
  auto sa = suffix_array(std::span<const u8>(text));
  // Permutation check.
  std::vector<u8> seen(text.size(), 0);
  for (u32 s : sa) {
    ASSERT_LT(s, text.size());
    ASSERT_FALSE(seen[s]);
    seen[s] = 1;
  }
  // Spot-check sortedness on adjacent pairs.
  for (std::size_t j = 1; j < sa.size(); j += 97) {
    auto a = sa[j - 1], b = sa[j];
    bool le = std::lexicographical_compare(
                  text.begin() + a, text.end(), text.begin() + b, text.end()) ||
              std::equal(text.begin() + a, text.end(), text.begin() + b);
    ASSERT_TRUE(le) << "order violated at " << j;
  }
}

TEST(Lcp, KnownValuesOnBanana) {
  auto text = to_bytes("banana");
  auto sa = suffix_array(std::span<const u8>(text));
  // SA of banana: 5(a) 3(ana) 1(anana) 0(banana) 4(na) 2(nana)
  EXPECT_EQ(sa, (std::vector<u32>{5, 3, 1, 0, 4, 2}));
  auto lcp = lcp_kasai(std::span<const u8>(text), sa);
  EXPECT_EQ(lcp, (std::vector<u32>{0, 1, 3, 0, 0, 2}));
}

TEST(Lcp, AgainstBruteForceOnCorpus) {
  auto text = make_corpus(2000, 17);
  auto sa = suffix_array(std::span<const u8>(text));
  auto lcp = lcp_kasai(std::span<const u8>(text), sa);
  for (std::size_t j = 1; j < sa.size(); j += 13) {
    u32 a = sa[j - 1], b = sa[j], h = 0;
    while (a + h < text.size() && b + h < text.size() &&
           text[a + h] == text[b + h]) {
      ++h;
    }
    ASSERT_EQ(lcp[j], h) << "at " << j;
  }
}

TEST(Lrs, FindsExactRepeat) {
  auto text = to_bytes("xabcabcy");
  auto result = longest_repeated_substring(std::span<const u8>(text));
  EXPECT_EQ(result.length, 3u);  // "abc"
  // Both occurrences really match.
  for (u32 k = 0; k < result.length; ++k) {
    EXPECT_EQ(text[result.position_a + k], text[result.position_b + k]);
  }
}

TEST(Lrs, NoRepeats) {
  auto text = to_bytes("abcdefg");  // all distinct: nothing repeats
  EXPECT_EQ(longest_repeated_substring(std::span<const u8>(text)).length, 0u);
  auto one_repeat = to_bytes("abcdefa");  // only 'a' repeats
  EXPECT_EQ(longest_repeated_substring(std::span<const u8>(one_repeat)).length,
            1u);
  auto single = to_bytes("a");
  EXPECT_EQ(longest_repeated_substring(std::span<const u8>(single)).length,
            0u);
}

class BwtModes : public ::testing::TestWithParam<AccessMode> {};

TEST_P(BwtModes, RoundTripsCorpus) {
  for (std::size_t n : {1ul, 2ul, 100ul, 5000ul, 100000ul}) {
    auto text = make_corpus(n, n + 31);
    auto encoded = bwt_encode(std::span<const u8>(text), GetParam());
    EXPECT_EQ(encoded.size(), text.size() + 1);
    EXPECT_EQ(std::count(encoded.begin(), encoded.end(), 0), 1);
    auto decoded = bwt_decode(std::span<const u8>(encoded), GetParam());
    ASSERT_EQ(decoded, text) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BwtModes,
                         ::testing::Values(AccessMode::kUnchecked,
                                           AccessMode::kChecked,
                                           AccessMode::kAtomic));

TEST(Bwt, KnownTransform) {
  // banana + sentinel: BWT is "annb\0aa".
  auto text = to_bytes("banana");
  auto encoded = bwt_encode(std::span<const u8>(text));
  std::vector<u8> expected{'a', 'n', 'n', 'b', 0, 'a', 'a'};
  EXPECT_EQ(encoded, expected);
}

TEST(Bwt, RejectsNulBytes) {
  std::vector<u8> text{'a', 0, 'b'};
  EXPECT_THROW(bwt_encode(std::span<const u8>(text)), std::invalid_argument);
}

TEST_P(BwtModes, ParallelChaseMatchesSerialDecode) {
  for (std::size_t n : {1ul, 2ul, 100ul, 50000ul}) {
    auto text = make_corpus(n, n + 77);
    auto encoded = bwt_encode(std::span<const u8>(text));
    auto serial = bwt_decode(std::span<const u8>(encoded), GetParam());
    for (std::size_t segments : {0ul, 1ul, 3ul, 16ul, 1000ul}) {
      auto parallel = bwt_decode_parallel_chase(std::span<const u8>(encoded),
                                                GetParam(), segments);
      ASSERT_EQ(parallel, serial) << "n=" << n << " segments=" << segments;
    }
  }
}

TEST(Bwt, ClusteringProperty) {
  // BWT of repetitive text has long runs; sanity-check compressibility.
  auto text = make_corpus(50000, 41);
  auto encoded = bwt_encode(std::span<const u8>(text));
  std::size_t runs_bwt = 1;
  for (std::size_t i = 1; i < encoded.size(); ++i) {
    runs_bwt += encoded[i] != encoded[i - 1];
  }
  std::size_t runs_plain = 1;
  for (std::size_t i = 1; i < text.size(); ++i) {
    runs_plain += text[i] != text[i - 1];
  }
  EXPECT_LT(runs_bwt, runs_plain);
}

}  // namespace
}  // namespace rpb::text
