// Failure-injection tests for the scheduling substrate: exceptions
// thrown inside pool tasks must propagate to the fork site (across
// steals), and the pool must stay usable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "sched/mq_executor.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "test_guards.h"

namespace rpb::sched {
namespace {

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

TEST(PoolErrors, RunPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([] { throw Boom(); }), Boom);
  // Pool still works afterwards.
  int v = 0;
  pool.run([&] { v = 1; });
  EXPECT_EQ(v, 1);
}

TEST(PoolErrors, JoinLeftBranchThrows) {
  ThreadPool pool(4);
  std::atomic<bool> right_ran{false};
  EXPECT_THROW(pool.run([&] {
                 pool.join([] { throw Boom(); },
                           [&] { right_ran.store(true); });
               }),
               Boom);
  // The right branch is resolved (run or stolen) before unwinding.
  EXPECT_TRUE(right_ran.load());
}

TEST(PoolErrors, JoinRightBranchThrows) {
  ThreadPool pool(4);
  std::atomic<bool> left_ran{false};
  EXPECT_THROW(pool.run([&] {
                 pool.join([&] { left_ran.store(true); },
                           [] { throw Boom(); });
               }),
               Boom);
  EXPECT_TRUE(left_ran.load());
}

TEST(PoolErrors, LeftErrorWinsWhenBothThrow) {
  ThreadPool pool(2);
  try {
    pool.run([&] {
      pool.join([] { throw std::runtime_error("left"); },
                [] { throw std::runtime_error("right"); });
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "left");
  }
}

TEST(PoolErrors, ParallelForLeafThrowPropagates) {
  ThreadPool::reset_global(4);
  EXPECT_THROW(parallel_for(0, 100000,
                            [](std::size_t i) {
                              if (i == 54321) throw Boom();
                            }),
               Boom);
  // Subsequent parallel work is unaffected.
  std::atomic<int> count{0};
  parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
  ThreadPool::reset_global(1);
}

TEST(PoolErrors, DeepNestedThrowUnwindsCleanly) {
  ThreadPool pool(4);
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) throw Boom();
    pool.join([&] { recurse(depth - 1); }, [] {});
  };
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.run([&] { recurse(10); }), Boom);
  }
}

TEST(PoolErrors, RepeatedThrowingRunsDoNotLeakState) {
  ThreadPool pool(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_THROW(pool.run([] { throw Boom(); }), Boom);
  }
  std::atomic<int> ok{0};
  pool.run([&] {
    pool.join([&] { ok.fetch_add(1); }, [&] { ok.fetch_add(1); });
  });
  EXPECT_EQ(ok.load(), 2);
}

TEST(MqExecutorErrors, TaskExceptionCancelsAndRethrows) {
  struct Key {
    std::uint64_t operator()(int v) const {
      return static_cast<std::uint64_t>(v);
    }
  };
  MqExecutor<int, Key> executor(4);
  std::atomic<int> processed{0};
  EXPECT_THROW(
      executor.run(
          [](auto& handle) {
            for (int i = 0; i < 10000; ++i) handle.push(i);
          },
          [&](int item, auto&) {
            if (item == 500) throw Boom();
            processed.fetch_add(1);
          }),
      Boom);
  // Cancellation means we stop early; no hang, no terminate.
  EXPECT_LT(processed.load(), 10000);
}

// A throw from the middle of an adaptive leaf's chunk walk must unwind
// through any forks the splitter made and reach the caller, leaving the
// pool usable.
TEST(PoolErrors, LazyMidRangeLeafThrowPropagates) {
  ThreadPool::reset_global(4);
  SplitModeGuard guard(SplitMode::kLazy);
  EXPECT_THROW(parallel_for_range(
                   0, 100000,
                   [](std::size_t lo, std::size_t hi) {
                     if (lo <= 54321 && 54321 < hi) throw Boom();
                   },
                   /*grain=*/16),
               Boom);
  std::atomic<int> count{0};
  parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
  ThreadPool::reset_global(1);
}

TEST(PoolErrors, EagerModeThrowStillPropagates) {
  ThreadPool::reset_global(4);
  SplitModeGuard guard(SplitMode::kEager);
  EXPECT_THROW(parallel_for(0, 100000,
                            [](std::size_t i) {
                              if (i == 54321) throw Boom();
                            }),
               Boom);
  ThreadPool::reset_global(1);
}

TEST(PoolErrors, NestedParallelForInsideJoinThrow) {
  ThreadPool::reset_global(4);
  SplitModeGuard guard(SplitMode::kLazy);
  std::atomic<int> right_done{0};
  EXPECT_THROW(
      join(
          [&] {
            parallel_for(0, 50000,
                         [](std::size_t i) {
                           if (i == 12345) throw Boom();
                         },
                         /*grain=*/32);
          },
          [&] {
            parallel_for(0, 50000,
                         [&](std::size_t) { right_done.fetch_add(1); },
                         /*grain=*/32);
          }),
      Boom);
  // The right branch resolved fully before the join unwound.
  EXPECT_EQ(right_done.load(), 50000);
  ThreadPool::reset_global(1);
}

TEST(PoolErrors, ReduceThrowPropagates) {
  ThreadPool::reset_global(2);
  EXPECT_THROW(parallel_reduce(
                   0, 10000, 0,
                   [](std::size_t i) -> int {
                     if (i == 7777) throw Boom();
                     return 1;
                   },
                   [](int a, int b) { return a + b; }),
               Boom);
  ThreadPool::reset_global(1);
}

}  // namespace
}  // namespace rpb::sched
