// Unit and stress tests for the scheduling substrate: Chase-Lev deque,
// fork-join pool, parallel primitives, MultiQueue, and MqExecutor.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "sched/chase_lev_deque.h"
#include "sched/mq_executor.h"
#include "sched/multiqueue.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "test_guards.h"

namespace rpb::sched {
namespace {

class CountingJob final : public Job {
 public:
  explicit CountingJob(std::atomic<int>& counter) : counter_(counter) {}

 private:
  void execute() override { counter_.fetch_add(1); }
  std::atomic<int>& counter_;
};

TEST(ChaseLevDeque, OwnerPushPopLifo) {
  ChaseLevDeque deque(4);  // force growth
  std::atomic<int> counter{0};
  std::vector<std::unique_ptr<CountingJob>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.push_back(std::make_unique<CountingJob>(counter));
    deque.push(jobs.back().get());
  }
  // LIFO: pops return in reverse push order.
  for (int i = 99; i >= 0; --i) {
    EXPECT_EQ(deque.pop(), jobs[static_cast<std::size_t>(i)].get());
  }
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(ChaseLevDeque, SizeEstimateTracksPushPop) {
  ChaseLevDeque deque;
  std::atomic<int> counter{0};
  CountingJob a(counter), b(counter), c(counter);
  EXPECT_EQ(deque.size_estimate(), 0u);
  EXPECT_TRUE(deque.looks_empty());
  deque.push(&a);
  deque.push(&b);
  deque.push(&c);
  EXPECT_EQ(deque.size_estimate(), 3u);
  EXPECT_EQ(deque.steal(), &a);
  EXPECT_EQ(deque.size_estimate(), 2u);
  EXPECT_EQ(deque.pop(), &c);
  EXPECT_EQ(deque.pop(), &b);
  EXPECT_EQ(deque.size_estimate(), 0u);
}

TEST(ChaseLevDeque, StealTakesOldest) {
  ChaseLevDeque deque;
  std::atomic<int> counter{0};
  CountingJob a(counter), b(counter);
  deque.push(&a);
  deque.push(&b);
  EXPECT_EQ(deque.steal(), &a);
  EXPECT_EQ(deque.pop(), &b);
  EXPECT_EQ(deque.steal(), nullptr);
}

TEST(ChaseLevDeque, ConcurrentStealersGetEachJobOnce) {
  ChaseLevDeque deque(8);
  std::atomic<int> counter{0};
  constexpr int kJobs = 20000;
  std::vector<std::unique_ptr<CountingJob>> jobs;
  jobs.reserve(kJobs);
  std::atomic<bool> start{false};
  std::atomic<int> executed{0};

  auto thief = [&] {
    while (!start.load()) std::this_thread::yield();
    for (;;) {
      Job* j = deque.steal();
      if (j != nullptr) {
        j->run_claimed();
        executed.fetch_add(1);
      } else if (deque.looks_empty()) {
        // May race with in-flight pushes; the owner loop below ends
        // after all pushes, so re-check a few times.
        if (counter.load() >= 0 && deque.steal() == nullptr &&
            executed.load() + 1 > kJobs) {
          return;
        }
        if (executed.load() >= kJobs / 2) return;  // enough coverage
        std::this_thread::yield();
      }
    }
  };

  std::thread t1(thief), t2(thief);
  start.store(true);
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back(std::make_unique<CountingJob>(counter));
    deque.push(jobs.back().get());
    if (i % 64 == 0) {
      if (Job* j = deque.pop()) {
        j->run_claimed();
        executed.fetch_add(1);
      }
    }
  }
  // Owner drains what the thieves left.
  for (;;) {
    Job* j = deque.pop();
    if (j == nullptr) break;
    j->run_claimed();
    executed.fetch_add(1);
  }
  t1.join();
  t2.join();
  // Every job ran exactly once: counter == executed == total run.
  EXPECT_EQ(counter.load(), executed.load());
  EXPECT_LE(counter.load(), kJobs);
}

TEST(ThreadPool, RunExecutesInline) {
  ThreadPool pool(2);
  int value = 0;
  pool.run([&] { value = 42; });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, JoinRunsBothBranches) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.run([&] {
    pool.join([&] { sum.fetch_add(1); }, [&] { sum.fetch_add(2); });
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, DeepNestedJoin) {
  ThreadPool pool(4);
  // Fibonacci via nested join exercises stealing and inline pops.
  std::function<int(int)> fib = [&](int n) -> int {
    if (n < 2) return n;
    int a = 0, b = 0;
    pool.join([&] { a = fib(n - 1); }, [&] { b = fib(n - 2); });
    return a + b;
  };
  int result = 0;
  pool.run([&] { result = fib(18); });
  EXPECT_EQ(result, 2584);
}

TEST(ThreadPool, ManySequentialRuns) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> n{0};
    pool.run([&] { pool.join([&] { n.fetch_add(1); }, [&] { n.fetch_add(1); }); });
    ASSERT_EQ(n.load(), 2);
  }
}

class ParallelForThreads : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ThreadPool::reset_global(static_cast<std::size_t>(GetParam()));
  }
  void TearDown() override { ThreadPool::reset_global(1); }
};

TEST_P(ParallelForThreads, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<int> hits(kN, 0);
  parallel_for(0, kN, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST_P(ParallelForThreads, ReduceMatchesSerialSum) {
  constexpr std::size_t kN = 100000;
  auto total = parallel_reduce(
      0, kN, u64{0}, [](std::size_t i) { return static_cast<u64>(i); },
      [](u64 a, u64 b) { return a + b; });
  EXPECT_EQ(total, u64{kN} * (kN - 1) / 2);
}

TEST_P(ParallelForThreads, RangeFormPartitionsExactly) {
  constexpr std::size_t kN = 54321;
  std::atomic<u64> covered{0};
  parallel_for_range(0, kN, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    covered.fetch_add(hi - lo);
  });
  EXPECT_EQ(covered.load(), kN);
}

TEST_P(ParallelForThreads, EmptyAndSingletonRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST_P(ParallelForThreads, NestedParallelFor) {
  constexpr std::size_t kOuter = 64, kInner = 64;
  std::vector<int> hits(kOuter * kInner, 0);
  parallel_for(0, kOuter, [&](std::size_t i) {
    parallel_for(0, kInner, [&](std::size_t j) { hits[i * kInner + j] += 1; });
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForThreads,
                         ::testing::Values(1, 2, 4, 8));

// Regression test for the lock-free ThreadPool::global() fast path:
// many external threads entering parallel regions concurrently must
// neither race (TSAN-clean) nor serialize on a pool-lookup mutex.
// reset_global is excluded while the callers run, per the contract.
TEST(ThreadPoolGlobal, ConcurrentExternalCallersSharePool) {
  ThreadPool::reset_global(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 25;
  constexpr std::size_t kN = 2000;
  std::atomic<u64> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        u64 sum = parallel_reduce(
            0, kN, u64{0}, [](std::size_t i) { return static_cast<u64>(i); },
            [](u64 a, u64 b) { return a + b; });
        total.fetch_add(sum);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), u64{kCallers} * kRounds * (kN * (kN - 1) / 2));
  ThreadPool::reset_global(1);
}

// Tiny grain + oversubscribed pool force the adaptive splitter through
// its fork-on-demand path constantly; every index must still be covered
// exactly once.
TEST(LazySplitter, ForcedStealingCoversEveryIndexOnce) {
  ThreadPool::reset_global(8);
  SplitModeGuard guard(SplitMode::kLazy);
  constexpr std::size_t kN = 200000;
  std::vector<int> hits(kN, 0);
  parallel_for(0, kN, [&](std::size_t i) { hits[i] += 1; }, /*grain=*/1);
  EXPECT_TRUE(
      std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  ThreadPool::reset_global(1);
}

TEST(LazySplitter, RangeFormPartitionsExactlyBothModes) {
  ThreadPool::reset_global(4);
  constexpr std::size_t kN = 54321;
  for (SplitMode mode : {SplitMode::kEager, SplitMode::kLazy}) {
    SplitModeGuard guard(mode);
    std::atomic<u64> covered{0};
    parallel_for_range(
        0, kN,
        [&](std::size_t lo, std::size_t hi) {
          ASSERT_LT(lo, hi);
          covered.fetch_add(hi - lo);
        },
        /*grain=*/16);
    EXPECT_EQ(covered.load(), kN);
  }
  ThreadPool::reset_global(1);
}

TEST(LazySplitter, NestedParallelForInsideJoin) {
  ThreadPool::reset_global(4);
  SplitModeGuard guard(SplitMode::kLazy);
  constexpr std::size_t kHalf = 50000;
  std::vector<int> hits(2 * kHalf, 0);
  join(
      [&] {
        parallel_for(0, kHalf, [&](std::size_t i) { hits[i] += 1; },
                     /*grain=*/64);
      },
      [&] {
        parallel_for(kHalf, 2 * kHalf, [&](std::size_t i) { hits[i] += 1; },
                     /*grain=*/64);
      });
  EXPECT_TRUE(
      std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
  ThreadPool::reset_global(1);
}

// The reduction value type needs neither a default constructor nor an
// aggregate zero state: both splitters must seed accumulators from
// `identity`.
struct SumBox {
  explicit SumBox(u64 v) : value(v) {}
  u64 value;
};

TEST(Reduce, NonDefaultConstructibleValueBothModes) {
  ThreadPool::reset_global(4);
  constexpr std::size_t kN = 10000;
  for (SplitMode mode : {SplitMode::kEager, SplitMode::kLazy}) {
    SplitModeGuard guard(mode);
    SumBox total = parallel_reduce_range(
        0, kN, SumBox(0),
        [](std::size_t lo, std::size_t hi) {
          u64 s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += i;
          return SumBox(s);
        },
        [](SumBox a, SumBox b) { return SumBox(a.value + b.value); },
        /*grain=*/64);
    EXPECT_EQ(total.value, u64{kN} * (kN - 1) / 2);
  }
  ThreadPool::reset_global(1);
}

// Oversubscribed deep fork-join tree: exercises victim selection, steal
// batching (parked extras drain through the pop-first loops), and the
// join pop-loop under heavy contention.
TEST(ThreadPool, OversubscribedTreeStress) {
  ThreadPool pool(8);
  std::atomic<u64> leaves{0};
  std::function<void(int)> tree = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    pool.join([&] { tree(depth - 1); }, [&] { tree(depth - 1); });
  };
  pool.run([&] { tree(14); });
  EXPECT_EQ(leaves.load(), 1u << 14);
}

TEST(ThreadPoolStats, CountsWorkAndSteals) {
  ThreadPool pool(4);
  auto before = pool.stats();
  EXPECT_EQ(before.jobs_executed, 0u);
  // A deep fork-join tree from one root gives the other workers
  // something to steal (on any machine: oversubscription still steals).
  std::atomic<u64> leaves{0};
  std::function<void(int)> tree = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    pool.join([&] { tree(depth - 1); }, [&] { tree(depth - 1); });
  };
  pool.run([&] { tree(12); });
  EXPECT_EQ(leaves.load(), 1u << 12);
  auto after = pool.stats();
  EXPECT_EQ(after.injected, 1u);
  EXPECT_GE(after.jobs_executed, 1u);  // at least the root
  // Counters are monotone and consistent.
  EXPECT_GE(after.jobs_executed, after.steals);
}

struct IdentityKey {
  u64 operator()(u64 v) const { return v; }
};

TEST(MultiQueue, PushPopAllElements) {
  MultiQueue<u64, IdentityKey> mq(4);
  u64 rng = 1;
  constexpr u64 kN = 10000;
  for (u64 i = 0; i < kN; ++i) mq.push(i, rng);
  EXPECT_EQ(mq.size_estimate(), kN);
  std::multiset<u64> seen;
  while (auto v = mq.try_pop(rng)) seen.insert(*v);
  EXPECT_EQ(seen.size(), kN);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), kN - 1);
}

TEST(MultiQueue, ApproximatePriorityOrder) {
  // With a single sub-queue pair domain, pops should be *mostly*
  // ascending; we only assert a weak rank property: the first pop is
  // among the smallest quarter.
  MultiQueue<u64, IdentityKey> mq(1, 2);
  u64 rng = 99;
  constexpr u64 kN = 4000;
  for (u64 i = 0; i < kN; ++i) mq.push(kN - 1 - i, rng);
  auto first = mq.try_pop(rng);
  ASSERT_TRUE(first.has_value());
  EXPECT_LT(*first, kN / 4);
}

TEST(MultiQueue, ConcurrentPushPopConservesElements) {
  MultiQueue<u64, IdentityKey> mq(4);
  constexpr int kPerThread = 20000;
  constexpr int kThreads = 4;
  std::atomic<u64> popped_count{0}, popped_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      u64 rng = static_cast<u64>(t) * 7919 + 1;
      for (int i = 0; i < kPerThread; ++i) {
        mq.push(static_cast<u64>(i), rng);
        if (i % 2 == 1) {
          if (auto v = mq.try_pop(rng)) {
            popped_count.fetch_add(1);
            popped_sum.fetch_add(*v);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  u64 rng = 5;
  while (auto v = mq.try_pop(rng)) {
    popped_count.fetch_add(1);
    popped_sum.fetch_add(*v);
  }
  EXPECT_EQ(popped_count.load(), u64{kPerThread} * kThreads);
  EXPECT_EQ(popped_sum.load(),
            u64{kThreads} * (u64{kPerThread} * (kPerThread - 1) / 2));
}

TEST(MqExecutor, ProcessesSeededAndSpawnedTasks) {
  struct Key {
    u64 operator()(int v) const { return static_cast<u64>(v); }
  };
  MqExecutor<int, Key> executor(4);
  std::atomic<int> processed{0};
  executor.run(
      [&](auto& handle) {
        for (int i = 0; i < 100; ++i) handle.push(1000);
      },
      [&](int item, auto& handle) {
        processed.fetch_add(1);
        // Each seed task spawns a 3-deep chain.
        if (item > 997) handle.push(item - 1);
      });
  EXPECT_EQ(processed.load(), 100 * 3 + 100);
}

TEST(MqExecutor, EmptySeedTerminates) {
  struct Key {
    u64 operator()(int v) const { return static_cast<u64>(v); }
  };
  MqExecutor<int, Key> executor(4);
  std::atomic<int> processed{0};
  executor.run([](auto&) {}, [&](int, auto&) { processed.fetch_add(1); });
  EXPECT_EQ(processed.load(), 0);
}

}  // namespace
}  // namespace rpb::sched
