// Randomized differential tests: drive the concurrent data structures
// with generated operation sequences and compare against their obvious
// sequential references.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <vector>

#include "graph/union_find.h"
#include "sched/multiqueue.h"
#include "seq/hash_map.h"
#include "seq/hash_table.h"
#include "support/prng.h"

namespace rpb {
namespace {

class DifferentialSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(DifferentialSeeds, HashSetMatchesStdSet) {
  Rng rng(GetParam());
  seq::ConcurrentHashSet set(4096, AccessMode::kAtomic);
  std::set<u64> reference;
  for (u64 op = 0; op < 20000; ++op) {
    u64 key = rng.next(op * 2, 3000);  // small key space: many repeats
    if (rng.next(op * 2 + 1, 3) == 0) {
      EXPECT_EQ(set.contains(key), reference.count(key) > 0) << "op " << op;
    } else {
      EXPECT_EQ(set.insert(key), reference.insert(key).second) << "op " << op;
    }
  }
  auto keys = set.keys();
  EXPECT_EQ(keys.size(), reference.size());
}

TEST_P(DifferentialSeeds, HashMapMatchesStdMap) {
  Rng rng(GetParam());
  seq::ConcurrentHashMap map(4096);
  std::map<u64, u64> reference;
  for (u64 op = 0; op < 20000; ++op) {
    u64 key = rng.next(op * 3, 2000);
    u64 val = rng.next(op * 3 + 1, 1000);
    switch (rng.next(op * 3 + 2, 4)) {
      case 0:
        map.insert_or_add(key, val);
        reference[key] += val;
        break;
      case 1: {
        map.insert_or_min(key + 100000, val);
        auto [it, fresh] = reference.try_emplace(key + 100000, val);
        if (!fresh) it->second = std::min(it->second, val);
        break;
      }
      case 2: {
        map.insert_or_max(key + 200000, val);
        auto [it, fresh] = reference.try_emplace(key + 200000, val);
        if (!fresh) it->second = std::max(it->second, val);
        break;
      }
      default: {
        auto got = map.get(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got.has_value()) << "op " << op;
        } else {
          EXPECT_EQ(got, std::optional<u64>(it->second)) << "op " << op;
        }
      }
    }
  }
  auto entries = map.entries();
  EXPECT_EQ(entries.size(), reference.size());
  for (auto [k, v] : entries) EXPECT_EQ(reference.at(k), v);
}

TEST_P(DifferentialSeeds, UnionFindMatchesSerialDsu) {
  Rng rng(GetParam());
  constexpr std::size_t kN = 500;
  graph::UnionFind uf(kN);
  // Straightforward quadratic reference.
  std::vector<u32> label(kN);
  for (u32 i = 0; i < kN; ++i) label[i] = i;
  auto relabel = [&](u32 from, u32 to) {
    for (u32& l : label) {
      if (l == from) l = to;
    }
  };
  for (u64 op = 0; op < 5000; ++op) {
    auto a = static_cast<u32>(rng.next(op * 2, kN));
    auto b = static_cast<u32>(rng.next(op * 2 + 1, kN));
    if (rng.next(op * 7, 2) == 0) {
      bool merged = uf.unite(a, b);
      EXPECT_EQ(merged, label[a] != label[b]) << "op " << op;
      if (label[a] != label[b]) relabel(label[a], label[b]);
    } else {
      EXPECT_EQ(uf.same(a, b), label[a] == label[b]) << "op " << op;
    }
  }
}

struct IdentityKey {
  u64 operator()(u64 v) const { return v; }
};

TEST_P(DifferentialSeeds, MultiQueuePreservesMultisetContents) {
  Rng rng(GetParam());
  sched::MultiQueue<u64, IdentityKey> mq(2, 2);
  std::multiset<u64> reference;
  u64 state = GetParam() + 1;
  for (u64 op = 0; op < 20000; ++op) {
    if (rng.next(op, 3) != 0) {
      u64 v = rng.next(op * 5 + 1, 1000);
      mq.push(v, state);
      reference.insert(v);
    } else {
      auto popped = mq.try_pop(state);
      if (reference.empty()) {
        EXPECT_FALSE(popped.has_value());
      } else {
        ASSERT_TRUE(popped.has_value());
        auto it = reference.find(*popped);
        ASSERT_NE(it, reference.end()) << "popped value never pushed";
        reference.erase(it);
      }
    }
  }
  EXPECT_EQ(mq.size_estimate(), reference.size());
  while (auto v = mq.try_pop(state)) {
    auto it = reference.find(*v);
    ASSERT_NE(it, reference.end());
    reference.erase(it);
  }
  EXPECT_TRUE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeeds,
                         ::testing::Values(1u, 2u, 3u, 42u, 12345u));

}  // namespace
}  // namespace rpb
