// Dynamic priority scheduling with the MultiQueue (paper Sec. 6):
// a discrete-event style workload where tasks spawn follow-up tasks at
// later "timestamps", processed by long-running workers in relaxed
// priority order. The example also measures the MultiQueue's rank
// quality: how far from global priority order its pops actually are.
//
//   $ ./examples/priority_scheduling [--tasks 200000] [--threads 4]
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "sched/mq_executor.h"
#include "sched/multiqueue.h"
#include "support/cli.h"
#include "support/hash.h"
#include "support/timer.h"

using namespace rpb;

namespace {

struct Event {
  u64 timestamp;
  u32 generation;
};

struct EventKey {
  u64 operator()(const Event& e) const { return e.timestamp; }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("tasks", 200000));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 4));

  // Part 1: event simulation. Each seed event spawns up to 3
  // generations of follow-ups at later timestamps.
  std::atomic<u64> processed{0};
  std::atomic<u64> max_seen_ts{0};
  Timer t_sim;
  sched::MqExecutor<Event, EventKey> executor(threads);
  executor.run(
      [&](auto& handle) {
        for (std::size_t i = 0; i < n; ++i) {
          handle.push(Event{hash64(i) % 1000000, 0});
        }
      },
      [&](const Event& e, auto& handle) {
        processed.fetch_add(1, std::memory_order_relaxed);
        u64 seen = max_seen_ts.load(std::memory_order_relaxed);
        while (e.timestamp > seen &&
               !max_seen_ts.compare_exchange_weak(seen, e.timestamp)) {
        }
        if (e.generation < 3 && (hash64(e.timestamp) & 3) == 0) {
          handle.push(Event{e.timestamp + 1000, e.generation + 1});
        }
      });
  std::printf("simulated %llu events on %zu workers in %.3fs\n",
              static_cast<unsigned long long>(processed.load()), threads,
              t_sim.elapsed());

  // Part 2: rank quality. Push n items, pop them all single-threaded,
  // and count inversions against perfect priority order (the
  // MultiQueue trades exactness for scalability; see Rihani et al.).
  sched::MultiQueue<u64, EventKey> mq(threads);
  struct U64Key {
    u64 operator()(u64 v) const { return v; }
  };
  sched::MultiQueue<u64, U64Key> q(threads);
  u64 rng = 7;
  for (std::size_t i = 0; i < n; ++i) q.push(hash64(i), rng);
  u64 inversions = 0, last = 0, count = 0;
  while (auto v = q.try_pop(rng)) {
    inversions += *v < last;
    last = *v;
    ++count;
  }
  std::printf("rank quality: %llu/%llu pops were inversions (%.2f%%)\n",
              static_cast<unsigned long long>(inversions),
              static_cast<unsigned long long>(count),
              100.0 * static_cast<double>(inversions) /
                  static_cast<double>(count));
  std::printf("(a strict priority queue would report 0%%; the MultiQueue's\n"
              " relaxation is what lets it scale, and consumers like sssp\n"
              " tolerate it via CAS-min relaxation)\n");
  return 0;
}
