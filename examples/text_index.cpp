// Text indexing: build a suffix array over a synthetic corpus, find the
// longest repeated passage, and round-trip the Burrows-Wheeler
// transform — the paper's bw / lrs / sa workloads as a library user
// would drive them.
//
//   $ ./examples/text_index [--size 262144] [--repeat 4096]
#include <cstdio>
#include <string>

#include "support/cli.h"
#include "support/timer.h"
#include "text/bwt.h"
#include "text/corpus.h"
#include "text/lcp.h"
#include "text/suffix_array.h"

using namespace rpb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("size", 1 << 18));
  const auto repeat = static_cast<std::size_t>(cli.get_int("repeat", 4096));

  std::printf("generating %zu bytes of corpus with a planted %zu-byte repeat...\n",
              n, repeat);
  auto text = text::make_corpus(n, 2024, repeat);

  Timer t_sa;
  auto sa = text::suffix_array(std::span<const u8>(text));
  std::printf("suffix array built in %.3fs\n", t_sa.elapsed());
  std::printf("  lexicographically smallest suffix starts at %u\n", sa[0]);

  Timer t_lrs;
  auto lrs = text::longest_repeated_substring(std::span<const u8>(text));
  std::printf("longest repeated substring: length %u at %u and %u (%.3fs)\n",
              lrs.length, lrs.position_a, lrs.position_b, t_lrs.elapsed());
  std::string preview(text.begin() + lrs.position_a,
                      text.begin() + lrs.position_a +
                          std::min<u32>(lrs.length, 48));
  std::printf("  preview: \"%s...\"\n", preview.c_str());

  Timer t_bwt;
  auto encoded = text::bwt_encode(std::span<const u8>(text));
  auto decoded = text::bwt_decode(std::span<const u8>(encoded));
  std::printf("BWT round trip in %.3fs: %s\n", t_bwt.elapsed(),
              decoded == text ? "lossless" : "MISMATCH!");

  // BWT clusters equal characters: count runs as a compressibility hint.
  std::size_t runs = 1;
  for (std::size_t i = 1; i < encoded.size(); ++i) {
    runs += encoded[i] != encoded[i - 1];
  }
  std::printf("  character runs: %zu in BWT vs %zu in plain text\n", runs,
              [&] {
                std::size_t r = 1;
                for (std::size_t i = 1; i < text.size(); ++i) {
                  r += text[i] != text[i - 1];
                }
                return r;
              }());
  return 0;
}
