// Graph analytics: generate the paper's three input families and run
// the six graph benchmarks over them, reporting sizes and results —
// the workloads the paper's introduction motivates.
//
//   $ ./examples/graph_analytics [--graph link|rmat|road] [--scale 15]
#include <cstdio>

#include "graph/bfs.h"
#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "graph/mis.h"
#include "graph/sssp.h"
#include "support/cli.h"
#include "support/timer.h"

using namespace rpb;
using namespace rpb::graph;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string which = cli.get("graph", "rmat");
  const int scale = static_cast<int>(cli.get_int("scale", 15));

  Timer t_gen;
  Graph g = make_named(which, scale, 1);
  auto edges = g.undirected_edges();
  std::printf("%s: |V|=%zu |E|=%zu (avg degree %.1f), generated in %.3fs\n",
              which.c_str(), g.num_vertices(), g.num_edges(),
              g.average_degree(), t_gen.elapsed());

  {
    Timer t;
    auto state = maximal_independent_set(g, AccessMode::kAtomic);
    std::size_t in_set = 0;
    for (auto s : state) in_set += s == MisState::kIn;
    std::printf("mis : %zu vertices in the set (%.3fs)\n", in_set, t.elapsed());
  }
  {
    Timer t;
    auto result = maximal_matching(g.num_vertices(), edges);
    // The matching is maximal but not unique: concurrent claim races
    // resolve by whichever CAS lands first, so the matched-edge count
    // varies run to run (the `~` marks it as such). Every result is a
    // valid maximal matching; only its size is nondeterministic.
    std::printf("mm  : ~%zu matched edges (nondeterministic, %.3fs)\n",
                result.matched_edges.size(), t.elapsed());
  }
  {
    Timer t;
    auto forest = spanning_forest(g.num_vertices(), edges);
    std::printf("sf  : %zu forest edges => %zu components (%.3fs)\n",
                forest.edges.size(), g.num_vertices() - forest.edges.size(),
                t.elapsed());
  }
  {
    Timer t;
    auto forest = minimum_spanning_forest(g.num_vertices(), edges);
    std::printf("msf : total weight %llu over %zu edges (%.3fs)\n",
                static_cast<unsigned long long>(forest.total_weight),
                forest.edges.size(), t.elapsed());
  }
  {
    Timer t;
    auto dist = bfs_multiqueue(g, 0);
    u32 max_depth = 0;
    std::size_t reached = 0;
    for (u32 d : dist) {
      if (d != kUnreached) {
        ++reached;
        max_depth = std::max(max_depth, d);
      }
    }
    std::printf("bfs : reached %zu vertices, eccentricity %u (%.3fs)\n",
                reached, max_depth, t.elapsed());
  }
  {
    Timer t;
    auto dist = sssp_multiqueue(g, 0);
    u64 max_dist = 0;
    for (u64 d : dist) {
      if (d != kInfDist) max_dist = std::max(max_dist, d);
    }
    std::printf("sssp: max finite distance %llu (%.3fs)\n",
                static_cast<unsigned long long>(max_dist), t.elapsed());
  }
  return 0;
}
