// Quickstart: the pattern vocabulary in ~80 lines.
//
//   $ ./examples/quickstart
//
// Walks the paper's fear spectrum bottom-up: fearless patterns (RO /
// Stride / Block / D&C), a comfortable checked-irregular pattern that
// catches a planted bug at run time, and a scared AW pattern done
// right with atomics.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/atomics.h"
#include "core/patterns.h"
#include "sched/parallel.h"
#include "seq/generators.h"
#include "support/error.h"

using namespace rpb;

int main() {
  const std::size_t n = 1 << 20;
  std::vector<u64> data(n);
  std::iota(data.begin(), data.end(), 0);

  // RO: parallel reduction over immutable shared data (fearless).
  u64 sum = sched::parallel_reduce(
      0, n, u64{0}, [&](std::size_t i) { return data[i]; },
      [](u64 a, u64 b) { return a + b; });
  std::printf("RO      parallel sum           = %llu\n",
              static_cast<unsigned long long>(sum));

  // Stride: each task owns exactly element i (fearless).
  par::par_iter_mut(std::span<u64>(data),
                    [](std::size_t, u64& v) { v = v * v; });
  std::printf("Stride  squared in place       : data[7] = %llu\n",
              static_cast<unsigned long long>(data[7]));

  // Block: each task owns a disjoint chunk (fearless).
  std::vector<u64> block_sums((n + 65535) / 65536);
  par::par_chunks_mut(std::span<u64>(data), 65536,
                      [&](std::size_t c, std::span<u64> chunk) {
                        u64 acc = 0;
                        for (u64 v : chunk) acc += v;
                        block_sums[c] = acc;
                      });
  std::printf("Block   %zu chunk sums computed\n", block_sums.size());

  // D&C: fork-join divide and conquer (fearless).
  auto max_elem = sched::parallel_reduce_range(
      0, n, u64{0},
      [&](std::size_t lo, std::size_t hi) {
        u64 best = 0;
        for (std::size_t i = lo; i < hi; ++i) best = std::max(best, data[i]);
        return best;
      },
      [](u64 a, u64 b) { return std::max(a, b); });
  std::printf("D&C     max element            = %llu\n",
              static_cast<unsigned long long>(max_elem));

  // SngInd: indirect writes through an offsets array. The algorithm
  // promises unique offsets; kChecked verifies that promise at run
  // time ("comfortable": an implementation bug becomes a clean error
  // here instead of a silent race).
  std::vector<u32> offsets = seq::random_permutation(n, 42);
  std::vector<u64> scattered(n);
  par::par_ind_iter_mut(
      std::span<u64>(scattered), std::span<const u32>(offsets),
      [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kChecked);
  std::printf("SngInd  checked scatter done   : scattered[offsets[3]] = 3? %s\n",
              scattered[offsets[3]] == 3 ? "yes" : "no");

  // ... and what happens when the promise is broken:
  offsets[10] = offsets[20];  // plant the bug the paper worries about
  try {
    par::par_ind_iter_mut(
        std::span<u64>(scattered), std::span<const u32>(offsets),
        [](std::size_t i, u64& slot) { slot = i; }, AccessMode::kChecked);
  } catch (const CheckFailure& e) {
    std::printf("SngInd  planted bug caught     : %s\n", e.what());
  }

  // AW: truly overlapping writes need synchronization (scared, but
  // race-free): histogram the low bits with atomic increments.
  std::vector<u64> counts(16, 0);
  sched::parallel_for(0, n, [&](std::size_t i) {
    std::atomic_ref<u64>(counts[i & 15]).fetch_add(1,
                                                   std::memory_order_relaxed);
  });
  std::printf("AW      atomic histogram       : counts[0] = %llu (expect %llu)\n",
              static_cast<unsigned long long>(counts[0]),
              static_cast<unsigned long long>(n / 16));
  return 0;
}
