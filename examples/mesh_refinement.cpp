// Delaunay refinement end-to-end (the paper's dr workload): triangulate
// a kuzmin-distributed point set, report mesh quality, refine until the
// radius/edge bound holds, and report again.
//
//   $ ./examples/mesh_refinement [--points 20000] [--ratio 1.4]
#include <cmath>
#include <cstdio>

#include "geom/delaunay.h"
#include "geom/points.h"
#include "geom/refine.h"
#include "support/cli.h"
#include "support/timer.h"

using namespace rpb;
using namespace rpb::geom;

namespace {

void report_quality(const Mesh& mesh, const char* label) {
  double worst = 0;
  std::size_t live = 0;
  for (std::size_t t = 0; t < mesh.num_triangle_slots(); ++t) {
    if (!mesh.alive(static_cast<i64>(t)) ||
        mesh.has_super_vertex(static_cast<i64>(t))) {
      continue;
    }
    const Triangle& tri = mesh.triangle(static_cast<i64>(t));
    worst = std::max(worst,
                     radius_edge_ratio(mesh.point(tri.v[0]),
                                       mesh.point(tri.v[1]),
                                       mesh.point(tri.v[2])));
    ++live;
  }
  // min angle = arcsin(1 / (2 * ratio))
  double min_angle = std::asin(1.0 / (2.0 * worst)) * 180.0 / 3.14159265358979;
  std::printf("%s: %zu real triangles, worst radius/edge %.2f (min angle %.1f deg)\n",
              label, live, worst, min_angle);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("points", 20000));
  const double ratio = cli.get_double("ratio", 1.4);

  std::printf("triangulating %zu kuzmin points...\n", n);
  auto pts = kuzmin_points(n, 7);
  Mesh mesh(pts, /*extra_points=*/n * 4);

  Timer t_build;
  mesh.build();
  std::printf("built in %.3fs, consistent: %s\n", t_build.elapsed(),
              mesh.check_consistency() ? "yes" : "NO");
  report_quality(mesh, "before refinement");

  RefineConfig config;
  config.max_ratio = ratio;
  config.max_insertions = n * 3;
  Timer t_refine;
  RefineStats stats = refine(mesh, config);
  std::printf(
      "refined in %.3fs: %zu inserted, %zu rounds, %zu skipped, %zu bad left\n",
      t_refine.elapsed(), stats.inserted, stats.rounds, stats.skipped,
      stats.bad_remaining);
  report_quality(mesh, "after refinement");
  std::printf("consistent after refinement: %s\n",
              mesh.check_consistency() ? "yes" : "NO");
  return 0;
}
