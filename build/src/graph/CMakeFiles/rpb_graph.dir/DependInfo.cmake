
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/graph/CMakeFiles/rpb_graph.dir/bfs.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/bfs.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/rpb_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/forest.cpp" "src/graph/CMakeFiles/rpb_graph.dir/forest.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/forest.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/rpb_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/rpb_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/graph/CMakeFiles/rpb_graph.dir/matching.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/matching.cpp.o.d"
  "/root/repo/src/graph/mis.cpp" "src/graph/CMakeFiles/rpb_graph.dir/mis.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/mis.cpp.o.d"
  "/root/repo/src/graph/pagerank.cpp" "src/graph/CMakeFiles/rpb_graph.dir/pagerank.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/pagerank.cpp.o.d"
  "/root/repo/src/graph/sssp.cpp" "src/graph/CMakeFiles/rpb_graph.dir/sssp.cpp.o" "gcc" "src/graph/CMakeFiles/rpb_graph.dir/sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rpb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/rpb_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rpb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
