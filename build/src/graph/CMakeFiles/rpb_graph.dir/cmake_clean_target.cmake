file(REMOVE_RECURSE
  "librpb_graph.a"
)
