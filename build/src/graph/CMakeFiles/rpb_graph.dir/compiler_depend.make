# Empty compiler generated dependencies file for rpb_graph.
# This may be replaced when dependencies are built.
