file(REMOVE_RECURSE
  "CMakeFiles/rpb_graph.dir/bfs.cpp.o"
  "CMakeFiles/rpb_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/csr.cpp.o"
  "CMakeFiles/rpb_graph.dir/csr.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/forest.cpp.o"
  "CMakeFiles/rpb_graph.dir/forest.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/generators.cpp.o"
  "CMakeFiles/rpb_graph.dir/generators.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/io.cpp.o"
  "CMakeFiles/rpb_graph.dir/io.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/matching.cpp.o"
  "CMakeFiles/rpb_graph.dir/matching.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/mis.cpp.o"
  "CMakeFiles/rpb_graph.dir/mis.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/pagerank.cpp.o"
  "CMakeFiles/rpb_graph.dir/pagerank.cpp.o.d"
  "CMakeFiles/rpb_graph.dir/sssp.cpp.o"
  "CMakeFiles/rpb_graph.dir/sssp.cpp.o.d"
  "librpb_graph.a"
  "librpb_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
