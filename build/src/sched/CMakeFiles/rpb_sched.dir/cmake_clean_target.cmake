file(REMOVE_RECURSE
  "librpb_sched.a"
)
