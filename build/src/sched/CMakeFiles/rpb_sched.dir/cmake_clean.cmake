file(REMOVE_RECURSE
  "CMakeFiles/rpb_sched.dir/thread_pool.cpp.o"
  "CMakeFiles/rpb_sched.dir/thread_pool.cpp.o.d"
  "librpb_sched.a"
  "librpb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
