# Empty compiler generated dependencies file for rpb_sched.
# This may be replaced when dependencies are built.
