# Empty compiler generated dependencies file for rpb_text.
# This may be replaced when dependencies are built.
