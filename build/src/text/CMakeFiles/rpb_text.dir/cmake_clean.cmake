file(REMOVE_RECURSE
  "CMakeFiles/rpb_text.dir/bwt.cpp.o"
  "CMakeFiles/rpb_text.dir/bwt.cpp.o.d"
  "CMakeFiles/rpb_text.dir/corpus.cpp.o"
  "CMakeFiles/rpb_text.dir/corpus.cpp.o.d"
  "CMakeFiles/rpb_text.dir/lcp.cpp.o"
  "CMakeFiles/rpb_text.dir/lcp.cpp.o.d"
  "CMakeFiles/rpb_text.dir/suffix_array.cpp.o"
  "CMakeFiles/rpb_text.dir/suffix_array.cpp.o.d"
  "librpb_text.a"
  "librpb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
