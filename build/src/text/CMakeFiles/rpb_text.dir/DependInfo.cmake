
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bwt.cpp" "src/text/CMakeFiles/rpb_text.dir/bwt.cpp.o" "gcc" "src/text/CMakeFiles/rpb_text.dir/bwt.cpp.o.d"
  "/root/repo/src/text/corpus.cpp" "src/text/CMakeFiles/rpb_text.dir/corpus.cpp.o" "gcc" "src/text/CMakeFiles/rpb_text.dir/corpus.cpp.o.d"
  "/root/repo/src/text/lcp.cpp" "src/text/CMakeFiles/rpb_text.dir/lcp.cpp.o" "gcc" "src/text/CMakeFiles/rpb_text.dir/lcp.cpp.o.d"
  "/root/repo/src/text/suffix_array.cpp" "src/text/CMakeFiles/rpb_text.dir/suffix_array.cpp.o" "gcc" "src/text/CMakeFiles/rpb_text.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rpb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/rpb_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rpb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
