file(REMOVE_RECURSE
  "librpb_text.a"
)
