file(REMOVE_RECURSE
  "CMakeFiles/rpb_geom.dir/build.cpp.o"
  "CMakeFiles/rpb_geom.dir/build.cpp.o.d"
  "CMakeFiles/rpb_geom.dir/delaunay.cpp.o"
  "CMakeFiles/rpb_geom.dir/delaunay.cpp.o.d"
  "CMakeFiles/rpb_geom.dir/points.cpp.o"
  "CMakeFiles/rpb_geom.dir/points.cpp.o.d"
  "CMakeFiles/rpb_geom.dir/refine.cpp.o"
  "CMakeFiles/rpb_geom.dir/refine.cpp.o.d"
  "librpb_geom.a"
  "librpb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
