file(REMOVE_RECURSE
  "librpb_geom.a"
)
