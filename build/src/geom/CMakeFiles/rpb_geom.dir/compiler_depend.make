# Empty compiler generated dependencies file for rpb_geom.
# This may be replaced when dependencies are built.
