
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/build.cpp" "src/geom/CMakeFiles/rpb_geom.dir/build.cpp.o" "gcc" "src/geom/CMakeFiles/rpb_geom.dir/build.cpp.o.d"
  "/root/repo/src/geom/delaunay.cpp" "src/geom/CMakeFiles/rpb_geom.dir/delaunay.cpp.o" "gcc" "src/geom/CMakeFiles/rpb_geom.dir/delaunay.cpp.o.d"
  "/root/repo/src/geom/points.cpp" "src/geom/CMakeFiles/rpb_geom.dir/points.cpp.o" "gcc" "src/geom/CMakeFiles/rpb_geom.dir/points.cpp.o.d"
  "/root/repo/src/geom/refine.cpp" "src/geom/CMakeFiles/rpb_geom.dir/refine.cpp.o" "gcc" "src/geom/CMakeFiles/rpb_geom.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rpb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rpb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
