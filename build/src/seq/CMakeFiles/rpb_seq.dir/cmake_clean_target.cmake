file(REMOVE_RECURSE
  "librpb_seq.a"
)
