file(REMOVE_RECURSE
  "CMakeFiles/rpb_seq.dir/dedup.cpp.o"
  "CMakeFiles/rpb_seq.dir/dedup.cpp.o.d"
  "CMakeFiles/rpb_seq.dir/generators.cpp.o"
  "CMakeFiles/rpb_seq.dir/generators.cpp.o.d"
  "CMakeFiles/rpb_seq.dir/histogram.cpp.o"
  "CMakeFiles/rpb_seq.dir/histogram.cpp.o.d"
  "CMakeFiles/rpb_seq.dir/integer_sort.cpp.o"
  "CMakeFiles/rpb_seq.dir/integer_sort.cpp.o.d"
  "CMakeFiles/rpb_seq.dir/sample_sort_census.cpp.o"
  "CMakeFiles/rpb_seq.dir/sample_sort_census.cpp.o.d"
  "librpb_seq.a"
  "librpb_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
