
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/dedup.cpp" "src/seq/CMakeFiles/rpb_seq.dir/dedup.cpp.o" "gcc" "src/seq/CMakeFiles/rpb_seq.dir/dedup.cpp.o.d"
  "/root/repo/src/seq/generators.cpp" "src/seq/CMakeFiles/rpb_seq.dir/generators.cpp.o" "gcc" "src/seq/CMakeFiles/rpb_seq.dir/generators.cpp.o.d"
  "/root/repo/src/seq/histogram.cpp" "src/seq/CMakeFiles/rpb_seq.dir/histogram.cpp.o" "gcc" "src/seq/CMakeFiles/rpb_seq.dir/histogram.cpp.o.d"
  "/root/repo/src/seq/integer_sort.cpp" "src/seq/CMakeFiles/rpb_seq.dir/integer_sort.cpp.o" "gcc" "src/seq/CMakeFiles/rpb_seq.dir/integer_sort.cpp.o.d"
  "/root/repo/src/seq/sample_sort_census.cpp" "src/seq/CMakeFiles/rpb_seq.dir/sample_sort_census.cpp.o" "gcc" "src/seq/CMakeFiles/rpb_seq.dir/sample_sort_census.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rpb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rpb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
