# Empty compiler generated dependencies file for rpb_seq.
# This may be replaced when dependencies are built.
