file(REMOVE_RECURSE
  "CMakeFiles/rpb_core.dir/access_mode.cpp.o"
  "CMakeFiles/rpb_core.dir/access_mode.cpp.o.d"
  "CMakeFiles/rpb_core.dir/census.cpp.o"
  "CMakeFiles/rpb_core.dir/census.cpp.o.d"
  "librpb_core.a"
  "librpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
