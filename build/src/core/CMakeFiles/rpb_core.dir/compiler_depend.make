# Empty compiler generated dependencies file for rpb_core.
# This may be replaced when dependencies are built.
