file(REMOVE_RECURSE
  "librpb_core.a"
)
