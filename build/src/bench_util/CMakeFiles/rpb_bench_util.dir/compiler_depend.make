# Empty compiler generated dependencies file for rpb_bench_util.
# This may be replaced when dependencies are built.
