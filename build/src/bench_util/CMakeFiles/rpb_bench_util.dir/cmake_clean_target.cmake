file(REMOVE_RECURSE
  "librpb_bench_util.a"
)
