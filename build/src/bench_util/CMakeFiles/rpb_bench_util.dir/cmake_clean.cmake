file(REMOVE_RECURSE
  "CMakeFiles/rpb_bench_util.dir/harness.cpp.o"
  "CMakeFiles/rpb_bench_util.dir/harness.cpp.o.d"
  "librpb_bench_util.a"
  "librpb_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
