# Empty compiler generated dependencies file for rpb_support.
# This may be replaced when dependencies are built.
