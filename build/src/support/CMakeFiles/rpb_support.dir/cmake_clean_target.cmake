file(REMOVE_RECURSE
  "librpb_support.a"
)
