file(REMOVE_RECURSE
  "CMakeFiles/rpb_support.dir/cli.cpp.o"
  "CMakeFiles/rpb_support.dir/cli.cpp.o.d"
  "CMakeFiles/rpb_support.dir/env.cpp.o"
  "CMakeFiles/rpb_support.dir/env.cpp.o.d"
  "librpb_support.a"
  "librpb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
