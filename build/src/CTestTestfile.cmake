# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("obs")
subdirs("sched")
subdirs("core")
subdirs("seq")
subdirs("graph")
subdirs("sparse")
subdirs("text")
subdirs("geom")
subdirs("serve")
subdirs("bench_util")
