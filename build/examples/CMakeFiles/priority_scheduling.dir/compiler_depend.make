# Empty compiler generated dependencies file for priority_scheduling.
# This may be replaced when dependencies are built.
