# Empty compiler generated dependencies file for text_index.
# This may be replaced when dependencies are built.
