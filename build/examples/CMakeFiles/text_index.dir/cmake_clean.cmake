file(REMOVE_RECURSE
  "CMakeFiles/text_index.dir/text_index.cpp.o"
  "CMakeFiles/text_index.dir/text_index.cpp.o.d"
  "text_index"
  "text_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
