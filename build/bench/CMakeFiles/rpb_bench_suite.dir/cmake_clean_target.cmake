file(REMOVE_RECURSE
  "librpb_bench_suite.a"
)
