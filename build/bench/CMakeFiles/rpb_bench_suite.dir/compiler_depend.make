# Empty compiler generated dependencies file for rpb_bench_suite.
# This may be replaced when dependencies are built.
