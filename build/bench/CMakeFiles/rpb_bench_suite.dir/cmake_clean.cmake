file(REMOVE_RECURSE
  "CMakeFiles/rpb_bench_suite.dir/suite.cpp.o"
  "CMakeFiles/rpb_bench_suite.dir/suite.cpp.o.d"
  "librpb_bench_suite.a"
  "librpb_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpb_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
