# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rpb_bench_suite.
