file(REMOVE_RECURSE
  "CMakeFiles/ablation_bwt_chase.dir/ablation_bwt_chase.cpp.o"
  "CMakeFiles/ablation_bwt_chase.dir/ablation_bwt_chase.cpp.o.d"
  "ablation_bwt_chase"
  "ablation_bwt_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bwt_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
