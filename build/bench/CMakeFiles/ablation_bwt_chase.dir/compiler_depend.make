# Empty compiler generated dependencies file for ablation_bwt_chase.
# This may be replaced when dependencies are built.
