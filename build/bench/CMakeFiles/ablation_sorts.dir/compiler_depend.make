# Empty compiler generated dependencies file for ablation_sorts.
# This may be replaced when dependencies are built.
