file(REMOVE_RECURSE
  "CMakeFiles/ablation_sorts.dir/ablation_sorts.cpp.o"
  "CMakeFiles/ablation_sorts.dir/ablation_sorts.cpp.o.d"
  "ablation_sorts"
  "ablation_sorts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sorts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
