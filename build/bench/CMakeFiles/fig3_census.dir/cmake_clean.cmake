file(REMOVE_RECURSE
  "CMakeFiles/fig3_census.dir/fig3_census.cpp.o"
  "CMakeFiles/fig3_census.dir/fig3_census.cpp.o.d"
  "fig3_census"
  "fig3_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
