# Empty compiler generated dependencies file for fig3_census.
# This may be replaced when dependencies are built.
