file(REMOVE_RECURSE
  "CMakeFiles/fig5a_indcheck.dir/fig5a_indcheck.cpp.o"
  "CMakeFiles/fig5a_indcheck.dir/fig5a_indcheck.cpp.o.d"
  "fig5a_indcheck"
  "fig5a_indcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_indcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
