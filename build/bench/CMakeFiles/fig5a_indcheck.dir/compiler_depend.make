# Empty compiler generated dependencies file for fig5a_indcheck.
# This may be replaced when dependencies are built.
