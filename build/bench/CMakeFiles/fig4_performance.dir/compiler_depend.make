# Empty compiler generated dependencies file for fig4_performance.
# This may be replaced when dependencies are built.
