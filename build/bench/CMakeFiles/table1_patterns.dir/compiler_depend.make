# Empty compiler generated dependencies file for table1_patterns.
# This may be replaced when dependencies are built.
