file(REMOVE_RECURSE
  "CMakeFiles/table1_patterns.dir/table1_patterns.cpp.o"
  "CMakeFiles/table1_patterns.dir/table1_patterns.cpp.o.d"
  "table1_patterns"
  "table1_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
