# Empty compiler generated dependencies file for ablation_mq.
# This may be replaced when dependencies are built.
