file(REMOVE_RECURSE
  "CMakeFiles/ablation_mq.dir/ablation_mq.cpp.o"
  "CMakeFiles/ablation_mq.dir/ablation_mq.cpp.o.d"
  "ablation_mq"
  "ablation_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
