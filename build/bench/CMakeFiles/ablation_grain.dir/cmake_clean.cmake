file(REMOVE_RECURSE
  "CMakeFiles/ablation_grain.dir/ablation_grain.cpp.o"
  "CMakeFiles/ablation_grain.dir/ablation_grain.cpp.o.d"
  "ablation_grain"
  "ablation_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
