# Empty compiler generated dependencies file for ablation_grain.
# This may be replaced when dependencies are built.
