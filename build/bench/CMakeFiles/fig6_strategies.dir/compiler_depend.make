# Empty compiler generated dependencies file for fig6_strategies.
# This may be replaced when dependencies are built.
