# Empty compiler generated dependencies file for fig5b_sync.
# This may be replaced when dependencies are built.
