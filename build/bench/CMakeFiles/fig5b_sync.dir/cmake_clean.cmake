file(REMOVE_RECURSE
  "CMakeFiles/fig5b_sync.dir/fig5b_sync.cpp.o"
  "CMakeFiles/fig5b_sync.dir/fig5b_sync.cpp.o.d"
  "fig5b_sync"
  "fig5b_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
