# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_sched_json_smoke "/root/repo/build/bench/micro_runtime" "--json" "/root/repo/build/bench_out/BENCH_sched_smoke.json" "--smoke")
set_tests_properties(bench_sched_json_smoke PROPERTIES  FIXTURES_SETUP "bench_sched_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_indcheck_json_smoke "/root/repo/build/bench/fig5a_indcheck" "--json" "/root/repo/build/bench_out/BENCH_indcheck_smoke.json" "--smoke")
set_tests_properties(bench_indcheck_json_smoke PROPERTIES  FIXTURES_SETUP "bench_indcheck_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;48;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_alloc_json_smoke "/root/repo/build/bench/ablation_alloc" "--json" "/root/repo/build/bench_out/BENCH_alloc_smoke.json" "--smoke")
set_tests_properties(bench_alloc_json_smoke PROPERTIES  FIXTURES_SETUP "bench_alloc_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;54;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scanpack_json_smoke "/root/repo/build/bench/ablation_scan_pack" "--json" "/root/repo/build/bench_out/BENCH_scanpack_smoke.json" "--smoke")
set_tests_properties(bench_scanpack_json_smoke PROPERTIES  FIXTURES_SETUP "bench_scanpack_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;60;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_simd_json_smoke "/root/repo/build/bench/ablation_simd" "--json" "/root/repo/build/bench_out/BENCH_simd_smoke.json" "--smoke")
set_tests_properties(bench_simd_json_smoke PROPERTIES  FIXTURES_SETUP "bench_simd_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;66;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_obs_counters_smoke "/root/repo/build/bench/micro_runtime" "--json" "/root/repo/build/bench_out/BENCH_obs_smoke.json" "--smoke" "--require-obs")
set_tests_properties(bench_obs_counters_smoke PROPERTIES  ENVIRONMENT "RPB_OBS=counters" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;75;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_obs_trace_smoke "/root/repo/build/bench/micro_runtime" "--trace" "/root/repo/build/bench_out/TRACE_sample_sort.json")
set_tests_properties(bench_obs_trace_smoke PROPERTIES  ENVIRONMENT "RPB_OBS=trace;RPB_THREADS=4" FIXTURES_SETUP "obs_trace" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;84;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_sched_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_sched_smoke.json" "/root/repo/build/bench_out/BENCH_sched_smoke.json" "--tolerance" "150")
set_tests_properties(bench_sched_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_sched_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;108;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_indcheck_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_indcheck_smoke.json" "/root/repo/build/bench_out/BENCH_indcheck_smoke.json" "--tolerance" "150")
set_tests_properties(bench_indcheck_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_indcheck_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;108;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_alloc_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_alloc_smoke.json" "/root/repo/build/bench_out/BENCH_alloc_smoke.json" "--tolerance" "150")
set_tests_properties(bench_alloc_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_alloc_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;108;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scanpack_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_scanpack_smoke.json" "/root/repo/build/bench_out/BENCH_scanpack_smoke.json" "--tolerance" "150")
set_tests_properties(bench_scanpack_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_scanpack_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;108;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_simd_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_simd_smoke.json" "/root/repo/build/bench_out/BENCH_simd_smoke.json" "--tolerance" "150")
set_tests_properties(bench_simd_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_simd_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;108;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(obs_trace_summary "/root/.pyenv/shims/python3" "/root/repo/tools/trace_summary.py" "/root/repo/build/bench_out/TRACE_sample_sort.json")
set_tests_properties(obs_trace_summary PROPERTIES  FIXTURES_REQUIRED "obs_trace" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;120;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(obs_trace_summary_selftest "/root/.pyenv/shims/python3" "/root/repo/tools/trace_summary.py" "--check")
set_tests_properties(obs_trace_summary_selftest PROPERTIES  LABELS "bench_smoke;bench-smoke" TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;129;add_test;/root/repo/bench/CMakeLists.txt;0;")
