# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_sched_json_smoke "/root/repo/build/bench/micro_runtime" "--json" "/root/repo/build/BENCH_sched_smoke.json" "--smoke")
set_tests_properties(bench_sched_json_smoke PROPERTIES  LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_indcheck_json_smoke "/root/repo/build/bench/fig5a_indcheck" "--json" "/root/repo/build/BENCH_indcheck_smoke.json" "--smoke")
set_tests_properties(bench_indcheck_json_smoke PROPERTIES  LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
