# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_sched_json_smoke "/root/repo/build/bench/micro_runtime" "--json" "/root/repo/build/BENCH_sched_smoke.json" "--smoke")
set_tests_properties(bench_sched_json_smoke PROPERTIES  FIXTURES_SETUP "bench_sched_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_indcheck_json_smoke "/root/repo/build/bench/fig5a_indcheck" "--json" "/root/repo/build/BENCH_indcheck_smoke.json" "--smoke")
set_tests_properties(bench_indcheck_json_smoke PROPERTIES  FIXTURES_SETUP "bench_indcheck_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_alloc_json_smoke "/root/repo/build/bench/ablation_alloc" "--json" "/root/repo/build/BENCH_alloc_smoke.json" "--smoke")
set_tests_properties(bench_alloc_json_smoke PROPERTIES  FIXTURES_SETUP "bench_alloc_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scanpack_json_smoke "/root/repo/build/bench/ablation_scan_pack" "--json" "/root/repo/build/BENCH_scanpack_smoke.json" "--smoke")
set_tests_properties(bench_scanpack_json_smoke PROPERTIES  FIXTURES_SETUP "bench_scanpack_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_sched_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_sched_smoke.json" "/root/repo/build/BENCH_sched_smoke.json" "--tolerance" "150")
set_tests_properties(bench_sched_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_sched_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;69;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_indcheck_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_indcheck_smoke.json" "/root/repo/build/BENCH_indcheck_smoke.json" "--tolerance" "150")
set_tests_properties(bench_indcheck_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_indcheck_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;69;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_alloc_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_alloc_smoke.json" "/root/repo/build/BENCH_alloc_smoke.json" "--tolerance" "150")
set_tests_properties(bench_alloc_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_alloc_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;69;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_scanpack_json_compare "/root/.pyenv/shims/python3" "/root/repo/tools/bench_compare.py" "/root/repo/bench/baselines/BENCH_scanpack_smoke.json" "/root/repo/build/BENCH_scanpack_smoke.json" "--tolerance" "150")
set_tests_properties(bench_scanpack_json_compare PROPERTIES  FIXTURES_REQUIRED "bench_scanpack_json" LABELS "bench_smoke;bench-smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;69;add_test;/root/repo/bench/CMakeLists.txt;0;")
