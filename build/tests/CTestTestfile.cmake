# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sched_errors_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_test[1]_include.cmake")
include("/root/repo/build/tests/primitives_alloc_test[1]_include.cmake")
include("/root/repo/build/tests/mark_table_test[1]_include.cmake")
include("/root/repo/build/tests/arena_test[1]_include.cmake")
include("/root/repo/build/tests/seq_test[1]_include.cmake")
include("/root/repo/build/tests/simd_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/serve_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/geom_build_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/geom_failure_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/census_test[1]_include.cmake")
include("/root/repo/build/tests/suite_test[1]_include.cmake")
