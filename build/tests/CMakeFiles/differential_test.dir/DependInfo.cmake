
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/differential_test.cpp" "tests/CMakeFiles/differential_test.dir/differential_test.cpp.o" "gcc" "tests/CMakeFiles/differential_test.dir/differential_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_util/CMakeFiles/rpb_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rpb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/rpb_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/rpb_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rpb_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rpb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/rpb_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rpb_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rpb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
