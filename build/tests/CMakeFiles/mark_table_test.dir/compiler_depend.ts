# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mark_table_test.
