# Empty compiler generated dependencies file for mark_table_test.
# This may be replaced when dependencies are built.
