file(REMOVE_RECURSE
  "CMakeFiles/mark_table_test.dir/mark_table_test.cpp.o"
  "CMakeFiles/mark_table_test.dir/mark_table_test.cpp.o.d"
  "mark_table_test"
  "mark_table_test.pdb"
  "mark_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mark_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
