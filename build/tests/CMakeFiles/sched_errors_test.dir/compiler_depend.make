# Empty compiler generated dependencies file for sched_errors_test.
# This may be replaced when dependencies are built.
