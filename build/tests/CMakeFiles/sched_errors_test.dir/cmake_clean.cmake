file(REMOVE_RECURSE
  "CMakeFiles/sched_errors_test.dir/sched_errors_test.cpp.o"
  "CMakeFiles/sched_errors_test.dir/sched_errors_test.cpp.o.d"
  "sched_errors_test"
  "sched_errors_test.pdb"
  "sched_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
