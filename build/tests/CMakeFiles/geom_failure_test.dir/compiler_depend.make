# Empty compiler generated dependencies file for geom_failure_test.
# This may be replaced when dependencies are built.
