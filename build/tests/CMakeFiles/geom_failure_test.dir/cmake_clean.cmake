file(REMOVE_RECURSE
  "CMakeFiles/geom_failure_test.dir/geom_failure_test.cpp.o"
  "CMakeFiles/geom_failure_test.dir/geom_failure_test.cpp.o.d"
  "geom_failure_test"
  "geom_failure_test.pdb"
  "geom_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
