// MultiQueue relaxed concurrent priority queue (Rihani, Sanders &
// Dementiev, SPAA'15), the paper's dynamic priority scheduler for bfs
// and sssp (Sec. 6).
//
// Structure: c × threads sequential binary heaps, each guarded by its
// own mutex (the mutex *encapsulates* the heap, mirroring the paper's
// observation about Rust's Mutex<T>). push locks a random queue; pop
// locks the smaller-topped of two random queues. Rank guarantees are
// probabilistic, so consumers must tolerate out-of-order delivery —
// bfs/sssp do, via CAS-min distance relaxation.
//
// This is a *min*-queue: elements with smaller key(value) pop first.
// Each sub-queue caches its top key in an atomic so the pop-side
// "better of two" comparison never touches heap internals without the
// lock (the same trick production MultiQueues use).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "obs/counters.h"
#include "support/defs.h"
#include "support/hash.h"

namespace rpb::sched {

// KeyFn: T -> u64 priority; smaller pops first.
template <class T, class KeyFn>
class MultiQueue {
 public:
  static constexpr u64 kEmptyKey = std::numeric_limits<u64>::max();

  explicit MultiQueue(std::size_t num_threads, std::size_t queue_multiplier = 4,
                      KeyFn key = KeyFn())
      : key_(key),
        queues_(std::max<std::size_t>(2, num_threads * queue_multiplier)) {}

  std::size_t num_queues() const { return queues_.size(); }

  // rng_state is caller-owned (one per thread) so pushes from different
  // threads never contend on shared RNG state.
  void push(const T& value, u64& rng_state) {
    for (;;) {
      SubQueue& q = pick(rng_state);
      std::unique_lock<std::mutex> lock(q.mutex, std::try_to_lock);
      if (!lock.owns_lock()) continue;  // contended: retry another queue
      q.heap.push(Entry{key_(value), value});
      q.top_key.store(q.heap.top().key, std::memory_order_release);
      size_.fetch_add(1, std::memory_order_relaxed);
      obs::bump(obs::Counter::kMqPushes);
      return;
    }
  }

  // Pop from the smaller-topped of two random queues. Returns nullopt
  // when the whole structure appears empty; callers own termination
  // detection (an empty pop does NOT mean no more work will arrive).
  std::optional<T> try_pop(u64& rng_state) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      SubQueue& a = pick(rng_state);
      SubQueue& b = pick(rng_state);
      u64 ka = a.top_key.load(std::memory_order_acquire);
      u64 kb = b.top_key.load(std::memory_order_acquire);
      SubQueue* best = ka <= kb ? &a : &b;
      if (ka == kEmptyKey && kb == kEmptyKey) continue;
      if (auto out = pop_from(*best)) return out;
    }
    // Full sweep so emptiness reports are trustworthy at quiescence.
    for (SubQueue& q : queues_) {
      std::unique_lock<std::mutex> lock(q.mutex);
      if (auto out = pop_locked(q)) return out;
    }
    return std::nullopt;
  }

  // Approximate element count (exact when quiescent).
  std::size_t size_estimate() const {
    i64 s = size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<std::size_t>(s);
  }

 private:
  struct Entry {
    u64 key;
    T value;
    // std::priority_queue is a max-heap; invert to get min-key-first.
    bool operator<(const Entry& other) const { return key > other.key; }
  };

  struct alignas(kCacheLineBytes) SubQueue {
    std::mutex mutex;
    std::priority_queue<Entry> heap;
    std::atomic<u64> top_key{kEmptyKey};
  };

  SubQueue& pick(u64& rng_state) {
    rng_state = hash64(rng_state + 0x9e3779b97f4a7c15ull);
    return queues_[rng_state % queues_.size()];
  }

  std::optional<T> pop_from(SubQueue& q) {
    std::unique_lock<std::mutex> lock(q.mutex, std::try_to_lock);
    if (!lock.owns_lock()) return std::nullopt;
    return pop_locked(q);
  }

  std::optional<T> pop_locked(SubQueue& q) {
    if (q.heap.empty()) return std::nullopt;
    T out = q.heap.top().value;
    q.heap.pop();
    q.top_key.store(q.heap.empty() ? kEmptyKey : q.heap.top().key,
                    std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
    obs::bump(obs::Counter::kMqPops);
    return out;
  }

  KeyFn key_;
  std::vector<SubQueue> queues_;
  std::atomic<i64> size_{0};
};

}  // namespace rpb::sched
