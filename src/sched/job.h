// Unit of schedulable work inside the fork-join pool.
//
// Jobs are intrusive: the runtime never allocates. A fork site (join,
// parallel_for) places the job on its own stack frame, pushes a pointer
// into its worker deque, and keeps the frame alive until the job's state
// reaches kDone — the invariant that makes stack allocation safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace rpb::sched {

class Job {
 public:
  enum State : std::uint32_t { kPending = 0, kClaimed = 1, kDone = 2 };

  Job() = default;
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;
  virtual ~Job() = default;

  // Attempt to take exclusive execution rights. Exactly one caller (the
  // owner popping it back, or a thief) wins.
  bool try_claim() {
    std::uint32_t expected = kPending;
    return state_.compare_exchange_strong(expected, kClaimed,
                                          std::memory_order_acq_rel);
  }

  void run_claimed() {
    try {
      execute();
    } catch (...) {
      // Captured here, rethrown at the fork site that waits on us —
      // exceptions propagate across steals like across calls.
      error_ = std::current_exception();
    }
    state_.store(kDone, std::memory_order_release);
    state_.notify_all();
  }

  // Call after done(): rethrows any exception the job's body raised.
  void rethrow_if_error() {
    if (error_) std::rethrow_exception(error_);
  }

  bool done() const { return state_.load(std::memory_order_acquire) == kDone; }

  void wait_done() {
    std::uint32_t s = state_.load(std::memory_order_acquire);
    while (s != kDone) {
      state_.wait(s, std::memory_order_acquire);
      s = state_.load(std::memory_order_acquire);
    }
  }

 protected:
  virtual void execute() = 0;

 private:
  std::atomic<std::uint32_t> state_{kPending};
  std::exception_ptr error_;
};

// Adapts a callable to a Job. The callable is captured by reference —
// the fork site's frame outlives the job by construction.
template <class F>
class ClosureJob final : public Job {
 public:
  explicit ClosureJob(F& f) : f_(f) {}

 private:
  void execute() override { f_(); }
  F& f_;
};

}  // namespace rpb::sched
