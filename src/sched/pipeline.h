// Ordered three-stage parallel pipeline — one of the algorithmic
// patterns the paper inventories as *absent* from PBBS/RPB and flags
// for future work (Sec. 7.1). Shape:
//
//   produce()  -> std::optional<In>   serial, on the calling thread
//   transform(In) -> Out              parallel, `workers` threads
//   consume(Out)                      serial, in production order
//
// Items flow through a bounded queue (backpressure) and a reorder
// buffer that releases outputs in sequence. Exceptions from any stage
// cancel the pipeline and rethrow on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rpb::sched {

namespace detail {

// Bounded MPMC queue with close semantics.
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  // Returns false if the queue was closed (cancellation) before space
  // became available.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  // No more pushes will arrive (normal end) or the pipeline is being
  // cancelled (drop=true discards queued items so workers exit fast).
  void close(bool drop = false) {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    if (drop) items_.clear();
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace detail

template <class Produce, class Transform, class Consume>
void run_pipeline(Produce&& produce, Transform&& transform, Consume&& consume,
                  std::size_t workers = 2, std::size_t capacity = 64) {
  using In = typename std::invoke_result_t<Produce>::value_type;
  using Out = std::invoke_result_t<Transform, In>;

  struct Sequenced {
    std::size_t seq;
    In item;
  };

  detail::BoundedQueue<Sequenced> queue(std::max<std::size_t>(1, capacity));

  std::mutex out_mutex;
  std::map<std::size_t, Out> reorder;
  std::size_t next_to_consume = 0;

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto record_error = [&] {
    {
      std::lock_guard<std::mutex> guard(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    queue.close(/*drop=*/true);
  };

  std::vector<std::thread> pool;
  pool.reserve(std::max<std::size_t>(1, workers));
  for (std::size_t w = 0; w < std::max<std::size_t>(1, workers); ++w) {
    pool.emplace_back([&] {
      try {
        while (auto sequenced = queue.pop()) {
          Out result = transform(std::move(sequenced->item));
          // Hand to the reorder buffer; whoever completes the next
          // expected item drains the ready run, keeping consume serial
          // and ordered.
          std::unique_lock<std::mutex> lock(out_mutex);
          reorder.emplace(sequenced->seq, std::move(result));
          while (!reorder.empty() &&
                 reorder.begin()->first == next_to_consume) {
            Out ready = std::move(reorder.begin()->second);
            reorder.erase(reorder.begin());
            ++next_to_consume;
            consume(std::move(ready));  // under out_mutex: stays serial
          }
        }
      } catch (...) {
        record_error();
      }
    });
  }

  // Producer runs on the calling thread.
  try {
    std::size_t seq = 0;
    while (auto item = produce()) {
      if (!queue.push(Sequenced{seq, std::move(*item)})) break;  // cancelled
      ++seq;
    }
  } catch (...) {
    record_error();
  }
  queue.close();
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rpb::sched
