// Long-running worker threads over a MultiQueue — the paper's bfs/sssp
// execution model (Sec. 6): workers pop tasks, process them, and may
// push newly discovered tasks, until the queue is globally drained.
//
// Termination detection: `pending` counts items in the queue plus items
// currently being processed. A worker that sees an empty pop AND
// pending == 0 can safely exit — no in-flight task can push again.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "sched/multiqueue.h"
#include "support/hash.h"

namespace rpb::sched {

template <class T, class KeyFn>
class MqExecutor {
 public:
  MqExecutor(std::size_t num_threads, std::size_t queue_multiplier = 4,
             KeyFn key = KeyFn())
      : num_threads_(std::max<std::size_t>(1, num_threads)),
        queue_(num_threads_, queue_multiplier, key) {}

  // Push interface handed to seeding code and task bodies. Each thread
  // gets its own handle (own RNG stream) — no shared mutable state.
  class Handle {
   public:
    void push(const T& value) {
      owner_->pending_.fetch_add(1, std::memory_order_acq_rel);
      owner_->queue_.push(value, rng_state_);
    }

   private:
    friend class MqExecutor;
    Handle(MqExecutor* owner, u64 seed) : owner_(owner), rng_state_(seed) {}
    MqExecutor* owner_;
    u64 rng_state_;
  };

  // Seed the queue (single-threaded), then run workers until drained.
  // process(item, handle) may call handle.push() to schedule new tasks.
  // If any task throws, the executor cancels (remaining tasks are
  // dropped), joins its workers, and rethrows the first exception.
  template <class Seed, class Process>
  void run(Seed&& seed, Process&& process) {
    Handle seeder(this, hash64(0xabcdef));
    seed(seeder);
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::atomic<bool> cancelled{false};
    std::vector<std::thread> threads;
    threads.reserve(num_threads_);
    for (std::size_t t = 0; t < num_threads_; ++t) {
      threads.emplace_back([&, t] {
        Handle handle(this, hash64(t + 1));
        for (;;) {
          if (cancelled.load(std::memory_order_acquire)) return;
          auto item = queue_.try_pop(handle.rng_state_);
          if (!item.has_value()) {
            if (pending_.load(std::memory_order_acquire) == 0) return;
            std::this_thread::yield();
            continue;
          }
          try {
            obs::ScopedLeaf leaf_scope;
            process(*item, handle);
          } catch (...) {
            {
              std::lock_guard<std::mutex> guard(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            cancelled.store(true, std::memory_order_release);
          }
          pending_.fetch_sub(1, std::memory_order_acq_rel);
        }
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  std::size_t num_threads_;
  MultiQueue<T, KeyFn> queue_;
  std::atomic<i64> pending_{0};
};

}  // namespace rpb::sched
