// Work-stealing fork-join thread pool, the C++ stand-in for the paper's
// Rayon/Cilk runtimes. Workers own Chase–Lev deques; external callers
// inject root jobs; join() is work-first: the forking worker runs the
// left branch itself, pushes the right branch for thieves, and pops it
// back if nobody stole it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sched/chase_lev_deque.h"
#include "sched/job.h"

namespace rpb::sched {

class ThreadPool {
 public:
  // bind_worker_obs_slots: pin workers to the stable per-index obs
  // slots (obs/obs.h). Only one pool may do this — the process-wide
  // global() instance does — because the per-slot trace rings are
  // single-producer; instance pools (serve, tests) default to leasing
  // dynamic slots on first obs use instead.
  explicit ThreadPool(std::size_t num_threads,
                      bool bind_worker_obs_slots = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // True if the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  // Execute f inside the pool and block until it finishes. Calls from a
  // worker of this pool run inline (nested parallelism).
  template <class F>
  void run(F&& f) {
    if (on_worker_thread()) {
      f();
      return;
    }
    ClosureJob<F> root(f);
    inject(&root);
    root.wait_done();
    root.rethrow_if_error();
  }

  // Fork-join: run a and b, potentially in parallel. Must be called from
  // a worker; callers outside the pool are routed through run().
  template <class A, class B>
  void join(A&& a, B&& b) {
    if (!on_worker_thread()) {
      run([&] { join(a, b); });
      return;
    }
    ClosureJob<B> right(b);
    push_local(&right);
    // If the left branch throws, the right job must still be resolved
    // before this frame (which owns it) can unwind.
    std::exception_ptr left_error;
    try {
      a();
    } catch (...) {
      left_error = std::current_exception();
    }
    for (;;) {
      Job* popped = pop_local();
      if (popped == &right) {
        // Nobody stole it: run inline on this stack.
        right.run_claimed();
        break;
      }
      if (popped == nullptr) {
        // Stolen (steal order is oldest-first, so anything of ours still
        // queued below &right was taken before it). Help with other work
        // while the thief finishes.
        wait_while_helping(right);
        break;
      }
      // A batched steal parked above &right (steal_from_anyone may take
      // an extra job and stash it on our deque): run it here so it is
      // never stranded behind a blocking wait.
      popped->run_claimed();
    }
    if (left_error) std::rethrow_exception(left_error);
    right.rethrow_if_error();
  }

  // Demand signal for the adaptive splitter (sched/parallel.h): true when
  // forking another task would give an observed thief something to take —
  // i.e. the calling worker's deque has been drained. Always false on a
  // single-worker pool and for non-worker callers.
  bool should_split() const;

  // Scheduler observability: cumulative counters since construction.
  struct Stats {
    std::uint64_t jobs_executed = 0;  // deque pops + steals + injected
    std::uint64_t steals = 0;         // jobs taken from another worker
    std::uint64_t injected = 0;       // external run() roots
  };
  Stats stats() const;

  // The process-wide pool used by the parallel algorithms when no
  // instance is bound (see current_pool below). Lazily built with
  // rpb::default_threads() workers. Steady-state calls are a single
  // atomic acquire-load; the construction mutex is only taken on first
  // use and inside reset_global.
  static ThreadPool& global();

  // Rebuild the global pool with a new worker count (benchmark harness
  // thread sweeps). Must not be called while parallel work is in flight.
  static void reset_global(std::size_t num_threads);

  // Tripwire observability for instance-scoped execution (src/serve):
  // global() calls made while a GlobalPoolBan was active on the calling
  // thread. Serve request bodies must schedule on their server's pool
  // instance only; a nonzero count is a leak through the singleton seam.
  static std::uint64_t global_touches_while_banned();

 private:
  struct Worker {
    ChaseLevDeque deque;
    // Padded relaxed counters: observability must not create sharing.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
  };

  void worker_loop(std::size_t index);
  void inject(Job* job);
  void push_local(Job* job);
  Job* pop_local();
  Job* take_injected();
  Job* steal_from_anyone(std::size_t self, std::uint64_t& rng_state);
  void wait_while_helping(Job& until_done);
  void wake_workers(std::size_t count);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  bool bind_obs_slots_ = false;

  std::mutex injector_mutex_;
  std::deque<Job*> injector_;
  // Advisory count of jobs sitting in injector_: lets the steal path skip
  // injector_mutex_ entirely when nothing is queued (the common case).
  std::atomic<std::size_t> injected_pending_{0};
  std::atomic<std::uint64_t> injected_{0};

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> sleepers_{0};
  bool stopping_ = false;
};

// The single seam through which the parallel primitives (and every
// kernel asking for num_threads) resolve their pool. Resolution order:
//   1. the pool whose worker thread is calling — nested parallelism
//      inside an instance stays on that instance;
//   2. the pool bound to this thread by a live PoolBinding — how a
//      server dispatch thread routes kernels onto its own instance;
//   3. ThreadPool::global(), the process-wide default, which keeps
//      every existing batch entry point working unchanged.
ThreadPool& current_pool();

// RAII: binds `pool` as the calling thread's scheduling target for the
// lifetime of the binding (nests; the previous binding is restored).
// Worker threads never need this — resolution rule 1 precedes it.
class PoolBinding {
 public:
  explicit PoolBinding(ThreadPool& pool);
  ~PoolBinding();
  PoolBinding(const PoolBinding&) = delete;
  PoolBinding& operator=(const PoolBinding&) = delete;

 private:
  ThreadPool* prev_;
};

// RAII: while alive on this thread, any ThreadPool::global() call is
// counted as a stray singleton touch (global_touches_while_banned).
// The serve executor arms this around request bodies; tests assert the
// counter stays flat across served traffic.
class GlobalPoolBan {
 public:
  GlobalPoolBan();
  ~GlobalPoolBan();
  GlobalPoolBan(const GlobalPoolBan&) = delete;
  GlobalPoolBan& operator=(const GlobalPoolBan&) = delete;

 private:
  bool prev_;
};

}  // namespace rpb::sched
