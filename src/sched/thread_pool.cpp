#include "sched/thread_pool.h"

#include <algorithm>

#include "support/env.h"
#include "support/hash.h"

namespace rpb::sched {
namespace {

// Which pool (if any) the current thread works for, and its index there.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

// Spin/yield rounds before a worker goes to sleep on the condition
// variable; keeps steal latency low while work is flowing.
constexpr int kIdleRoundsBeforeSleep = 64;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(sleep_mutex_);
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() const { return tl_pool == this; }

void ThreadPool::inject(Job* job) {
  {
    std::lock_guard<std::mutex> guard(injector_mutex_);
    injector_.push_back(job);
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  wake_workers(1);
}

void ThreadPool::push_local(Job* job) {
  workers_[tl_worker_index]->deque.push(job);
  // Only pay the notify cost when someone is actually asleep.
  if (sleepers_.load(std::memory_order_relaxed) > 0) wake_workers(1);
}

Job* ThreadPool::pop_local() { return workers_[tl_worker_index]->deque.pop(); }

Job* ThreadPool::take_injected() {
  std::lock_guard<std::mutex> guard(injector_mutex_);
  if (injector_.empty()) return nullptr;
  Job* job = injector_.front();
  injector_.pop_front();
  return job;
}

Job* ThreadPool::steal_from_anyone(std::size_t self, std::uint64_t& rng_state) {
  const std::size_t n = workers_.size();
  if (n <= 1) return take_injected();
  // Random starting victim, then sweep; also check the injector.
  rng_state = hash64(rng_state + 0x9e3779b97f4a7c15ull);
  std::size_t start = rng_state % n;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t victim = start + k;
    if (victim >= n) victim -= n;
    if (victim == self) continue;
    if (Job* job = workers_[victim]->deque.steal()) {
      workers_[self]->stolen.fetch_add(1, std::memory_order_relaxed);
      return job;
    }
  }
  return take_injected();
}

void ThreadPool::wait_while_helping(Job& until_done) {
  std::uint64_t rng_state = hash64(tl_worker_index + 1);
  int idle_rounds = 0;
  while (!until_done.done()) {
    if (Job* job = steal_from_anyone(tl_worker_index, rng_state)) {
      workers_[tl_worker_index]->executed.fetch_add(1,
                                                    std::memory_order_relaxed);
      job->run_claimed();
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kIdleRoundsBeforeSleep) {
      std::this_thread::yield();
    } else {
      // Nothing stealable: block until the thief finishes our branch.
      until_done.wait_done();
    }
  }
}

void ThreadPool::wake_workers(std::size_t count) {
  // Taking the sleep mutex here closes the missed-wakeup window: a
  // worker between its final work re-check and cv.wait() holds the
  // mutex, so this notify cannot slip past it.
  std::lock_guard<std::mutex> guard(sleep_mutex_);
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  if (count >= workers_.size()) {
    sleep_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < count; ++i) sleep_cv_.notify_one();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  std::uint64_t rng_state = hash64(index + 0x1234);
  int idle_rounds = 0;
  for (;;) {
    Job* job = take_injected();
    if (job == nullptr) job = steal_from_anyone(index, rng_state);
    if (job != nullptr) {
      workers_[index]->executed.fetch_add(1, std::memory_order_relaxed);
      job->run_claimed();
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kIdleRoundsBeforeSleep) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_) return;
    // Final re-check under the mutex (pairs with wake_workers): anything
    // injected after our last check is visible here.
    if (Job* late = take_injected()) {
      lock.unlock();
      workers_[index]->executed.fetch_add(1, std::memory_order_relaxed);
      late->run_claimed();
      idle_rounds = 0;
      continue;
    }
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    sleep_cv_.wait(lock);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_) return;
    idle_rounds = 0;
  }
}

namespace {
std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;
}  // namespace

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  for (const auto& worker : workers_) {
    out.jobs_executed += worker->executed.load(std::memory_order_relaxed);
    out.steals += worker->stolen.load(std::memory_order_relaxed);
  }
  out.injected = injected_.load(std::memory_order_relaxed);
  return out;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> guard(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void ThreadPool::reset_global(std::size_t num_threads) {
  std::lock_guard<std::mutex> guard(g_pool_mutex);
  g_pool.reset();  // join old workers before building the new pool
  g_pool = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace rpb::sched
