#include "sched/thread_pool.h"

#include <algorithm>

#include "obs/counters.h"
#include "support/env.h"
#include "support/hash.h"

namespace rpb::sched {
namespace {

// Which pool (if any) the current thread works for, and its index there.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

// Pool bound to this (non-worker) thread by a live PoolBinding, and the
// GlobalPoolBan flag with its stray-touch counter (see thread_pool.h).
thread_local ThreadPool* tl_bound_pool = nullptr;
thread_local bool tl_global_banned = false;
std::atomic<std::uint64_t> g_banned_global_touches{0};

// Bounded exponential backoff between failed steal sweeps: a few
// doubling busy-spin rounds keep steal latency in the sub-microsecond
// range while work is flowing, then a handful of sched yields, then the
// caller's sleep path. Replaces the old flat 64-yield loop — idle
// workers now reach the kernel less while busy and go to sleep sooner
// when the system is genuinely drained.
constexpr int kSpinRounds = 6;   // 1, 2, 4, ..., 32 pause instructions
constexpr int kYieldRounds = 10;
constexpr int kIdleRoundsBeforeSleep = kSpinRounds + kYieldRounds;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

inline void idle_backoff(int round) {
  obs::bump(obs::Counter::kBackoffRounds);
  if (round < kSpinRounds) {
    for (int i = 0; i < (1 << round); ++i) cpu_relax();
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, bool bind_worker_obs_slots)
    : bind_obs_slots_(bind_worker_obs_slots) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(sleep_mutex_);
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() const { return tl_pool == this; }

bool ThreadPool::should_split() const {
  if (workers_.size() <= 1) return false;
  if (tl_pool != this) return false;
  // An empty deque means thieves consumed everything we previously
  // forked (or we never forked): there is observed demand, so the next
  // fork will feed a thief rather than rot in the deque.
  return workers_[tl_worker_index]->deque.size_estimate() == 0;
}

void ThreadPool::inject(Job* job) {
  {
    std::lock_guard<std::mutex> guard(injector_mutex_);
    injector_.push_back(job);
    injected_pending_.fetch_add(1, std::memory_order_release);
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  obs::bump(obs::Counter::kInjectedJobs);
  wake_workers(1);
}

void ThreadPool::push_local(Job* job) {
  obs::bump(obs::Counter::kSpawns);
  workers_[tl_worker_index]->deque.push(job);
  // Only pay the notify cost when someone is actually asleep.
  if (sleepers_.load(std::memory_order_relaxed) > 0) wake_workers(1);
}

Job* ThreadPool::pop_local() { return workers_[tl_worker_index]->deque.pop(); }

Job* ThreadPool::take_injected() {
  // Fast path: skip the mutex when nothing is queued. A stale zero is
  // harmless — inject() publishes the count before wake_workers, and the
  // pre-sleep re-check runs under sleep_mutex_, which orders it after
  // any increment made by a racing inject (see wake_workers).
  if (injected_pending_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard<std::mutex> guard(injector_mutex_);
  if (injector_.empty()) return nullptr;
  Job* job = injector_.front();
  injector_.pop_front();
  injected_pending_.fetch_sub(1, std::memory_order_relaxed);
  return job;
}

Job* ThreadPool::steal_from_anyone(std::size_t self, std::uint64_t& rng_state) {
  const std::size_t n = workers_.size();
  if (n <= 1) return take_injected();
  obs::bump(obs::Counter::kStealsAttempted);
  rng_state = hash64(rng_state + 0x9e3779b97f4a7c15ull);
  const std::size_t start = rng_state % n;
  // First choice: the victim advertising the deepest deque (random tie
  // order via the sweep start). Deep deques mean old, large subtree
  // tasks at the top — the best theft per trip.
  std::size_t best = n;
  std::size_t best_size = 0;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t victim = start + k;
    if (victim >= n) victim -= n;
    if (victim == self) continue;
    std::size_t est = workers_[victim]->deque.size_estimate();
    if (est > best_size) {
      best_size = est;
      best = victim;
    }
  }
  if (best != n) {
    obs::bump(obs::Counter::kDeepestVictimPicks);
    if (Job* job = workers_[best]->deque.steal()) {
      workers_[self]->stolen.fetch_add(1, std::memory_order_relaxed);
      obs::bump(obs::Counter::kStealsSucceeded);
      // Batch: if the victim still has depth to spare, take one more and
      // park it on our own deque — it is runnable by us (pop-first loops
      // and the join pop-loop) and stealable by anyone else.
      if (best_size >= 2 && tl_pool == this && tl_worker_index == self) {
        if (Job* extra = workers_[best]->deque.steal()) {
          workers_[self]->stolen.fetch_add(1, std::memory_order_relaxed);
          obs::bump(obs::Counter::kStealsSucceeded);
          push_local(extra);
        }
      }
      return job;
    }
  }
  // Estimates raced with reality: fall back to a plain sweep.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t victim = start + k;
    if (victim >= n) victim -= n;
    if (victim == self) continue;
    if (Job* job = workers_[victim]->deque.steal()) {
      workers_[self]->stolen.fetch_add(1, std::memory_order_relaxed);
      obs::bump(obs::Counter::kStealsSucceeded);
      return job;
    }
  }
  return take_injected();
}

void ThreadPool::wait_while_helping(Job& until_done) {
  std::uint64_t rng_state = hash64(tl_worker_index + 1);
  int idle_rounds = 0;
  while (!until_done.done()) {
    // Own deque first: batched steals may be parked there, and they must
    // drain before any blocking wait (nobody else is obliged to take
    // them).
    Job* job = pop_local();
    if (job == nullptr) job = steal_from_anyone(tl_worker_index, rng_state);
    if (job != nullptr) {
      workers_[tl_worker_index]->executed.fetch_add(1,
                                                    std::memory_order_relaxed);
      obs::bump(obs::Counter::kJobsExecuted);
      job->run_claimed();
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kIdleRoundsBeforeSleep) {
      idle_backoff(idle_rounds - 1);
    } else {
      // Nothing stealable: block until the thief finishes our branch.
      until_done.wait_done();
    }
  }
}

void ThreadPool::wake_workers(std::size_t count) {
  // Taking the sleep mutex here closes the missed-wakeup window: a
  // worker between its final work re-check and cv.wait() holds the
  // mutex, so this notify cannot slip past it.
  std::lock_guard<std::mutex> guard(sleep_mutex_);
  if (sleepers_.load(std::memory_order_relaxed) == 0) return;
  if (count >= workers_.size()) {
    sleep_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < count; ++i) sleep_cv_.notify_one();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  // Only the global pool pins the stable per-index slots (the trace
  // rings are single-producer; a second pool's worker 0 must not share
  // ring 0). Instance-pool workers lease dynamic slots on first use.
  if (bind_obs_slots_) obs::bind_worker_slot(index);
  std::uint64_t rng_state = hash64(index + 0x1234);
  int idle_rounds = 0;
  for (;;) {
    Job* job = pop_local();  // batched steals parked by steal_from_anyone
    if (job == nullptr) job = take_injected();
    if (job == nullptr) job = steal_from_anyone(index, rng_state);
    if (job != nullptr) {
      workers_[index]->executed.fetch_add(1, std::memory_order_relaxed);
      obs::bump(obs::Counter::kJobsExecuted);
      job->run_claimed();
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kIdleRoundsBeforeSleep) {
      idle_backoff(idle_rounds - 1);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_) return;
    // Final re-check under the mutex (pairs with wake_workers): anything
    // injected after our last check is visible here. Our own deque
    // cannot have gained jobs since the last pop (we are its only
    // pusher), so the injector is the only thing to re-check.
    if (Job* late = take_injected()) {
      lock.unlock();
      workers_[index]->executed.fetch_add(1, std::memory_order_relaxed);
      obs::bump(obs::Counter::kJobsExecuted);
      late->run_claimed();
      idle_rounds = 0;
      continue;
    }
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    sleep_cv_.wait(lock);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_) return;
    idle_rounds = 0;
  }
}

namespace {
std::unique_ptr<ThreadPool> g_pool;
// Published pool pointer for the lock-free steady-state path of
// global(); g_pool_mutex guards (re)construction only.
std::atomic<ThreadPool*> g_pool_ptr{nullptr};
std::mutex g_pool_mutex;
}  // namespace

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  for (const auto& worker : workers_) {
    out.jobs_executed += worker->executed.load(std::memory_order_relaxed);
    out.steals += worker->stolen.load(std::memory_order_relaxed);
  }
  out.injected = injected_.load(std::memory_order_relaxed);
  return out;
}

ThreadPool& ThreadPool::global() {
  if (tl_global_banned) {
    g_banned_global_touches.fetch_add(1, std::memory_order_relaxed);
  }
  if (ThreadPool* pool = g_pool_ptr.load(std::memory_order_acquire)) {
    return *pool;
  }
  std::lock_guard<std::mutex> guard(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(default_threads(),
                                        /*bind_worker_obs_slots=*/true);
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

void ThreadPool::reset_global(std::size_t num_threads) {
  std::lock_guard<std::mutex> guard(g_pool_mutex);
  // Contract: no parallel work in flight. Unpublish before destruction
  // so a racing first-time global() waits on the mutex instead of
  // touching a dying pool.
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // join old workers before building the new pool
  g_pool = std::make_unique<ThreadPool>(num_threads,
                                        /*bind_worker_obs_slots=*/true);
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

std::uint64_t ThreadPool::global_touches_while_banned() {
  return g_banned_global_touches.load(std::memory_order_relaxed);
}

ThreadPool& current_pool() {
  if (tl_pool != nullptr) return *tl_pool;
  if (tl_bound_pool != nullptr) return *tl_bound_pool;
  return ThreadPool::global();
}

PoolBinding::PoolBinding(ThreadPool& pool) : prev_(tl_bound_pool) {
  tl_bound_pool = &pool;
}

PoolBinding::~PoolBinding() { tl_bound_pool = prev_; }

GlobalPoolBan::GlobalPoolBan() : prev_(tl_global_banned) {
  tl_global_banned = true;
}

GlobalPoolBan::~GlobalPoolBan() { tl_global_banned = prev_; }

}  // namespace rpb::sched
