// High-level parallel primitives over the fork-join pool: parallel_for,
// parallel_for_range, parallel_reduce, and join. These are the engine
// underneath the rpb::par pattern vocabulary (src/core/patterns.h).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "sched/thread_pool.h"

namespace rpb::sched {

// Fork-join on the global pool.
template <class A, class B>
void join(A&& a, B&& b) {
  ThreadPool::global().join(std::forward<A>(a), std::forward<B>(b));
}

namespace detail {

// Grain: aim for ~8 leaves per worker so stealing can balance load
// without drowning in task overhead.
inline std::size_t default_grain(std::size_t n, std::size_t threads) {
  return std::max<std::size_t>(1, n / (8 * threads) + 1);
}

}  // namespace detail

// Invoke body(lo, hi) over disjoint subranges covering [begin, end) in
// parallel. The range form lets leaves run tight sequential loops.
template <class F>
void parallel_for_range(std::size_t begin, std::size_t end, const F& body,
                        std::size_t grain = 0) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::global();
  std::size_t n = end - begin;
  if (grain == 0) grain = detail::default_grain(n, pool.num_threads());
  if (n <= grain) {
    body(begin, end);
    return;
  }
  pool.run([&] {
    // Recursive binary splitting, right branch forked for thieves.
    auto split = [&pool, grain, &body](auto&& self, std::size_t lo,
                                       std::size_t hi) -> void {
      if (hi - lo <= grain) {
        body(lo, hi);
        return;
      }
      std::size_t mid = lo + (hi - lo) / 2;
      pool.join([&] { self(self, lo, mid); }, [&] { self(self, mid, hi); });
    };
    split(split, begin, end);
  });
}

// Element-wise parallel for: body(i) for every i in [begin, end).
template <class F>
void parallel_for(std::size_t begin, std::size_t end, const F& body,
                  std::size_t grain = 0) {
  parallel_for_range(
      begin, end,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

// Parallel reduction: combine(leaf(lo, hi)...) over disjoint subranges.
// `combine` must be associative; identity is its unit.
template <class T, class Leaf, class Combine>
T parallel_reduce_range(std::size_t begin, std::size_t end, T identity,
                        const Leaf& leaf, const Combine& combine,
                        std::size_t grain = 0) {
  if (begin >= end) return identity;
  ThreadPool& pool = ThreadPool::global();
  std::size_t n = end - begin;
  if (grain == 0) grain = detail::default_grain(n, pool.num_threads());
  if (n <= grain) return leaf(begin, end);
  T result = identity;
  pool.run([&] {
    auto split = [&pool, grain, &leaf, &combine](auto&& self, std::size_t lo,
                                                 std::size_t hi) -> T {
      if (hi - lo <= grain) return leaf(lo, hi);
      std::size_t mid = lo + (hi - lo) / 2;
      T left{}, right{};
      pool.join([&] { left = self(self, lo, mid); },
                [&] { right = self(self, mid, hi); });
      return combine(std::move(left), std::move(right));
    };
    result = split(split, begin, end);
  });
  return result;
}

// Element-wise reduction: combine over body(i).
template <class T, class Body, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  const Body& body, const Combine& combine,
                  std::size_t grain = 0) {
  return parallel_reduce_range(
      begin, end, identity,
      [&](std::size_t lo, std::size_t hi) {
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
        return acc;
      },
      combine, grain);
}

}  // namespace rpb::sched
