// High-level parallel primitives over the fork-join pool: parallel_for,
// parallel_for_range, parallel_reduce, and join. These are the engine
// underneath the rpb::par pattern vocabulary (src/core/patterns.h).
//
// Range splitting is adaptive by default (SplitMode::kLazy): a leaf
// walks its range in grain-sized chunks and only forks the remaining
// half when the pool reports demand (its deque was drained by thieves).
// Unstolen ranges therefore fork O(log(n/grain)) jobs instead of the
// eager strategy's O(n/grain), while steal-driven splitting keeps the
// same load balance when thieves do show up. The eager splitter is kept
// selectable (RPB_SPLIT=eager / set_split_mode) as the ablation
// baseline.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"
#include "sched/thread_pool.h"

namespace rpb::sched {

// Fork-join on the current pool (worker's own instance, PoolBinding
// target, or the global default — see sched::current_pool).
template <class A, class B>
void join(A&& a, B&& b) {
  current_pool().join(std::forward<A>(a), std::forward<B>(b));
}

// Range-splitting strategy for parallel_for_range / parallel_reduce_range.
enum class SplitMode : int { kEager = 0, kLazy = 1 };

namespace detail {

// Grain: aim for ~8 leaves per worker so stealing can balance load
// without drowning in task overhead.
inline std::size_t default_grain(std::size_t n, std::size_t threads) {
  return std::max<std::size_t>(1, n / (8 * threads) + 1);
}

// Block size for explicitly blocked primitives (scan, pack): same
// leaves-per-worker target with a floor that keeps per-block bookkeeping
// (sums arrays, serial block scans) negligible.
inline std::size_t default_block(std::size_t n, std::size_t threads) {
  return std::max<std::size_t>(2048, n / (8 * threads) + 1);
}

inline std::atomic<int> g_split_mode{-1};  // -1: not yet resolved

inline SplitMode resolve_split_mode() {
  if (const char* env = std::getenv("RPB_SPLIT")) {
    if (std::strcmp(env, "eager") == 0) return SplitMode::kEager;
  }
  return SplitMode::kLazy;
}

}  // namespace detail

inline SplitMode split_mode() {
  int mode = detail::g_split_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(detail::resolve_split_mode());
    detail::g_split_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<SplitMode>(mode);
}

// Benchmark/test knob; safe to flip between (not during) parallel regions.
inline void set_split_mode(SplitMode mode) {
  detail::g_split_mode.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
}

// Invoke body(lo, hi) over disjoint subranges covering [begin, end) in
// parallel. The range form lets leaves run tight sequential loops.
template <class F>
void parallel_for_range(std::size_t begin, std::size_t end, const F& body,
                        std::size_t grain = 0) {
  if (begin >= end) return;
  ThreadPool& pool = current_pool();
  std::size_t n = end - begin;
  if (grain == 0) grain = detail::default_grain(n, pool.num_threads());
  if (n <= grain) {
    body(begin, end);
    return;
  }
  if (split_mode() == SplitMode::kEager) {
    pool.run([&] {
      // Recursive binary splitting, right branch forked for thieves.
      auto split = [&pool, grain, &body](auto&& self, std::size_t lo,
                                         std::size_t hi) -> void {
        if (hi - lo <= grain) {
          obs::ScopedLeaf leaf_scope;
          body(lo, hi);
          return;
        }
        std::size_t mid = lo + (hi - lo) / 2;
        pool.join([&] { self(self, lo, mid); }, [&] { self(self, mid, hi); });
      };
      split(split, begin, end);
    });
    return;
  }
  if (pool.num_threads() == 1) {
    // One worker can never be stolen from: skip the injection round-trip
    // and run the whole range on the calling thread (exactly what the
    // n <= grain fast path above already does for small ranges).
    body(begin, end);
    return;
  }
  pool.run([&] {
    // Adaptive splitting: advance chunk by chunk, forking the remaining
    // half only when the pool reports demand (our deque was drained).
    auto work = [&pool, grain, &body](auto&& self, std::size_t lo,
                                      std::size_t hi) -> void {
      while (hi - lo > grain) {
        if (pool.should_split()) {
          obs::bump(obs::Counter::kLazySplitsTaken);
          std::size_t mid = lo + (hi - lo) / 2;
          pool.join([&] { self(self, lo, mid); }, [&] { self(self, mid, hi); });
          return;
        }
        obs::bump(obs::Counter::kLazySplitsElided);
        std::size_t next = lo + grain;
        {
          obs::ScopedLeaf leaf_scope;
          body(lo, next);
        }
        lo = next;
      }
      obs::ScopedLeaf leaf_scope;
      body(lo, hi);
    };
    work(work, begin, end);
  });
}

// Element-wise parallel for: body(i) for every i in [begin, end).
template <class F>
void parallel_for(std::size_t begin, std::size_t end, const F& body,
                  std::size_t grain = 0) {
  parallel_for_range(
      begin, end,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

// Parallel reduction: combine(leaf(lo, hi)...) over disjoint subranges.
// `combine` must be associative; identity is its unit. T needs copy
// construction and assignment, but not default construction.
template <class T, class Leaf, class Combine>
T parallel_reduce_range(std::size_t begin, std::size_t end, T identity,
                        const Leaf& leaf, const Combine& combine,
                        std::size_t grain = 0) {
  if (begin >= end) return identity;
  ThreadPool& pool = current_pool();
  std::size_t n = end - begin;
  if (grain == 0) grain = detail::default_grain(n, pool.num_threads());
  if (n <= grain) return leaf(begin, end);
  T result = identity;
  if (split_mode() == SplitMode::kEager) {
    pool.run([&] {
      auto split = [&pool, grain, &leaf, &combine, &identity](
                       auto&& self, std::size_t lo, std::size_t hi) -> T {
        if (hi - lo <= grain) return leaf(lo, hi);
        std::size_t mid = lo + (hi - lo) / 2;
        T left(identity), right(identity);
        pool.join([&] { left = self(self, lo, mid); },
                  [&] { right = self(self, mid, hi); });
        return combine(std::move(left), std::move(right));
      };
      result = split(split, begin, end);
    });
    return result;
  }
  if (pool.num_threads() == 1) return leaf(begin, end);
  pool.run([&] {
    auto work = [&pool, grain, &leaf, &combine, &identity](
                    auto&& self, std::size_t lo, std::size_t hi) -> T {
      T acc(identity);
      while (hi - lo > grain) {
        if (pool.should_split()) {
          obs::bump(obs::Counter::kLazySplitsTaken);
          std::size_t mid = lo + (hi - lo) / 2;
          T left(identity), right(identity);
          pool.join([&] { left = self(self, lo, mid); },
                    [&] { right = self(self, mid, hi); });
          return combine(std::move(acc),
                         combine(std::move(left), std::move(right)));
        }
        obs::bump(obs::Counter::kLazySplitsElided);
        std::size_t next = lo + grain;
        acc = combine(std::move(acc), leaf(lo, next));
        lo = next;
      }
      return combine(std::move(acc), leaf(lo, hi));
    };
    result = work(work, begin, end);
  });
  return result;
}

// Element-wise reduction: combine over body(i).
template <class T, class Body, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  const Body& body, const Combine& combine,
                  std::size_t grain = 0) {
  return parallel_reduce_range(
      begin, end, identity,
      [&](std::size_t lo, std::size_t hi) {
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
        return acc;
      },
      combine, grain);
}

}  // namespace rpb::sched
