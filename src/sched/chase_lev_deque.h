// Chase–Lev work-stealing deque (dynamic circular array), following the
// weak-memory formulation of Le, Pop, Cohen & Zappa Nardelli (PPoPP'13).
// The owner pushes and pops at the bottom; thieves steal from the top.
//
// Grown buffers are retired to a chain freed at destruction: a thief may
// still hold a pointer into an old buffer, so freeing eagerly would be a
// use-after-free. Deques live for the process lifetime (one per pool
// worker), so the leak-until-destruction policy costs nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "sched/job.h"
#include "support/defs.h"

namespace rpb::sched {

class ChaseLevDeque {
  // The PPoPP'13 formulation synchronizes the job payload through the
  // fences in push/pop/steal and leaves the slot/index accesses relaxed.
  // TSAN does not model standalone fences, so under it we upgrade the
  // relaxed operations that carry the payload to release/acquire — the
  // algorithm is unchanged, only the annotations are stronger.
  static constexpr std::memory_order kPublish =
      kTsanEnabled ? std::memory_order_release : std::memory_order_relaxed;
  static constexpr std::memory_order kConsume =
      kTsanEnabled ? std::memory_order_acquire : std::memory_order_relaxed;

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 1024)
      : buffer_(new Buffer(initial_capacity, nullptr)) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    Buffer* b = buffer_.load(std::memory_order_relaxed);
    while (b != nullptr) {
      Buffer* prev = b->prev;
      delete b;
      b = prev;
    }
  }

  // Owner only.
  void push(Job* job) {
    i64 b = bottom_.load(std::memory_order_relaxed);
    i64 t = top_.load(std::memory_order_acquire);
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<i64>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->at(b).store(job, kPublish);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, kPublish);
  }

  // Owner only. Returns nullptr when empty or lost the race on the last
  // element.
  Job* pop() {
    i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    i64 t = top_.load(std::memory_order_relaxed);
    Job* job = nullptr;
    if (t <= b) {
      job = a->at(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Single element: race against thieves via top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          job = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return job;
  }

  // Any thread. Returns nullptr when empty or on a lost race (caller
  // should move on to another victim).
  Job* steal() {
    i64 t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    i64 b = bottom_.load(std::memory_order_acquire);
    Job* job = nullptr;
    if (t < b) {
      Buffer* a = buffer_.load(std::memory_order_acquire);
      job = a->at(t).load(kConsume);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
    }
    return job;
  }

  bool looks_empty() const { return size_estimate() == 0; }

  // Racy size estimate (owner's bottom minus thieves' top). Used for
  // victim selection and split heuristics only — never for correctness.
  std::size_t size_estimate() const {
    i64 b = bottom_.load(std::memory_order_relaxed);
    i64 t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap, Buffer* prev_buffer)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<Job*>[]>(cap)),
          prev(prev_buffer) {}

    std::atomic<Job*>& at(i64 index) { return slots[index & mask]; }

    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<Job*>[]> slots;
    Buffer* prev;  // retired-buffer chain, freed in ~ChaseLevDeque
  };

  Buffer* grow(Buffer* old, i64 t, i64 b) {
    auto* bigger = new Buffer(old->capacity * 2, old);
    for (i64 i = t; i < b; ++i) {
      bigger->at(i).store(old->at(i).load(std::memory_order_relaxed),
                          kPublish);
    }
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(kCacheLineBytes) std::atomic<i64> top_{0};
  alignas(kCacheLineBytes) std::atomic<i64> bottom_{0};
  alignas(kCacheLineBytes) std::atomic<Buffer*> buffer_;
};

}  // namespace rpb::sched
