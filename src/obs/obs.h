// Scheduler observability: the mode knob and per-thread slot identity
// shared by the counter (obs/counters.h) and tracing (obs/trace.h)
// layers. Four PRs of scheduler/arena/primitives work were tuned from
// end-to-end medians alone; this subsystem exposes *why* a run is fast
// or slow — steal success rates, split decisions, lease churn, per-phase
// spans — as first-class data, while costing the off path nothing but a
// relaxed load and a predictable branch per instrumentation site.
//
// The RPB_OBS knob (mirrored by set_mode, like RPB_SPLIT/RPB_ARENA):
//   off      — default. Every instrumentation site compiles to a relaxed
//              atomic load plus an untaken branch; no TLS access, no
//              stores, no allocation.
//   counters — per-worker cache-line-padded relaxed-atomic counters
//              (spawns, steals, splits, leases, check verdicts ...),
//              aggregated on demand into a StatsSnapshot.
//   trace    — counters plus scoped region tracing into per-worker
//              lock-free ring buffers, drained post-run into Chrome
//              trace-event JSON (obs::write_trace) with work/span
//              accounting (obs::work_span).
//
// Slot identity: the *global* pool's workers bind slot = worker index
// (stable across ThreadPool::reset_global generations, since the old
// workers are joined before the new ones start); every other thread —
// including workers of instance pools (src/serve servers, tests),
// whose indices would collide with the global pool's — leases a
// dynamic slot from a free list and returns it at thread exit. When the
// dynamic range is exhausted, threads share the overflow slot, which
// accepts counter bumps (atomics tolerate sharing) but records no trace
// events (the rings are single-producer).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "support/defs.h"

namespace rpb::obs {

// Observability level; ordering matters (trace implies counters).
enum class ObsMode : int { kOff = 0, kCounters = 1, kTrace = 2 };

// Slot layout: [0, kMaxWorkerSlots) pool workers, then the dynamic
// range for non-pool threads (main thread, MqExecutor workers), then
// one shared overflow slot.
inline constexpr std::size_t kMaxWorkerSlots = 32;
inline constexpr std::size_t kDynamicSlots = 31;
inline constexpr std::size_t kNumSlots = kMaxWorkerSlots + kDynamicSlots + 1;
inline constexpr std::size_t kOverflowSlot = kNumSlots - 1;

namespace detail {

inline std::atomic<int> g_obs_mode{-1};  // -1: not yet resolved

inline ObsMode resolve_obs_mode() {
  if (const char* env = std::getenv("RPB_OBS")) {
    if (std::strcmp(env, "counters") == 0) return ObsMode::kCounters;
    if (std::strcmp(env, "trace") == 0) return ObsMode::kTrace;
  }
  return ObsMode::kOff;
}

}  // namespace detail

inline ObsMode mode() {
  int m = detail::g_obs_mode.load(std::memory_order_relaxed);
  if (m < 0) [[unlikely]] {
    m = static_cast<int>(detail::resolve_obs_mode());
    detail::g_obs_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<ObsMode>(m);
}

// Benchmark/test knob; safe to flip between (not during) parallel
// regions — mirrors sched::set_split_mode / support::set_arena_mode.
inline void set_mode(ObsMode m) {
  detail::g_obs_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

// The off-path fast checks: one relaxed load + compare each.
inline bool counters_enabled() { return mode() != ObsMode::kOff; }
inline bool trace_enabled() { return mode() == ObsMode::kTrace; }

namespace detail {

inline constexpr u32 kInvalidSlot = 0xffffffffu;

inline std::mutex& slot_mutex() {
  static std::mutex mu;
  return mu;
}

// Leaked on purpose: non-main threads run their thread_local
// destructors (which push into this list) during process teardown,
// after static destructors may have started on some platforms.
inline std::vector<u32>& free_dynamic_slots() {
  static std::vector<u32>* slots = [] {
    auto* v = new std::vector<u32>();
    v->reserve(kDynamicSlots);
    for (std::size_t i = kDynamicSlots; i-- > 0;) {
      v->push_back(static_cast<u32>(kMaxWorkerSlots + i));
    }
    return v;
  }();
  return *slots;
}

struct ThreadSlotHolder {
  u32 slot = kInvalidSlot;
  bool dynamic = false;
  ~ThreadSlotHolder() {
    if (!dynamic) return;
    std::lock_guard<std::mutex> guard(slot_mutex());
    free_dynamic_slots().push_back(slot);
  }
};

inline thread_local ThreadSlotHolder tl_slot;

}  // namespace detail

// The calling thread's observability slot. Only reached from enabled
// paths, so the off mode never touches TLS. First use from a non-pool
// thread leases a dynamic slot (returned at thread exit).
inline u32 thread_slot() {
  detail::ThreadSlotHolder& holder = detail::tl_slot;
  if (holder.slot == detail::kInvalidSlot) [[unlikely]] {
    std::lock_guard<std::mutex> guard(detail::slot_mutex());
    auto& free_slots = detail::free_dynamic_slots();
    if (free_slots.empty()) {
      holder.slot = static_cast<u32>(kOverflowSlot);
    } else {
      holder.slot = free_slots.back();
      free_slots.pop_back();
      holder.dynamic = true;
    }
  }
  return holder.slot;
}

// Called by ThreadPool::worker_loop at thread start: pins this thread
// to the stable per-worker slot so counters and trace lanes line up
// with worker indices. Unconditional (not mode-gated) — it runs once
// per worker thread, and binding eagerly lets the mode flip on later.
inline void bind_worker_slot(std::size_t worker_index) {
  detail::ThreadSlotHolder& holder = detail::tl_slot;
  if (holder.dynamic) {
    std::lock_guard<std::mutex> guard(detail::slot_mutex());
    detail::free_dynamic_slots().push_back(holder.slot);
    holder.dynamic = false;
  }
  holder.slot = worker_index < kMaxWorkerSlots
                    ? static_cast<u32>(worker_index)
                    : static_cast<u32>(kOverflowSlot);
}

}  // namespace rpb::obs
