// Scoped region tracing (obs layer 2) and work/span accounting (layer
// 3). Each slot owns a fixed-capacity ring of begin/end events; the
// owning thread is the only producer, so a record is one array store
// plus a release store of the head index (release pairs with the
// drain's acquire — the same payload-publication discipline the
// Chase-Lev deque uses, expressed with per-operation orderings so it is
// TSAN-modelable without standalone fences). A full ring overwrites its
// oldest events — tracing never blocks and never allocates.
//
// Draining (write_trace / work_span / drain_trace_events) is
// quiescent-only: call it after the traced parallel regions have
// joined. Producers that raced past the ring capacity simply lose their
// oldest events; the drain reports how many were overwritten.
//
// Phase labels: OBS_SCOPE("sample_sort.classify") names a region and
// publishes the name as the current phase label; the scheduler's leaf
// tasks (ScopedLeaf) inherit the label, so events recorded on stealing
// workers aggregate under the kernel phase that spawned them. The label
// is a single global — concurrent *distinct* kernels can mislabel each
// other's leaves (it is a hint, not a causal link); benchmarks run one
// kernel at a time, which is the case this subsystem serves.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/obs.h"
#include "support/defs.h"

namespace rpb::obs {

struct TraceEvent {
  const char* name = nullptr;  // static string (macro literal)
  u64 ts_ns = 0;               // nanoseconds since the process trace epoch
  u32 depth = 0;               // fork-join nesting depth on this thread
  char phase = 0;              // 'B' or 'E'
};

inline constexpr std::size_t kTraceRingCapacity = 1 << 12;  // per slot

namespace detail {

struct alignas(kCacheLineBytes) TraceRing {
  std::array<TraceEvent, kTraceRingCapacity> events;
  // Monotonic event count; the live window is [head - min(head, cap),
  // head). Store-release publishes the slot write above it.
  std::atomic<u64> head{0};
};

inline TraceRing g_rings[kNumSlots];
inline std::atomic<u64> g_trace_epoch_ns{0};
inline std::atomic<const char*> g_phase_label{nullptr};
inline thread_local u32 tl_scope_depth = 0;

inline u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline u64 trace_now() {
  u64 epoch = g_trace_epoch_ns.load(std::memory_order_relaxed);
  u64 now = now_ns();
  if (epoch == 0) [[unlikely]] {
    u64 expected = 0;
    g_trace_epoch_ns.compare_exchange_strong(expected, now,
                                             std::memory_order_relaxed);
    epoch = g_trace_epoch_ns.load(std::memory_order_relaxed);
  }
  return now >= epoch ? now - epoch : 0;
}

inline void record(const char* name, char phase, u32 depth) {
  u32 slot = thread_slot();
  if (slot == kOverflowSlot) [[unlikely]] {
    // Shared slot: rings are single-producer, so overflow threads count
    // the drop instead of racing on the array.
    bump(Counter::kTraceDropsObserved);
    return;
  }
  TraceRing& ring = g_rings[slot];
  u64 h = ring.head.load(std::memory_order_relaxed);
  ring.events[h & (kTraceRingCapacity - 1)] =
      TraceEvent{name, trace_now(), depth, phase};
  ring.head.store(h + 1, std::memory_order_release);
}

}  // namespace detail

// RAII region scope: records begin/end events and publishes the region
// name as the current phase label for leaf tasks spawned underneath.
// Off/counters mode: constructor is one relaxed load + untaken branch.
class ScopedRegion {
 public:
  explicit ScopedRegion(const char* name) {
    if (!trace_enabled()) [[likely]] return;
    name_ = name;
    prev_label_ = detail::g_phase_label.exchange(name,
                                                 std::memory_order_relaxed);
    depth_ = detail::tl_scope_depth++;
    detail::record(name, 'B', depth_);
  }
  ~ScopedRegion() {
    if (name_ == nullptr) return;
    --detail::tl_scope_depth;
    detail::record(name_, 'E', depth_);
    detail::g_phase_label.store(prev_label_, std::memory_order_relaxed);
  }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  const char* name_ = nullptr;
  const char* prev_label_ = nullptr;
  u32 depth_ = 0;
};

// RAII leaf scope used by the scheduler's split/chunk paths and the
// MultiQueue executor: same events as ScopedRegion but named after the
// inherited phase label, so stolen work shows up under the kernel phase
// that forked it. Does not publish a label of its own.
class ScopedLeaf {
 public:
  ScopedLeaf() {
    if (!trace_enabled()) [[likely]] return;
    name_ = detail::g_phase_label.load(std::memory_order_relaxed);
    if (name_ == nullptr) name_ = "leaf";
    depth_ = detail::tl_scope_depth++;
    detail::record(name_, 'B', depth_);
  }
  ~ScopedLeaf() {
    if (name_ == nullptr) return;
    --detail::tl_scope_depth;
    detail::record(name_, 'E', depth_);
  }
  ScopedLeaf(const ScopedLeaf&) = delete;
  ScopedLeaf& operator=(const ScopedLeaf&) = delete;

 private:
  const char* name_ = nullptr;
  u32 depth_ = 0;
};

#define RPB_OBS_CONCAT2(a, b) a##b
#define RPB_OBS_CONCAT(a, b) RPB_OBS_CONCAT2(a, b)
// Named region scope: OBS_SCOPE("sample_sort.partition");
#define OBS_SCOPE(name) \
  ::rpb::obs::ScopedRegion RPB_OBS_CONCAT(rpb_obs_scope_, __LINE__)(name)

// ---- quiescent-only drain API (implemented in obs.cpp) --------------

struct DrainedEvent {
  const char* name;
  u64 ts_ns;
  u32 slot;
  u32 depth;
  char phase;
};

// Snapshot of every ring's live window, merged and sorted by timestamp.
// Non-destructive (clear_trace resets).
std::vector<DrainedEvent> drain_trace_events();

// Events currently held across all rings / events overwritten by ring
// wraparound (drop-oldest) plus overflow-slot drops.
std::size_t trace_event_count();
std::size_t trace_dropped_count();

// Resets every ring (and the dropped tally). Quiescent use only.
void clear_trace();

// Writes the current trace as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto; tools/trace_summary.py renders a
// per-phase/per-worker table from it). Returns false on I/O failure.
bool write_trace(const std::string& path);

// Work/span accounting over the current trace. Work W sums the self
// time (duration minus same-worker child time) of every completed
// scope; span S is the longest root-to-leaf chain of self times,
// where parent/child links are per-worker scope nesting. Cross-worker
// children are not subtracted from their forking scope's self time
// (the trace records no causal steal edges), so W counts a forking
// scope's wait time as work — treat W/S as the measured parallelism of
// what the trace saw, an estimate, not a Cilkview-exact bound. W >= S
// holds by construction (the chain's self times are a subset of W).
struct WorkSpan {
  double work_seconds = 0;
  double span_seconds = 0;
  std::size_t scopes = 0;  // completed scopes accounted
  double parallelism() const {
    return span_seconds > 0 ? work_seconds / span_seconds : 0;
  }
};

WorkSpan work_span();

}  // namespace rpb::obs
