// Aggregation, drain, and serialization for the observability
// subsystem. Everything here is cold-path: snapshots, ring drains,
// Chrome trace export, and the work/span walk. The hot-path inline
// machinery (bump, ScopedRegion) lives in the headers.
#include "obs/counters.h"
#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace rpb::obs {

namespace {

void append_counter_fields(std::string& out,
                           const std::array<u64, kNumCounters>& c) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out += "\"";
    out += kCounterNames[i];
    out += "\": ";
    out += std::to_string(c[i]);
    if (i + 1 < kNumCounters) out += ", ";
  }
}

}  // namespace

StatsSnapshot snapshot_counters() {
  StatsSnapshot snap;
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    StatsSnapshot::Row row;
    row.slot = static_cast<u32>(slot);
    bool any = false;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      u64 v = detail::g_counters[slot].c[i].load(std::memory_order_relaxed);
      row.c[i] = v;
      snap.totals[i] += v;
      any |= v != 0;
    }
    if (any) snap.per_worker.push_back(row);
  }
  return snap;
}

void reset_counters() {
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      detail::g_counters[slot].c[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::string StatsSnapshot::to_json() const {
  std::string out = "{\"counters\": {";
  append_counter_fields(out, totals);
  out += "}, \"per_worker\": [";
  for (std::size_t r = 0; r < per_worker.size(); ++r) {
    out += "{\"slot\": " + std::to_string(per_worker[r].slot) + ", ";
    append_counter_fields(out, per_worker[r].c);
    out += "}";
    if (r + 1 < per_worker.size()) out += ", ";
  }
  out += "]}";
  return out;
}

namespace {

// Per-slot live window, oldest first. Acquire on head pairs with the
// producer's release so the events below it are visible.
void drain_slot(std::size_t slot, std::vector<DrainedEvent>& out) {
  detail::TraceRing& ring = detail::g_rings[slot];
  u64 head = ring.head.load(std::memory_order_acquire);
  u64 count = std::min<u64>(head, kTraceRingCapacity);
  for (u64 i = head - count; i < head; ++i) {
    const TraceEvent& ev = ring.events[i & (kTraceRingCapacity - 1)];
    out.push_back(DrainedEvent{ev.name, ev.ts_ns, static_cast<u32>(slot),
                               ev.depth, ev.phase});
  }
}

}  // namespace

std::vector<DrainedEvent> drain_trace_events() {
  std::vector<DrainedEvent> events;
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    drain_slot(slot, events);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const DrainedEvent& a, const DrainedEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

std::size_t trace_event_count() {
  std::size_t total = 0;
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    u64 head = detail::g_rings[slot].head.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(std::min<u64>(head, kTraceRingCapacity));
  }
  return total;
}

std::size_t trace_dropped_count() {
  std::size_t dropped = 0;
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    u64 head = detail::g_rings[slot].head.load(std::memory_order_acquire);
    if (head > kTraceRingCapacity) {
      dropped += static_cast<std::size_t>(head - kTraceRingCapacity);
    }
  }
  return dropped;
}

void clear_trace() {
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    detail::g_rings[slot].head.store(0, std::memory_order_release);
  }
}

bool write_trace(const std::string& path) {
  std::vector<DrainedEvent> events = drain_trace_events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"displayTimeUnit\": \"ms\",\n");
  std::fprintf(f, "  \"otherData\": {\"schema\": \"rpb-trace-v1\", "
                  "\"dropped_events\": %zu},\n",
               trace_dropped_count());
  std::fprintf(f, "  \"traceEvents\": [\n");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const DrainedEvent& ev = events[i];
    // Names are static string literals from OBS_SCOPE sites; no quotes
    // or backslashes to escape.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"cat\": \"rpb\", \"ph\": \"%c\", "
                 "\"pid\": 0, \"tid\": %u, \"ts\": %.3f, "
                 "\"args\": {\"depth\": %u}}%s\n",
                 ev.name, ev.phase, ev.slot,
                 static_cast<double>(ev.ts_ns) / 1e3, ev.depth,
                 i + 1 < events.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return std::fclose(f) == 0;
}

WorkSpan work_span() {
  WorkSpan out;
  struct Frame {
    const char* name;
    u64 begin;
    u64 child_ns = 0;    // total duration of same-worker children
    u64 child_span = 0;  // deepest same-worker child chain
    u32 depth;
  };
  for (std::size_t slot = 0; slot < kNumSlots; ++slot) {
    std::vector<DrainedEvent> events;
    drain_slot(slot, events);
    std::vector<Frame> stack;
    for (const DrainedEvent& ev : events) {
      if (ev.phase == 'B') {
        stack.push_back(Frame{ev.name, ev.ts_ns, 0, 0, ev.depth});
        continue;
      }
      if (stack.empty()) continue;  // begin overwritten by ring wrap
      Frame top = stack.back();
      if (top.depth != ev.depth || top.name != ev.name) {
        // Wraparound ate part of the nesting; the reconstructed stack
        // no longer matches. Discard the broken lineage and resync.
        stack.clear();
        continue;
      }
      stack.pop_back();
      u64 dur = ev.ts_ns >= top.begin ? ev.ts_ns - top.begin : 0;
      u64 self = dur >= top.child_ns ? dur - top.child_ns : 0;
      u64 span = self + top.child_span;
      out.work_seconds += static_cast<double>(self) * 1e-9;
      ++out.scopes;
      if (!stack.empty()) {
        stack.back().child_ns += dur;
        stack.back().child_span = std::max(stack.back().child_span, span);
      } else {
        out.span_seconds =
            std::max(out.span_seconds, static_cast<double>(span) * 1e-9);
      }
    }
  }
  return out;
}

}  // namespace rpb::obs
