// Per-worker scheduler counters (obs layer 1). Each slot owns a
// cache-line-aligned block of relaxed atomic u64s — observability must
// not create sharing between workers, so blocks never straddle a line
// boundary; within a block only the owning thread writes, so the
// counters of one worker may share lines with each other freely.
// Writes are plain relaxed fetch_adds (TSAN-clean by construction; no
// fences involved). Aggregation (snapshot_counters) reads relaxed too:
// totals taken mid-flight are advisory, exact once quiescent.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "support/defs.h"

namespace rpb::obs {

// One slot per instrumented scheduler/runtime event family. Keep
// kCounterNames below in sync — it provides the JSON keys.
enum class Counter : u32 {
  kJobsExecuted = 0,    // pool: deque pops + steals + injected roots run
  kSpawns,              // pool: jobs pushed to a worker deque (forks)
  kInjectedJobs,        // pool: external run() roots injected
  kStealsAttempted,     // pool: steal sweeps started by an idle worker
  kStealsSucceeded,     // pool: jobs actually taken from a victim
  kDeepestVictimPicks,  // pool: sweeps that found a deepest-deque victim
  kBackoffRounds,       // pool: idle spin/yield backoff rounds
  kLazySplitsTaken,     // splitter: forks taken on observed demand
  kLazySplitsElided,    // splitter: grain chunks run without forking
  kMqPushes,            // MultiQueue: elements pushed
  kMqPops,              // MultiQueue: elements popped
  kArenaChunkAllocs,    // arena: fresh chunks allocated (growth events)
  kArenaLeaseReuses,    // arena: leases served from the idle pool
  kArenaLeaseCreates,   // arena: leases that built a new arena
  kMarkTableLeases,     // mark tables leased (one per checked-tier check)
  kCheckedPassed,       // checked-tier validations that passed
  kCheckedFailed,       // checked-tier validations that threw
  kTraceDropsObserved,  // trace scopes not recorded (overflow slot)
  kSparseMergeTasks,    // spmv: merge-path tasks launched
  kSparseCarryFixups,   // spmv: partial-row carries applied in fix-up
  kSparseAccumRows,     // spgemm: rows built through the sparse accumulator
  kDrCavityTris,        // dr build: cavity triangles collected (sizes sum)
  kDrDeferredInserts,   // dr build: wave inserts deferred to the stitch
  kDrReserveConflicts,  // dr stitch: reservation cells lost at commit
  kDrStitchRetries,     // dr stitch: members retried in a later round
  kServeAdmitted,       // serve: requests admitted past admission control
  kServeRejectedQueue,  // serve: requests bounced off a full tenant queue
  kServeRejectedShare,  // serve: requests bounced for exceeding the share
  kServeShedDeadline,   // serve: admitted requests shed at dispatch (EDF)
  kServeBatches,        // serve: parallel regions dispatched (batch count)
  kServeBatchedJobs,    // serve: jobs coalesced into those regions
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

inline constexpr const char* kCounterNames[kNumCounters] = {
    "jobs_executed",      "spawns",
    "injected_jobs",      "steals_attempted",
    "steals_succeeded",   "deepest_victim_picks",
    "backoff_rounds",     "lazy_splits_taken",
    "lazy_splits_elided", "mq_pushes",
    "mq_pops",            "arena_chunk_allocs",
    "arena_lease_reuses", "arena_lease_creates",
    "mark_table_leases",  "checked_passed",
    "checked_failed",     "trace_drops_observed",
    "sparse_merge_tasks", "sparse_carry_fixups",
    "sparse_accum_rows",  "dr_cavity_tris",
    "dr_deferred_inserts", "dr_reserve_conflicts",
    "dr_stitch_retries",  "serve_admitted",
    "serve_rejected_queue", "serve_rejected_share",
    "serve_shed_deadline", "serve_batches",
    "serve_batched_jobs"};

inline constexpr const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

namespace detail {

struct alignas(kCacheLineBytes) CounterBlock {
  std::array<std::atomic<u64>, kNumCounters> c{};
};

inline CounterBlock g_counters[kNumSlots];

}  // namespace detail

// The hot-path increment. Off mode: one relaxed load + untaken branch.
inline void bump(Counter which, u64 n = 1) {
  if (!counters_enabled()) [[likely]] return;
  detail::g_counters[thread_slot()]
      .c[static_cast<std::size_t>(which)]
      .fetch_add(n, std::memory_order_relaxed);
}

// On-demand aggregation of the per-worker blocks. per_worker carries
// one row per slot with any activity; totals sums every slot
// (including overflow). Exact when taken between parallel regions.
struct StatsSnapshot {
  struct Row {
    u32 slot = 0;
    std::array<u64, kNumCounters> c{};
  };
  std::vector<Row> per_worker;
  std::array<u64, kNumCounters> totals{};

  u64 total(Counter which) const {
    return totals[static_cast<std::size_t>(which)];
  }
  // {"counters":{name:total,...},"per_worker":[{"slot":s,name:v,...},...]}
  std::string to_json() const;
};

StatsSnapshot snapshot_counters();

// Zeroes every slot's counters. Quiescent use only (between regions).
void reset_counters();

}  // namespace rpb::obs
