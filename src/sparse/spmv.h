// Sparse matrix-vector product over CsrView, in the paper's pattern
// vocabulary, with two load-balancing policies behind the RPB_SPMV
// knob:
//
//   rowpar     The naive RngInd expression: one task per row, exactly
//              the shape par_ind_chunks_mut defaults to (grain=1) —
//              task r reads vals/cols[offsets[r]..offsets[r+1]) and
//              writes y[r]. Simple and byte-identical to the serial
//              reference (each row sums left to right), but skewed
//              degree distributions serialize on heavy rows (a row is
//              the smallest stealable unit) and pay per-row scheduling
//              overhead on the torrent of tiny rows.
//   mergepath  Merrill & Garland's merge-path decomposition: the 2D
//              merge of row-end markers and nonzero indices is cut
//              into equal (rows + nnz) shares by binary-searching the
//              cut diagonals, so every task gets the same amount of
//              work no matter how the nonzeros distribute over rows.
//              Tasks own row *segments*; a row crossing a task
//              boundary yields a per-task carry (its partial sum) that
//              a serial ascending fix-up pass adds to y afterwards.
//
// Determinism: the decomposition depends only on (rows, nnz, grain) —
// never on the thread count or schedule — and the fix-up applies
// carries in ascending task order, so mergepath results are bitwise
// reproducible run to run and across RPB_THREADS (DESIGN.md §6).
// Split rows sum in segment order rather than strictly left to right,
// so mergepath agrees with the serial reference exactly for
// integer-valued data and to rounding (ULP) for general floats;
// rowpar agrees bitwise always.
//
// The checked tier validates the CSR invariants the kernels otherwise
// trust: offsets monotone with offsets[0]=0 and offsets[n]=nnz
// (par::check_monotonic_offsets, the cheap RngInd check) and every
// column id inside the gather bound (par::check_indices_in_bounds).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <span>

#include "core/access_mode.h"
#include "core/checks.h"
#include "core/uninit_buf.h"
#include "obs/counters.h"
#include "sched/parallel.h"
#include "sparse/csr_matrix.h"
#include "support/arena.h"
#include "support/error.h"

namespace rpb::sparse {

// Row-distribution policy for spmv (see file header).
enum class SpmvPolicy : int { kRowPar = 0, kMergePath = 1 };

inline const char* spmv_policy_name(SpmvPolicy policy) {
  switch (policy) {
    case SpmvPolicy::kRowPar: return "rowpar";
    case SpmvPolicy::kMergePath: return "mergepath";
  }
  return "?";
}

namespace detail {

inline std::atomic<int> g_spmv_policy{-1};  // -1: not yet resolved

// RPB_SPMV: "rowpar" selects the naive baseline; "mergepath" (or
// unset) the balanced decomposition.
inline SpmvPolicy resolve_spmv_policy() {
  if (const char* env = std::getenv("RPB_SPMV")) {
    if (std::strcmp(env, "rowpar") == 0) return SpmvPolicy::kRowPar;
  }
  return SpmvPolicy::kMergePath;
}

}  // namespace detail

inline SpmvPolicy spmv_policy() {
  int policy = detail::g_spmv_policy.load(std::memory_order_relaxed);
  if (policy < 0) {
    policy = static_cast<int>(detail::resolve_spmv_policy());
    detail::g_spmv_policy.store(policy, std::memory_order_relaxed);
  }
  return static_cast<SpmvPolicy>(policy);
}

// Benchmark/test knob; safe to flip between (not during) kernels —
// mirrors set_arena_mode / set_check_mode / set_simd_level.
inline void set_spmv_policy(SpmvPolicy policy) {
  detail::g_spmv_policy.store(static_cast<int>(policy),
                              std::memory_order_relaxed);
}

// Work items a merge-path task is sized to (rows + nonzeros). Input-
// pure on purpose: task boundaries must not depend on the thread
// count, or split-row summation order — and thus f32/f64 bits — would
// change with RPB_THREADS.
inline constexpr std::size_t kMergePathGrain = 4096;

// A point on the merge path: `row` rows fully consumed (their sums
// already flushed), `nz` nonzeros consumed — nz >= offsets[row], with
// nz > offsets[row] meaning the point sits mid-row.
struct MergeCoord {
  std::size_t row = 0;
  std::size_t nz = 0;

  bool operator==(const MergeCoord&) const = default;
};

// Binary-search the crossing of diagonal `diag` (row + nz == diag)
// with the merge path of the row-end-marker list offsets[1..n] and
// the nonzero index list 0..nnz-1. Ties consume the row end first, so
// empty rows are flushed as early as possible. Pure in (offsets,
// diag): the partition of work among tasks is a function of the input
// alone. O(log rows).
inline MergeCoord merge_path_search(std::span<const u64> offsets,
                                    std::size_t diag) {
  const std::size_t num_rows = offsets.empty() ? 0 : offsets.size() - 1;
  const std::size_t nnz =
      offsets.empty() ? 0 : static_cast<std::size_t>(offsets.back());
  std::size_t lo = diag > nnz ? diag - nnz : 0;
  std::size_t hi = std::min(diag, num_rows);
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    // Row `mid` ends no later than the B-side item on this diagonal:
    // the path consumes its end marker, so the crossing lies further
    // down the row list.
    if (static_cast<std::size_t>(offsets[mid + 1]) <= diag - 1 - mid) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return MergeCoord{lo, diag - lo};
}

// Number of merge-path tasks a (rows, nnz) matrix decomposes into at
// the given grain. Exposed so harnesses/tests can reason about the
// partition (rows-per-task percentiles) without re-deriving it.
inline std::size_t merge_path_tasks(std::size_t num_rows, std::size_t nnz,
                                    std::size_t grain = kMergePathGrain) {
  const std::size_t items = num_rows + nnz;
  return items == 0 ? 0 : (items + grain - 1) / grain;
}

namespace detail {

// CSR invariant validation shared by the checked tiers of every
// sparse kernel: monotone offsets bracketed by [0, nnz], and every
// column id inside the gather bound.
template <class V>
void check_csr(const CsrView<V>& a) {
  if (!a.offsets.empty() &&
      (a.offsets.front() != 0 ||
       static_cast<std::size_t>(a.offsets.back()) != a.nnz())) {
    obs::bump(obs::Counter::kCheckedFailed);
    throw CheckFailure("sparse: offsets not bracketed by [0, nnz]");
  }
  par::check_monotonic_offsets(a.offsets, a.nnz());
  par::check_indices_in_bounds(a.cols, a.num_cols);
}

// One row, summed strictly left to right — the reduction order every
// policy and the serial reference share for unsplit rows.
template <class V>
V row_dot(const CsrView<V>& a, const V* x, std::size_t lo, std::size_t hi) {
  V acc = V(0);
  for (std::size_t z = lo; z < hi; ++z) {
    acc += a.vals[z] * x[a.cols[z]];
  }
  return acc;
}

}  // namespace detail

// Serial reference: the semantic definition both policies are tested
// against (tests/sparse_test.cpp).
template <class V>
void spmv_serial(const CsrView<V>& a, std::span<const V> x, std::span<V> y) {
  assert(x.size() >= a.num_cols && y.size() >= a.num_rows());
  const V* xp = x.data();
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    y[r] = detail::row_dot(a, xp, static_cast<std::size_t>(a.offsets[r]),
                           static_cast<std::size_t>(a.offsets[r + 1]));
  }
}

// Naive RngInd baseline: one task per row at the default grain=1
// (par_ind_chunks_mut's convention); grain > 1 batches that many
// consecutive rows per task, grain == 0 asks the scheduler for its
// amortized default.
template <class V>
void spmv_row_par(const CsrView<V>& a, std::span<const V> x, std::span<V> y,
                  std::size_t grain = 1) {
  assert(x.size() >= a.num_cols && y.size() >= a.num_rows());
  const V* xp = x.data();
  sched::parallel_for_range(
      0, a.num_rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          y[r] = detail::row_dot(a, xp, static_cast<std::size_t>(a.offsets[r]),
                                 static_cast<std::size_t>(a.offsets[r + 1]));
        }
      },
      grain);
}

// Merge-path spmv (see file header). Each task walks its equal share
// of the merge path: rows that end inside the segment are flushed to y
// directly (the first such flush is the tail of a row begun upstream);
// a segment ending mid-row leaves its partial sum as the task's carry.
// The carries are applied serially in ascending task order — at most
// one per task, so the fix-up is O(tasks).
template <class V>
void spmv_merge_path(const CsrView<V>& a, std::span<const V> x,
                     std::span<V> y, std::size_t grain = kMergePathGrain) {
  assert(x.size() >= a.num_cols && y.size() >= a.num_rows());
  const std::size_t num_rows = a.num_rows();
  const std::size_t nnz = a.nnz();
  if (num_rows == 0) return;
  if (grain == 0) grain = kMergePathGrain;
  const std::size_t ntasks = merge_path_tasks(num_rows, nnz, grain);
  const std::size_t items = num_rows + nnz;
  obs::bump(obs::Counter::kSparseMergeTasks, ntasks);

  constexpr u64 kNoCarry = ~u64{0};
  support::ArenaLease arena;
  auto carry_row = uninit_buf<u64>(arena, ntasks);
  auto carry_val = uninit_buf<V>(arena, ntasks);
  const V* xp = x.data();

  sched::parallel_for(0, ntasks, [&](std::size_t t) {
    const MergeCoord begin =
        merge_path_search(a.offsets, std::min(t * grain, items));
    const MergeCoord end =
        merge_path_search(a.offsets, std::min((t + 1) * grain, items));
    std::size_t z = begin.nz;
    for (std::size_t r = begin.row; r < end.row; ++r) {
      // For the segment's first row this flushes only the tail portion
      // [begin.nz, row end) — upstream tasks carried the head.
      const auto row_end = static_cast<std::size_t>(a.offsets[r + 1]);
      y[r] = detail::row_dot(a, xp, z, row_end);
      z = row_end;
    }
    if (z < end.nz) {
      // Segment stops mid-row end.row: its share of that row becomes
      // this task's carry.
      carry_row[t] = static_cast<u64>(end.row);
      carry_val[t] = detail::row_dot(a, xp, z, end.nz);
    } else {
      carry_row[t] = kNoCarry;
    }
  });

  // Serial ascending fix-up: carries join their row's sum in task
  // order. Determinism under work stealing comes from this pass plus
  // the input-pure partition — stealing only permutes which worker ran
  // a task, never what any task computed (DESIGN.md §6).
  for (std::size_t t = 0; t < ntasks; ++t) {
    if (carry_row[t] == kNoCarry) continue;
    obs::bump(obs::Counter::kSparseCarryFixups);
    y[static_cast<std::size_t>(carry_row[t])] += carry_val[t];
  }
}

// y = A·x under the active (or an explicitly pinned) policy. kChecked
// validates the CSR invariants first; kUnchecked trusts them (the
// paper's "scary" tier). grain == 0 selects each policy's default.
template <class V>
void spmv(const CsrView<V>& a, std::span<const V> x, std::span<V> y,
          AccessMode mode = AccessMode::kChecked,
          SpmvPolicy policy = spmv_policy(), std::size_t grain = 0) {
  if (mode == AccessMode::kChecked) detail::check_csr(a);
  if (policy == SpmvPolicy::kRowPar) {
    spmv_row_par(a, x, y, grain == 0 ? 1 : grain);
  } else {
    spmv_merge_path(a, x, y, grain);
  }
}

}  // namespace rpb::sparse
