// Umbrella header for the sparse kernel suite: value-carrying CSR
// views over the graph substrate plus the three kernels (SpMV with
// row-parallel and merge-path policies, SpMM-lite over a dense panel,
// SpGEMM-lite via row-wise Gustavson).
#pragma once

#include <string>

#include "sparse/csr_matrix.h"
#include "sparse/spgemm.h"
#include "sparse/spmm.h"
#include "sparse/spmv.h"

namespace rpb::sparse {

// Parses "rowpar" / "mergepath" (CLI flag form of the RPB_SPMV knob).
SpmvPolicy parse_spmv_policy(const std::string& name);

}  // namespace rpb::sparse
