// Sparse-times-sparse product C = A·B ("SpGEMM-lite"): row-wise
// Gustavson over CSR, two-phase so C comes out exactly sized:
//
//   symbolic  Each row of C counts its distinct columns by streaming
//             row r of A and, per nonzero (c, _), row c of B through an
//             epoch-stamped mark table (core/mark_table.h) — the same
//             amortized-O(1)-setup machinery the checked tier's
//             uniqueness check runs on, here doing double duty as the
//             sparse accumulator's occupancy set. A scan over the
//             counts (core/primitives.h) yields C's offsets.
//   numeric   The same traversal accumulates values into a dense
//             arena-leased accumulator (first touch assigns, so no
//             O(num_cols) reset between rows) and records the touched
//             columns; sorting the touched list makes every output row
//             a valid ascending CSR row regardless of input order.
//
// Leases are taken per leaf task (one MarkTableLease + ArenaLease per
// parallel_for_range chunk), so concurrent leaves never share an
// accumulator and steady-state runs allocation-free under RPB_ARENA=on.
//
// Determinism: rows are independent and each row's accumulation order
// is the input-pure traversal order (A's row left to right, B's rows
// left to right), identical in the serial reference — so parallel and
// serial results are byte-equal, any thread count, any schedule.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/access_mode.h"
#include "core/mark_table.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/counters.h"
#include "sched/parallel.h"
#include "sparse/spmv.h"
#include "support/arena.h"

namespace rpb::sparse {

namespace detail {

// Distinct columns of C's row r (symbolic phase body).
template <class V>
std::size_t spgemm_row_count(const CsrView<V>& a, const CsrView<V>& b,
                             std::size_t r, par::MarkTable& table) {
  const u32 stamp = table.begin_check(b.num_cols);
  u32* slots = table.slots();
  std::size_t count = 0;
  const auto lo = static_cast<std::size_t>(a.offsets[r]);
  const auto hi = static_cast<std::size_t>(a.offsets[r + 1]);
  for (std::size_t z = lo; z < hi; ++z) {
    const auto c = static_cast<std::size_t>(a.cols[z]);
    const auto blo = static_cast<std::size_t>(b.offsets[c]);
    const auto bhi = static_cast<std::size_t>(b.offsets[c + 1]);
    for (std::size_t w = blo; w < bhi; ++w) {
      const auto cc = static_cast<std::size_t>(b.cols[w]);
      if (slots[cc] != stamp) {
        slots[cc] = stamp;
        ++count;
      }
    }
  }
  return count;
}

// Numeric phase body for one row: accumulate into acc (first touch
// assigns — stale acc contents are never read), gather + sort the
// touched columns, and emit the ascending CSR row at out_cols/out_vals.
// Shared verbatim by the parallel kernel and the serial reference.
template <class V>
void spgemm_row_fill(const CsrView<V>& a, const CsrView<V>& b, std::size_t r,
                     par::MarkTable& table, V* acc, u32* touched,
                     u32* out_cols, V* out_vals) {
  const u32 stamp = table.begin_check(b.num_cols);
  u32* slots = table.slots();
  std::size_t count = 0;
  const auto lo = static_cast<std::size_t>(a.offsets[r]);
  const auto hi = static_cast<std::size_t>(a.offsets[r + 1]);
  for (std::size_t z = lo; z < hi; ++z) {
    const auto c = static_cast<std::size_t>(a.cols[z]);
    const V av = a.vals[z];
    const auto blo = static_cast<std::size_t>(b.offsets[c]);
    const auto bhi = static_cast<std::size_t>(b.offsets[c + 1]);
    for (std::size_t w = blo; w < bhi; ++w) {
      const auto cc = static_cast<std::size_t>(b.cols[w]);
      const V prod = av * b.vals[w];
      if (slots[cc] != stamp) {
        slots[cc] = stamp;
        touched[count++] = b.cols[w];
        acc[cc] = prod;
      } else {
        acc[cc] += prod;
      }
    }
  }
  std::sort(touched, touched + count);
  for (std::size_t i = 0; i < count; ++i) {
    out_cols[i] = touched[i];
    out_vals[i] = acc[touched[i]];
  }
}

}  // namespace detail

// Serial reference (tests/sparse_test.cpp byte-compares against it).
template <class V>
CsrMatrix<V> spgemm_serial(const CsrView<V>& a, const CsrView<V>& b) {
  if (a.num_cols != b.num_rows()) {
    throw std::invalid_argument("spgemm: inner dimensions disagree");
  }
  const std::size_t num_rows = a.num_rows();
  par::MarkTableLease table;
  std::vector<u64> offsets(num_rows + 1, 0);
  for (std::size_t r = 0; r < num_rows; ++r) {
    offsets[r + 1] =
        offsets[r] + detail::spgemm_row_count(a, b, r, *table);
  }
  const auto total = static_cast<std::size_t>(offsets[num_rows]);
  std::vector<u32> cols(total);
  std::vector<V> vals(total);
  std::vector<V> acc(b.num_cols);
  std::vector<u32> touched(b.num_cols);
  for (std::size_t r = 0; r < num_rows; ++r) {
    detail::spgemm_row_fill(a, b, r, *table, acc.data(), touched.data(),
                            cols.data() + offsets[r],
                            vals.data() + offsets[r]);
  }
  return CsrMatrix<V>::from_csr(std::move(offsets), std::move(cols),
                                std::move(vals), b.num_cols);
}

// C = A·B. kChecked validates both operands' CSR invariants up front
// (A's columns index B's rows, so A's bounds check is the load-safety
// check for the whole traversal); kUnchecked trusts them.
template <class V>
CsrMatrix<V> spgemm(const CsrView<V>& a, const CsrView<V>& b,
                    AccessMode mode = AccessMode::kChecked) {
  if (a.num_cols != b.num_rows()) {
    throw std::invalid_argument("spgemm: inner dimensions disagree");
  }
  if (mode == AccessMode::kChecked) {
    detail::check_csr(a);
    detail::check_csr(b);
  }
  const std::size_t num_rows = a.num_rows();
  std::vector<u64> row_nnz(num_rows, 0);
  sched::parallel_for_range(0, num_rows, [&](std::size_t lo, std::size_t hi) {
    par::MarkTableLease table;
    for (std::size_t r = lo; r < hi; ++r) {
      row_nnz[r] = detail::spgemm_row_count(a, b, r, *table);
    }
  });

  std::vector<u64> offsets(num_rows + 1, 0);
  const u64 total = par::scan_exclusive_sum_into(
      std::span<const u64>(row_nnz),
      std::span<u64>(offsets.data(), num_rows));
  offsets[num_rows] = total;

  std::vector<u32> cols(static_cast<std::size_t>(total));
  std::vector<V> vals(static_cast<std::size_t>(total));
  sched::parallel_for_range(0, num_rows, [&](std::size_t lo, std::size_t hi) {
    par::MarkTableLease table;
    support::ArenaLease arena;
    // First touch assigns into acc, so uninitialized scratch is safe:
    // every slot read was written under the current row's stamp.
    auto acc = uninit_buf<V>(arena, b.num_cols);
    auto touched = uninit_buf<u32>(arena, b.num_cols);
    obs::bump(obs::Counter::kSparseAccumRows, hi - lo);
    for (std::size_t r = lo; r < hi; ++r) {
      const auto base = static_cast<std::size_t>(offsets[r]);
      detail::spgemm_row_fill(a, b, r, *table, acc.data(), touched.data(),
                              cols.data() + base, vals.data() + base);
    }
  });
  return CsrMatrix<V>::from_csr(std::move(offsets), std::move(cols),
                                std::move(vals), b.num_cols);
}

}  // namespace rpb::sparse
