// Value-carrying CSR matrices layered on the graph substrate. The
// sparse kernel suite (spmv.h, spmm.h, spgemm.h) works in the paper's
// pattern vocabulary over exactly the arrays graph::Graph already
// builds in parallel: a CsrView<V> is spans over offsets / column ids
// plus a value array, and CsrMatrix<V>::from_graph adopts a graph's
// raw_offsets()/raw_targets() zero-copy — only the u32 edge weights
// are materialized (in parallel) as f32/f64 values. Matrices built
// from scratch (tests, SpGEMM outputs) own all three arrays.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/csr.h"
#include "sched/parallel.h"
#include "support/defs.h"

namespace rpb::sparse {

// Non-owning view of a CSR matrix with explicit column-space bound
// (columns index a dense vector of that length in SpMV/SpMM, and the
// rows of the right operand in SpGEMM). offsets has num_rows()+1
// entries (empty means zero rows); cols/vals are parallel arrays of
// nnz() entries. The kernels' unchecked tier trusts these invariants;
// the checked tier validates them at run time (spmv.h).
template <class V>
struct CsrView {
  std::span<const u64> offsets;
  std::span<const u32> cols;
  std::span<const V> vals;
  std::size_t num_cols = 0;

  std::size_t num_rows() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t nnz() const { return cols.size(); }

  std::size_t row_degree(std::size_t r) const {
    return static_cast<std::size_t>(offsets[r + 1] - offsets[r]);
  }
};

// Owning CSR matrix. Storage is either adopted raw arrays (from_csr)
// or — for graph inputs — borrowed spans over the graph's own CSR
// arrays plus an owned value array (from_graph, zero-copy for the
// topology; the graph must outlive the matrix). view() assembles the
// right spans either way, so kernels only ever see CsrView<V>.
template <class V>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Adopt raw CSR arrays. offsets must have n+1 entries with
  // offsets[n] == cols.size() and vals parallel to cols.
  static CsrMatrix from_csr(std::vector<u64> offsets, std::vector<u32> cols,
                            std::vector<V> vals, std::size_t num_cols) {
    if (offsets.empty() || offsets.back() != cols.size() ||
        vals.size() != cols.size()) {
      throw std::invalid_argument("CsrMatrix::from_csr: inconsistent arrays");
    }
    CsrMatrix m;
    m.own_offsets_ = std::move(offsets);
    m.own_cols_ = std::move(cols);
    m.vals_ = std::move(vals);
    m.num_cols_ = num_cols;
    return m;
  }

  // Zero-copy adoption of a graph's CSR topology: offsets and targets
  // are borrowed (no copy — the raw_offsets()/raw_targets() spans point
  // into the live graph), and only the value array is built, converting
  // the u32 edge weights in parallel (1 for unweighted graphs). Square
  // by construction: columns index the same vertex space as rows.
  static CsrMatrix from_graph(const graph::Graph& g) {
    CsrMatrix m;
    m.borrowed_offsets_ = g.raw_offsets();
    m.borrowed_cols_ = g.raw_targets();
    m.num_cols_ = g.num_vertices();
    m.vals_.resize(g.num_edges());
    std::span<const u32> w = g.raw_weights();
    V* vals = m.vals_.data();
    sched::parallel_for(0, m.vals_.size(), [&](std::size_t i) {
      vals[i] = w.empty() ? V(1) : static_cast<V>(w[i]);
    });
    return m;
  }

  CsrView<V> view() const {
    CsrView<V> v;
    v.offsets = borrowed_offsets_.empty()
                    ? std::span<const u64>(own_offsets_)
                    : borrowed_offsets_;
    v.cols = borrowed_offsets_.empty() ? std::span<const u32>(own_cols_)
                                       : borrowed_cols_;
    v.vals = std::span<const V>(vals_);
    v.num_cols = num_cols_;
    return v;
  }
  operator CsrView<V>() const { return view(); }

  std::size_t num_rows() const { return view().num_rows(); }
  std::size_t num_cols() const { return num_cols_; }
  std::size_t nnz() const { return vals_.size(); }

  // True when the topology spans borrow a graph's arrays (the zero-copy
  // contract from_graph promises; tests pin it by pointer identity).
  bool borrows_topology() const { return !borrowed_offsets_.empty(); }

 private:
  std::vector<u64> own_offsets_;
  std::vector<u32> own_cols_;
  std::vector<V> vals_;
  std::span<const u64> borrowed_offsets_;
  std::span<const u32> borrowed_cols_;
  std::size_t num_cols_ = 0;
};

}  // namespace rpb::sparse
