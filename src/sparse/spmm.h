// Sparse-times-dense panel product Y = A·X ("SpMM-lite"): X is a dense
// num_cols×k row-major panel, Y a num_rows×k panel. The kernel is SpMV
// with a k-wide register-blocked inner loop — each nonzero scales a
// whole row of X into the output row via simd::axpy (the PR 6 dispatch
// layer), so one CSR traversal amortizes across all k right-hand
// sides. Rows are independent writes into disjoint k-slices of Y, so
// row-parallel at the scheduler's default grain is the right shape
// (load balance matters less than in SpMV: every row costs degree×k,
// and the axpy keeps even light rows busy).
//
// Determinism: nonzeros apply in CSR order within a row and axpy is
// bit-identical across simd tiers (no FMA — see support/simd.h), so
// results are bitwise reproducible across thread counts and RPB_SIMD
// settings, and spmm_serial is a byte-exact reference.
#pragma once

#include <cassert>
#include <cstring>
#include <span>

#include "core/access_mode.h"
#include "sched/parallel.h"
#include "sparse/spmv.h"
#include "support/simd.h"

namespace rpb::sparse {

namespace detail {

// One output row: zero its k-slice, then accumulate the row's
// nonzeros — shared verbatim by the parallel kernel and the serial
// reference so they agree byte-for-byte.
template <class V>
void spmm_row(const CsrView<V>& a, const V* x, V* y, std::size_t k,
              std::size_t r) {
  V* out = y + r * k;
  std::memset(out, 0, k * sizeof(V));
  const auto lo = static_cast<std::size_t>(a.offsets[r]);
  const auto hi = static_cast<std::size_t>(a.offsets[r + 1]);
  for (std::size_t z = lo; z < hi; ++z) {
    simd::axpy(out, x + static_cast<std::size_t>(a.cols[z]) * k, a.vals[z], k);
  }
}

}  // namespace detail

// Serial reference (tests/sparse_test.cpp byte-compares against it).
template <class V>
void spmm_serial(const CsrView<V>& a, std::span<const V> x, std::span<V> y,
                 std::size_t k) {
  assert(x.size() >= a.num_cols * k && y.size() >= a.num_rows() * k);
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    detail::spmm_row(a, x.data(), y.data(), k, r);
  }
}

// Y = A·X over k dense columns. kChecked validates the CSR invariants
// (same contract as spmv). k == 0 is a no-op.
template <class V>
void spmm(const CsrView<V>& a, std::span<const V> x, std::span<V> y,
          std::size_t k, AccessMode mode = AccessMode::kChecked) {
  assert(x.size() >= a.num_cols * k && y.size() >= a.num_rows() * k);
  if (mode == AccessMode::kChecked) detail::check_csr(a);
  if (k == 0) return;
  const V* xp = x.data();
  V* yp = y.data();
  sched::parallel_for(0, a.num_rows(), [&](std::size_t r) {
    detail::spmm_row(a, xp, yp, k, r);
  });
}

}  // namespace rpb::sparse
