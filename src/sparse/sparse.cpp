#include "sparse/sparse.h"

#include <stdexcept>

namespace rpb::sparse {

SpmvPolicy parse_spmv_policy(const std::string& name) {
  if (name == "rowpar") return SpmvPolicy::kRowPar;
  if (name == "mergepath") return SpmvPolicy::kMergePath;
  throw std::invalid_argument("unknown spmv policy: " + name);
}

}  // namespace rpb::sparse
