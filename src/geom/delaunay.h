// Incremental Delaunay triangulation (Bowyer–Watson) over a fixed-size
// arena, built to serve two masters:
//   * a serial incremental build (construction of the initial mesh),
//   * parallel refinement (src/geom/refine.h) via deterministic
//     reservations, which needs read-only cavity collection, atomic
//     point/triangle allocation, and exclusive-commit mutation.
//
// The mesh uses a large concrete super-triangle (ids 0..2) instead of
// symbolic infinite vertices; see DESIGN.md "Known deviations".
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "geom/predicates.h"
#include "support/defs.h"

namespace rpb::geom {

struct Triangle {
  u32 v[3] = {0, 0, 0};       // CCW vertices
  i64 nbr[3] = {-1, -1, -1};  // nbr[k] faces v[k] across edge (v[k+1], v[k+2])
  bool alive = false;
};

class Mesh {
 public:
  static constexpr u32 kSuperVertices = 3;

  // Reserves arena space for points.size() + extra_points insertions.
  Mesh(std::span<const Point> points, std::size_t extra_points = 0);

  // Serial Bowyer-Watson over all input points (pseudo-random order).
  // Returns the number of points actually inserted (duplicates skip).
  // The grid-decomposed parallel alternative lives in geom/build.h
  // behind the RPB_DR knob.
  std::size_t build();

  // --- queries (safe while no commit is mutating) ---------------------
  const Point& point(u32 id) const { return points_[id]; }
  static bool is_super(u32 id) { return id < kSuperVertices; }
  bool has_super_vertex(i64 t) const {
    return is_super(tris_[t].v[0]) || is_super(tris_[t].v[1]) ||
           is_super(tris_[t].v[2]);
  }
  std::size_t num_points() const { return num_points_.load(std::memory_order_acquire); }
  std::size_t num_triangle_slots() const {
    return num_tris_.load(std::memory_order_acquire);
  }
  const Triangle& triangle(i64 t) const { return tris_[t]; }
  bool alive(i64 t) const { return t >= 0 && tris_[t].alive; }
  std::size_t num_live_triangles() const;

  // Walk to the live triangle containing p, starting at a live hint.
  i64 locate(const Point& p, i64 hint) const;

  // Circumcircle conflict (plain in_circle; the containing triangle is
  // always in conflict with any interior point).
  bool in_conflict(i64 t, const Point& p) const;

  // True if p (numerically) coincides with a vertex of triangle t —
  // inserting such a p would create zero-area triangles, so callers
  // skip it (duplicate input points, coincident circumcenters).
  bool coincides_with_vertex(i64 t, const Point& p) const;

  struct BoundaryEdge {
    u32 a = 0;
    u32 b = 0;       // directed: cavity interior on the left
    i64 outside = -1;  // triangle across (a,b), -1 at the arena border
  };
  struct Cavity {
    std::vector<i64> tris;
    std::vector<BoundaryEdge> boundary;
  };

  // Collect the conflict cavity of p (read-only). `start` must be a
  // live triangle whose conflict region includes it (e.g. the
  // containing triangle). Returns false if the cavity exceeds
  // max_cavity (degenerate input guard), the start is dead, or the
  // boundary comes up empty; `out` is left EMPTY on every failure
  // path, so callers can never commit a partially collected cavity.
  bool collect_cavity(const Point& p, i64 start, Cavity& out,
                      std::size_t max_cavity = 4096) const;

  // Atomically append a point to the arena; returns its id.
  // Throws std::length_error when the arena is exhausted.
  u32 push_point(const Point& p);

  // Deterministic batch allocation: reserve `count` consecutive point
  // slots (filled with NaN sentinels) and return the base id. Callers
  // assign slot base+i to batch member i, so ids are independent of
  // commit order; unused slots stay NaN and are ignored by the
  // validation helpers. Throws std::length_error when out of room.
  u32 reserve_point_slots(std::size_t count);
  void place_point(u32 id, const Point& p) { points_[id] = p; }

  // Retriangulate the cavity around new vertex vid. The caller must
  // hold exclusive rights to every cavity and outside triangle (serial
  // build, reservation-commit in parallel refinement, or a contained
  // territory in the decomposed build). Returns the base slot of the
  // new ring (base .. base+boundary.size()-1), a good locate hint.
  i64 apply_insert(u32 vid, const Cavity& cavity);

  // True if there is arena room for at least one more typical insert.
  bool arena_has_room(std::size_t new_tris) const {
    return num_tris_.load(std::memory_order_acquire) + new_tris <
           tris_.size();
  }

  // Total triangle slots (ids are never reused, so slot-indexed side
  // arrays sized by this stay valid for the mesh's lifetime).
  std::size_t arena_capacity() const { return tris_.size(); }

  // --- validation helpers (tests) -------------------------------------
  // Adjacency symmetry, CCW orientation, every live pair consistent.
  bool check_consistency() const;
  // Order-independent fingerprint of the live triangulation: a
  // commutative hash over the (sorted) vertex triples of live
  // triangles. Equal meshes hash equal regardless of slot assignment.
  u64 structure_hash() const;
  // Fraction of sampled live all-real triangles whose circumcircle is
  // empty of all real points (1.0 = perfectly Delaunay).
  double delaunay_fraction(std::size_t sample_triangles = 200) const;

 private:
  i64 allocate_triangles(std::size_t count);

  std::vector<Point> points_;
  std::vector<Triangle> tris_;
  std::atomic<std::size_t> num_points_{0};
  std::atomic<std::size_t> num_tris_{0};
};

}  // namespace rpb::geom
