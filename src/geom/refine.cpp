#include "geom/refine.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/primitives.h"
#include "core/reservation.h"
#include "core/spec_for.h"
#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "support/arena.h"

namespace rpb::geom {
namespace {

bool is_bad_triangle(const Mesh& mesh, i64 t, double max_ratio) {
  if (!mesh.alive(t) || mesh.has_super_vertex(t)) return false;
  const Triangle& tri = mesh.triangle(t);
  return radius_edge_ratio(mesh.point(tri.v[0]), mesh.point(tri.v[1]),
                           mesh.point(tri.v[2])) > max_ratio;
}

// One refinement batch member: insert the circumcenter of bad triangle
// targets[i], reserving the whole cavity plus its boundary ring.
struct RefineStep {
  Mesh& mesh;
  const RefineConfig& config;
  std::span<const i64> targets;
  u32 point_base;  // batch member i commits vertex point_base + i
  std::vector<par::Reservation>& reservations;  // one per triangle slot
  std::vector<Mesh::Cavity>& cavities;          // per batch member
  std::vector<Point>& centers;
  std::vector<u8>& given_up;  // per triangle slot: unfixable, skip forever
  std::atomic<std::size_t>& inserted;
  std::atomic<std::size_t>& skipped;

  bool reserve(std::size_t i) {
    i64 t = targets[i];
    if (!mesh.alive(t)) return false;  // retriangulated by a neighbor
    const Triangle& tri = mesh.triangle(t);
    Point center = circumcenter(mesh.point(tri.v[0]), mesh.point(tri.v[1]),
                                mesh.point(tri.v[2]));
    double r2 = center.x * center.x + center.y * center.y;
    if (!(r2 < config.domain_radius * config.domain_radius)) {
      give_up(t);
      return false;
    }
    // A circumcenter landing (numerically) on an existing vertex would
    // create zero-area triangles: unfixable by insertion.
    if (mesh.coincides_with_vertex(t, center)) {
      give_up(t);
      return false;
    }
    // The bad triangle's own circumcircle contains its circumcenter, so
    // t seeds its conflict cavity directly.
    if (!mesh.collect_cavity(center, t, cavities[i])) {
      give_up(t);
      return false;
    }
    for (i64 c : cavities[i].tris) {
      if (mesh.coincides_with_vertex(c, center)) {
        give_up(t);
        return false;
      }
    }
    centers[i] = center;
    for (i64 c : cavities[i].tris) {
      reservations[static_cast<std::size_t>(c)].reserve(static_cast<i64>(i));
    }
    for (const auto& edge : cavities[i].boundary) {
      if (edge.outside >= 0) {
        reservations[static_cast<std::size_t>(edge.outside)].reserve(
            static_cast<i64>(i));
      }
    }
    return true;
  }

  bool commit(std::size_t i) {
    const Mesh::Cavity& cavity = cavities[i];
    bool holds_all = true;
    for (i64 c : cavity.tris) {
      if (!reservations[static_cast<std::size_t>(c)].check(
              static_cast<i64>(i))) {
        holds_all = false;
      }
    }
    for (const auto& edge : cavity.boundary) {
      if (edge.outside >= 0 &&
          !reservations[static_cast<std::size_t>(edge.outside)].check(
              static_cast<i64>(i))) {
        holds_all = false;
      }
    }
    if (holds_all) {
      // Deterministic vertex id: pre-reserved slot for batch member i.
      u32 vid = point_base + static_cast<u32>(i);
      mesh.place_point(vid, centers[i]);
      mesh.apply_insert(vid, cavity);
      inserted.fetch_add(1, std::memory_order_relaxed);
    }
    // Release whatever we still hold (success or not), PBBS-style.
    for (i64 c : cavity.tris) {
      auto& cell = reservations[static_cast<std::size_t>(c)];
      if (cell.check(static_cast<i64>(i))) cell.reset();
    }
    for (const auto& edge : cavity.boundary) {
      if (edge.outside < 0) continue;
      auto& cell = reservations[static_cast<std::size_t>(edge.outside)];
      if (cell.check(static_cast<i64>(i))) cell.reset();
    }
    return holds_all;
  }

  void give_up(i64 t) {
    given_up[static_cast<std::size_t>(t)] = 1;
    skipped.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace

std::size_t count_bad_triangles(const Mesh& mesh, double max_ratio) {
  return par::count_if(0, mesh.num_triangle_slots(), [&](std::size_t t) {
    return is_bad_triangle(mesh, static_cast<i64>(t), max_ratio);
  });
}

RefineStats refine(Mesh& mesh, const RefineConfig& config) {
  RefineStats stats;
  // Triangle ids are never reused, so slot-indexed state is stable.
  std::vector<par::Reservation> reservations(mesh.arena_capacity());
  std::vector<u8> given_up(mesh.arena_capacity(), 0);

  // Round scratch (the bad lists) leases from the workspace arena and
  // rewinds each round. When the loop breaks the mesh is unchanged
  // since the last pack, so bad_all.size() IS the remaining-bad count —
  // the old code re-ran the geometric predicate over every slot a
  // second time just to count.
  support::ArenaLease arena;
  bool remaining_counted = false;

  while (stats.inserted < config.max_insertions) {
    // Collect the current bad set: one fused pack evaluates the
    // geometric predicate exactly once per slot; the actionable subset
    // then just filters the (much shorter) list against given_up.
    const std::size_t slots = mesh.num_triangle_slots();
    support::ArenaScope round(arena);
    auto bad_all = par::pack_index_if<std::size_t>(arena, slots, [&](std::size_t t) {
      return is_bad_triangle(mesh, static_cast<i64>(t), config.max_ratio);
    });
    auto bad = par::pack(arena, bad_all.cspan(),
                         [&](std::size_t t) { return given_up[t] == 0; });
    if (bad.empty()) {
      stats.bad_remaining = bad_all.size();
      remaining_counted = true;
      break;
    }

    // Triangle *slots* are assigned by a racing counter, so slot order
    // is not schedule-independent. Batch selection keys on the
    // canonical vertex triple instead (vertex ids are deterministic),
    // which makes the whole refinement deterministic.
    auto canonical_key = [&](std::size_t t) {
      const Triangle& tri = mesh.triangle(static_cast<i64>(t));
      u32 a = tri.v[0], b = tri.v[1], c = tri.v[2];
      if (a > b) std::swap(a, b);
      if (b > c) std::swap(b, c);
      if (a > b) std::swap(a, b);
      return std::tuple{a, b, c};
    };
    std::sort(bad.begin(), bad.end(), [&](std::size_t x, std::size_t y) {
      return canonical_key(x) < canonical_key(y);
    });

    std::size_t batch = std::min(config.batch_size, bad.size());
    std::vector<i64> targets(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      targets[i] = static_cast<i64>(bad[i]);
    }

    std::vector<Mesh::Cavity> cavities(batch);
    std::vector<Point> centers(batch);
    std::atomic<std::size_t> inserted{0}, skipped{0};
    u32 point_base = 0;
    try {
      // One slot per batch member up front keeps vertex ids (and thus
      // the refined mesh) independent of commit scheduling; slots of
      // members that never commit stay NaN and unused.
      point_base = mesh.reserve_point_slots(batch);
      RefineStep step{mesh,     config,  targets,  point_base, reservations,
                      cavities, centers, given_up, inserted,   skipped};
      par::speculative_for(step, 0, batch, batch);
    } catch (const std::length_error&) {
      // Arena exhausted before any mutation this round: stop refining
      // with what we have.
      stats.bad_remaining = bad_all.size();
      remaining_counted = true;
      break;
    }
    stats.inserted += inserted.load();
    stats.skipped += skipped.load();
    ++stats.rounds;
    if (inserted.load() == 0 && skipped.load() == 0) {
      // Every batch member found its triangle already dead; the mesh is
      // exactly as packed. Guard against no-progress spins.
      stats.bad_remaining = bad_all.size();
      remaining_counted = true;
      break;
    }
  }
  if (!remaining_counted) {
    // Exited on the insertion budget: the mesh changed after the last
    // pack, so this one recount is genuinely needed.
    stats.bad_remaining = count_bad_triangles(mesh, config.max_ratio);
  }
  return stats;
}

const census::BenchmarkCensus& dr_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "dr",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 3, "locate walk + cavity conflict tests"},
          {Pattern::kStride, 2, "fused bad-triangle pack (pred once per slot)"},
          {Pattern::kDC, 1, "batch split"},
          {Pattern::kSngInd, 1, "gather batch targets"},
          {Pattern::kAW, 3, "cavity reservations + mesh mutation + arenas"},
      }};
  return c;
}

}  // namespace rpb::geom
