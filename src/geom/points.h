// Point-set generators for dr: the kuzmin radial distribution (PBBS's
// input for Delaunay refinement) and a uniform-square control.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/predicates.h"
#include "support/defs.h"

namespace rpb::geom {

// Kuzmin disk distribution: heavy concentration near the origin with a
// long radial tail, normalized to fit inside the unit disk.
std::vector<Point> kuzmin_points(std::size_t n, u64 seed);

// Uniform points in the unit square.
std::vector<Point> uniform_points(std::size_t n, u64 seed);

}  // namespace rpb::geom
