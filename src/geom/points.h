// Point-set generators for dr: the kuzmin radial distribution (PBBS's
// input for Delaunay refinement) and a uniform-square control.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/predicates.h"
#include "support/defs.h"

namespace rpb::geom {

// Kuzmin disk distribution: heavy concentration near the origin with a
// long radial tail, normalized to fit inside the unit disk.
std::vector<Point> kuzmin_points(std::size_t n, u64 seed);

// Uniform points in the unit square.
std::vector<Point> uniform_points(std::size_t n, u64 seed);

// Gaussian-mixture clusters: `clusters` centers drawn uniformly in
// [0.1, 0.9]^2, each point normally distributed (std `sigma`) around a
// hash-chosen center and clamped to the unit square. The skewed grid-
// occupancy arm of bench/ablation_dr — the geometric analogue of
// ablation_spmv's power-law R-MAT arm.
std::vector<Point> clustered_points(std::size_t n, u64 seed,
                                    std::size_t clusters = 64,
                                    double sigma = 0.02);

}  // namespace rpb::geom
