#include "geom/delaunay.h"

#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "support/hash.h"

namespace rpb::geom {
namespace {

// Super-triangle scale: far outside the unit-disk inputs, small enough
// that mixed real/super in_circle determinants keep trustworthy signs.
constexpr double kSuperScale = 1e4;

// Arena head-room per inserted point: a cavity of c triangles retires c
// slots and allocates c+2; average cavities are ~4-6 triangles.
constexpr std::size_t kTriSlotsPerPoint = 10;

}  // namespace

Mesh::Mesh(std::span<const Point> points, std::size_t extra_points) {
  const std::size_t capacity = kSuperVertices + points.size() + extra_points;
  points_.resize(capacity);
  points_[0] = Point{0.0, 3.0 * kSuperScale};
  points_[1] = Point{-3.0 * kSuperScale, -2.0 * kSuperScale};
  points_[2] = Point{3.0 * kSuperScale, -2.0 * kSuperScale};
  for (std::size_t i = 0; i < points.size(); ++i) {
    points_[kSuperVertices + i] = points[i];
  }
  num_points_.store(kSuperVertices + points.size(),
                    std::memory_order_relaxed);

  tris_.resize(kTriSlotsPerPoint * capacity + 64);
  Triangle& root = tris_[0];
  root.v[0] = 0;
  root.v[1] = 1;
  root.v[2] = 2;
  root.alive = true;
  num_tris_.store(1, std::memory_order_relaxed);
}

std::size_t Mesh::num_live_triangles() const {
  std::size_t live = 0;
  std::size_t total = num_tris_.load(std::memory_order_acquire);
  for (std::size_t t = 0; t < total; ++t) live += tris_[t].alive;
  return live;
}

i64 Mesh::locate(const Point& p, i64 hint) const {
  i64 t = hint;
  const std::size_t step_limit = 4 * num_tris_.load(std::memory_order_acquire) + 64;
  for (std::size_t steps = 0; steps < step_limit && t >= 0 && tris_[t].alive;
       ++steps) {
    const Triangle& tri = tris_[t];
    i64 cross = -2;
    for (int k = 0; k < 3; ++k) {
      const Point& a = points_[tri.v[(k + 1) % 3]];
      const Point& b = points_[tri.v[(k + 2) % 3]];
      if (orient2d(a, b, p) < 0) {
        cross = tri.nbr[k];
        break;
      }
    }
    if (cross == -2) return t;  // inside (or on boundary of) this triangle
    t = cross;
  }
  // Walk failed (dead hint or a rare orientation cycle): linear rescue.
  const std::size_t total = num_tris_.load(std::memory_order_acquire);
  for (std::size_t s = 0; s < total; ++s) {
    if (!tris_[s].alive) continue;
    const Triangle& tri = tris_[s];
    bool inside = true;
    for (int k = 0; k < 3 && inside; ++k) {
      const Point& a = points_[tri.v[(k + 1) % 3]];
      const Point& b = points_[tri.v[(k + 2) % 3]];
      inside = orient2d(a, b, p) >= 0;
    }
    if (inside) return static_cast<i64>(s);
  }
  return -1;
}

bool Mesh::in_conflict(i64 t, const Point& p) const {
  const Triangle& tri = tris_[t];
  return in_circle(points_[tri.v[0]], points_[tri.v[1]], points_[tri.v[2]],
                   p) > 0;
}

bool Mesh::coincides_with_vertex(i64 t, const Point& p) const {
  constexpr double kTolSquared = 1e-24;
  const Triangle& tri = tris_[t];
  for (int k = 0; k < 3; ++k) {
    if (squared_distance(points_[tri.v[k]], p) < kTolSquared) return true;
  }
  return false;
}

bool Mesh::collect_cavity(const Point& p, i64 start, Cavity& out,
                          std::size_t max_cavity) const {
  out.tris.clear();
  out.boundary.clear();
  if (start < 0 || !tris_[start].alive) return false;
  std::unordered_set<i64> in_cavity;
  std::vector<i64> stack{start};
  in_cavity.insert(start);
  // Failure paths must hand back an EMPTY cavity (header contract):
  // refine's reserve() and the decomposed build's wave/stitch phases
  // treat `out` as committable whenever it is non-empty.
  const auto fail = [&out] {
    out.tris.clear();
    out.boundary.clear();
    return false;
  };
  while (!stack.empty()) {
    i64 t = stack.back();
    stack.pop_back();
    out.tris.push_back(t);
    if (out.tris.size() > max_cavity) return fail();
    const Triangle& tri = tris_[t];
    for (int k = 0; k < 3; ++k) {
      i64 n = tri.nbr[k];
      bool conflict = n >= 0 && tris_[n].alive && in_conflict(n, p);
      if (conflict) {
        if (in_cavity.insert(n).second) stack.push_back(n);
      } else if (n < 0 || !in_cavity.count(n)) {
        // Boundary edge (v[k+1] -> v[k+2]) keeps the cavity on its left
        // because t is CCW.
        out.boundary.push_back(
            BoundaryEdge{tri.v[(k + 1) % 3], tri.v[(k + 2) % 3], n});
      }
    }
  }
  // A just-discovered neighbor may later have been added to the cavity
  // after we recorded it as boundary (DFS ordering): filter those.
  std::erase_if(out.boundary, [&](const BoundaryEdge& e) {
    return e.outside >= 0 && in_cavity.count(e.outside) > 0;
  });
  if (out.boundary.empty()) return fail();
  return true;
}

u32 Mesh::push_point(const Point& p) {
  std::size_t id = num_points_.fetch_add(1, std::memory_order_acq_rel);
  if (id >= points_.size()) {
    num_points_.fetch_sub(1, std::memory_order_acq_rel);
    throw std::length_error("Mesh point arena exhausted");
  }
  points_[id] = p;
  return static_cast<u32>(id);
}

u32 Mesh::reserve_point_slots(std::size_t count) {
  std::size_t base = num_points_.fetch_add(count, std::memory_order_acq_rel);
  if (base + count > points_.size()) {
    num_points_.fetch_sub(count, std::memory_order_acq_rel);
    throw std::length_error("Mesh point arena exhausted");
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < count; ++i) {
    points_[base + i] = Point{nan, nan};
  }
  return static_cast<u32>(base);
}

u64 Mesh::structure_hash() const {
  const std::size_t total = num_tris_.load(std::memory_order_acquire);
  u64 acc = 0;
  for (std::size_t t = 0; t < total; ++t) {
    if (!tris_[t].alive) continue;
    u32 a = tris_[t].v[0], b = tris_[t].v[1], c = tris_[t].v[2];
    if (a > b) std::swap(a, b);
    if (b > c) std::swap(b, c);
    if (a > b) std::swap(a, b);
    // Commutative combine (sum of per-triple hashes): slot order does
    // not matter.
    acc += hash64((static_cast<u64>(a) << 42) ^ (static_cast<u64>(b) << 21) ^
                  c);
  }
  return acc;
}

i64 Mesh::allocate_triangles(std::size_t count) {
  std::size_t base = num_tris_.fetch_add(count, std::memory_order_acq_rel);
  if (base + count > tris_.size()) {
    num_tris_.fetch_sub(count, std::memory_order_acq_rel);
    throw std::length_error("Mesh triangle arena exhausted");
  }
  return static_cast<i64>(base);
}

i64 Mesh::apply_insert(u32 vid, const Cavity& cavity) {
  const std::size_t k = cavity.boundary.size();
  i64 base = allocate_triangles(k);

  // One new triangle per boundary edge; ring adjacency via the edge
  // cycle (edge (a, b) is followed by the edge starting at b). Typical
  // rings are 4-6 edges, so an allocation-free linear probe beats the
  // hash map the old code built per call; only degenerate giant
  // cavities take the map path.
  constexpr std::size_t kLinearRingLimit = 96;
  std::unordered_map<u32, i64> ring_start;
  if (k > kLinearRingLimit) {
    ring_start.reserve(k * 2);
    for (std::size_t e = 0; e < k; ++e) {
      ring_start[cavity.boundary[e].a] = base + static_cast<i64>(e);
    }
  }
  const auto succ_of = [&](u32 b) -> i64 {
    if (k > kLinearRingLimit) {
      auto it = ring_start.find(b);
      return it == ring_start.end() ? -1 : it->second;
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (cavity.boundary[j].a == b) return base + static_cast<i64>(j);
    }
    return -1;  // broken ring: surfaces in check_consistency
  };
  for (std::size_t e = 0; e < k; ++e) {
    const BoundaryEdge& edge = cavity.boundary[e];
    Triangle& tri = tris_[base + static_cast<i64>(e)];
    tri.v[0] = edge.a;
    tri.v[1] = edge.b;
    tri.v[2] = vid;
    tri.nbr[2] = edge.outside;         // across (a, b)
    tri.nbr[0] = succ_of(edge.b);      // across (b, vid)
    // across (vid, a): the edge ending at a, i.e. the one whose b == a.
    tri.nbr[1] = -1;  // fixed in the second pass below
    tri.alive = true;
    // Re-point the outside triangle's stale neighbor slot at us.
    if (edge.outside >= 0) {
      Triangle& out_tri = tris_[edge.outside];
      for (int j = 0; j < 3; ++j) {
        if (out_tri.v[(j + 1) % 3] == edge.b && out_tri.v[(j + 2) % 3] == edge.a) {
          out_tri.nbr[j] = base + static_cast<i64>(e);
        }
      }
    }
  }
  // Second pass: predecessor links (triangle before us in the ring).
  for (std::size_t e = 0; e < k; ++e) {
    i64 succ = succ_of(cavity.boundary[e].b);
    if (succ >= 0) tris_[succ].nbr[1] = base + static_cast<i64>(e);
  }
  for (i64 t : cavity.tris) tris_[t].alive = false;
  return base;
}

std::size_t Mesh::build() {
  const std::size_t n = num_points_.load(std::memory_order_relaxed);
  // Pseudo-random insertion order (deterministic).
  std::vector<u32> order(n - kSuperVertices);
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<u32>(kSuperVertices + i);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[hash64(i) % i]);
  }

  Cavity cavity;
  i64 hint = 0;
  std::size_t inserted = 0;
  for (u32 vid : order) {
    const Point& p = points_[vid];
    i64 t = locate(p, hint);
    if (t < 0) throw std::logic_error("locate failed during build");
    if (coincides_with_vertex(t, p)) continue;  // duplicate input point
    if (!collect_cavity(p, t, cavity, tris_.size())) {
      throw std::logic_error("degenerate cavity during build");
    }
    hint = apply_insert(vid, cavity);
    ++inserted;
  }
  return inserted;
}

bool Mesh::check_consistency() const {
  const std::size_t total = num_tris_.load(std::memory_order_acquire);
  for (std::size_t t = 0; t < total; ++t) {
    const Triangle& tri = tris_[t];
    if (!tri.alive) continue;
    if (orient2d(points_[tri.v[0]], points_[tri.v[1]], points_[tri.v[2]]) <=
        0) {
      return false;  // not CCW
    }
    for (int k = 0; k < 3; ++k) {
      i64 n = tri.nbr[k];
      if (n < 0) continue;
      if (!tris_[n].alive) return false;  // live triangle points at dead
      // The neighbor must share edge (v[k+1], v[k+2]) and point back.
      const Triangle& other = tris_[n];
      bool back = false;
      for (int j = 0; j < 3; ++j) {
        if (other.v[(j + 1) % 3] == tri.v[(k + 2) % 3] &&
            other.v[(j + 2) % 3] == tri.v[(k + 1) % 3]) {
          back = other.nbr[j] == static_cast<i64>(t);
        }
      }
      if (!back) return false;
    }
  }
  return true;
}

double Mesh::delaunay_fraction(std::size_t sample_triangles) const {
  const std::size_t total = num_tris_.load(std::memory_order_acquire);
  const std::size_t n = num_points_.load(std::memory_order_acquire);
  std::vector<i64> real_tris;
  for (std::size_t t = 0; t < total; ++t) {
    if (tris_[t].alive && !has_super_vertex(static_cast<i64>(t))) {
      real_tris.push_back(static_cast<i64>(t));
    }
  }
  if (real_tris.empty()) return 1.0;
  std::size_t checked = 0, good = 0;
  for (std::size_t s = 0; s < sample_triangles; ++s) {
    i64 t = real_tris[hash64(s) % real_tris.size()];
    const Triangle& tri = tris_[t];
    bool empty_circle = true;
    for (std::size_t q = kSuperVertices; q < n && empty_circle; ++q) {
      u32 qi = static_cast<u32>(q);
      if (qi == tri.v[0] || qi == tri.v[1] || qi == tri.v[2]) continue;
      if (in_circle(points_[tri.v[0]], points_[tri.v[1]], points_[tri.v[2]],
                    points_[q]) > 1e-12) {
        empty_circle = false;
      }
    }
    ++checked;
    good += empty_circle;
  }
  return checked == 0 ? 1.0 : static_cast<double>(good) / static_cast<double>(checked);
}

}  // namespace rpb::geom
