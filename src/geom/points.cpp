#include "geom/points.h"

#include <cmath>
#include <numbers>

#include "sched/parallel.h"
#include "support/prng.h"

namespace rpb::geom {

std::vector<Point> kuzmin_points(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  // Kuzmin CDF over radius: F(r) = 1 - 1/sqrt(1 + r^2), so
  // r = sqrt(1/(1-u)^2 - 1). Normalize by the 99.9th percentile radius
  // so almost everything lands in the unit disk.
  const double r_cap = std::sqrt(1.0 / (0.001 * 0.001) - 1.0);
  sched::parallel_for(0, n, [&](std::size_t i) {
    double u = rng.uniform(2 * i) * 0.999;  // truncate the far tail
    double r = std::sqrt(1.0 / ((1.0 - u) * (1.0 - u)) - 1.0) / r_cap;
    double theta = rng.uniform(2 * i + 1) * 2.0 * std::numbers::pi;
    pts[i] = Point{r * std::cos(theta), r * std::sin(theta)};
  });
  return pts;
}

std::vector<Point> uniform_points(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  sched::parallel_for(0, n, [&](std::size_t i) {
    pts[i] = Point{rng.uniform(2 * i), rng.uniform(2 * i + 1)};
  });
  return pts;
}

}  // namespace rpb::geom
