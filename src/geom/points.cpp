#include "geom/points.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sched/parallel.h"
#include "support/prng.h"

namespace rpb::geom {

std::vector<Point> kuzmin_points(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  // Kuzmin CDF over radius: F(r) = 1 - 1/sqrt(1 + r^2), so
  // r = sqrt(1/(1-u)^2 - 1). Normalize by the 99.9th percentile radius
  // so almost everything lands in the unit disk.
  const double r_cap = std::sqrt(1.0 / (0.001 * 0.001) - 1.0);
  sched::parallel_for(0, n, [&](std::size_t i) {
    double u = rng.uniform(2 * i) * 0.999;  // truncate the far tail
    double r = std::sqrt(1.0 / ((1.0 - u) * (1.0 - u)) - 1.0) / r_cap;
    double theta = rng.uniform(2 * i + 1) * 2.0 * std::numbers::pi;
    pts[i] = Point{r * std::cos(theta), r * std::sin(theta)};
  });
  return pts;
}

std::vector<Point> uniform_points(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  sched::parallel_for(0, n, [&](std::size_t i) {
    pts[i] = Point{rng.uniform(2 * i), rng.uniform(2 * i + 1)};
  });
  return pts;
}

std::vector<Point> clustered_points(std::size_t n, u64 seed,
                                    std::size_t clusters, double sigma) {
  clusters = std::max<std::size_t>(1, clusters);
  Rng center_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<Point> centers(clusters);
  // Centers stay >= 5 sigma from the square's edge (at the default
  // sigma), so the clamp below almost never fires — clamping would pile
  // points onto exactly-collinear boundary lines.
  for (std::size_t c = 0; c < clusters; ++c) {
    centers[c] = Point{0.1 + 0.8 * center_rng.uniform(2 * c),
                       0.1 + 0.8 * center_rng.uniform(2 * c + 1)};
  }
  Rng rng(seed);
  std::vector<Point> pts(n);
  sched::parallel_for(0, n, [&](std::size_t i) {
    const Point& c = centers[rng.next(3 * i, clusters)];
    // Box-Muller from two counter-based uniforms; 1-u keeps log's
    // argument in (0, 1].
    const double u1 = 1.0 - rng.uniform(3 * i + 1);
    const double u2 = rng.uniform(3 * i + 2);
    const double mag = sigma * std::sqrt(-2.0 * std::log(u1));
    const double z0 = mag * std::cos(2.0 * std::numbers::pi * u2);
    const double z1 = mag * std::sin(2.0 * std::numbers::pi * u2);
    pts[i] = Point{std::clamp(c.x + z0, 0.0, 1.0),
                   std::clamp(c.y + z1, 0.0, 1.0)};
  });
  return pts;
}

}  // namespace rpb::geom
