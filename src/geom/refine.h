// dr benchmark: Delaunay refinement. Skinny triangles (large
// radius/shortest-edge ratio) are fixed by inserting their
// circumcenters; batches of bad triangles are inserted in parallel via
// deterministic reservations — each insertion reserves its whole
// cavity plus the boundary ring, exactly PBBS's incrementalRefine
// discipline.
#pragma once

#include <cstddef>

#include "core/census.h"
#include "geom/delaunay.h"
#include "support/defs.h"

namespace rpb::geom {

struct RefineConfig {
  // Quality bound: triangles with circumradius/shortest-edge above this
  // are bad (1.4 ~ minimum angle of about 21 degrees).
  double max_ratio = 1.4;
  // Reject circumcenters outside this radius (no input boundary
  // segments; see DESIGN.md deviations).
  double domain_radius = 2.0;
  // Parallel batch per refinement round.
  std::size_t batch_size = 256;
  // Safety valve on total work.
  std::size_t max_insertions = 1u << 20;
};

struct RefineStats {
  std::size_t inserted = 0;
  std::size_t rounds = 0;
  std::size_t skipped = 0;      // bad triangles given up on
  std::size_t bad_remaining = 0;  // unfixable (e.g. out-of-domain center)
};

// Refine in place. Deterministic given the mesh and config.
RefineStats refine(Mesh& mesh, const RefineConfig& config = RefineConfig());

// Count live all-real triangles violating the quality bound.
std::size_t count_bad_triangles(const Mesh& mesh, double max_ratio);

const census::BenchmarkCensus& dr_census();

}  // namespace rpb::geom
