#include "geom/build.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/atomics.h"
#include "core/checks.h"
#include "core/primitives.h"
#include "core/reservation.h"
#include "core/spec_for.h"
#include "core/uninit_buf.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/timer.h"

namespace rpb::geom {

DrPolicy parse_dr_policy(const std::string& name) {
  if (name == "incremental") return DrPolicy::kIncremental;
  if (name == "decomposed") return DrPolicy::kDecomposed;
  throw std::invalid_argument("unknown dr policy: " + name);
}

namespace {

constexpr u64 kNoMember = ~u64{0};

// Uniform g x g grid over the input bounding box. A zero-extent axis
// (all points collinear) gets an infinite cell width: every point maps
// to column 0 and the territory test is vacuous along that axis, which
// is exactly right — cells only ever subdivide the other axis.
struct Grid {
  double x0 = 0, y0 = 0;
  double w = 0, h = 0;          // cell extent
  double inv_w = 0, inv_h = 0;  // 0 on a degenerate axis
  std::size_t g = 1;

  std::size_t cells() const { return g * g; }

  std::size_t cell_of(const Point& p) const {
    auto clamp = [this](double v) {
      if (!(v > 0)) return std::size_t{0};
      std::size_t c = static_cast<std::size_t>(v);
      return std::min(c, g - 1);
    };
    return clamp((p.y - y0) * inv_h) * g + clamp((p.x - x0) * inv_w);
  }

  Point center(std::size_t c) const {
    const double cx = static_cast<double>(c % g);
    const double cy = static_cast<double>(c / g);
    return Point{inv_w > 0 ? x0 + (cx + 0.5) * w : x0,
                 inv_h > 0 ? y0 + (cy + 0.5) * h : y0};
  }

  // The private territory of cell (cx, cy): the cell box grown by one
  // full cell on each side. Same-color cells (3x3 coloring) sit three
  // cells apart, so their territories have disjoint interiors — they
  // meet in at most a boundary line. DESIGN.md §6 turns that into the
  // no-reservations-needed argument for wave inserts.
  void territory(std::size_t c, double* tx0, double* tx1, double* ty0,
                 double* ty1) const {
    const double cx = static_cast<double>(c % g);
    const double cy = static_cast<double>(c / g);
    const double inf = std::numeric_limits<double>::infinity();
    *tx0 = inv_w > 0 ? x0 + (cx - 1.0) * w : -inf;
    *tx1 = inv_w > 0 ? x0 + (cx + 2.0) * w : inf;
    *ty0 = inv_h > 0 ? y0 + (cy - 1.0) * h : -inf;
    *ty1 = inv_h > 0 ? y0 + (cy + 2.0) * h : inf;
  }
};

// Every cavity triangle's circumdisk inside the cell's territory box?
// NaN circumcenters (degenerate triangles) and super-vertex triangles
// (enormous disks) fail the comparisons and defer to the stitch, which
// is the safe direction.
bool cavity_in_territory(const Mesh& mesh, const Mesh::Cavity& cavity,
                         const Grid& grid, std::size_t c) {
  double tx0, tx1, ty0, ty1;
  grid.territory(c, &tx0, &tx1, &ty0, &ty1);
  for (i64 t : cavity.tris) {
    const Triangle& tri = mesh.triangle(t);
    const Point cc = circumcenter(mesh.point(tri.v[0]), mesh.point(tri.v[1]),
                                  mesh.point(tri.v[2]));
    const double r = std::sqrt(squared_distance(cc, mesh.point(tri.v[0])));
    if (!(cc.x - r >= tx0 && cc.x + r <= tx1 && cc.y - r >= ty0 &&
          cc.y + r <= ty1)) {
      return false;
    }
  }
  return true;
}

// Nearest live slot to a (possibly dead) hint. Slot ids are allocation
// order, so neighbors of a recently-killed hint are usually recent
// triangles from the same neighborhood; this keeps locate off its
// O(slots) linear-rescue path. The result is schedule-dependent but
// locate's answer (the containing triangle) is not.
i64 find_live_near(const Mesh& mesh, i64 hint) {
  const i64 total = static_cast<i64>(mesh.num_triangle_slots());
  if (hint < 0 || hint >= total) hint = 0;
  if (mesh.alive(hint)) return hint;
  for (i64 d = 1; ; ++d) {
    const bool lo_ok = hint - d >= 0;
    const bool hi_ok = hint + d < total;
    if (!lo_ok && !hi_ok) return -1;
    if (hi_ok && mesh.alive(hint + d)) return hint + d;
    if (lo_ok && mesh.alive(hint - d)) return hint - d;
  }
}

[[noreturn]] void throw_cavity_overflow(AccessMode mode, u32 vid) {
  if (mode == AccessMode::kChecked) {
    obs::bump(obs::Counter::kCheckedFailed);
    throw CheckFailure("dr: cavity overflow inserting vertex " +
                       std::to_string(vid));
  }
  throw std::logic_error("degenerate cavity during decomposed build");
}

// One stitch member: insert deferred point ids[i], reserving the whole
// cavity plus its boundary ring — RefineStep's discipline with the
// member's deferral-order index as priority, so the stitched mesh is
// independent of the thread schedule.
struct StitchStep {
  Mesh& mesh;
  const BuildConfig& config;
  const Grid& grid;
  std::span<const u32> ids;
  std::span<const i64> hints;  // per cell, read-only during the stitch
  std::vector<par::Reservation>& reservations;
  std::vector<Mesh::Cavity>& cavities;
  u64* first_overflow;  // write_min over member index (checked report)
  std::atomic<std::size_t>& inserted;
  std::atomic<std::size_t>& skipped;

  bool reserve(std::size_t i) {
    const u32 vid = ids[i];
    const Point& p = mesh.point(vid);
    const i64 start = find_live_near(mesh, hints[grid.cell_of(p)]);
    const i64 t = mesh.locate(p, start);
    if (t < 0) {
      write_min(first_overflow, static_cast<u64>(i));
      return false;
    }
    if (mesh.coincides_with_vertex(t, p)) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!mesh.collect_cavity(p, t, cavities[i], config.stitch_max_cavity)) {
      write_min(first_overflow, static_cast<u64>(i));
      return false;
    }
    obs::bump(obs::Counter::kDrCavityTris, cavities[i].tris.size());
    for (i64 c : cavities[i].tris) {
      reservations[static_cast<std::size_t>(c)].reserve(static_cast<i64>(i));
    }
    for (const auto& edge : cavities[i].boundary) {
      if (edge.outside >= 0) {
        reservations[static_cast<std::size_t>(edge.outside)].reserve(
            static_cast<i64>(i));
      }
    }
    return true;
  }

  bool commit(std::size_t i) {
    const Mesh::Cavity& cavity = cavities[i];
    bool holds_all = true;
    for (i64 c : cavity.tris) {
      if (!reservations[static_cast<std::size_t>(c)].check(
              static_cast<i64>(i))) {
        holds_all = false;
        obs::bump(obs::Counter::kDrReserveConflicts);
      }
    }
    for (const auto& edge : cavity.boundary) {
      if (edge.outside >= 0 &&
          !reservations[static_cast<std::size_t>(edge.outside)].check(
              static_cast<i64>(i))) {
        holds_all = false;
        obs::bump(obs::Counter::kDrReserveConflicts);
      }
    }
    if (holds_all) {
      mesh.apply_insert(ids[i], cavity);
      inserted.fetch_add(1, std::memory_order_relaxed);
    }
    // Release whatever we still hold (success or not), PBBS-style.
    for (i64 c : cavity.tris) {
      auto& cell = reservations[static_cast<std::size_t>(c)];
      if (cell.check(static_cast<i64>(i))) cell.reset();
    }
    for (const auto& edge : cavity.boundary) {
      if (edge.outside < 0) continue;
      auto& cell = reservations[static_cast<std::size_t>(edge.outside)];
      if (cell.check(static_cast<i64>(i))) cell.reset();
    }
    return holds_all;
  }
};

}  // namespace

BuildStats build_delaunay(Mesh& mesh, DrPolicy policy, AccessMode mode,
                          const BuildConfig& config) {
  BuildStats stats;
  const std::size_t n_ids = mesh.num_points();
  const std::size_t n = n_ids - Mesh::kSuperVertices;
  if (policy == DrPolicy::kIncremental) {
    stats.inserted = mesh.build();
    stats.skipped = n - stats.inserted;
    return stats;
  }
  if (n == 0) return stats;

  support::ArenaLease arena;

  // Bounding box of the input, computed once; every round's grid
  // subdivides the same box so cell ids stay cheap to derive.
  struct Box {
    double x0 = std::numeric_limits<double>::infinity();
    double y0 = std::numeric_limits<double>::infinity();
    double x1 = -std::numeric_limits<double>::infinity();
    double y1 = -std::numeric_limits<double>::infinity();
  };
  const Box box = sched::parallel_reduce_range(
      std::size_t{Mesh::kSuperVertices}, n_ids, Box{},
      [&](std::size_t lo, std::size_t hi) {
        Box b;
        for (std::size_t i = lo; i < hi; ++i) {
          const Point& p = mesh.point(static_cast<u32>(i));
          b.x0 = std::min(b.x0, p.x);
          b.y0 = std::min(b.y0, p.y);
          b.x1 = std::max(b.x1, p.x);
          b.y1 = std::max(b.y1, p.y);
        }
        return b;
      },
      [](Box a, Box b) {
        a.x0 = std::min(a.x0, b.x0);
        a.y0 = std::min(a.y0, b.y0);
        a.x1 = std::max(a.x1, b.x1);
        a.y1 = std::max(a.y1, b.y1);
        return a;
      });
  auto make_grid = [&](std::size_t g) {
    Grid grid;
    grid.g = g;
    grid.x0 = box.x0;
    grid.y0 = box.y0;
    if (box.x1 > box.x0) {
      grid.w = (box.x1 - box.x0) / static_cast<double>(g);
      grid.inv_w = 1.0 / grid.w;
    }
    if (box.y1 > box.y0) {
      grid.h = (box.y1 - box.y0) / static_cast<double>(g);
      grid.inv_h = 1.0 / grid.h;
    }
    return grid;
  };

  // ---- bootstrap: serial prefix insert, input order ------------------
  // The wave containment test only starts passing once the mesh near a
  // cell is about as dense as the cell grid is fine — so the build
  // grows density in doubling rounds, and this serial prefix plants
  // the first round's density floor. Input order, not shuffled: the
  // prefix is a fixed function of the input, and chained hints keep
  // the serial walks short.
  const std::size_t bootstrap_n =
      config.bootstrap > 0
          ? std::min(n, config.bootstrap)
          : std::min(n, std::max<std::size_t>(256, n / 64));
  i64 last_hint = 0;
  Timer phase_timer;
  {
    OBS_SCOPE("dr.seed");
    Mesh::Cavity cavity;
    for (std::size_t i = 0; i < bootstrap_n; ++i) {
      const u32 vid = static_cast<u32>(Mesh::kSuperVertices + i);
      const Point& p = mesh.point(vid);
      const i64 t = mesh.locate(p, find_live_near(mesh, last_hint));
      if (t < 0) throw_cavity_overflow(mode, vid);
      if (mesh.coincides_with_vertex(t, p)) {
        ++stats.skipped;
        last_hint = t;
        continue;
      }
      // Default cavity guard, not config.stitch_max_cavity: the
      // bootstrap runs at the sparsest density the build ever sees, so
      // a stitch-tuned cap would misfire here on healthy inputs.
      if (!mesh.collect_cavity(p, t, cavity)) {
        throw_cavity_overflow(mode, vid);
      }
      obs::bump(obs::Counter::kDrCavityTris, cavity.tris.size());
      last_hint = mesh.apply_insert(vid, cavity);
      ++stats.seed_inserts;
    }
  }
  stats.seed_s = phase_timer.elapsed();

  // ---- waves: one point per same-color cell, two BSP phases ----------
  // Phase A is read-only (locate, collect, containment test); phase B
  // commits the passers. Containment makes concurrent cavities — and
  // their boundary rings — provably disjoint (DESIGN.md §6), so phase B
  // needs no reservations; the phase split keeps every locate walk off
  // triangles being mutated, which is what makes the waves TSAN-clean.
  enum : u8 { kNone = 0, kInsert, kSkip, kDefer };
  std::vector<Mesh::Cavity> cavities;
  std::vector<u8> verdicts;
  std::vector<u32> active;
  std::vector<u32> cursor;

  auto run_waves = [&](const Grid& grid, std::vector<i64>& hints,
                       std::span<const u32> ids,
                       std::span<const u64> starts_in) {
    const std::size_t cells = grid.cells();
    std::vector<u32> deferred;
    cursor.assign(cells, 0);
    const auto len = [&](std::size_t c) {
      return static_cast<u32>(starts_in[c + 1] - starts_in[c]);
    };
    for (int color = 0; color < 9; ++color) {
      // Fused pack: the same-color cells with any points at all.
      auto color_cells =
          par::pack_index_if<u32>(arena, cells, [&](std::size_t c) {
            return ((c % grid.g) % 3 == static_cast<std::size_t>(color % 3)) &&
                   ((c / grid.g) % 3 == static_cast<std::size_t>(color / 3)) &&
                   len(c) > 0;
          });
      for (;;) {
        active.clear();
        for (u32 c : color_cells.cspan()) {
          if (cursor[c] < len(c)) active.push_back(c);
        }
        if (active.empty()) break;
        if (active.size() < config.min_wave_cells) {
          // Straggler tail: a parallel region per point is not worth
          // it; the stitch engine handles these with reservations.
          for (u32 c : color_cells.cspan()) {
            for (; cursor[c] < len(c); ++cursor[c]) {
              deferred.push_back(ids[starts_in[c] + cursor[c]]);
            }
          }
          break;
        }
        const std::size_t m = active.size();
        if (cavities.size() < m) cavities.resize(m);
        verdicts.assign(m, kNone);
        ++stats.waves;
        sched::parallel_for(0, m, [&](std::size_t i) {
          const std::size_t c = active[i];
          const u32 vid = ids[starts_in[c] + cursor[c]];
          const Point& p = mesh.point(vid);
          const i64 t = mesh.locate(p, find_live_near(mesh, hints[c]));
          if (t < 0) {
            verdicts[i] = kDefer;
            return;
          }
          if (mesh.coincides_with_vertex(t, p)) {
            verdicts[i] = kSkip;
            return;
          }
          if (!mesh.collect_cavity(p, t, cavities[i],
                                   config.wave_max_cavity)) {
            verdicts[i] = kDefer;
            return;
          }
          obs::bump(obs::Counter::kDrCavityTris, cavities[i].tris.size());
          verdicts[i] =
              cavity_in_territory(mesh, cavities[i], grid, c) ? kInsert
                                                              : kDefer;
        });
        sched::parallel_for(0, m, [&](std::size_t i) {
          if (verdicts[i] != kInsert) return;
          const std::size_t c = active[i];
          const u32 vid = ids[starts_in[c] + cursor[c]];
          hints[c] = mesh.apply_insert(vid, cavities[i]);
        });
        for (std::size_t i = 0; i < m; ++i) {
          const std::size_t c = active[i];
          const u32 vid = ids[starts_in[c] + cursor[c]];
          ++cursor[c];
          switch (verdicts[i]) {
            case kInsert:
              ++stats.interior_inserts;
              break;
            case kSkip:
              ++stats.skipped;
              break;
            default:
              deferred.push_back(vid);
              break;
          }
        }
      }
    }
    return deferred;
  };

  // ---- rounds: doubling prefixes, grid matched to current density ----
  // Round r inserts points [lo, 2*lo) on a grid with ~target_per_cell
  // already-inserted points per cell: cavity circumdisks at that
  // density span a fraction of a cell, so the one-cell territory
  // margin accepts the bulk of the round and each round doubles the
  // density floor for the next. The round partition and every grid are
  // functions of n alone — nothing about the schedule leaks in.
  Grid grid = make_grid(1);
  std::vector<i64> hints(1, last_hint);
  std::vector<u32> deferred;
  {
    OBS_SCOPE("dr.interior");
    phase_timer.reset();
    std::size_t lo = bootstrap_n;
    while (lo < n) {
      const std::size_t hi = std::min(n, 2 * lo);
      const std::size_t nr = hi - lo;
      ++stats.rounds;
      const double target = static_cast<double>(
          std::max<std::size_t>(1, config.target_per_cell));
      const double ideal =
          std::sqrt(static_cast<double>(lo) / target);
      const Grid prev = grid;
      grid = make_grid(std::clamp<std::size_t>(
          static_cast<std::size_t>(std::lround(ideal)), 1, 2048));
      stats.grid = grid.g;
      const std::size_t cells = grid.cells();

      // -- bucket: stable counting sort of the round's ids by cell ----
      // Per-block count matrix + one fused exclusive scan + a per-block
      // scatter. Stable by construction (block-major within a cell), so
      // the within-cell order — the order the waves consume — is the
      // input order no matter how many blocks or threads.
      UninitBuf<u32> order;    // round's point ids, grouped by cell
      UninitBuf<u32> cell_of;  // cell id per round point (index i - lo)
      UninitBuf<u64> starts;   // cells + 1 bracketing offsets
      {
        OBS_SCOPE("dr.bucket");
        const Timer bucket_timer;
        cell_of = uninit_buf<u32>(arena, nr);
        sched::parallel_for(0, nr, [&](std::size_t i) {
          cell_of[i] = static_cast<u32>(grid.cell_of(
              mesh.point(static_cast<u32>(Mesh::kSuperVertices + lo + i))));
        });

        // Input-pure block count (not thread-derived): the count matrix
        // is identical at every RPB_THREADS, which keeps even
        // intermediate state reproducible, not just the sort output.
        const std::size_t blocks = std::clamp<std::size_t>(nr / 16384, 1, 64);
        const std::size_t block_len = (nr + blocks - 1) / blocks;
        auto counts = uninit_buf<u64>(arena, cells * blocks);
        sched::parallel_for(0, blocks, [&](std::size_t b) {
          const std::size_t b_lo = b * block_len;
          const std::size_t b_hi = std::min(nr, b_lo + block_len);
          for (std::size_t c = 0; c < cells; ++c) counts[c * blocks + b] = 0;
          for (std::size_t i = b_lo; i < b_hi; ++i) {
            ++counts[static_cast<std::size_t>(cell_of[i]) * blocks + b];
          }
        });
        par::scan_exclusive_sum(counts.span());

        starts = uninit_buf<u64>(arena, cells + 1);
        sched::parallel_for(0, cells, [&](std::size_t c) {
          starts[c] = counts[c * blocks];
        });
        starts[cells] = nr;

        order = uninit_buf<u32>(arena, nr);
        sched::parallel_for(0, blocks, [&](std::size_t b) {
          const std::size_t b_lo = b * block_len;
          const std::size_t b_hi = std::min(nr, b_lo + block_len);
          for (std::size_t i = b_lo; i < b_hi; ++i) {
            u64& slot =
                counts[static_cast<std::size_t>(cell_of[i]) * blocks + b];
            order[slot++] = static_cast<u32>(Mesh::kSuperVertices + lo + i);
          }
        });

        if (mode == AccessMode::kChecked) {
          // The invariants the waves trust: bracketing offsets monotone
          // (the RngInd check) and the scatter wrote a permutation of
          // the round's ids (the SngInd uniqueness check).
          par::check_monotonic_offsets(
              std::span<const u64>(starts.data(), cells + 1), nr);
          par::check_unique_offsets(std::span<const u32>(order.data(), nr),
                                    n_ids);
        }
        stats.bucket_s += bucket_timer.elapsed();
      }

      // Hints refine with the grid: a new cell inherits the hint of the
      // previous (coarser) cell containing its center, so the first
      // locate per cell starts a short walk away. Hints only seed
      // walks — locate's answer never depends on them.
      std::vector<i64> round_hints(cells);
      for (std::size_t c = 0; c < cells; ++c) {
        round_hints[c] = hints[prev.cell_of(grid.center(c))];
      }
      hints = std::move(round_hints);

      std::vector<u32> retry = run_waves(
          grid, hints, std::span<const u32>(order.data(), nr),
          std::span<const u64>(starts.data(), cells + 1));
      if (!retry.empty()) {
        // One retry pass: most first-pass failures were cavities that
        // clipped a still-sparse neighborhood and succeed once the
        // round's other cells fill in. Regroup by cell (stable,
        // serial) so the wave engine sees the same shape of input.
        std::vector<u64> rcounts(cells + 1, 0);
        for (u32 vid : retry) {
          ++rcounts[cell_of[vid - Mesh::kSuperVertices - lo] + 1];
        }
        for (std::size_t c = 0; c < cells; ++c) rcounts[c + 1] += rcounts[c];
        std::vector<u32> regrouped(retry.size());
        {
          std::vector<u64> fill(rcounts.begin(), rcounts.end() - 1);
          for (u32 vid : retry) {
            regrouped[fill[cell_of[vid - Mesh::kSuperVertices - lo]]++] = vid;
          }
        }
        obs::bump(obs::Counter::kDrDeferredInserts, retry.size());
        retry = run_waves(grid, hints, std::span<const u32>(regrouped),
                          std::span<const u64>(rcounts));
        deferred.insert(deferred.end(), retry.begin(), retry.end());
      }
      lo = hi;
    }
    stats.interior_s = phase_timer.elapsed();
  }

  // ---- stitch: deferred cavities through deterministic reservations --
  if (!deferred.empty()) {
    OBS_SCOPE("dr.stitch");
    phase_timer.reset();
    stats.deferred = deferred.size();
    obs::bump(obs::Counter::kDrDeferredInserts, deferred.size());
    // Deferral order is spatially clustered (territory borders, hull
    // cells) — adjacent members conflict, and priority chains would
    // serialize spec_for round by round (tens of retried
    // locate+collect rounds per member). Scatter the order with an
    // input-pure hash permutation instead: each round then attempts
    // spatially spread members and commits almost all of them. Still
    // deterministic — the permutation is a function of the vertex ids
    // alone, never of the schedule.
    std::sort(deferred.begin(), deferred.end(), [](u32 a, u32 b) {
      const u64 ha = hash64(a), hb = hash64(b);
      return ha != hb ? ha < hb : a < b;
    });
    std::vector<par::Reservation> reservations(mesh.arena_capacity());
    std::vector<Mesh::Cavity> stitch_cavities(deferred.size());
    u64 first_overflow = kNoMember;
    std::atomic<std::size_t> inserted{0}, skipped{0};
    StitchStep step{mesh,
                    config,
                    grid,
                    std::span<const u32>(deferred),
                    std::span<const i64>(hints),
                    reservations,
                    stitch_cavities,
                    &first_overflow,
                    inserted,
                    skipped};
    const par::SpecForStats sp = par::speculative_for(
        step, 0, deferred.size(),
        std::min(deferred.size(), config.stitch_round));
    stats.stitch_inserts = inserted.load();
    stats.skipped += skipped.load();
    stats.stitch_rounds = sp.rounds;
    stats.stitch_retries = sp.retries;
    obs::bump(obs::Counter::kDrStitchRetries, sp.retries);
    stats.stitch_s = phase_timer.elapsed();
    const u64 overflow = relaxed_load(&first_overflow);
    if (overflow != kNoMember) {
      // write_min picked the lowest deferral-order member, a property
      // of the input alone — the PR 2 deterministic-first-failure
      // convention.
      throw_cavity_overflow(mode, deferred[overflow]);
    }
  }

  stats.inserted =
      stats.seed_inserts + stats.interior_inserts + stats.stitch_inserts;
  return stats;
}

}  // namespace rpb::geom
