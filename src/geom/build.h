// Grid-decomposed parallel Delaunay construction (the dr build phase).
//
// Mesh::build() is serial incremental Bowyer-Watson; this file adds a
// decomposed path behind the RPB_DR knob that puts the whole runtime
// under construction, not just refinement:
//
//   bootstrap  A short serial prefix (max(256, n/64) points, input
//            order) plants the density floor the first round's
//            containment test needs. The honest serial fraction the
//            ablation reports.
//   rounds   Doubling prefixes of the remaining points, BRIO-style:
//            round r inserts points [lo, 2*lo) on a grid sized so the
//            ~lo already-inserted points average target_per_cell per
//            cell — cavity circumdisks at that density span a fraction
//            of a cell, which is what lets the territory test pass.
//            Each round counting-sorts its points into cells (fused
//            scan primitives, arena-leased scratch; stable, so the
//            within-cell order is independent of RPB_THREADS), then:
//   waves    Cells are 3x3-colored; each wave inserts at most one
//            point per same-color cell, in two BSP phases: a read-only
//            phase (locate from the cell hint, collect the cavity,
//            test that every cavity triangle's circumdisk fits the
//            cell's private territory — the cell box grown by one full
//            cell each side) and a mutation phase that commits only
//            the passers. Containment makes concurrent cavities
//            provably disjoint — no reservations, no atomics on the
//            mesh besides slot allocation (DESIGN.md §6 has the
//            argument). Failures retry once within the round, then
//            carry to the stitch set.
//   stitch   Deferred points — cavities that crossed territory
//            borders — go through the deterministic-reservation engine
//            (core/spec_for.h), reserving cavity plus boundary ring
//            exactly like refinement. Priorities are positions in the
//            (deterministic) deferral order.
//
// Every phase is deterministic given the input and the policy, so
// structure_hash is bitwise-identical across RPB_THREADS and RPB_ARENA
// modes; for inputs without duplicate points it also matches the
// incremental build exactly (both produce the unique Delaunay
// triangulation of the same vertex ids).
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/access_mode.h"
#include "geom/delaunay.h"
#include "support/defs.h"

namespace rpb::geom {

// Construction policy for the dr benchmark (see file header).
enum class DrPolicy : int { kIncremental = 0, kDecomposed = 1 };

inline const char* dr_policy_name(DrPolicy policy) {
  switch (policy) {
    case DrPolicy::kIncremental: return "incremental";
    case DrPolicy::kDecomposed: return "decomposed";
  }
  return "?";
}

namespace detail {

inline std::atomic<int> g_dr_policy{-1};  // -1: not yet resolved

// RPB_DR: "incremental" selects the serial baseline; "decomposed" (or
// unset) the grid-decomposed parallel build.
inline DrPolicy resolve_dr_policy() {
  if (const char* env = std::getenv("RPB_DR")) {
    if (std::strcmp(env, "incremental") == 0) return DrPolicy::kIncremental;
  }
  return DrPolicy::kDecomposed;
}

}  // namespace detail

inline DrPolicy dr_policy() {
  int policy = detail::g_dr_policy.load(std::memory_order_relaxed);
  if (policy < 0) {
    policy = static_cast<int>(detail::resolve_dr_policy());
    detail::g_dr_policy.store(policy, std::memory_order_relaxed);
  }
  return static_cast<DrPolicy>(policy);
}

// Benchmark/test knob; safe to flip between (not during) builds —
// mirrors set_spmv_policy / set_arena_mode / set_simd_level.
inline void set_dr_policy(DrPolicy policy) {
  detail::g_dr_policy.store(static_cast<int>(policy),
                            std::memory_order_relaxed);
}

// CLI parsing ("incremental"/"decomposed"); throws std::invalid_argument.
DrPolicy parse_dr_policy(const std::string& name);

struct BuildConfig {
  // Round grid sizing: cells ~= already-inserted / target_per_cell, so
  // a cell holds ~this many existing points when its round runs.
  // Larger targets mean coarser cells (containment passes easily, less
  // wave parallelism); smaller targets the reverse.
  std::size_t target_per_cell = 8;
  // Serial bootstrap prefix; 0 = auto (max(256, n/64)).
  std::size_t bootstrap = 0;
  // Wave-phase cavity cap: a cavity that exceeds this (or fails the
  // territory containment test) defers to the stitch. Small caps force
  // more traffic through the reservation engine (tests use 1).
  std::size_t wave_max_cavity = 512;
  // Stitch cavity cap: exceeding THIS is a degenerate-input error
  // (the bootstrap keeps Mesh::collect_cavity's default guard).
  std::size_t stitch_max_cavity = 4096;
  // spec_for round size for the stitch phase. Deliberately small: a
  // failed commit redoes its locate+collect next round, and stitch
  // conflicts are dense (deferred points crowd territory borders and
  // hull wedges), so wasted attempts scale with the window, not with
  // the per-round independent set. 256 hash-scattered members keep the
  // window mostly conflict-free; 2048 measured ~20 retries per member.
  std::size_t stitch_round = 256;
  // Stop waving a color when fewer cells than this still have work;
  // the short tail stitches instead of paying a parallel region per
  // straggler point. Also gates whole early rounds (few cells) into
  // the stitch.
  std::size_t min_wave_cells = 8;
};

struct BuildStats {
  std::size_t inserted = 0;        // total points inserted (all phases)
  std::size_t skipped = 0;         // duplicate/coincident points dropped
  std::size_t grid = 0;            // final round's g (the grid is g x g)
  std::size_t rounds = 0;          // doubling insertion rounds executed
  std::size_t seed_inserts = 0;    // serial bootstrap inserts
  std::size_t interior_inserts = 0;  // reservation-free wave inserts
  std::size_t deferred = 0;        // wave members handed to the stitch
  std::size_t stitch_inserts = 0;  // inserts through spec_for
  std::size_t stitch_rounds = 0;
  std::size_t stitch_retries = 0;  // commit failures (lost reservations)
  std::size_t waves = 0;           // BSP waves executed (all colors)
  // Wall-clock per phase (seconds), for the ablation's breakdown; the
  // timer reads are four steady_clock calls per build plus one pair
  // per round — noise next to a single locate.
  double seed_s = 0;      // serial bootstrap
  double interior_s = 0;  // all rounds (includes bucket_s)
  double bucket_s = 0;    // counting-sort share of interior_s
  double stitch_s = 0;    // spec_for stitch
};

// Triangulate every input point of `mesh` (which must be freshly
// constructed). kIncremental dispatches to Mesh::build(); kDecomposed
// runs the grid-decomposed path above. AccessMode::kChecked validates
// the bucketing invariants (monotone cell offsets, scatter writes a
// permutation) and reports cavity overflow as a deterministic
// first-failure CheckFailure instead of a plain logic_error.
BuildStats build_delaunay(Mesh& mesh, DrPolicy policy,
                          AccessMode mode = AccessMode::kUnchecked,
                          const BuildConfig& config = BuildConfig());

inline BuildStats build_delaunay(Mesh& mesh) {
  return build_delaunay(mesh, dr_policy());
}

}  // namespace rpb::geom
