// 2D geometric predicates in double precision. Inputs are generated
// away from degeneracy (DESIGN.md "Known deviations"); the super-
// triangle coordinates are kept small enough that the determinants stay
// well inside double range.
#pragma once

#include <algorithm>
#include <cmath>

namespace rpb::geom {

struct Point {
  double x = 0;
  double y = 0;

  bool operator==(const Point&) const = default;
};

// > 0 if a->b->c turns left (CCW), < 0 right, ~0 collinear.
inline double orient2d(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

// > 0 if d lies strictly inside the circumcircle of CCW triangle abc.
inline double in_circle(const Point& a, const Point& b, const Point& c,
                        const Point& d) {
  double adx = a.x - d.x, ady = a.y - d.y;
  double bdx = b.x - d.x, bdy = b.y - d.y;
  double cdx = c.x - d.x, cdy = c.y - d.y;
  double ad2 = adx * adx + ady * ady;
  double bd2 = bdx * bdx + bdy * bdy;
  double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
         ad2 * (bdx * cdy - cdx * bdy);
}

inline double squared_distance(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// Circumcenter of (non-degenerate) triangle abc.
inline Point circumcenter(const Point& a, const Point& b, const Point& c) {
  double d = 2.0 * orient2d(a, b, c);
  double a2 = a.x * a.x + a.y * a.y;
  double b2 = b.x * b.x + b.y * b.y;
  double c2 = c.x * c.x + c.y * c.y;
  return Point{(a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
               (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
}

// Ruppert quality measure: circumradius / shortest edge. Large values
// mean skinny triangles (ratio B corresponds to min angle
// arcsin(1/(2B))).
inline double radius_edge_ratio(const Point& a, const Point& b,
                                const Point& c) {
  Point cc = circumcenter(a, b, c);
  double r2 = squared_distance(cc, a);
  double e2 = std::min({squared_distance(a, b), squared_distance(b, c),
                        squared_distance(c, a)});
  return std::sqrt(r2 / e2);
}

}  // namespace rpb::geom
