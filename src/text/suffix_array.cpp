#include "text/suffix_array.h"

#include <array>
#include <bit>

#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "seq/integer_sort.h"
#include "seq/mark_present.h"
#include "support/arena.h"
#include "support/simd.h"

namespace rpb::text {
namespace {

struct Item {
  u64 key;
  u32 suffix;
};

}  // namespace

std::vector<u32> suffix_array(std::span<const u8> text, AccessMode mode) {
  const std::size_t n = text.size();
  std::vector<u32> sa(n);
  if (n == 0) return sa;
  OBS_SCOPE("suffix_array");

  // rank values stay < n + 2 throughout; keys pack two of them.
  const u64 base = static_cast<u64>(n) + 2;
  const int rank_bits = 64 - std::countl_zero(base - 1);
  const int key_bits = 2 * rank_bits;

  // All rounds share one leased workspace: rank/next_rank/items are
  // fully written before any read, and flags — previously a fresh
  // std::vector<u64>(n) allocated inside every rank-doubling round —
  // is hoisted here so each round reuses the same buffer in every
  // arena mode.
  support::ArenaLease arena;
  auto rank = uninit_buf<u32>(arena, n);
  auto next_rank = uninit_buf<u32>(arena, n);
  auto items = uninit_buf<Item>(arena, n);
  auto flags = uninit_buf<u64>(arena, n);

  // Derive dense ranks from the current sorted items (flag boundaries,
  // scan), returning the number of boundaries (= max dense rank).
  auto rebuild_ranks = [&] {
    // Vector-compare adjacent keys into boundary flags (stride-2 word
    // view of the Item array: the key is word 0 of each 16-byte
    // record), then a blocked scan turns flags into dense ranks. The
    // downsweep consumes flags[j] as "j's own boundary" while it
    // accumulates, so the old second recompare of the key array — and
    // the prefix writeback into flags — are both gone.
    const u64* base = reinterpret_cast<const u64*>(items.data());
    const auto [block, num_blocks] = par::detail::block_geom(n);
    support::ArenaScope scope(arena);
    ArenaVec<u64> sums(arena, num_blocks);
    sched::parallel_for(
        0, num_blocks,
        [&, block = block](std::size_t b) {
          std::size_t lo = b * block, hi = std::min(n, lo + block);
          sums[b] =
              simd::flag_adjacent_neq_u64(base, 2, lo, hi, flags.data());
        },
        1);
    u64 max_rank = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      u64 c = sums[b];
      sums[b] = max_rank;
      max_rank += c;
    }
    sched::parallel_for(
        0, num_blocks,
        [&, block = block](std::size_t b) {
          std::size_t lo = b * block, hi = std::min(n, lo + block);
          u64 acc = sums[b];
          for (std::size_t j = lo; j < hi; ++j) {
            acc += flags[j];
            next_rank[items[j].suffix] = static_cast<u32>(acc);
          }
        },
        1);
    std::swap(rank, next_rank);
    return max_rank;  // number of boundaries = max dense rank
  };

  auto sort_round = [&](std::size_t k) {
    OBS_SCOPE("suffix_array.round");
    // Ranks are dense (< n) after the initial round, so the base-(n+2)
    // packing is collision-free.
    sched::parallel_for(0, n, [&](std::size_t i) {
      u64 r2 = i + k < n ? static_cast<u64>(rank[i + k]) + 1 : 0;
      items[i] = Item{static_cast<u64>(rank[i]) * base + r2,
                      static_cast<u32>(i)};
    });
    // Word0Key declares the "u64 key at byte 0" layout, so the radix
    // counting pass extracts digits vector-wide (stride-2 word view).
    seq::integer_sort_by(items.span(), key_bits, seq::Word0Key{}, mode);
    return rebuild_ranks();
  };

  // Alphabet compression (the paper's Sec. 5.2 "benign race" snippet
  // lives here): mark the distinct characters in parallel — same-value
  // AW writes, expressed with relaxed atomics as the paper recommends —
  // then scan to a dense character rank.
  std::array<u8, 256> present = seq::mark_present(
      text, mode == AccessMode::kUnchecked ? AccessMode::kUnchecked
                                           : AccessMode::kAtomic);
  std::array<u32, 256> char_rank{};
  u32 alphabet = 0;
  for (std::size_t c = 0; c < 256; ++c) {
    char_rank[c] = alphabet;
    alphabet += present[c];
  }

  // Initial round: sort by the compressed character and densify.
  sched::parallel_for(0, n, [&](std::size_t i) {
    items[i] = Item{static_cast<u64>(char_rank[text[i]]), static_cast<u32>(i)};
  });
  seq::integer_sort_by(items.span(), 8, seq::Word0Key{}, mode);
  u64 distinct = rebuild_ranks();

  std::size_t k = 1;
  while (distinct + 1 < n && k < n) {
    distinct = sort_round(k);
    k *= 2;
  }
  sched::parallel_for(0, n,
                      [&](std::size_t j) { sa[j] = items[j].suffix; });
  return sa;
}

void inverse_permutation_into(std::span<const u32> sa, std::span<u32> out) {
  sched::parallel_for(0, sa.size(), [&](std::size_t j) {
    out[sa[j]] = static_cast<u32>(j);
  });
}

std::vector<u32> inverse_permutation(std::span<const u32> sa) {
  std::vector<u32> inv(sa.size());
  inverse_permutation_into(sa, std::span<u32>(inv));
  return inv;
}

const census::BenchmarkCensus& sa_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "sa",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "initial character reads"},
          {Pattern::kStride, 5, "key build (rank pair reads), fused boundary scan, rank write, sa copy"},
          {Pattern::kBlock, 2, "radix digit counts + cursors"},
          {Pattern::kDC, 1, "sort recursion"},
          {Pattern::kSngInd, 2, "radix scatter + rank scatter by suffix"},
          {Pattern::kAW, 1, "distinct-character marking (same-value writes)"},
      }};
  return c;
}

}  // namespace rpb::text
