// Synthetic "wiki"-like corpus generator: Zipf-distributed vocabulary
// assembled into space-separated words, with an optional planted
// repeated passage so lrs answers are verifiable (DESIGN.md
// "Substitutions" — stands in for the paper's Wikipedia input).
#pragma once

#include <cstddef>
#include <vector>

#include "support/defs.h"

namespace rpb::text {

// Roughly n bytes of text over printable ASCII (no NUL bytes, so a 0
// sentinel is always safe for suffix-array/BWT use).
// If planted_repeat_len > 0, one passage of that length appears at two
// far-apart positions, making it (almost surely) the longest repeat.
std::vector<u8> make_corpus(std::size_t n, u64 seed,
                            std::size_t planted_repeat_len = 0);

}  // namespace rpb::text
