// sa benchmark: suffix array by parallel prefix doubling. Each round
// packs (rank[i], rank[i+k]) into one integer key, radix-sorts the
// suffixes (whose scatter is the paper's SngInd site — `mode` selects
// unchecked vs checked, Fig. 5(a)), and rebuilds ranks with a
// flag-and-scan.
#pragma once

#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "support/defs.h"

namespace rpb::text {

// Lexicographic order of all suffixes of text (no sentinel needed; the
// shorter suffix sorts first on ties, per the usual convention).
std::vector<u32> suffix_array(std::span<const u8> text,
                              AccessMode mode = AccessMode::kUnchecked);

// Rank (inverse) array: rank[i] = position of suffix i in the SA.
std::vector<u32> inverse_permutation(std::span<const u32> sa);

// Allocation-free core of inverse_permutation: out[sa[j]] = j, for
// callers that lease their own scratch (out.size() must equal
// sa.size()).
void inverse_permutation_into(std::span<const u32> sa, std::span<u32> out);

const census::BenchmarkCensus& sa_census();

}  // namespace rpb::text
