#include "text/corpus.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/prng.h"

namespace rpb::text {
namespace {

constexpr std::size_t kVocabulary = 8192;

// Deterministic pseudo-word for vocabulary slot w: length 2..11,
// lowercase letters.
std::string make_word(u64 w, const Rng& rng) {
  std::size_t len = 2 + rng.next(w * 2 + 1, 10);
  std::string word(len, 'a');
  for (std::size_t i = 0; i < len; ++i) {
    word[i] = static_cast<char>('a' + rng.next(w * 31 + i, 26));
  }
  return word;
}

}  // namespace

std::vector<u8> make_corpus(std::size_t n, u64 seed,
                            std::size_t planted_repeat_len) {
  Rng rng(seed);
  Rng word_rng = rng.fork(1);

  std::vector<std::string> vocab(kVocabulary);
  for (std::size_t w = 0; w < kVocabulary; ++w) {
    vocab[w] = make_word(w, word_rng);
  }

  // Zipf sampling via inverse-power transform of a uniform draw:
  // rank ~ u^(-1/s) gives a heavy head like natural language.
  std::vector<u8> out;
  out.reserve(n + 16);
  u64 draw = 0;
  while (out.size() < n) {
    double u = rng.uniform(draw++);
    double r = std::pow(1.0 - u, -1.25);  // s ~ 0.8 Zipf-ish tail
    auto rank = static_cast<std::size_t>(r) % kVocabulary;
    const std::string& word = vocab[rank];
    out.insert(out.end(), word.begin(), word.end());
    out.push_back(' ');
  }
  out.resize(n);

  if (planted_repeat_len > 0 && n > 4 * planted_repeat_len + 8) {
    // Copy a passage from the first quarter into the last quarter.
    std::size_t src = 1 + rng.next(~u64{7}, n / 4 - planted_repeat_len - 1);
    std::size_t dst =
        n / 2 + rng.next(~u64{8}, n / 4 - planted_repeat_len - 1);
    std::copy_n(out.begin() + static_cast<std::ptrdiff_t>(src),
                planted_repeat_len,
                out.begin() + static_cast<std::ptrdiff_t>(dst));
  }
  return out;
}

}  // namespace rpb::text
