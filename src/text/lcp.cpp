#include "text/lcp.h"

#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "text/suffix_array.h"

namespace rpb::text {

std::vector<u32> lcp_kasai(std::span<const u8> text, std::span<const u32> sa) {
  const std::size_t n = text.size();
  std::vector<u32> lcp(n, 0);
  if (n == 0) return lcp;
  // rank is scratch (every slot written by the inverse scatter), so it
  // comes from the workspace arena rather than a zero-filled vector.
  support::ArenaLease arena;
  auto rank = uninit_buf<u32>(arena, n);
  inverse_permutation_into(sa, rank.span());
  u32 h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rank[i] == 0) {
      h = 0;
      continue;
    }
    std::size_t j = sa[rank[i] - 1];
    while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
    lcp[rank[i]] = h;
    if (h > 0) --h;
  }
  return lcp;
}

LrsResult longest_repeated_substring(std::span<const u8> text,
                                     AccessMode mode) {
  const std::size_t n = text.size();
  LrsResult result;
  if (n < 2) return result;
  std::vector<u32> sa = suffix_array(text, mode);
  std::vector<u32> lcp = lcp_kasai(text, sa);

  // Parallel argmax over the LCP array (ties -> smallest index, so the
  // result is deterministic).
  struct Best {
    u32 length = 0;
    u32 index = 0;
  };
  Best best = sched::parallel_reduce_range(
      1, n, Best{},
      [&](std::size_t lo, std::size_t hi) {
        Best acc;
        for (std::size_t j = lo; j < hi; ++j) {
          if (lcp[j] > acc.length) acc = Best{lcp[j], static_cast<u32>(j)};
        }
        return acc;
      },
      [](Best a, Best b) {
        if (a.length != b.length) return a.length > b.length ? a : b;
        return a.index <= b.index ? a : b;
      });

  result.length = best.length;
  if (best.length > 0) {
    result.position_a = sa[best.index - 1];
    result.position_b = sa[best.index];
  }
  return result;
}

const census::BenchmarkCensus& lrs_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "lrs",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 2, "suffix compares + lcp argmax reads"},
          {Pattern::kStride, 5, "key build, boundary flags, rank write, inverse perm, sa copy"},
          {Pattern::kBlock, 2, "radix digit counts + cursors"},
          {Pattern::kDC, 2, "sort recursion + argmax reduction tree"},
          {Pattern::kSngInd, 2, "radix scatter + rank scatter by suffix"},
          {Pattern::kAW, 1, "distinct-character marking (same-value writes)"},
      }};
  return c;
}

}  // namespace rpb::text
