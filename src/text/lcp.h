// lrs benchmark: longest repeated substring = the maximum LCP between
// lexicographically adjacent suffixes. LCP via Kasai's algorithm (the
// serial tail PBBS also pays), argmax via parallel reduction.
#pragma once

#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "support/defs.h"

namespace rpb::text {

// lcp[j] = longest common prefix of suffixes sa[j-1] and sa[j]
// (lcp[0] = 0).
std::vector<u32> lcp_kasai(std::span<const u8> text, std::span<const u32> sa);

struct LrsResult {
  u32 length = 0;
  u32 position_a = 0;  // starts of the two occurrences
  u32 position_b = 0;
};

// Longest repeated substring; mode feeds through to the suffix sort's
// SngInd scatter (Fig. 5(a)'s lrs bar).
LrsResult longest_repeated_substring(std::span<const u8> text,
                                     AccessMode mode = AccessMode::kUnchecked);

const census::BenchmarkCensus& lrs_census();

}  // namespace rpb::text
