// bw benchmark: Burrows–Wheeler transform encode + decode.
//
// Encode sorts the rotations of text+sentinel via the suffix array.
// Decode is the benchmark proper (as in PBBS): it builds the LF
// permutation from per-block character counts (Block + scan), inverts
// it with a SngInd scatter — the mode-controlled par_ind_iter_mut site
// of Fig. 5(a) — fills the first-column runs via RngInd, and finishes
// with the (serial) cycle chase.
#pragma once

#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "support/defs.h"

namespace rpb::text {

// BWT of text + implicit 0 sentinel; output length is text.size() + 1
// and contains exactly one 0 byte. Input must not contain 0 bytes.
std::vector<u8> bwt_encode(std::span<const u8> text,
                           AccessMode mode = AccessMode::kUnchecked);

// Inverse transform; returns the original text (sentinel removed).
std::vector<u8> bwt_decode(std::span<const u8> bwt,
                           AccessMode mode = AccessMode::kUnchecked);

// Extension (see DESIGN.md): fully parallel decode. The serial cycle
// chase is replaced by pointer doubling — O(n log k) extra work to find
// k segment entry rows, then k independent chases (Block writes). Loses
// to the serial chase at 1 thread, wins once cores outnumber the
// doubling overhead; `bench/ablation_bwt_chase` quantifies the
// crossover. num_segments 0 picks 4x the worker count.
std::vector<u8> bwt_decode_parallel_chase(
    std::span<const u8> bwt, AccessMode mode = AccessMode::kUnchecked,
    std::size_t num_segments = 0);

const census::BenchmarkCensus& bw_census();

}  // namespace rpb::text
