#include "text/bwt.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/atomics.h"
#include "core/patterns.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "text/suffix_array.h"

namespace rpb::text {

std::vector<u8> bwt_encode(std::span<const u8> text, AccessMode mode) {
  OBS_SCOPE("bwt.encode");
  const std::size_t n = text.size();
  support::ArenaLease arena;
  auto with_sentinel = uninit_buf<u8>(arena, n + 1);
  sched::parallel_for(0, n, [&](std::size_t i) {
    if (text[i] == 0) throw std::invalid_argument("text contains NUL");
    with_sentinel[i] = text[i];
  });
  with_sentinel[n] = 0;

  std::vector<u32> sa = suffix_array(with_sentinel.cspan(), mode);
  std::vector<u8> bwt(n + 1);
  sched::parallel_for(0, n + 1, [&](std::size_t j) {
    u32 p = sa[j];
    bwt[j] = p == 0 ? with_sentinel[n] : with_sentinel[p - 1];
  });
  return bwt;
}

namespace {

// Shared decode machinery: the psi permutation (forward-walk successor
// rows) and the first column of the sorted rotation matrix. Both live
// in the caller's arena lease, which must outlive the tables.
struct DecodeTables {
  UninitBuf<u64> psi;
  UninitBuf<u8> first_col;
};

DecodeTables build_decode_tables(std::span<const u8> bwt, AccessMode mode,
                                 support::ArenaLease& arena);

}  // namespace

std::vector<u8> bwt_decode(std::span<const u8> bwt, AccessMode mode) {
  const std::size_t n = bwt.size();
  if (n == 0) return {};
  support::ArenaLease arena;
  DecodeTables tables = build_decode_tables(bwt, mode, arena);

  // Serial cycle chase from the sentinel row (row 0): psi steps walk
  // the text forward.
  std::vector<u8> out(n - 1);
  u64 row = tables.psi[0];
  for (std::size_t t = 0; t + 1 < n; ++t) {
    out[t] = tables.first_col[row];
    row = tables.psi[row];
  }
  return out;
}

std::vector<u8> bwt_decode_parallel_chase(std::span<const u8> bwt,
                                          AccessMode mode,
                                          std::size_t num_segments) {
  const std::size_t n = bwt.size();
  if (n == 0) return {};
  OBS_SCOPE("bwt.decode_chase");
  const std::size_t out_len = n - 1;
  support::ArenaLease arena;
  DecodeTables tables = build_decode_tables(bwt, mode, arena);
  if (num_segments == 0) {
    num_segments = 4 * sched::current_pool().num_threads();
  }
  num_segments = std::max<std::size_t>(1, std::min(num_segments, out_len));
  const std::size_t seg_len = (out_len + num_segments - 1) / num_segments;

  // Segment j outputs t in [j*seg_len, ...) and needs its entry row
  // row_t = psi^(t+1)(0). Find all entry rows at once by pointer
  // doubling: at level l we hold jump = psi^(2^l) and advance every
  // segment whose remaining step count has bit l set.
  auto entry = zeroed_buf<u64>(arena, num_segments);
  auto steps = uninit_buf<u64>(arena, num_segments);
  u64 max_steps = 0;
  for (std::size_t j = 0; j < num_segments; ++j) {
    steps[j] = static_cast<u64>(j) * seg_len + 1;
    max_steps = std::max(max_steps, steps[j]);
  }
  auto jump = uninit_buf<u64>(arena, n);
  std::memcpy(jump.data(), tables.psi.data(), n * sizeof(u64));
  auto jump_next = uninit_buf<u64>(arena, n);
  for (int level = 0; (u64{1} << level) <= max_steps; ++level) {
    for (std::size_t j = 0; j < num_segments; ++j) {
      if (steps[j] & (u64{1} << level)) entry[j] = jump[entry[j]];
    }
    if ((u64{2} << level) > max_steps) break;  // last level: skip squaring
    sched::parallel_for(0, n,
                        [&](std::size_t i) { jump_next[i] = jump[jump[i]]; });
    std::swap(jump, jump_next);
  }

  // Independent chases: each segment owns a disjoint output block.
  std::vector<u8> out(out_len);
  sched::parallel_for(
      0, num_segments,
      [&](std::size_t j) {
        std::size_t lo = j * seg_len;
        std::size_t hi = std::min(out_len, lo + seg_len);
        u64 row = entry[j];
        for (std::size_t t = lo; t < hi; ++t) {
          out[t] = tables.first_col[row];
          row = tables.psi[row];
        }
      },
      1);
  return out;
}

namespace {

DecodeTables build_decode_tables(std::span<const u8> bwt, AccessMode mode,
                                 support::ArenaLease& arena) {
  const std::size_t n = bwt.size();
  constexpr std::size_t kAlphabet = 256;

  // Per-block character counts (Block), then a transpose scan giving
  // both the global C array and each block's per-char occ offsets.
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  auto counts = zeroed_buf<u64>(arena, kAlphabet * num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          ++counts[static_cast<std::size_t>(bwt[i]) * num_blocks + b];
        }
      },
      1);
  // Allocation-free scan: block sums lease from the arena pool.
  par::scan_exclusive_sum(counts.span());

  // First-column boundaries C[c] = start row of character c.
  auto c_bounds = uninit_buf<u64>(arena, kAlphabet + 1);
  for (std::size_t c = 0; c < kAlphabet; ++c) {
    c_bounds[c] = counts[c * num_blocks];
  }
  c_bounds[kAlphabet] = n;

  // LF mapping: lf[i] = C[bwt[i]] + occ(bwt[i], i). A permutation of
  // [0, n) by construction.
  auto lf = uninit_buf<u64>(arena, n);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        u64 cursor[kAlphabet];
        for (std::size_t c = 0; c < kAlphabet; ++c) {
          cursor[c] = counts[c * num_blocks + b];
        }
        for (std::size_t i = lo; i < hi; ++i) {
          lf[i] = cursor[bwt[i]]++;
        }
      },
      1);

  // psi = LF^-1 via the SngInd scatter: kChecked validates lf is a
  // permutation (fused with the scatter under the default check mode);
  // kAtomic tags the stores Relaxed instead.
  auto psi = uninit_buf<u64>(arena, n);
  const bool atomic_stores = mode == AccessMode::kAtomic;
  par::par_ind_iter_mut(
      psi.span(), lf.cspan(),
      [atomic_stores](std::size_t i, u64& slot) {
        if (atomic_stores) {
          relaxed_store(&slot, static_cast<u64>(i));
        } else {
          slot = static_cast<u64>(i);
        }
      },
      mode);

  // First column F: fill each character's row range (RngInd). The 256
  // alphabet chunks are mostly tiny (many characters never occur), so
  // grain 0 lets the scheduler batch consecutive chunks instead of
  // paying a fork per character.
  auto first_col = uninit_buf<u8>(arena, n);
  par::par_ind_chunks_mut(
      first_col.span(), c_bounds.cspan(),
      [](std::size_t c, std::span<u8> chunk) {
        for (u8& v : chunk) v = static_cast<u8>(c);
      },
      mode == AccessMode::kChecked ? AccessMode::kChecked
                                   : AccessMode::kUnchecked,
      /*grain=*/0);

  return DecodeTables{std::move(psi), std::move(first_col)};
}

}  // namespace

const census::BenchmarkCensus& bw_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "bw",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "first-column boundary reads"},
          {Pattern::kStride, 4, "bwt reads (x2), lf write, psi gather"},
          {Pattern::kBlock, 2, "per-block char counts + cursors"},
          {Pattern::kDC, 1, "rotation sort recursion (encode)"},
          {Pattern::kSngInd, 1, "psi inversion scatter"},
          {Pattern::kRngInd, 1, "first-column run fill"},
      }};
  return c;
}

}  // namespace rpb::text
