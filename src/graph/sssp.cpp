#include "graph/sssp.h"

#include <queue>

#include "core/atomics.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/mq_executor.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/env.h"

namespace rpb::graph {
namespace {

struct Task {
  u64 dist;
  VertexId vertex;
};

struct TaskKey {
  u64 operator()(const Task& t) const { return t.dist; }
};

}  // namespace

std::vector<u64> sssp_multiqueue(const Graph& g, VertexId source,
                                 std::size_t num_threads,
                                 std::size_t queue_multiplier) {
  if (num_threads == 0) num_threads = default_threads();
  std::vector<u64> dist(g.num_vertices(), kInfDist);
  dist[source] = 0;

  sched::MqExecutor<Task, TaskKey> executor(num_threads, queue_multiplier);
  executor.run(
      [&](auto& handle) { handle.push(Task{0, source}); },
      [&](const Task& task, auto& handle) {
        if (relaxed_load(&dist[task.vertex]) < task.dist) return;  // stale
        auto nbrs = g.neighbors(task.vertex);
        auto wts = g.weights_of(task.vertex);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          u64 candidate = task.dist + wts[k];
          if (write_min(&dist[nbrs[k]], candidate)) {
            handle.push(Task{candidate, nbrs[k]});
          }
        }
      });
  return dist;
}

std::vector<u64> sssp_delta_stepping(const Graph& g, VertexId source,
                                     u64 delta) {
  const std::size_t n = g.num_vertices();
  std::vector<u64> dist(n, kInfDist);
  if (n == 0) return dist;
  dist[source] = 0;
  if (delta == 0) {
    // Heuristic: average edge weight (so a bucket covers ~one hop).
    u64 total_w = sched::parallel_reduce_range(
        0, n, u64{0},
        [&](std::size_t lo, std::size_t hi) {
          u64 acc = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            for (u32 w : g.weights_of(static_cast<VertexId>(v))) acc += w;
          }
          return acc;
        },
        [](u64 a, u64 b) { return a + b; });
    delta = std::max<u64>(1, g.num_edges() ? total_w / g.num_edges() : 1);
  }

  u64 bucket = 0;
  std::vector<VertexId> frontier{source};
  // A vertex re-enters the frontier whenever its distance improves into
  // the current bucket; `in_frontier` dedupes within a sub-round.
  std::vector<u8> in_frontier(n, 0);
  in_frontier[source] = 1;
  // Bucket-membership mask scratch: bit-packed (64 vertices per word)
  // and leased once, rewound per bucket advance — replaces the fresh
  // zero-filled vector<u8>(n) the old code allocated per bucket.
  support::ArenaLease arena;
  for (;;) {
    // Process the current bucket to fixpoint (light edges can reinsert
    // vertices into the same bucket).
    while (!frontier.empty()) {
      std::vector<std::vector<VertexId>> found(frontier.size());
      sched::parallel_for(0, frontier.size(), [&](std::size_t f) {
        VertexId v = frontier[f];
        relaxed_store(&in_frontier[v], u8{0});
        u64 dv = relaxed_load(&dist[v]);
        if (dv >= (bucket + 1) * delta) return;  // moved to a later bucket
        auto nbrs = g.neighbors(v);
        auto wts = g.weights_of(v);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          u64 candidate = dv + wts[k];
          if (write_min(&dist[nbrs[k]], candidate) &&
              candidate < (bucket + 1) * delta) {
            // Improved into the current bucket: reprocess this round.
            u8 expected = 0;
            if (std::atomic_ref<u8>(in_frontier[nbrs[k]])
                    .compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
              found[f].push_back(nbrs[k]);
            }
          }
        }
      });
      std::vector<VertexId> next;
      for (auto& part : found) {
        next.insert(next.end(), part.begin(), part.end());
      }
      frontier = std::move(next);
    }
    // Advance to the next non-empty bucket.
    u64 best = sched::parallel_reduce_range(
        0, n, kInfDist,
        [&](std::size_t lo, std::size_t hi) {
          u64 acc = kInfDist;
          for (std::size_t v = lo; v < hi; ++v) {
            if (dist[v] != kInfDist && dist[v] >= (bucket + 1) * delta) {
              acc = std::min(acc, dist[v]);
            }
          }
          return acc;
        },
        [](u64 a, u64 b) { return std::min(a, b); });
    if (best == kInfDist) break;
    bucket = best / delta;
    // Gather everything settled-into-or-pending in the new bucket:
    // bit-packed membership mask, popcount-scanned into the frontier.
    support::ArenaScope advance(arena);
    auto words = uninit_buf<u64>(arena, par::bit_words(n));
    par::fill_bit_flags(words.span(), n, [&](std::size_t v) {
      return dist[v] != kInfDist && dist[v] / delta == bucket;
    });
    auto members = par::pack_index_bits<VertexId>(arena, words.cspan(), n);
    frontier.assign(members.begin(), members.end());
    sched::parallel_for(0, members.size(),
                        [&](std::size_t i) { in_frontier[members[i]] = 1; });
  }
  return dist;
}

std::vector<u64> sssp_reference(const Graph& g, VertexId source) {
  std::vector<u64> dist(g.num_vertices(), kInfDist);
  dist[source] = 0;
  using Item = std::pair<u64, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    auto nbrs = g.neighbors(v);
    auto wts = g.weights_of(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      u64 candidate = d + wts[k];
      if (candidate < dist[nbrs[k]]) {
        dist[nbrs[k]] = candidate;
        heap.push({candidate, nbrs[k]});
      }
    }
  }
  return dist;
}

const census::BenchmarkCensus& sssp_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "sssp",
      census::Dispatch::kDynamic,
      {
          {Pattern::kRO, 2, "neighbor + weight scan"},
          {Pattern::kAW, 2, "distance write_min + MultiQueue push/pop"},
      }};
  return c;
}

}  // namespace rpb::graph
