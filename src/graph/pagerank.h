// PageRank — the paper's named example of overlapping conflicting
// accesses in graph analytics (Sec. 5.2: "common in graph algorithms
// like push-based PageRank"). Two expressions of the same iteration:
//
//  * push: each vertex scatters rank/degree contributions to its
//    neighbors' accumulators — overlapping AW writes, synchronized
//    with relaxed atomic fetch_add (no unsynchronized expression
//    exists).
//  * pull: each vertex gathers from its neighbors and writes only its
//    own accumulator — a Stride expression, fearless by construction.
//
// On the symmetric graphs used here both compute identical iterates,
// which the tests exploit.
#pragma once

#include <vector>

#include "core/census.h"
#include "graph/csr.h"

namespace rpb::graph {

struct PageRankConfig {
  double damping = 0.85;
  std::size_t max_iterations = 100;
  // Stop when the *mean per-vertex* change between iterations drops
  // below this (L1 delta / |V|, so the bound is size-independent).
  double tolerance = 1e-9;
};

struct PageRankResult {
  std::vector<double> rank;    // sums to num_vertices (PBBS convention)
  std::size_t iterations = 0;
  double final_delta = 0;  // mean per-vertex L1 change of the last step
};

PageRankResult pagerank_push(const Graph& g,
                             const PageRankConfig& config = PageRankConfig());
PageRankResult pagerank_pull(const Graph& g,
                             const PageRankConfig& config = PageRankConfig());

}  // namespace rpb::graph
