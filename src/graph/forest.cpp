#include "graph/forest.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "core/reservation.h"
#include "core/spec_for.h"
#include "graph/union_find.h"
#include "sched/parallel.h"
#include "seq/integer_sort.h"

namespace rpb::graph {
namespace {

// PBBS unionFindStep (the MST/ST variant): reserve *both* component
// roots, but commit while holding *either* — the held root is linked
// under the other. Holding either root keeps hub components parallel
// (spokes into a giant component lose its root but still hold their
// own), while reserving both keeps the result exactly Kruskal: an edge
// whose endpoints are joined by a pending lighter path always loses
// both roots to the path's end edges. Same-round links cannot cycle —
// each link's source is an exclusively held root, and a cycle of held
// roots would force a cyclically decreasing index order.
struct UnionFindStep {
  std::span<const Edge> edges;
  UnionFind& uf;
  std::vector<par::Reservation>& r;
  std::vector<std::pair<VertexId, VertexId>>& roots;  // reserve-time roots
  std::vector<std::atomic<u64>>& out;
  std::atomic<std::size_t>& out_count;

  bool reserve(std::size_t i) {
    const Edge& e = edges[i];
    VertexId ru = uf.find(e.u);
    VertexId rv = uf.find(e.v);
    if (ru == rv) return false;  // already connected: drop forever
    if (ru > rv) std::swap(ru, rv);
    roots[i] = {ru, rv};
    r[ru].reserve(static_cast<i64>(i));
    r[rv].reserve(static_cast<i64>(i));
    return true;
  }

  bool commit(std::size_t i) {
    auto [ru, rv] = roots[i];
    bool hold_u = r[ru].check(static_cast<i64>(i));
    bool hold_v = r[rv].check(static_cast<i64>(i));
    if (!hold_u && !hold_v) return false;
    if (hold_v) {
      uf.link_root(rv, ru);  // rv held exclusively: re-parent it
      r[rv].reset();
      if (hold_u) r[ru].reset();
    } else {
      uf.link_root(ru, rv);
      r[ru].reset();
    }
    out[out_count.fetch_add(1, std::memory_order_relaxed)].store(
        i, std::memory_order_relaxed);
    return true;
  }
};

ForestResult forest_by_reservations(std::size_t num_vertices,
                                    std::span<const Edge> edges,
                                    std::size_t round_size) {
  if (round_size == 0) {
    round_size = std::max<std::size_t>(1024, edges.size() / 20 + 1);
  }
  UnionFind uf(num_vertices);
  std::vector<par::Reservation> reservations(num_vertices);
  std::vector<std::pair<VertexId, VertexId>> roots(edges.size());
  std::vector<std::atomic<u64>> out(num_vertices == 0 ? 1 : num_vertices);
  std::atomic<std::size_t> out_count{0};

  UnionFindStep step{edges, uf, reservations, roots, out, out_count};
  par::speculative_for(step, 0, edges.size(), round_size);

  ForestResult result;
  std::size_t k = out_count.load();
  result.edges.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.edges[i] = out[i].load(std::memory_order_relaxed);
    result.total_weight += edges[result.edges[i]].weight;
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

}  // namespace

ForestResult spanning_forest(std::size_t num_vertices,
                             std::span<const Edge> edges,
                             std::size_t round_size) {
  return forest_by_reservations(num_vertices, edges, round_size);
}

ForestResult minimum_spanning_forest(std::size_t num_vertices,
                                     std::span<const Edge> edges,
                                     std::size_t round_size) {
  // Kruskal order: sort edge indices by (weight, index) — weight in the
  // high bits so one 64-bit radix sort gives the whole order.
  std::vector<u64> order(edges.size());
  sched::parallel_for(0, edges.size(), [&](std::size_t i) {
    order[i] = (static_cast<u64>(edges[i].weight) << 32) | i;
  });
  seq::integer_sort(order, 64, AccessMode::kUnchecked);

  std::vector<Edge> sorted(edges.size());
  sched::parallel_for(0, edges.size(), [&](std::size_t i) {
    sorted[i] = edges[order[i] & 0xffffffffu];
  });

  ForestResult local =
      forest_by_reservations(num_vertices, std::span<const Edge>(sorted),
                             round_size);
  // Map back to original edge indices.
  ForestResult result;
  result.total_weight = local.total_weight;
  result.edges.resize(local.edges.size());
  sched::parallel_for(0, local.edges.size(), [&](std::size_t i) {
    result.edges[i] = order[local.edges[i]] & 0xffffffffu;
  });
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

ForestResult kruskal_reference(std::size_t num_vertices,
                               std::span<const Edge> edges) {
  std::vector<u64> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](u64 a, u64 b) {
    return edges[a].weight < edges[b].weight;
  });
  UnionFind uf(num_vertices);
  ForestResult result;
  for (u64 i : order) {
    const Edge& e = edges[i];
    if (e.u != e.v && uf.unite(e.u, e.v)) {
      result.edges.push_back(i);
      result.total_weight += e.weight;
    }
  }
  std::sort(result.edges.begin(), result.edges.end());
  return result;
}

bool is_spanning_forest(std::size_t num_vertices, std::span<const Edge> edges,
                        const ForestResult& forest) {
  // Acyclicity: every accepted edge merges two distinct components.
  UnionFind uf(num_vertices);
  for (u64 i : forest.edges) {
    const Edge& e = edges[i];
    if (!uf.unite(e.u, e.v)) return false;
  }
  // Spanning: no remaining edge may connect two different components.
  for (const Edge& e : edges) {
    if (e.u != e.v && uf.find(e.u) != uf.find(e.v)) return false;
  }
  return true;
}

const census::BenchmarkCensus& sf_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "sf",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read edges"},
          {Pattern::kStride, 2, "round flags + retry pack"},
          {Pattern::kSngInd, 1, "gather retried edges"},
          {Pattern::kAW, 2, "union-find links + root reservations"},
      }};
  return c;
}

const census::BenchmarkCensus& msf_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "msf",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read edges"},
          {Pattern::kStride, 2, "kruskal key build + gather"},
          {Pattern::kBlock, 1, "radix digit counts"},
          {Pattern::kDC, 1, "sort recursion"},
          {Pattern::kSngInd, 2, "sorted scatter + retry gather"},
          {Pattern::kAW, 2, "union-find links + root reservations"},
      }};
  return c;
}

}  // namespace rpb::graph
