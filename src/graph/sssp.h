// sssp benchmark: single-source shortest paths with the MultiQueue
// (relaxed Dijkstra, the paper's second dynamic-dispatch benchmark).
#pragma once

#include <limits>
#include <vector>

#include "core/census.h"
#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

inline constexpr u64 kInfDist = std::numeric_limits<u64>::max();

// MultiQueue-scheduled SSSP distances. Requires a weighted graph.
std::vector<u64> sssp_multiqueue(const Graph& g, VertexId source,
                                 std::size_t num_threads = 0,
                                 std::size_t queue_multiplier = 4);

// Reference sequential Dijkstra for validation.
std::vector<u64> sssp_reference(const Graph& g, VertexId source);

// Delta-stepping SSSP (Meyer & Sanders): buckets of width delta
// processed frontier-style, with CAS-min relaxations. The static-ish
// dispatch counterpoint to the MultiQueue schedule; delta = 0 picks
// a heuristic (average edge weight).
std::vector<u64> sssp_delta_stepping(const Graph& g, VertexId source,
                                     u64 delta = 0);

const census::BenchmarkCensus& sssp_census();

}  // namespace rpb::graph
