#include "graph/pagerank.h"

#include <atomic>
#include <cmath>

#include "sched/parallel.h"

namespace rpb::graph {
namespace {

// Shared iteration driver: `spread` distributes the current ranks into
// `next` (zero-initialized); the driver handles damping, dangling mass
// and convergence.
template <class Spread>
PageRankResult iterate(const Graph& g, const PageRankConfig& config,
                       Spread spread) {
  const std::size_t n = g.num_vertices();
  PageRankResult result;
  result.rank.assign(n, 1.0);
  if (n == 0) return result;
  std::vector<double> next(n);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    sched::parallel_for(0, n, [&](std::size_t v) { next[v] = 0.0; });

    // Mass of vertices with no outgoing edges is spread uniformly.
    double dangling = sched::parallel_reduce_range(
        0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double acc = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            if (g.degree(static_cast<VertexId>(v)) == 0) acc += result.rank[v];
          }
          return acc;
        },
        [](double a, double b) { return a + b; });

    spread(result.rank, next);

    const double base =
        (1.0 - config.damping) + config.damping * dangling / static_cast<double>(n);
    double delta = sched::parallel_reduce_range(
        0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double acc = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            double updated = base + config.damping * next[v];
            acc += std::abs(updated - result.rank[v]);
            next[v] = updated;
          }
          return acc;
        },
        [](double a, double b) { return a + b; });

    std::swap(result.rank, next);
    result.iterations = iter + 1;
    result.final_delta = delta / static_cast<double>(n);
    if (result.final_delta < config.tolerance) break;
  }
  return result;
}

}  // namespace

PageRankResult pagerank_push(const Graph& g, const PageRankConfig& config) {
  return iterate(g, config, [&](const std::vector<double>& rank,
                                std::vector<double>& next) {
    sched::parallel_for(0, g.num_vertices(), [&](std::size_t v) {
      auto vid = static_cast<VertexId>(v);
      std::size_t deg = g.degree(vid);
      if (deg == 0) return;
      double share = rank[v] / static_cast<double>(deg);
      for (VertexId w : g.neighbors(vid)) {
        // The paper's AW site: neighbors overlap across tasks.
        std::atomic_ref<double>(next[w]).fetch_add(share,
                                                   std::memory_order_relaxed);
      }
    });
  });
}

PageRankResult pagerank_pull(const Graph& g, const PageRankConfig& config) {
  return iterate(g, config, [&](const std::vector<double>& rank,
                                std::vector<double>& next) {
    sched::parallel_for(0, g.num_vertices(), [&](std::size_t v) {
      auto vid = static_cast<VertexId>(v);
      double acc = 0;
      for (VertexId w : g.neighbors(vid)) {
        std::size_t deg = g.degree(w);
        if (deg > 0) acc += rank[w] / static_cast<double>(deg);
      }
      next[v] = acc;  // Stride: each task owns its own cell
    });
  });
}

}  // namespace rpb::graph
