#include "graph/generators.h"

#include <cmath>
#include <stdexcept>

#include "sched/parallel.h"
#include "support/prng.h"

namespace rpb::graph {

std::vector<Edge> rmat_edges(int scale, double avg_degree, double a, double b,
                             double c, u64 seed) {
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t m = static_cast<std::size_t>(static_cast<double>(n) * avg_degree);
  Rng rng(seed);
  std::vector<Edge> edges(m);
  sched::parallel_for(0, m, [&](std::size_t i) {
    u64 u = 0, v = 0;
    // One PRNG draw per level: 16 bits for quadrant choice + noise.
    for (int level = 0; level < scale; ++level) {
      u64 r = rng.bits(i * 64 + static_cast<u64>(level));
      double p = static_cast<double>(r & 0xffffff) / double(0x1000000);
      // +-10% multiplicative noise on a, b, c per level (SmoothKron-ish)
      double na = a * (0.9 + 0.2 * (static_cast<double>((r >> 24) & 0xff) / 255.0));
      double nb = b * (0.9 + 0.2 * (static_cast<double>((r >> 32) & 0xff) / 255.0));
      double nc = c * (0.9 + 0.2 * (static_cast<double>((r >> 40) & 0xff) / 255.0));
      double sum = na + nb + nc + (1 - a - b - c);
      na /= sum;
      nb /= sum;
      nc /= sum;
      u <<= 1;
      v <<= 1;
      if (p < na) {
        // top-left: no bits set
      } else if (p < na + nb) {
        v |= 1;
      } else if (p < na + nb + nc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    u32 w = static_cast<u32>(1 + rng.bits(i * 64 + 63) % 255);
    edges[i] = Edge{static_cast<VertexId>(u), static_cast<VertexId>(v), w};
  });
  return edges;
}

Graph make_rmat(int scale, u64 seed) {
  // Sample half the target degree: symmetrization doubles it (Table 2
  // reports |E|/|V| ~ 6 for rmat).
  auto edges = rmat_edges(scale, 3.0, 0.57, 0.19, 0.19, seed);
  return Graph::from_edges(std::size_t{1} << scale, edges, /*symmetrize=*/true,
                           /*weighted=*/true);
}

Graph make_link(int scale, u64 seed) {
  // Heavier diagonal -> more skew, like the hyperlink host graph's
  // power-law degrees; average degree ~20 (Table 2: 20.1).
  auto edges = rmat_edges(scale, 10.0, 0.50, 0.20, 0.20, seed);
  return Graph::from_edges(std::size_t{1} << scale, edges, /*symmetrize=*/true,
                           /*weighted=*/true);
}

Graph make_road(std::size_t rows, std::size_t cols, double keep, u64 seed) {
  Rng rng(seed);
  const std::size_t n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(static_cast<double>(2 * n) * keep));
  // Sequential generation (outside timed regions); deterministic.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t col = 0; col < cols; ++col) {
      u64 id = r * cols + col;
      u32 w_right = static_cast<u32>(1 + rng.bits(id * 4) % 255);
      u32 w_down = static_cast<u32>(1 + rng.bits(id * 4 + 1) % 255);
      if (col + 1 < cols && rng.uniform(id * 4 + 2) < keep) {
        edges.push_back(Edge{static_cast<VertexId>(id),
                             static_cast<VertexId>(id + 1), w_right});
      }
      if (r + 1 < rows && rng.uniform(id * 4 + 3) < keep) {
        edges.push_back(Edge{static_cast<VertexId>(id),
                             static_cast<VertexId>(id + cols), w_down});
      }
    }
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/true, /*weighted=*/true);
}

Graph make_named(const std::string& name, int scale, u64 seed) {
  if (name == "rmat") return make_rmat(scale, seed);
  if (name == "link") return make_link(scale, seed);
  if (name == "road") {
    // Same vertex budget as 2^scale, arranged as a tall grid.
    std::size_t n = std::size_t{1} << scale;
    std::size_t cols = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    std::size_t rows = n / cols;
    return make_road(rows, cols, 0.6, seed);
  }
  throw std::invalid_argument("unknown graph: " + name);
}

}  // namespace rpb::graph
