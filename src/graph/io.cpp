#include "graph/io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

namespace rpb::graph {
namespace {

constexpr u64 kMagic = 0x52504243'47525048ull;  // "RPBC GRPH"
constexpr u32 kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <class T>
void write_raw(std::FILE* f, const T* data, std::size_t count) {
  if (std::fwrite(data, sizeof(T), count, f) != count) {
    throw std::runtime_error("graph write failed");
  }
}

template <class T>
void read_raw(std::FILE* f, T* data, std::size_t count) {
  if (std::fread(data, sizeof(T), count, f) != count) {
    throw std::runtime_error("graph read failed (truncated?)");
  }
}

}  // namespace

void save_graph(const std::string& path, const Graph& g) {
  File file(std::fopen(path.c_str(), "wb"));
  if (!file) throw std::runtime_error("cannot open " + path + " for write");
  std::FILE* f = file.get();

  u64 header[4] = {kMagic, kVersion, g.num_vertices(), g.num_edges()};
  u64 weighted = g.weighted() ? 1 : 0;
  write_raw(f, header, 4);
  write_raw(f, &weighted, 1);
  write_raw(f, g.raw_offsets().data(), g.raw_offsets().size());
  write_raw(f, g.raw_targets().data(), g.raw_targets().size());
  if (g.weighted()) {
    write_raw(f, g.raw_weights().data(), g.raw_weights().size());
  }
}

Graph load_graph(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (!file) throw std::runtime_error("cannot open " + path);
  std::FILE* f = file.get();

  u64 header[4];
  read_raw(f, header, 4);
  if (header[0] != kMagic) throw std::runtime_error("not an rpb graph file");
  if (header[1] != kVersion) throw std::runtime_error("unsupported version");
  u64 n = header[2], m = header[3];
  u64 weighted = 0;
  read_raw(f, &weighted, 1);

  std::vector<u64> offsets(n + 1);
  read_raw(f, offsets.data(), offsets.size());
  std::vector<VertexId> targets(m);
  read_raw(f, targets.data(), targets.size());
  std::vector<u32> weights;
  if (weighted != 0) {
    weights.resize(m);
    read_raw(f, weights.data(), weights.size());
  }
  return Graph::from_csr(std::move(offsets), std::move(targets),
                         std::move(weights));
}

}  // namespace rpb::graph
