// Concurrent union-find with CAS root linking and path halving — the
// shared substrate of sf and msf (AW: find/unite from different tasks
// touch overlapping parent cells).
#pragma once

#include <vector>

#include "core/atomics.h"
#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<VertexId>(i);
  }

  // Thread-safe find with path halving. Halving stores are racy only
  // in the benign sense of writing valid ancestors; they use relaxed
  // atomics to stay defined behaviour.
  VertexId find(VertexId x) {
    VertexId p = relaxed_load(&parent_[x]);
    while (p != x) {
      VertexId gp = relaxed_load(&parent_[p]);
      relaxed_store(&parent_[x], gp);
      x = p;
      p = gp;
    }
    return x;
  }

  // Link-by-index: the larger root becomes a child of the smaller.
  // Returns true iff this call merged two components.
  bool unite(VertexId a, VertexId b) {
    for (;;) {
      VertexId ra = find(a);
      VertexId rb = find(b);
      if (ra == rb) return false;
      if (ra < rb) std::swap(ra, rb);  // ra is larger: link it downward
      if (cas(&parent_[ra], ra, rb)) return true;
      // Lost a race: ra is no longer a root; retry from the new roots.
      a = ra;
      b = rb;
    }
  }

  // Directly re-parent `child` (which the caller must know is a root it
  // holds exclusively, e.g. via a Reservation) under `parent`.
  void link_root(VertexId child, VertexId parent) {
    relaxed_store(&parent_[child], parent);
  }

  bool same(VertexId a, VertexId b) {
    for (;;) {
      VertexId ra = find(a);
      VertexId rb = find(b);
      if (ra == rb) return true;
      // ra is only a trustworthy answer if it is still a root.
      if (relaxed_load(&parent_[ra]) == ra) return false;
      a = ra;
      b = rb;
    }
  }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace rpb::graph
