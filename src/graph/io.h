// Graph serialization: a simple versioned binary CSR container so
// generated inputs can be saved once and reloaded by benches/examples.
#pragma once

#include <string>

#include "graph/csr.h"

namespace rpb::graph {

// Writes the CSR arrays to `path`; throws std::runtime_error on I/O
// failure.
void save_graph(const std::string& path, const Graph& g);

// Loads a graph written by save_graph; throws std::runtime_error on
// I/O failure or format mismatch.
Graph load_graph(const std::string& path);

}  // namespace rpb::graph
