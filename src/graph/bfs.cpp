#include "graph/bfs.h"

#include <algorithm>
#include <deque>

#include "core/atomics.h"
#include "sched/parallel.h"
#include "sched/mq_executor.h"
#include "support/env.h"

namespace rpb::graph {
namespace {

struct Task {
  u32 depth;
  VertexId vertex;
};

struct TaskKey {
  u64 operator()(const Task& t) const { return t.depth; }
};

}  // namespace

std::vector<u32> bfs_multiqueue(const Graph& g, VertexId source,
                                std::size_t num_threads,
                                std::size_t queue_multiplier) {
  if (num_threads == 0) num_threads = default_threads();
  std::vector<u32> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;

  sched::MqExecutor<Task, TaskKey> executor(num_threads, queue_multiplier);
  executor.run(
      [&](auto& handle) { handle.push(Task{0, source}); },
      [&](const Task& task, auto& handle) {
        // Stale task: a shorter path already claimed this vertex.
        if (relaxed_load(&dist[task.vertex]) < task.depth) return;
        u32 next_depth = task.depth + 1;
        for (VertexId w : g.neighbors(task.vertex)) {
          if (write_min(&dist[w], next_depth)) {
            handle.push(Task{next_depth, w});
          }
        }
      });
  return dist;
}

std::vector<u32> bfs_level_sync(const Graph& g, VertexId source) {
  std::vector<u32> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;
  std::vector<VertexId> frontier{source};
  u32 depth = 0;
  while (!frontier.empty()) {
    ++depth;
    // Per-vertex claim via write_min on the distance: exactly one
    // relaxer wins each newly discovered vertex.
    std::vector<std::vector<VertexId>> found(frontier.size());
    sched::parallel_for(0, frontier.size(), [&](std::size_t f) {
      for (VertexId w : g.neighbors(frontier[f])) {
        if (relaxed_load(&dist[w]) == kUnreached && write_min(&dist[w], depth)) {
          found[f].push_back(w);
        }
      }
    });
    // Flatten the per-task discoveries into the next frontier.
    std::vector<std::size_t> offsets(frontier.size() + 1, 0);
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      offsets[f + 1] = offsets[f] + found[f].size();
    }
    std::vector<VertexId> next(offsets.back());
    sched::parallel_for(0, frontier.size(), [&](std::size_t f) {
      std::copy(found[f].begin(), found[f].end(),
                next.begin() + static_cast<std::ptrdiff_t>(offsets[f]));
    });
    frontier = std::move(next);
  }
  return dist;
}

std::vector<u32> bfs_reference(const Graph& g, VertexId source) {
  std::vector<u32> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;
  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnreached) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

const census::BenchmarkCensus& bfs_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "bfs",
      census::Dispatch::kDynamic,
      {
          {Pattern::kRO, 1, "neighbor scan"},
          {Pattern::kAW, 2, "distance write_min + MultiQueue push/pop"},
      }};
  return c;
}

}  // namespace rpb::graph
