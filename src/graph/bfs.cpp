#include "graph/bfs.h"

#include <algorithm>
#include <deque>
#include <span>

#include "core/atomics.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "sched/mq_executor.h"
#include "support/arena.h"
#include "support/env.h"

namespace rpb::graph {
namespace {

struct Task {
  u32 depth;
  VertexId vertex;
};

struct TaskKey {
  u64 operator()(const Task& t) const { return t.depth; }
};

}  // namespace

std::vector<u32> bfs_multiqueue(const Graph& g, VertexId source,
                                std::size_t num_threads,
                                std::size_t queue_multiplier) {
  if (num_threads == 0) num_threads = default_threads();
  OBS_SCOPE("bfs.multiqueue");
  std::vector<u32> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;

  sched::MqExecutor<Task, TaskKey> executor(num_threads, queue_multiplier);
  executor.run(
      [&](auto& handle) { handle.push(Task{0, source}); },
      [&](const Task& task, auto& handle) {
        // Stale task: a shorter path already claimed this vertex.
        if (relaxed_load(&dist[task.vertex]) < task.depth) return;
        u32 next_depth = task.depth + 1;
        for (VertexId w : g.neighbors(task.vertex)) {
          if (write_min(&dist[w], next_depth)) {
            handle.push(Task{next_depth, w});
          }
        }
      });
  return dist;
}

std::vector<u32> bfs_level_sync(const Graph& g, VertexId source) {
  OBS_SCOPE("bfs.level_sync");
  const std::size_t n = g.num_vertices();
  std::vector<u32> dist(n, kUnreached);
  dist[source] = 0;

  // Frontier double buffer plus per-task offsets/counts, leased once
  // for the whole traversal. The old code grew a vector<vector<>> of
  // discoveries every level — one heap allocation per frontier vertex —
  // and flattened it with a serial scan; here each task writes into its
  // own slice of an edge-budget buffer. Both per-level scans are fused
  // map_scans: the degree pass and the claim pass each run inside their
  // scan's upsweep (the map is invoked exactly once per frontier slot),
  // so a level costs two passes over the frontier arrays instead of the
  // old "write values, then two-pass scan" three.
  support::ArenaLease arena;
  auto frontier = uninit_buf<VertexId>(arena, n);
  auto next = uninit_buf<VertexId>(arena, n);
  auto offs = uninit_buf<u64>(arena, n + 1);
  auto cnt = uninit_buf<u64>(arena, n);
  frontier[0] = source;
  std::size_t fs = 1;
  u32 depth = 0;
  while (fs > 0) {
    ++depth;
    // Edge budget: exclusive scan of frontier degrees, degrees computed
    // in the scan's own upsweep.
    u64 total_deg = par::map_scan_exclusive_sum(
        fs,
        [&](std::size_t f) {
          return static_cast<u64>(g.neighbors(frontier[f]).size());
        },
        std::span<u64>(offs.data(), fs));
    offs[fs] = total_deg;

    // Claim pass, fused with the next-frontier size scan: write_min
    // wins exactly one relaxer per newly discovered vertex (same benign
    // race as before). Each slot records its wins in its private slice
    // [offs[f], offs[f+1]) and returns the win count to the scan, which
    // turns cnt into exclusive output offsets in its downsweep.
    support::ArenaScope level_scope(arena);
    auto ebuf = uninit_buf<VertexId>(arena, total_deg);
    u64 next_size = par::map_scan_exclusive_sum(
        fs,
        [&](std::size_t f) {
          VertexId* slot = ebuf.data() + offs[f];
          u64 c = 0;
          for (VertexId w : g.neighbors(frontier[f])) {
            if (relaxed_load(&dist[w]) == kUnreached &&
                write_min(&dist[w], depth)) {
              slot[c++] = w;
            }
          }
          return c;
        },
        std::span<u64>(cnt.data(), fs));
    sched::parallel_for(0, fs, [&](std::size_t f) {
      u64 c = (f + 1 < fs ? cnt[f + 1] : next_size) - cnt[f];
      std::copy(ebuf.data() + offs[f], ebuf.data() + offs[f] + c,
                next.data() + cnt[f]);
    });
    std::swap(frontier, next);
    fs = next_size;
  }
  return dist;
}

std::vector<u32> bfs_reference(const Graph& g, VertexId source) {
  std::vector<u32> dist(g.num_vertices(), kUnreached);
  dist[source] = 0;
  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnreached) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

const census::BenchmarkCensus& bfs_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "bfs",
      census::Dispatch::kDynamic,
      {
          {Pattern::kRO, 1, "neighbor scan"},
          {Pattern::kAW, 2, "distance write_min + MultiQueue push/pop"},
      }};
  return c;
}

}  // namespace rpb::graph
