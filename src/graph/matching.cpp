#include "graph/matching.h"

#include <atomic>

#include "core/atomics.h"
#include "core/reservation.h"
#include "core/spec_for.h"
#include "sched/parallel.h"

namespace rpb::graph {
namespace {

struct MatchingStep {
  std::span<const Edge> edges;
  std::vector<par::Reservation>& r;
  std::vector<u8>& matched;
  std::vector<std::atomic<u64>>& out;
  std::atomic<std::size_t>& out_count;

  bool reserve(std::size_t i) {
    const Edge& e = edges[i];
    if (e.u == e.v) return false;
    if (relaxed_load(&matched[e.u]) != 0 || relaxed_load(&matched[e.v]) != 0) {
      return false;  // drop: an endpoint is already taken
    }
    r[e.u].reserve(static_cast<i64>(i));
    r[e.v].reserve(static_cast<i64>(i));
    return true;
  }

  bool commit(std::size_t i) {
    const Edge& e = edges[i];
    // PBBS matchingStep: release whichever cells we hold; succeed only
    // when we held both.
    if (r[e.v].check(static_cast<i64>(i))) {
      r[e.v].reset();
      if (r[e.u].check(static_cast<i64>(i))) {
        relaxed_store<u8>(&matched[e.u], 1);
        relaxed_store<u8>(&matched[e.v], 1);
        r[e.u].reset();
        out[out_count.fetch_add(1, std::memory_order_relaxed)].store(
            i, std::memory_order_relaxed);
        return true;
      }
    } else if (r[e.u].check(static_cast<i64>(i))) {
      r[e.u].reset();
    }
    return false;
  }
};

}  // namespace

MatchingResult maximal_matching(std::size_t num_vertices,
                                std::span<const Edge> edges,
                                std::size_t round_size) {
  if (round_size == 0) {
    round_size = std::max<std::size_t>(
        1024, edges.size() / 20 + 1);
  }
  MatchingResult result;
  result.matched.assign(num_vertices, 0);
  std::vector<par::Reservation> reservations(num_vertices);
  // A matching uses each vertex at most once: at most n/2 edges.
  std::vector<std::atomic<u64>> out(num_vertices / 2 + 1);
  std::atomic<std::size_t> out_count{0};

  MatchingStep step{edges, reservations, result.matched, out, out_count};
  par::speculative_for(step, 0, edges.size(), round_size);

  std::size_t k = out_count.load();
  result.matched_edges.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.matched_edges[i] = out[i].load(std::memory_order_relaxed);
  }
  std::sort(result.matched_edges.begin(), result.matched_edges.end());
  return result;
}

bool is_valid_maximal_matching(std::size_t num_vertices,
                               std::span<const Edge> edges,
                               const MatchingResult& result) {
  std::vector<u8> seen(num_vertices, 0);
  for (u64 i : result.matched_edges) {
    const Edge& e = edges[i];
    if (e.u == e.v) return false;
    if (seen[e.u] || seen[e.v]) return false;  // not a matching
    seen[e.u] = seen[e.v] = 1;
  }
  if (seen != result.matched) return false;
  for (const Edge& e : edges) {
    if (e.u != e.v && !seen[e.u] && !seen[e.v]) return false;  // not maximal
  }
  return true;
}

const census::BenchmarkCensus& mm_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "mm",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read edge endpoints"},
          {Pattern::kStride, 2, "round flags + retry pack"},
          {Pattern::kSngInd, 1, "gather retried edges"},
          {Pattern::kAW, 2, "endpoint reservations (write_min) + matched flags"},
      }};
  return c;
}

}  // namespace rpb::graph
