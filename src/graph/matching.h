// mm benchmark: maximal matching via deterministic reservations (the
// PBBS matchingStep): edges bid for both endpoints with write_min;
// an edge commits only while holding both, and resets its reservations
// otherwise so later rounds see clean cells.
#pragma once

#include <span>
#include <vector>

#include "core/census.h"
#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

struct MatchingResult {
  std::vector<u8> matched;        // per-vertex matched flag
  std::vector<u64> matched_edges; // indices into the edge list
};

// round_size 0 -> a sensible default. The result is deterministic
// (greedy matching in edge-index order).
MatchingResult maximal_matching(std::size_t num_vertices,
                                std::span<const Edge> edges,
                                std::size_t round_size = 0);

bool is_valid_maximal_matching(std::size_t num_vertices,
                               std::span<const Edge> edges,
                               const MatchingResult& result);

const census::BenchmarkCensus& mm_census();

}  // namespace rpb::graph
