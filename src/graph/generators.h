// Synthetic graph generators standing in for the paper's inputs
// (Table 2): R-MAT for `rmat`, a skewed power-law R-MAT for the
// Hyperlink-like `link`, and a long-diameter sparse grid for `road`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

// R-MAT edge generation (Chakrabarti et al.): n = 2^scale vertices,
// n * avg_degree directed edge samples with quadrant probabilities
// (a, b, c, 1-a-b-c) plus per-level noise.
std::vector<Edge> rmat_edges(int scale, double avg_degree, double a, double b,
                             double c, u64 seed);

// The paper's rmat input: a=b=c defaults from the R-MAT paper, avg
// degree ~6, symmetric, weighted.
Graph make_rmat(int scale, u64 seed);

// Hyperlink-like power-law graph: skewier R-MAT, avg degree ~20.
Graph make_link(int scale, u64 seed);

// Road-like graph: rows x cols grid keeping each right/down edge with
// probability keep, giving avg symmetric degree ~4*keep (~2.4 at 0.6)
// and a very long diameter.
Graph make_road(std::size_t rows, std::size_t cols, double keep, u64 seed);

// Named construction for the harnesses: "rmat" | "link" | "road",
// scaled by `scale` (vertices ~ 2^scale).
Graph make_named(const std::string& name, int scale, u64 seed);

}  // namespace rpb::graph
