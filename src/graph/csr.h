// Compressed sparse row graphs — the unstructured shared data structure
// of the paper's taxonomy (Fig. 1), built in parallel from edge lists.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/census.h"
#include "support/defs.h"

namespace rpb::graph {

using VertexId = u32;

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  u32 weight = 1;
};

class Graph {
 public:
  Graph() = default;

  // Build a CSR graph from directed edges. If symmetrize, both
  // directions are inserted. Self-loops are dropped; parallel edges are
  // kept (harmless for every algorithm here).
  static Graph from_edges(std::size_t num_vertices, std::span<const Edge> edges,
                          bool symmetrize, bool weighted);

  std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return targets_.size(); }
  bool weighted() const { return !weights_.empty(); }

  std::size_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(targets_).subspan(offsets_[v], degree(v));
  }

  std::span<const u32> weights_of(VertexId v) const {
    return std::span<const u32>(weights_).subspan(offsets_[v], degree(v));
  }

  // Assemble a graph directly from CSR arrays (deserialization, tests).
  // offsets must have n+1 entries with offsets[n] == targets.size();
  // weights is empty or parallel to targets.
  static Graph from_csr(std::vector<u64> offsets, std::vector<VertexId> targets,
                        std::vector<u32> weights);

  // Raw CSR views (serialization).
  std::span<const u64> raw_offsets() const { return offsets_; }
  std::span<const VertexId> raw_targets() const { return targets_; }
  std::span<const u32> raw_weights() const { return weights_; }

  bool operator==(const Graph&) const = default;

  // The undirected edge list (each edge once, u < v), e.g. for mm/msf.
  std::vector<Edge> undirected_edges() const;

  double average_degree() const {
    std::size_t n = num_vertices();
    return n == 0 ? 0.0 : static_cast<double>(num_edges()) / static_cast<double>(n);
  }

  // Largest out-degree — the generators' skew diagnostic (a power-law
  // tail shows up here long before it shows up in the average).
  std::size_t max_degree() const;

 private:
  std::vector<u64> offsets_;  // size n+1
  std::vector<VertexId> targets_;
  std::vector<u32> weights_;  // empty or size m
};

}  // namespace rpb::graph
