// bfs benchmark: breadth-first search with the MultiQueue scheduler
// (the paper's dynamic-dispatch benchmark, Sec. 6): worker threads pop
// (depth, vertex) tasks, relax neighbors with write_min on the shared
// distance array (AW), and push improved vertices.
#pragma once

#include <limits>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

inline constexpr u32 kUnreached = std::numeric_limits<u32>::max();

// MultiQueue-scheduled BFS depths from source. num_threads 0 -> default.
std::vector<u32> bfs_multiqueue(const Graph& g, VertexId source,
                                std::size_t num_threads = 0,
                                std::size_t queue_multiplier = 4);

// Reference sequential BFS for validation.
std::vector<u32> bfs_reference(const Graph& g, VertexId source);

// Level-synchronous parallel BFS (the classic frontier-at-a-time
// schedule): rounds of parallel edge relaxation with CAS on parents,
// then a pack of the next frontier. The static-dispatch counterpoint
// to the MultiQueue schedule — `bench/ablation_scheduling` compares
// them on long-diameter (road) vs. short-diameter (link) graphs.
std::vector<u32> bfs_level_sync(const Graph& g, VertexId source);

const census::BenchmarkCensus& bfs_census();

}  // namespace rpb::graph
