// mis benchmark: maximal independent set by rounds of random-priority
// candidate selection (Blelloch et al.'s deterministic greedy MIS).
// Output is deterministic: it equals the greedy MIS under the hashed
// priority order, independent of thread schedule.
#pragma once

#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

enum class MisState : u8 { kUndecided = 0, kIn = 1, kOut = 2 };

// mode selects the flag-update expression: kAtomic uses relaxed atomic
// loads/stores on the state bytes (the race-free "placate the type
// system" version); kUnchecked uses plain accesses (the C++/unsafe
// expression whose same-value races the paper calls out as non-portable
// benign races).
std::vector<MisState> maximal_independent_set(const Graph& g, AccessMode mode);

// Validation helper: true iff `state` is an independent and maximal set.
bool is_valid_mis(const Graph& g, const std::vector<MisState>& state);

const census::BenchmarkCensus& mis_census();

}  // namespace rpb::graph
