#include "graph/mis.h"

#include "core/atomics.h"
#include "core/primitives.h"
#include "sched/parallel.h"
#include "support/hash.h"

namespace rpb::graph {
namespace {

// Priority: hashed vertex id, ties by id (all distinct anyway).
inline u64 priority(VertexId v) { return hash64(v); }

inline MisState load_state(const std::vector<MisState>& state, VertexId v,
                           AccessMode mode) {
  if (mode == AccessMode::kAtomic) {
    return static_cast<MisState>(
        relaxed_load(reinterpret_cast<const u8*>(&state[v])));
  }
  return state[v];
}

inline void store_state(std::vector<MisState>& state, VertexId v, MisState s,
                        AccessMode mode) {
  if (mode == AccessMode::kAtomic) {
    relaxed_store(reinterpret_cast<u8*>(&state[v]), static_cast<u8>(s));
  } else {
    state[v] = s;
  }
}

}  // namespace

std::vector<MisState> maximal_independent_set(const Graph& g, AccessMode mode) {
  const std::size_t n = g.num_vertices();
  std::vector<MisState> state(n, MisState::kUndecided);
  std::vector<u32> frontier(n);
  for (std::size_t i = 0; i < n; ++i) frontier[i] = static_cast<u32>(i);

  while (!frontier.empty()) {
    // Phase 1 (read-only on state): v is a winner if every undecided
    // neighbor has a larger priority. Winners form an independent set
    // because the smaller-priority endpoint of any edge blocks the
    // other.
    std::vector<u8> winner(frontier.size(), 0);
    sched::parallel_for(0, frontier.size(), [&](std::size_t i) {
      VertexId v = frontier[i];
      u64 pv = priority(v);
      for (VertexId w : g.neighbors(v)) {
        if (load_state(state, w, mode) == MisState::kUndecided &&
            (priority(w) < pv || (priority(w) == pv && w < v))) {
          return;
        }
      }
      winner[i] = 1;
    });

    // Phase 2: winners join the MIS and knock out their neighbors.
    // Multiple winners may write kOut to a shared non-winner neighbor —
    // same value, expressed per the selected mode.
    sched::parallel_for(0, frontier.size(), [&](std::size_t i) {
      if (winner[i] == 0) return;
      VertexId v = frontier[i];
      store_state(state, v, MisState::kIn, mode);
      for (VertexId w : g.neighbors(v)) {
        if (w != v) store_state(state, w, MisState::kOut, mode);
      }
    });

    // Phase 3: keep the still-undecided frontier.
    std::vector<u8> keep(frontier.size(), 0);
    sched::parallel_for(0, frontier.size(), [&](std::size_t i) {
      keep[i] = state[frontier[i]] == MisState::kUndecided ? 1 : 0;
    });
    auto kept = par::pack_index(std::span<const u8>(keep));
    std::vector<u32> next(kept.size());
    sched::parallel_for(0, kept.size(),
                        [&](std::size_t i) { next[i] = frontier[kept[i]]; });
    frontier = std::move(next);
  }
  return state;
}

bool is_valid_mis(const Graph& g, const std::vector<MisState>& state) {
  const std::size_t n = g.num_vertices();
  for (std::size_t v = 0; v < n; ++v) {
    if (state[v] == MisState::kUndecided) return false;
    bool has_in_neighbor = false;
    for (VertexId w : g.neighbors(static_cast<VertexId>(v))) {
      if (w == v) continue;
      if (state[w] == MisState::kIn) has_in_neighbor = true;
    }
    if (state[v] == MisState::kIn && has_in_neighbor) return false;   // not independent
    if (state[v] == MisState::kOut && !has_in_neighbor) return false;  // not maximal
  }
  return true;
}

const census::BenchmarkCensus& mis_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "mis",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 2, "neighbor priority scan"},
          {Pattern::kStride, 2, "winner flags + frontier pack"},
          {Pattern::kSngInd, 1, "frontier gather"},
          {Pattern::kAW, 2, "knock-out writes to shared neighbors"},
      }};
  return c;
}

}  // namespace rpb::graph
