#include "graph/mis.h"

#include "core/atomics.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/hash.h"
#include "support/simd.h"

namespace rpb::graph {
namespace {

// Priority: hashed vertex id, ties by id (all distinct anyway).
inline u64 priority(VertexId v) { return hash64(v); }

inline MisState load_state(const std::vector<MisState>& state, VertexId v,
                           AccessMode mode) {
  if (mode == AccessMode::kAtomic) {
    return static_cast<MisState>(
        relaxed_load(reinterpret_cast<const u8*>(&state[v])));
  }
  return state[v];
}

inline void store_state(std::vector<MisState>& state, VertexId v, MisState s,
                        AccessMode mode) {
  if (mode == AccessMode::kAtomic) {
    relaxed_store(reinterpret_cast<u8*>(&state[v]), static_cast<u8>(s));
  } else {
    state[v] = s;
  }
}

}  // namespace

std::vector<MisState> maximal_independent_set(const Graph& g, AccessMode mode) {
  OBS_SCOPE("mis");
  const std::size_t n = g.num_vertices();
  std::vector<MisState> state(n, MisState::kUndecided);

  // Frontier ping-pong buffers live in one leased workspace for the
  // whole run; the winner mask is bit-packed (64 flags per word) and
  // leased per round. The old code heap-allocated and zero-filled a u8
  // winner array, a u8 keep array, a pack_index result, and a fresh
  // frontier vector on every round.
  support::ArenaLease arena;
  auto frontier = uninit_buf<u32>(arena, n);
  auto next = uninit_buf<u32>(arena, n);
  sched::parallel_for(0, n,
                      [&](std::size_t i) { frontier[i] = static_cast<u32>(i); });
  std::size_t fs = n;

  while (fs > 0) {
    support::ArenaScope round(arena);
    // Phase 1 (read-only on state): v is a winner if every undecided
    // neighbor has a larger priority. Winners form an independent set
    // because the smaller-priority endpoint of any edge blocks the
    // other. Each task owns whole mask words, so the writes are
    // race-free by construction.
    auto winner = uninit_buf<u64>(arena, par::bit_words(fs));
    par::fill_bit_flags(winner.span(), fs, [&](std::size_t i) {
      VertexId v = frontier[i];
      u64 pv = priority(v);
      for (VertexId w : g.neighbors(v)) {
        if (load_state(state, w, mode) == MisState::kUndecided &&
            (priority(w) < pv || (priority(w) == pv && w < v))) {
          return false;
        }
      }
      return true;
    });

    // Phase 2: winners join the MIS and knock out their neighbors.
    // Multiple winners may write kOut to a shared non-winner neighbor —
    // same value, expressed per the selected mode. Walk the winner
    // mask's set bits per word (the shared simd.h idiom, replacing this
    // file's test-every-index loop): rounds where winners are sparse
    // touch 64 frontier entries per mask word instead of probing each.
    const std::size_t winner_words = par::bit_words(fs);
    sched::parallel_for(0, winner_words, [&](std::size_t w) {
      // fill_bit_flags zeroes bits past fs, so no tail mask is needed.
      simd::visit_set_bits(winner[w], w * 64, [&](std::size_t i) {
        VertexId v = frontier[i];
        store_state(state, v, MisState::kIn, mode);
        for (VertexId u : g.neighbors(v)) {
          if (u != v) store_state(state, u, MisState::kOut, mode);
        }
      });
    });

    // Phase 3: keep the still-undecided frontier — one fused pack
    // (predicate evaluated once per vertex, survivors staged straight
    // into the other ping-pong buffer) instead of flags + pack_index +
    // gather.
    fs = par::pack_into(
        std::span<const u32>(frontier.data(), fs),
        [&](u32 v) { return state[v] == MisState::kUndecided; }, next.span());
    std::swap(frontier, next);
  }
  return state;
}

bool is_valid_mis(const Graph& g, const std::vector<MisState>& state) {
  const std::size_t n = g.num_vertices();
  for (std::size_t v = 0; v < n; ++v) {
    if (state[v] == MisState::kUndecided) return false;
    bool has_in_neighbor = false;
    for (VertexId w : g.neighbors(static_cast<VertexId>(v))) {
      if (w == v) continue;
      if (state[w] == MisState::kIn) has_in_neighbor = true;
    }
    if (state[v] == MisState::kIn && has_in_neighbor) return false;   // not independent
    if (state[v] == MisState::kOut && !has_in_neighbor) return false;  // not maximal
  }
  return true;
}

const census::BenchmarkCensus& mis_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "mis",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 2, "neighbor priority scan"},
          {Pattern::kStride, 2, "winner flags + frontier pack"},
          {Pattern::kSngInd, 1, "frontier gather"},
          {Pattern::kAW, 2, "knock-out writes to shared neighbors"},
      }};
  return c;
}

}  // namespace rpb::graph
