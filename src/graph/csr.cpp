#include "graph/csr.h"

#include <algorithm>
#include <atomic>

#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "support/arena.h"

namespace rpb::graph {

Graph Graph::from_edges(std::size_t num_vertices, std::span<const Edge> edges,
                        bool symmetrize, bool weighted) {
  Graph g;
  g.offsets_.assign(num_vertices + 1, 0);

  // Degree counting with relaxed atomic increments (AW on the shared
  // degree array — endpoint collisions are data dependences).
  std::vector<u64> degree(num_vertices, 0);
  sched::parallel_for(0, edges.size(), [&](std::size_t i) {
    const Edge& e = edges[i];
    if (e.u == e.v || e.u >= num_vertices || e.v >= num_vertices) return;
    std::atomic_ref<u64>(degree[e.u]).fetch_add(1, std::memory_order_relaxed);
    if (symmetrize) {
      std::atomic_ref<u64>(degree[e.v]).fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Out-of-place scan straight into the CSR offsets array: the old
  // in-place scan plus copy-to-offsets pass is one fused primitive now,
  // and degree keeps the raw counts.
  u64 total = par::scan_exclusive_sum_into(std::span<const u64>(degree),
                                           std::span<u64>(g.offsets_));
  g.offsets_[num_vertices] = total;

  g.targets_.resize(total);
  if (weighted) g.weights_.resize(total);

  // Scatter with per-vertex atomic cursors, starting at the offsets.
  std::vector<u64> cursor(g.offsets_.begin(),
                          g.offsets_.begin() +
                              static_cast<std::ptrdiff_t>(num_vertices));
  sched::parallel_for(0, edges.size(), [&](std::size_t i) {
    const Edge& e = edges[i];
    if (e.u == e.v || e.u >= num_vertices || e.v >= num_vertices) return;
    u64 slot =
        std::atomic_ref<u64>(cursor[e.u]).fetch_add(1, std::memory_order_relaxed);
    g.targets_[slot] = e.v;
    if (weighted) g.weights_[slot] = e.weight;
    if (symmetrize) {
      u64 back = std::atomic_ref<u64>(cursor[e.v])
                     .fetch_add(1, std::memory_order_relaxed);
      g.targets_[back] = e.u;
      if (weighted) g.weights_[back] = e.weight;
    }
  });
  return g;
}

Graph Graph::from_csr(std::vector<u64> offsets, std::vector<VertexId> targets,
                      std::vector<u32> weights) {
  if (offsets.empty() || offsets.back() != targets.size() ||
      (!weights.empty() && weights.size() != targets.size())) {
    throw std::invalid_argument("from_csr: inconsistent arrays");
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  g.weights_ = std::move(weights);
  return g;
}

std::vector<Edge> Graph::undirected_edges() const {
  const std::size_t n = num_vertices();
  // Count each edge once from its smaller endpoint; the counting pass
  // runs inside the offset scan's upsweep (fused map_scan), and the
  // offsets live in arena scratch instead of a zero-filled heap vector.
  support::ArenaLease arena;
  auto counts = uninit_buf<u64>(arena, n);
  u64 total = par::map_scan_exclusive_sum(
      n,
      [&](std::size_t u) {
        auto nbrs = neighbors(static_cast<VertexId>(u));
        u64 c = 0;
        for (VertexId v : nbrs) c += v > u;
        return c;
      },
      counts.span());
  std::vector<Edge> out(total);
  sched::parallel_for(0, n, [&](std::size_t u) {
    auto nbrs = neighbors(static_cast<VertexId>(u));
    u64 pos = counts[u];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] > u) {
        u32 w = weighted() ? weights_of(static_cast<VertexId>(u))[k] : 1;
        out[pos++] = Edge{static_cast<VertexId>(u), nbrs[k], w};
      }
    }
  });
  return out;
}

std::size_t Graph::max_degree() const {
  const std::size_t n = num_vertices();
  return static_cast<std::size_t>(sched::parallel_reduce_range(
      std::size_t{0}, n, u64{0},
      [&](std::size_t lo, std::size_t hi) {
        u64 best = 0;
        for (std::size_t v = lo; v < hi; ++v) {
          best = std::max(best, offsets_[v + 1] - offsets_[v]);
        }
        return best;
      },
      [](u64 a, u64 b) { return std::max(a, b); }));
}

}  // namespace rpb::graph
