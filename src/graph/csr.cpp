#include "graph/csr.h"

#include <atomic>

#include "core/primitives.h"
#include "sched/parallel.h"

namespace rpb::graph {

Graph Graph::from_edges(std::size_t num_vertices, std::span<const Edge> edges,
                        bool symmetrize, bool weighted) {
  Graph g;
  g.offsets_.assign(num_vertices + 1, 0);

  // Degree counting with relaxed atomic increments (AW on the shared
  // degree array — endpoint collisions are data dependences).
  std::vector<u64> degree(num_vertices, 0);
  sched::parallel_for(0, edges.size(), [&](std::size_t i) {
    const Edge& e = edges[i];
    if (e.u == e.v || e.u >= num_vertices || e.v >= num_vertices) return;
    std::atomic_ref<u64>(degree[e.u]).fetch_add(1, std::memory_order_relaxed);
    if (symmetrize) {
      std::atomic_ref<u64>(degree[e.v]).fetch_add(1, std::memory_order_relaxed);
    }
  });

  u64 total = par::scan_exclusive_sum(std::span<u64>(degree));
  sched::parallel_for(0, num_vertices,
                      [&](std::size_t v) { g.offsets_[v] = degree[v]; });
  g.offsets_[num_vertices] = total;

  g.targets_.resize(total);
  if (weighted) g.weights_.resize(total);

  // Scatter with per-vertex atomic cursors.
  std::vector<u64> cursor(degree);  // degree now holds start offsets
  sched::parallel_for(0, edges.size(), [&](std::size_t i) {
    const Edge& e = edges[i];
    if (e.u == e.v || e.u >= num_vertices || e.v >= num_vertices) return;
    u64 slot =
        std::atomic_ref<u64>(cursor[e.u]).fetch_add(1, std::memory_order_relaxed);
    g.targets_[slot] = e.v;
    if (weighted) g.weights_[slot] = e.weight;
    if (symmetrize) {
      u64 back = std::atomic_ref<u64>(cursor[e.v])
                     .fetch_add(1, std::memory_order_relaxed);
      g.targets_[back] = e.u;
      if (weighted) g.weights_[back] = e.weight;
    }
  });
  return g;
}

Graph Graph::from_csr(std::vector<u64> offsets, std::vector<VertexId> targets,
                      std::vector<u32> weights) {
  if (offsets.empty() || offsets.back() != targets.size() ||
      (!weights.empty() && weights.size() != targets.size())) {
    throw std::invalid_argument("from_csr: inconsistent arrays");
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  g.weights_ = std::move(weights);
  return g;
}

std::vector<Edge> Graph::undirected_edges() const {
  const std::size_t n = num_vertices();
  // Count each edge once from its smaller endpoint.
  std::vector<u64> counts(n, 0);
  sched::parallel_for(0, n, [&](std::size_t u) {
    auto nbrs = neighbors(static_cast<VertexId>(u));
    u64 c = 0;
    for (VertexId v : nbrs) c += v > u;
    counts[u] = c;
  });
  u64 total = par::scan_exclusive_sum(std::span<u64>(counts));
  std::vector<Edge> out(total);
  sched::parallel_for(0, n, [&](std::size_t u) {
    auto nbrs = neighbors(static_cast<VertexId>(u));
    u64 pos = counts[u];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] > u) {
        u32 w = weighted() ? weights_of(static_cast<VertexId>(u))[k] : 1;
        out[pos++] = Edge{static_cast<VertexId>(u), nbrs[k], w};
      }
    }
  });
  return out;
}

}  // namespace rpb::graph
