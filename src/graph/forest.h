// sf and msf benchmarks: spanning forest and minimum spanning forest.
//
// Both use the PBBS unionFindStep under deterministic reservations:
// an edge reserves the larger of its two component roots and, on
// commit, links that root to the other side. sf runs over edges in
// input order; msf sample-sorts edges by weight first, so the spec_for
// priority order is the Kruskal order and the result is the (unique,
// with index tie-breaking) minimum spanning forest.
#pragma once

#include <span>
#include <vector>

#include "core/census.h"
#include "graph/csr.h"
#include "support/defs.h"

namespace rpb::graph {

struct ForestResult {
  std::vector<u64> edges;  // indices into the input edge list
  u64 total_weight = 0;
};

// Spanning forest over the edge list (order-greedy, deterministic).
ForestResult spanning_forest(std::size_t num_vertices,
                             std::span<const Edge> edges,
                             std::size_t round_size = 0);

// Minimum spanning forest (parallel Kruskal via reservations).
ForestResult minimum_spanning_forest(std::size_t num_vertices,
                                     std::span<const Edge> edges,
                                     std::size_t round_size = 0);

// Reference sequential Kruskal with the same (weight, index) order.
ForestResult kruskal_reference(std::size_t num_vertices,
                               std::span<const Edge> edges);

// A forest is valid if acyclic and spanning (one tree per component).
bool is_spanning_forest(std::size_t num_vertices, std::span<const Edge> edges,
                        const ForestResult& forest);

const census::BenchmarkCensus& sf_census();
const census::BenchmarkCensus& msf_census();

}  // namespace rpb::graph
