// The paper's "benign race" example (Sec. 5.2): finding the distinct
// characters of a string by having every task store 1 into
// present[c]. All writers store the same value, so the race *looks*
// benign — but C++ (like Rust) makes the unsynchronized version
// undefined, and compilers may legally break it. The paper's fix is
// relaxed atomic stores; both expressions live here so their cost can
// be compared (it is zero on mainstream hardware).
#pragma once

#include <array>
#include <span>

#include "core/access_mode.h"
#include "core/atomics.h"
#include "sched/parallel.h"
#include "support/defs.h"

namespace rpb::seq {

// present[c] == 1 iff byte c occurs in text. kUnchecked uses plain
// stores (the PBBS original the paper calls out as non-portable);
// kAtomic uses relaxed atomic stores (the paper's recommended fix).
inline std::array<u8, 256> mark_present(std::span<const u8> text,
                                        AccessMode mode = AccessMode::kAtomic) {
  std::array<u8, 256> present{};
  if (mode == AccessMode::kAtomic) {
    sched::parallel_for(0, text.size(), [&](std::size_t i) {
      relaxed_store(&present[text[i]], u8{1});
    });
  } else {
    sched::parallel_for(0, text.size(), [&](std::size_t i) {
      present[text[i]] = 1;  // same-value race: the "benign" original
    });
  }
  return present;
}

}  // namespace rpb::seq
