// sort benchmark: parallel sample sort (the paper uses PBBS's sample
// sort). Oversample, pick splitters, classify per block (Block), scan,
// scatter to bucket regions, then sort each bucket — the bucket-region
// step is expressed through par_ind_chunks_mut (RngInd), whose cheap
// monotonicity check is the "comfortable" expression the paper keeps
// enabled even in the performance runs.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "core/patterns.h"
#include "core/primitives.h"
#include "sched/parallel.h"
#include "support/defs.h"
#include "support/prng.h"

namespace rpb::seq {

template <class T, class Less = std::less<T>>
void sample_sort(std::vector<T>& items, Less less = Less(),
                 AccessMode mode = AccessMode::kChecked) {
  const std::size_t n = items.size();
  constexpr std::size_t kSerialCutoff = 1 << 13;
  if (n <= kSerialCutoff) {
    std::sort(items.begin(), items.end(), less);
    return;
  }

  // Bucket count ~ sqrt-ish scaling, capped; oversampling factor 32.
  const std::size_t num_buckets =
      std::min<std::size_t>(512, std::max<std::size_t>(2, n / (1 << 13)));
  const std::size_t oversample = 32;
  const std::size_t sample_size = num_buckets * oversample;

  Rng rng(0x5a5a5a);
  std::vector<T> sample(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) sample[i] = items[rng.next(i, n)];
  std::sort(sample.begin(), sample.end(), less);
  std::vector<T> splitters(num_buckets - 1);
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    splitters[i] = sample[(i + 1) * oversample];
  }

  // Classify per block; bucket of x = first splitter > x.
  auto bucket_of = [&](const T& x) {
    return static_cast<std::size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), x, less) -
        splitters.begin());
  };
  const std::size_t threads = sched::ThreadPool::global().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<u64> counts(num_buckets * num_blocks, 0);
  std::vector<u32> bucket_ids(n);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          std::size_t bkt = bucket_of(items[i]);
          bucket_ids[i] = static_cast<u32>(bkt);
          ++counts[bkt * num_blocks + b];
        }
      },
      1);
  par::scan_exclusive_sum(std::span<u64>(counts));

  // Bucket boundary offsets (monotone by construction of the scan).
  std::vector<u64> bucket_offsets(num_buckets + 1);
  for (std::size_t bkt = 0; bkt < num_buckets; ++bkt) {
    bucket_offsets[bkt] = counts[bkt * num_blocks];
  }
  bucket_offsets[num_buckets] = n;

  // Scatter into bucket regions.
  std::vector<T> buffer(n);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        std::vector<u64> cursor(num_buckets);
        for (std::size_t bkt = 0; bkt < num_buckets; ++bkt) {
          cursor[bkt] = counts[bkt * num_blocks + b];
        }
        for (std::size_t i = lo; i < hi; ++i) {
          buffer[cursor[bucket_ids[i]]++] = items[i];
        }
      },
      1);

  // Sort each bucket region in place: RngInd over the bucket offsets.
  // grain stays 1 — every bucket holds >= 2^13 elements here, so each
  // chunk is worth its own task and stealing balances skewed buckets.
  par::par_ind_chunks_mut(
      std::span<T>(buffer), std::span<const u64>(bucket_offsets),
      [&](std::size_t, std::span<T> chunk) {
        std::sort(chunk.begin(), chunk.end(), less);
      },
      mode == AccessMode::kChecked ? AccessMode::kChecked
                                   : AccessMode::kUnchecked,
      /*grain=*/1);

  sched::parallel_for(0, n, [&](std::size_t i) { items[i] = buffer[i]; });
}

const census::BenchmarkCensus& sort_census();

}  // namespace rpb::seq
