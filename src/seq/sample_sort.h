// sort benchmark: parallel sample sort (the paper uses PBBS's sample
// sort). Oversample, pick splitters, classify per block (Block), scan,
// scatter to bucket regions, then sort each bucket — the bucket-region
// step is expressed through par_ind_chunks_mut (RngInd), whose cheap
// monotonicity check is the "comfortable" expression the paper keeps
// enabled even in the performance runs. All scratch is leased from the
// workspace arena (support/arena.h) and left uninitialized — every
// buffer is fully written before it is read, so the vec![0; n]
// zero-fill the old code paid per invocation bought nothing.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "core/patterns.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/prng.h"

namespace rpb::seq {

template <class T, class Less = std::less<T>>
void sample_sort(std::vector<T>& items, Less less = Less(),
                 AccessMode mode = AccessMode::kChecked) {
  const std::size_t n = items.size();
  constexpr std::size_t kSerialCutoff = 1 << 13;
  if (n <= kSerialCutoff) {
    std::sort(items.begin(), items.end(), less);
    return;
  }
  OBS_SCOPE("sample_sort");

  // Bucket count ~ sqrt-ish scaling, capped; oversampling factor 32.
  const std::size_t num_buckets =
      std::min<std::size_t>(512, std::max<std::size_t>(2, n / (1 << 13)));
  const std::size_t oversample = 32;
  const std::size_t sample_size = num_buckets * oversample;

  support::ArenaLease arena;

  Rng rng(0x5a5a5a);
  ArenaVec<T> sample(arena, sample_size);
  {
    OBS_SCOPE("sample_sort.sample");
    for (std::size_t i = 0; i < sample_size; ++i) {
      sample[i] = items[rng.next(i, n)];
    }
    std::sort(sample.begin(), sample.end(), less);
  }

  // Dedupe the oversampled splitters: with heavy key repetition the raw
  // picks contain runs of equal values, which previously funneled every
  // element equal to (or beyond) the run into one giant bucket. The
  // distinct splitters d_0 < ... < d_{m-1} define 2m+1 buckets: even
  // bucket 2i holds keys strictly between d_{i-1} and d_i, odd bucket
  // 2i+1 holds keys equal to d_i. Equal buckets are sorted by
  // construction, so adversarial inputs (all-equal, few distinct keys)
  // skip the per-bucket sort for their heavy values entirely.
  ArenaVec<T> splitters(arena, num_buckets - 1);
  std::size_t num_splitters = 0;
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    const T& v = sample[(i + 1) * oversample];
    if (num_splitters == 0 || less(splitters[num_splitters - 1], v)) {
      splitters[num_splitters++] = v;
    }
  }
  const std::size_t total_buckets = 2 * num_splitters + 1;
  const T* sp = splitters.data();
  const std::size_t m = num_splitters;
  auto bucket_of = [sp, m, &less](const T& x) {
    std::size_t i =
        static_cast<std::size_t>(std::lower_bound(sp, sp + m, x, less) - sp);
    // lower_bound gives the first splitter !< x; equal iff also !(x < it).
    bool equal = i < m && !less(x, sp[i]);
    return 2 * i + (equal ? 1 : 0);
  };

  // Classify per block.
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  auto counts = zeroed_buf<u64>(arena, total_buckets * num_blocks);
  auto bucket_ids = uninit_buf<u32>(arena, n);
  {
    OBS_SCOPE("sample_sort.classify");
    sched::parallel_for(
        0, num_blocks,
        [&](std::size_t b) {
          std::size_t lo = b * block, hi = std::min(n, lo + block);
          for (std::size_t i = lo; i < hi; ++i) {
            std::size_t bkt = bucket_of(items[i]);
            bucket_ids[i] = static_cast<u32>(bkt);
            ++counts[bkt * num_blocks + b];
          }
        },
        1);
    // Allocation-free scan: block sums lease from the arena pool.
    par::scan_exclusive_sum(counts.span());
  }

  // Bucket boundary offsets (monotone by construction of the scan).
  auto bucket_offsets = uninit_buf<u64>(arena, total_buckets + 1);
  for (std::size_t bkt = 0; bkt < total_buckets; ++bkt) {
    bucket_offsets[bkt] = counts[bkt * num_blocks];
  }
  bucket_offsets[total_buckets] = n;

  // Scatter into bucket regions. Each block's cursors live in one flat
  // arena slab instead of a per-task heap vector.
  ArenaVec<T> buffer(arena, n);
  auto cursors = uninit_buf<u64>(arena, total_buckets * num_blocks);
  {
    OBS_SCOPE("sample_sort.scatter");
    sched::parallel_for(
        0, num_blocks,
        [&](std::size_t b) {
          std::size_t lo = b * block, hi = std::min(n, lo + block);
          u64* cursor = cursors.data() + b * total_buckets;
          for (std::size_t bkt = 0; bkt < total_buckets; ++bkt) {
            cursor[bkt] = counts[bkt * num_blocks + b];
          }
          for (std::size_t i = lo; i < hi; ++i) {
            buffer[cursor[bucket_ids[i]]++] = items[i];
          }
        },
        1);
  }

  // Sort each bucket region in place: RngInd over the bucket offsets.
  // grain stays 1 — buckets are coarse, so each chunk is worth its own
  // task and stealing balances skewed buckets. Odd buckets hold runs of
  // one value and need no sort.
  {
    OBS_SCOPE("sample_sort.bucket_sort");
    par::par_ind_chunks_mut(
        buffer.span(), bucket_offsets.cspan(),
        [&](std::size_t bkt, std::span<T> chunk) {
          if (bkt % 2 == 0) std::sort(chunk.begin(), chunk.end(), less);
        },
        mode == AccessMode::kChecked ? AccessMode::kChecked
                                     : AccessMode::kUnchecked,
        /*grain=*/1);
  }

  {
    OBS_SCOPE("sample_sort.copy_back");
    sched::parallel_for(0, n, [&](std::size_t i) { items[i] = buffer[i]; });
  }
}

const census::BenchmarkCensus& sort_census();

}  // namespace rpb::seq
