// Concurrent open-addressing hash map (u64 -> u64) with CAS key claims
// and per-value atomic update combinators — the AW data structure in
// map form (companion to hash_table.h's set). Values are updated with
// user-supplied atomic read-modify-write semantics: insert_or_add,
// insert_or_min, insert_or_max cover the common reductions-by-key.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/atomics.h"
#include "support/defs.h"
#include "support/hash.h"

namespace rpb::seq {

class ConcurrentHashMap {
 public:
  static constexpr u64 kEmptyKey = std::numeric_limits<u64>::max();
  // Transient marker while a winner initializes its slot's value; also
  // reserved (keys must be < kBusyKey).
  static constexpr u64 kBusyKey = std::numeric_limits<u64>::max() - 1;

  explicit ConcurrentHashMap(std::size_t expected_elements) {
    std::size_t cap = 16;
    while (cap < expected_elements * 2) cap <<= 1;
    keys_.assign(cap, kEmptyKey);
    values_.assign(cap, 0);
  }

  // value += delta, inserting {key, delta} if absent. Thread-safe.
  void insert_or_add(u64 key, u64 delta) {
    std::size_t slot = claim(key);
    std::atomic_ref<u64>(values_[slot]).fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  // value = min(value, candidate), inserting if absent.
  void insert_or_min(u64 key, u64 candidate) {
    std::size_t slot = claim_with_initial(key, std::numeric_limits<u64>::max());
    write_min(&values_[slot], candidate);
  }

  // value = max(value, candidate), inserting if absent.
  void insert_or_max(u64 key, u64 candidate) {
    std::size_t slot = claim_with_initial(key, 0);
    write_max(&values_[slot], candidate);
  }

  std::optional<u64> get(u64 key) const {
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = hash64(key) & mask;
    for (;;) {
      u64 k = std::atomic_ref<const u64>(keys_[i]).load(
          std::memory_order_acquire);
      if (k == kBusyKey) continue;  // claim in flight: might be ours
      if (k == key) {
        return std::atomic_ref<const u64>(values_[i]).load(
            std::memory_order_acquire);
      }
      if (k == kEmptyKey) return std::nullopt;
      i = (i + 1) & mask;
    }
  }

  std::size_t capacity() const { return keys_.size(); }

  // Snapshot of all entries (call at quiescence).
  std::vector<std::pair<u64, u64>> entries() const {
    std::vector<std::pair<u64, u64>> out;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) out.push_back({keys_[i], values_[i]});
    }
    return out;
  }

 private:
  // Find key's slot, inserting the key with a zero value if missing.
  std::size_t claim(u64 key) { return claim_with_initial(key, 0); }

  // Two-phase claim: empty -> busy (CAS) -> key (release). Only the
  // CAS winner ever writes the slot's initial value, so no racer can
  // clobber combined updates; losers spin past the busy window.
  std::size_t claim_with_initial(u64 key, u64 initial) {
    if (key >= kBusyKey) throw std::invalid_argument("reserved sentinel key");
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = hash64(key) & mask;
    std::size_t probes = 0;
    for (;;) {
      std::atomic_ref<u64> slot(keys_[i]);
      u64 current = slot.load(std::memory_order_acquire);
      if (current == key) return i;
      if (current == kBusyKey) continue;  // resolve before judging slot i
      if (current == kEmptyKey) {
        u64 expected = kEmptyKey;
        if (slot.compare_exchange_strong(expected, kBusyKey,
                                         std::memory_order_acq_rel)) {
          std::atomic_ref<u64>(values_[i]).store(initial,
                                                 std::memory_order_relaxed);
          slot.store(key, std::memory_order_release);
          return i;
        }
        continue;  // lost the claim: re-read this slot
      }
      i = (i + 1) & mask;
      if (++probes > keys_.size()) throw std::runtime_error("hash map full");
    }
  }

  std::vector<u64> keys_;
  mutable std::vector<u64> values_;
};

}  // namespace rpb::seq
