// Concurrent open-addressing hash set — the paper's canonical AW data
// structure (Listing 8): tasks insert through function-based indirection
// into potentially overlapping slots, so correctness needs CAS (atomic
// mode) or per-slot locks (locked mode). Linear probing over a
// power-of-two table; keys are u64 with a reserved empty sentinel.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/access_mode.h"
#include "support/defs.h"
#include "support/hash.h"

namespace rpb::seq {

class ConcurrentHashSet {
 public:
  static constexpr u64 kEmpty = std::numeric_limits<u64>::max();

  // Capacity is rounded up to a power of two >= 2 * expected_elements.
  explicit ConcurrentHashSet(std::size_t expected_elements,
                             AccessMode mode = AccessMode::kAtomic)
      : mode_(mode) {
    std::size_t cap = 16;
    while (cap < expected_elements * 2) cap <<= 1;
    slots_.assign(cap, kEmpty);
    if (mode_ == AccessMode::kLocked) {
      locks_ = std::vector<std::mutex>(kNumLocks);
    }
  }

  // Insert key (key != kEmpty). Returns true iff the key was new.
  // Thread-safe under kAtomic and kLocked.
  bool insert(u64 key) {
    if (key == kEmpty) throw std::invalid_argument("reserved sentinel key");
    return mode_ == AccessMode::kLocked ? insert_locked(key)
                                        : insert_atomic(key);
  }

  bool contains(u64 key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash64(key) & mask;
    for (;;) {
      u64 slot = std::atomic_ref<const u64>(slots_[i])
                     .load(std::memory_order_acquire);
      if (slot == key) return true;
      if (slot == kEmpty) return false;
      i = (i + 1) & mask;
    }
  }

  std::size_t capacity() const { return slots_.size(); }

  // All stored keys, in table order (call only at quiescence).
  std::vector<u64> keys() const {
    std::vector<u64> out;
    for (u64 slot : slots_) {
      if (slot != kEmpty) out.push_back(slot);
    }
    return out;
  }

 private:
  static constexpr std::size_t kNumLocks = 4096;

  bool insert_atomic(u64 key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash64(key) & mask;
    std::size_t probes = 0;
    for (;;) {
      std::atomic_ref<u64> slot(slots_[i]);
      u64 current = slot.load(std::memory_order_acquire);
      if (current == key) return false;
      if (current == kEmpty) {
        u64 expected = kEmpty;
        if (slot.compare_exchange_strong(expected, key,
                                         std::memory_order_acq_rel)) {
          return true;
        }
        if (expected == key) return false;
        // Lost the race to a different key; keep probing this slot's
        // successor chain.
      }
      i = (i + 1) & mask;
      if (++probes > slots_.size()) throw std::runtime_error("hash set full");
    }
  }

  bool insert_locked(u64 key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash64(key) & mask;
    std::size_t probes = 0;
    for (;;) {
      std::lock_guard<std::mutex> slot_guard(locks_[i & (kNumLocks - 1)]);
      u64 current =
          std::atomic_ref<u64>(slots_[i]).load(std::memory_order_relaxed);
      if (current == key) return false;
      if (current == kEmpty) {
        std::atomic_ref<u64>(slots_[i]).store(key, std::memory_order_release);
        return true;
      }
      i = (i + 1) & mask;
      if (++probes > slots_.size()) throw std::runtime_error("hash set full");
    }
  }

  AccessMode mode_;
  std::vector<u64> slots_;
  mutable std::vector<std::mutex> locks_;
};

}  // namespace rpb::seq
