// dedup benchmark: remove duplicate keys via concurrent hash-set
// insertion (AW — hash collisions make tasks' writes overlap, paper
// Listing 8) followed by a stable pack of first-inserters.
#pragma once

#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "support/defs.h"

namespace rpb::seq {

// Distinct keys of `keys`, ordered by first surviving inserter's index.
// The *set* of returned keys is deterministic; supported modes are
// kAtomic (CAS insert) and kLocked (striped mutexes).
std::vector<u64> dedup(std::span<const u64> keys, AccessMode mode);

const census::BenchmarkCensus& dedup_census();

}  // namespace rpb::seq
