#include "seq/dedup.h"

#include <stdexcept>

#include "core/primitives.h"
#include "sched/parallel.h"
#include "seq/hash_table.h"

namespace rpb::seq {

std::vector<u64> dedup(std::span<const u64> keys, AccessMode mode) {
  if (mode != AccessMode::kAtomic && mode != AccessMode::kLocked) {
    // True data dependences: there is no unsynchronized expression —
    // exactly the paper's Observation 5.
    throw std::invalid_argument("dedup requires kAtomic or kLocked");
  }
  ConcurrentHashSet set(keys.size(), mode);
  std::vector<u8> first(keys.size(), 0);
  sched::parallel_for(0, keys.size(), [&](std::size_t i) {
    first[i] = set.insert(keys[i]) ? 1 : 0;
  });
  std::vector<std::size_t> winners = par::pack_index(std::span<const u8>(first));
  std::vector<u64> out(winners.size());
  sched::parallel_for(0, winners.size(),
                      [&](std::size_t i) { out[i] = keys[winners[i]]; });
  return out;
}

const census::BenchmarkCensus& dedup_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "dedup",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read keys"},
          {Pattern::kStride, 2, "first-inserter flags + output gather"},
          {Pattern::kAW, 2, "hash-set probe loads + CAS inserts"},
      }};
  return c;
}

}  // namespace rpb::seq
