#include "seq/dedup.h"

#include <stdexcept>

#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "seq/hash_table.h"
#include "support/arena.h"

namespace rpb::seq {

std::vector<u64> dedup(std::span<const u64> keys, AccessMode mode) {
  if (mode != AccessMode::kAtomic && mode != AccessMode::kLocked) {
    // True data dependences: there is no unsynchronized expression —
    // exactly the paper's Observation 5.
    throw std::invalid_argument("dedup requires kAtomic or kLocked");
  }
  ConcurrentHashSet set(keys.size(), mode);
  // One fused pack: the hash-set insert IS the predicate, invoked
  // exactly once per key (the pred-once staging contract), and the
  // first-inserter keys land directly in the output — the old
  // first-flags array, pack_index pass, and gather pass are gone.
  support::ArenaLease arena;
  auto winners =
      par::pack(arena, keys, [&](u64 key) { return set.insert(key); });
  return std::vector<u64>(winners.begin(), winners.end());
}

const census::BenchmarkCensus& dedup_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "dedup",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read keys"},
          {Pattern::kStride, 2, "fused first-inserter pack (stage + concat)"},
          {Pattern::kAW, 2, "hash-set probe loads + CAS inserts"},
      }};
  return c;
}

}  // namespace rpb::seq
