#include "seq/integer_sort.h"

namespace rpb::seq {

void integer_sort(std::vector<u64>& keys, int key_bits, AccessMode mode) {
  // IdentityKey (not a lambda) so the counting pass sees the layout
  // contract and takes the vector digit-extraction path.
  integer_sort_by(keys, key_bits, IdentityKey{}, mode);
}

const census::BenchmarkCensus& isort_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "isort",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read keys"},
          {Pattern::kBlock, 2, "per-block digit counts"},
          {Pattern::kStride, 2, "prefix scan of bucket counts"},
          {Pattern::kSngInd, 2, "stable scatter to computed ranks"},
      }};
  return c;
}

}  // namespace rpb::seq
