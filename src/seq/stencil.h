// 2D stencil computation — the paper's other canonical *regular*
// pattern ("a parallel reduction on an array or a stencil computation",
// Sec. 3). Double-buffered 5-point Jacobi steps over a row-major grid:
// each task owns a block of rows of the output (Block pattern) and only
// reads the input, so the expression is fearless by construction.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "sched/parallel.h"

namespace rpb::seq {

// One Jacobi step: out(r,c) = average of the 4-neighborhood + self.
// Border cells copy through unchanged (Dirichlet boundary).
inline void jacobi_step(std::span<const double> in, std::span<double> out,
                        std::size_t rows, std::size_t cols) {
  if (in.size() != rows * cols || out.size() != rows * cols) {
    throw std::invalid_argument("jacobi_step: grid size mismatch");
  }
  if (rows == 0 || cols == 0) return;
  sched::parallel_for_range(0, rows, [&](std::size_t r_lo, std::size_t r_hi) {
    for (std::size_t r = r_lo; r < r_hi; ++r) {
      const double* in_row = in.data() + r * cols;
      double* out_row = out.data() + r * cols;
      if (r == 0 || r + 1 == rows) {
        for (std::size_t c = 0; c < cols; ++c) out_row[c] = in_row[c];
        continue;
      }
      out_row[0] = in_row[0];
      for (std::size_t c = 1; c + 1 < cols; ++c) {
        out_row[c] = 0.2 * (in_row[c] + in_row[c - 1] + in_row[c + 1] +
                            in_row[c - cols] + in_row[c + cols]);
      }
      out_row[cols - 1] = in_row[cols - 1];
    }
  });
}

// Run `steps` Jacobi iterations in place (ping-pong buffers); returns
// the final grid.
inline std::vector<double> jacobi(std::vector<double> grid, std::size_t rows,
                                  std::size_t cols, std::size_t steps) {
  std::vector<double> other(grid.size());
  for (std::size_t s = 0; s < steps; ++s) {
    jacobi_step(std::span<const double>(grid), std::span<double>(other), rows,
                cols);
    std::swap(grid, other);
  }
  return grid;
}

}  // namespace rpb::seq
