// isort benchmark: stable LSD radix sort. Each pass histograms 8-bit
// digits per block (Block pattern), prefix-scans the bucket counts, and
// scatters to destinations that are unique by construction — the exact
// "sort routine" context of the paper's SngInd Listing 6. kChecked
// materializes the destination vector and validates uniqueness through
// par_ind_iter_mut; under the default fused check mode the validation
// and the scatter share one parallel region, and the epoch-table pool
// amortizes the per-pass check setup this sort used to re-pay every
// radix round (an O(n) bitmap alloc+memset per pass). Pass scratch
// (digit counts, checked-mode destinations) is leased from the
// workspace arena and rewound per pass, so the per-round allocation
// tax is gone too (support/arena.h).
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/access_mode.h"
#include "core/atomics.h"
#include "core/census.h"
#include "core/patterns.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/simd.h"

namespace rpb::seq {

inline constexpr int kRadixBits = 8;
inline constexpr std::size_t kRadix = 1u << kRadixBits;

// Named key functors that declare a memory layout, so the counting pass
// can extract digits vector-wide (support/simd.h digit_count_u64). An
// arbitrary KeyFn lambda computes anything and stays on the scalar
// loop; these two promise the key is a u64 sitting in the record:

// The whole element IS the key (plain u64 sorts).
struct IdentityKey {
  u64 operator()(u64 k) const { return k; }
};

// The key is the u64 at byte offset 0 of a trivially-copyable record
// whose size is a multiple of 8 (e.g. suffix array's {key, suffix}
// items) — a strided-word view for the vector digit counter.
struct Word0Key {
  template <class T>
  u64 operator()(const T& item) const {
    u64 k;
    std::memcpy(&k, &item, sizeof(u64));
    return k;
  }
};

namespace detail {

// Words between consecutive keys when (T, KeyFn) has a vectorizable
// layout; 0 means "no layout contract, use the scalar counting loop".
template <class T, class KeyFn>
inline constexpr std::size_t kRadixKeyStrideWords =
    std::is_same_v<KeyFn, IdentityKey> && std::is_same_v<T, u64> ? 1
    : std::is_same_v<KeyFn, Word0Key> &&
            std::is_trivially_copyable_v<T> &&
            sizeof(T) % sizeof(u64) == 0
        ? sizeof(T) / sizeof(u64)
        : 0;

// One stable counting pass on digit [shift, shift+8) from `in` to `out`.
template <class T, class KeyFn>
void radix_pass(std::span<const T> in, std::span<T> out, int shift, KeyFn key,
                AccessMode mode, support::ArenaLease& arena) {
  const std::size_t n = in.size();
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block = (n + num_blocks - 1) / num_blocks;

  // All pass-local scratch is rewound when the pass ends, so an 8-pass
  // sort peaks at one pass's footprint.
  support::ArenaScope pass_scope(arena);

  // counts[digit * num_blocks + block]: bucket-major so one scan yields
  // each block's cursor start for each digit.
  auto counts = zeroed_buf<u64>(arena, kRadix * num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        // Small inputs leave trailing blocks empty (lo past n) — the
        // min keeps the vector call's length from underflowing.
        std::size_t lo = std::min(n, b * block), hi = std::min(n, lo + block);
        if constexpr (kRadixKeyStrideWords<T, KeyFn> != 0) {
          // Layout-declared keys: extract digits vector-wide into a
          // dense block-local table (2 KiB of stack), then place the
          // 256 totals into the bucket-major strided layout.
          alignas(32) u64 local[kRadix] = {};
          simd::digit_count_u64(
              reinterpret_cast<const u64*>(in.data() + lo),
              kRadixKeyStrideWords<T, KeyFn>, hi - lo, shift, local);
          for (std::size_t d = 0; d < kRadix; ++d) {
            counts[d * num_blocks + b] = local[d];
          }
        } else {
          for (std::size_t i = lo; i < hi; ++i) {
            u64 digit = (key(in[i]) >> shift) & (kRadix - 1);
            ++counts[digit * num_blocks + b];
          }
        }
      },
      1);
  // Allocation-free scan: block sums lease from the arena pool.
  par::scan_exclusive_sum(counts.span());

  if (mode == AccessMode::kChecked) {
    // Materialize destinations (the per-block cursor walk is inherently
    // sequential per block, so no pure index function exists), then let
    // the checked pattern prove they are a permutation while doing the
    // scatter (paper Listing 6(f), fused check-and-write).
    auto dest = uninit_buf<u64>(arena, n);
    auto cursors = uninit_buf<u64>(arena, kRadix * num_blocks);
    std::copy(counts.begin(), counts.end(), cursors.begin());
    sched::parallel_for(
        0, num_blocks,
        [&](std::size_t b) {
          std::size_t lo = b * block, hi = std::min(n, lo + block);
          for (std::size_t i = lo; i < hi; ++i) {
            u64 digit = (key(in[i]) >> shift) & (kRadix - 1);
            dest[i] = cursors[digit * num_blocks + b]++;
          }
        },
        1);
    par::par_ind_iter_mut(
        out, dest.cspan(),
        [&](std::size_t i, T& slot) { slot = in[i]; }, AccessMode::kChecked);
    return;
  }

  // Unchecked scatter: per-block cursors advance through disjoint
  // regions (the "scary" but fast expression). kAtomic instead tags the
  // stores with relaxed ordering — the zero-uniqueness-guarantee
  // synchronization the paper measures in Fig. 5(b).
  const bool atomic_stores = mode == AccessMode::kAtomic;
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        u64 local_cursor[kRadix];
        for (std::size_t d = 0; d < kRadix; ++d) {
          local_cursor[d] = counts[d * num_blocks + b];
        }
        for (std::size_t i = lo; i < hi; ++i) {
          u64 digit = (key(in[i]) >> shift) & (kRadix - 1);
          u64 slot = local_cursor[digit]++;
          if constexpr (kWordWiseStorable<T>) {
            if (atomic_stores) {
              relaxed_store_object(&out[slot], in[i]);
              continue;
            }
          }
          out[slot] = in[i];
        }
      },
      1);
}

}  // namespace detail

// Stable sort of `items` by key(item), which must fit in key_bits bits.
// Span form: works over any contiguous storage (arena buffers included).
template <class T, class KeyFn>
void integer_sort_by(std::span<T> items, int key_bits, KeyFn key,
                     AccessMode mode = AccessMode::kUnchecked) {
  if (items.size() < 2) return;
  OBS_SCOPE("integer_sort");
  support::ArenaLease arena;
  ArenaVec<T> buffer(arena, items.size());
  std::span<T> a(items), b(buffer.span());
  int passes = (key_bits + kRadixBits - 1) / kRadixBits;
  for (int p = 0; p < passes; ++p) {
    detail::radix_pass(std::span<const T>(a), b, p * kRadixBits, key, mode,
                       arena);
    std::swap(a, b);
  }
  if (passes % 2 == 1) {
    sched::parallel_for(0, items.size(),
                        [&](std::size_t i) { items[i] = buffer[i]; });
  }
}

template <class T, class KeyFn>
void integer_sort_by(std::vector<T>& items, int key_bits, KeyFn key,
                     AccessMode mode = AccessMode::kUnchecked) {
  integer_sort_by(std::span<T>(items), key_bits, key, mode);
}

// The isort benchmark entry point: sort u64 keys.
void integer_sort(std::vector<u64>& keys, int key_bits,
                  AccessMode mode = AccessMode::kUnchecked);

const census::BenchmarkCensus& isort_census();

}  // namespace rpb::seq
