#include "seq/sample_sort.h"

namespace rpb::seq {

const census::BenchmarkCensus& sort_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "sort",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 2, "sampling + classification reads"},
          {Pattern::kBlock, 2, "per-block bucket counts"},
          {Pattern::kStride, 2, "scan + copy back"},
          {Pattern::kDC, 1, "recursive bucket sorts"},
          {Pattern::kRngInd, 2, "sort within bucket regions"},
      }};
  return c;
}

}  // namespace rpb::seq
