#include "seq/generators.h"

#include <algorithm>
#include <cmath>

#include "sched/parallel.h"
#include "support/prng.h"

namespace rpb::seq {

std::vector<u64> exponential_keys(std::size_t n, u64 range, u64 seed) {
  Rng rng(seed);
  std::vector<u64> keys(n);
  // Map an exponential variate with rate chosen so ~e^-8 of the mass
  // clips at the top of the range (PBBS's expDist flavor).
  const double scale = static_cast<double>(range) / 8.0;
  sched::parallel_for(0, n, [&](std::size_t i) {
    double v = rng.exponential(i) * scale;
    u64 k = static_cast<u64>(v);
    keys[i] = k >= range ? range - 1 : k;
  });
  return keys;
}

std::vector<u64> uniform_keys(std::size_t n, u64 range, u64 seed) {
  Rng rng(seed);
  std::vector<u64> keys(n);
  sched::parallel_for(0, n, [&](std::size_t i) { keys[i] = rng.next(i, range); });
  return keys;
}

std::vector<double> exponential_doubles(std::size_t n, double rate, u64 seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  sched::parallel_for(0, n,
                      [&](std::size_t i) { values[i] = rng.exponential(i, rate); });
  return values;
}

std::vector<u32> random_permutation(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u32> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<u32>(i);
  // Fisher-Yates; sequential, but generation is outside timed regions.
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = rng.next(i, i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace rpb::seq
