// Deterministic input generators for the sequence benchmarks. PBBS's
// sort/dedup/hist/isort inputs use an exponential key distribution; we
// reproduce that (DESIGN.md "Substitutions").
#pragma once

#include <cstddef>
#include <vector>

#include "support/defs.h"

namespace rpb::seq {

// n keys, exponentially distributed over [0, range): many small keys,
// a long tail — the skew that stresses histogram/dedup buckets.
std::vector<u64> exponential_keys(std::size_t n, u64 range, u64 seed);

// n keys uniform over [0, range).
std::vector<u64> uniform_keys(std::size_t n, u64 range, u64 seed);

// n doubles, exponential with the given rate (comparison-sort input).
std::vector<double> exponential_doubles(std::size_t n, double rate, u64 seed);

// A permutation of [0, n) — the unique-offsets input for SngInd tests
// and benches.
std::vector<u32> random_permutation(std::size_t n, u64 seed);

}  // namespace rpb::seq
