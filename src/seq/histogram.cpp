#include "seq/histogram.h"

#include <atomic>
#include <mutex>
#include <stdexcept>

#include "core/patterns.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "obs/trace.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/simd.h"

namespace rpb::seq {

void BucketStats::add(u64 key) {
  ++count;
  sum += key;
  if (key < min) min = key;
  if (key > max) max = key;
  sum_squares += key * key;
}

void BucketStats::merge(const BucketStats& other) {
  count += other.count;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  sum_squares += other.sum_squares;
}

namespace {

// Private-copy strategy shared by both histogram flavors: per-block
// local accumulation (Block pattern) then a per-bucket merge (Stride).
// The per-block copies live in one flat arena slab (each task
// value-initializes its own slice) instead of a heap vector per task.
template <class Acc, class AddFn, class MergeFn>
std::vector<Acc> histogram_private(std::span<const u64> keys,
                                   std::size_t num_buckets, AddFn add,
                                   MergeFn merge) {
  OBS_SCOPE("histogram");
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block =
      (keys.size() + num_blocks - 1) / std::max<std::size_t>(1, num_blocks);
  support::ArenaLease arena;
  ArenaVec<Acc> partial(arena, num_blocks * num_buckets);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block;
        std::size_t hi = std::min(keys.size(), lo + block);
        Acc* local = partial.data() + b * num_buckets;
        for (std::size_t k = 0; k < num_buckets; ++k) local[k] = Acc{};
        for (std::size_t i = lo; i < hi; ++i) add(local[keys[i]], keys[i]);
      },
      1);
  std::vector<Acc> out(num_buckets);
  sched::parallel_for(0, num_buckets, [&](std::size_t bucket) {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      merge(out[bucket], partial[b * num_buckets + bucket]);
    }
  });
  return out;
}

// Plain-count specialization of the private-copy strategy: the binning
// loop `++local[keys[i]]` serializes on store-to-load forwarding
// whenever a key repeats, so the vector path (simd::bin_count_u64)
// spreads consecutive keys across lane-private sub-tables and merges
// them with vector adds. Sub-tables ride in the same arena slab as the
// per-block partials; scalar mode needs none and counts directly.
std::vector<u64> histogram_binned(std::span<const u64> keys,
                                  std::size_t num_buckets) {
  OBS_SCOPE("histogram");
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block =
      (keys.size() + num_blocks - 1) / std::max<std::size_t>(1, num_blocks);
  const std::size_t lanes = simd::bin_count_extra_lanes();
  support::ArenaLease arena;
  ArenaVec<u64> partial(arena, num_blocks * num_buckets);
  ArenaVec<u64> lane_scratch(arena, num_blocks * lanes * num_buckets);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        // min() also clamps lo: small inputs leave trailing blocks
        // empty, and the vector call's length must not underflow.
        std::size_t lo = std::min(keys.size(), b * block);
        std::size_t hi = std::min(keys.size(), lo + block);
        u64* local = partial.data() + b * num_buckets;
        u64* scratch = lane_scratch.data() + b * lanes * num_buckets;
        for (std::size_t k = 0; k < num_buckets; ++k) local[k] = 0;
        for (std::size_t k = 0; k < lanes * num_buckets; ++k) scratch[k] = 0;
        simd::bin_count_u64(keys.data() + lo, hi - lo, local, scratch,
                            num_buckets);
      },
      1);
  std::vector<u64> out(num_buckets);
  sched::parallel_for(0, num_buckets, [&](std::size_t bucket) {
    u64 total = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      total += partial[b * num_buckets + bucket];
    }
    out[bucket] = total;
  });
  return out;
}

// The census's SngInd site ("bucket scatter by key") as a checked
// expression: compute per-block bucket cursors (Block + scan, exactly
// like a counting-sort pass), materialize each key's destination, and
// let the comfortable tier prove the destinations are a permutation
// while grouping the keys — counts are then bucket boundary gaps. This
// is the strategy whose independence contract is non-trivial (cursor
// arithmetic), i.e. the one worth paying a run-time check for.
std::vector<u64> histogram_checked_scatter(std::span<const u64> keys,
                                           std::size_t num_buckets) {
  const std::size_t n = keys.size();
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t num_blocks = std::max<std::size_t>(1, 4 * threads);
  const std::size_t block = (n + num_blocks - 1) / std::max<std::size_t>(
                                                       1, num_blocks);
  support::ArenaLease arena;
  auto counts = zeroed_buf<u64>(arena, num_buckets * num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          ++counts[keys[i] * num_blocks + b];
        }
      },
      1);
  // Allocation-free scan: block sums lease from the arena pool.
  par::scan_exclusive_sum(counts.span());

  auto bucket_starts = uninit_buf<u64>(arena, num_buckets + 1);
  for (std::size_t bkt = 0; bkt < num_buckets; ++bkt) {
    bucket_starts[bkt] = counts[bkt * num_blocks];
  }
  bucket_starts[num_buckets] = n;

  auto dest = uninit_buf<u64>(arena, n);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) {
          dest[i] = counts[keys[i] * num_blocks + b]++;
        }
      },
      1);
  auto grouped = uninit_buf<u64>(arena, n);
  par::par_ind_iter_mut(
      grouped.span(), dest.cspan(),
      [&](std::size_t i, u64& slot) { slot = keys[i]; }, AccessMode::kChecked);

  std::vector<u64> out(num_buckets);
  sched::parallel_for(0, num_buckets, [&](std::size_t bkt) {
    out[bkt] = bucket_starts[bkt + 1] - bucket_starts[bkt];
  });
  return out;
}

}  // namespace

std::vector<u64> histogram(std::span<const u64> keys, std::size_t num_buckets,
                           AccessMode mode) {
  switch (mode) {
    case AccessMode::kUnchecked:
      return histogram_binned(keys, num_buckets);
    case AccessMode::kChecked:
      return histogram_checked_scatter(keys, num_buckets);
    case AccessMode::kAtomic: {
      std::vector<u64> counts(num_buckets, 0);
      sched::parallel_for(0, keys.size(), [&](std::size_t i) {
        std::atomic_ref<u64>(counts[keys[i]])
            .fetch_add(1, std::memory_order_relaxed);
      });
      return counts;
    }
    case AccessMode::kLocked: {
      std::vector<u64> counts(num_buckets, 0);
      std::vector<std::mutex> locks(std::min<std::size_t>(num_buckets, 4096));
      sched::parallel_for(0, keys.size(), [&](std::size_t i) {
        u64 k = keys[i];
        std::lock_guard<std::mutex> bucket_guard(locks[k % locks.size()]);
        ++counts[k];
      });
      return counts;
    }
  }
  throw std::invalid_argument("bad mode");
}

std::vector<BucketStats> histogram_stats(std::span<const u64> keys,
                                         std::size_t num_buckets,
                                         AccessMode mode) {
  switch (mode) {
    case AccessMode::kUnchecked:
    case AccessMode::kChecked:
      return histogram_private<BucketStats>(
          keys, num_buckets, [](BucketStats& slot, u64 key) { slot.add(key); },
          [](BucketStats& into, const BucketStats& from) { into.merge(from); });
    case AccessMode::kAtomic:
      throw std::invalid_argument(
          "histogram_stats: BucketStats is multi-word; no atomic expression "
          "exists (use kLocked)");
    case AccessMode::kLocked: {
      std::vector<BucketStats> stats(num_buckets);
      std::vector<std::mutex> locks(std::min<std::size_t>(num_buckets, 4096));
      sched::parallel_for(0, keys.size(), [&](std::size_t i) {
        u64 k = keys[i];
        std::lock_guard<std::mutex> bucket_guard(locks[k % locks.size()]);
        stats[k].add(k);
      });
      return stats;
    }
  }
  throw std::invalid_argument("bad mode");
}

const census::BenchmarkCensus& hist_census() {
  using census::Pattern;
  static const census::BenchmarkCensus c{
      "hist",
      census::Dispatch::kStatic,
      {
          {Pattern::kRO, 1, "read keys"},
          {Pattern::kBlock, 1, "per-block private accumulation"},
          {Pattern::kStride, 2, "per-bucket merge"},
          {Pattern::kSngInd, 1, "bucket scatter by key"},
          {Pattern::kAW, 1, "shared-bucket increments"},
      }};
  return c;
}

}  // namespace rpb::seq
