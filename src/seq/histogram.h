// hist benchmark: histogram of exponentially distributed keys.
//
// Expression variants (the paper's Fig. 5(b) hist point):
//  - kUnchecked: per-block private copies merged with a Stride reduce —
//    algorithmically independent, no synchronization (what unsafe
//    Rust / C++ buys you).
//  - kChecked (histogram only): the census's SngInd "bucket scatter by
//    key" — group keys by bucket through a checked scatter whose
//    destination permutation is validated by the comfortable tier's
//    fused check-and-write; counts fall out of the bucket boundaries.
//  - kAtomic: relaxed fetch_add per bucket (AW with atomics) — only
//    possible for word-sized counters.
//  - kLocked: a mutex per bucket stripe guarding the accumulator — the
//    only option for multi-word accumulators, and the source of the
//    paper's ~4x hist slowdown.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/census.h"
#include "support/defs.h"

namespace rpb::seq {

// Plain counting histogram. Keys must be < num_buckets.
std::vector<u64> histogram(std::span<const u64> keys, std::size_t num_buckets,
                           AccessMode mode);

// Multi-word per-bucket accumulator: too big for std::atomic_ref, so
// the synchronized expression must take a lock (paper Sec. 7.4).
struct BucketStats {
  u64 count = 0;
  u64 sum = 0;
  u64 min = ~u64{0};
  u64 max = 0;
  u64 sum_squares = 0;

  void add(u64 key);
  void merge(const BucketStats& other);
  bool operator==(const BucketStats&) const = default;
};

// Struct histogram. Supported modes: kUnchecked (private copies) and
// kLocked (bucket mutexes); kAtomic throws (the point of the exercise).
std::vector<BucketStats> histogram_stats(std::span<const u64> keys,
                                         std::size_t num_buckets,
                                         AccessMode mode);

const census::BenchmarkCensus& hist_census();

}  // namespace rpb::seq
