// Parallel merge sort — the paper's Listing 9: divide-and-conquer with
// rayon::join / our sched::join, the canonical fearless D&C pattern
// (children get disjoint split_at halves, verified by API shape).
// The merge itself is also parallel: binary-search splitting recurses
// on independent output ranges.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "sched/parallel.h"

namespace rpb::seq {
namespace detail {

inline constexpr std::size_t kMergeSortSerialCutoff = 1 << 12;

// Stable merge of sorted a then b into out (|out| == |a| + |b|): split
// the larger input at its median, binary-search the split point in the
// other, and recurse on the two independent halves. Tie direction
// preserves stability: b-elements equal to an a-pivot go right
// (lower_bound); a-elements equal to a b-pivot go left (upper_bound).
template <class T, class Less>
void parallel_merge(std::span<const T> a, std::span<const T> b,
                    std::span<T> out, Less less) {
  if (a.size() + b.size() <= kMergeSortSerialCutoff) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), less);
    return;
  }
  if (a.size() >= b.size()) {
    std::size_t a_mid = a.size() / 2;
    std::size_t b_mid = static_cast<std::size_t>(
        std::lower_bound(b.begin(), b.end(), a[a_mid], less) - b.begin());
    out[a_mid + b_mid] = a[a_mid];
    sched::join(
        [&] {
          parallel_merge(a.subspan(0, a_mid), b.subspan(0, b_mid),
                         out.subspan(0, a_mid + b_mid), less);
        },
        [&] {
          parallel_merge(a.subspan(a_mid + 1), b.subspan(b_mid),
                         out.subspan(a_mid + b_mid + 1), less);
        });
  } else {
    std::size_t b_mid = b.size() / 2;
    std::size_t a_mid = static_cast<std::size_t>(
        std::upper_bound(a.begin(), a.end(), b[b_mid], less) - a.begin());
    out[a_mid + b_mid] = b[b_mid];
    sched::join(
        [&] {
          parallel_merge(a.subspan(0, a_mid), b.subspan(0, b_mid),
                         out.subspan(0, a_mid + b_mid), less);
        },
        [&] {
          parallel_merge(a.subspan(a_mid), b.subspan(b_mid + 1),
                         out.subspan(a_mid + b_mid + 1), less);
        });
  }
}

// Sort `in`; the result lands in `in` if !result_in_buffer, else in
// `buffer`. Classic ping-pong to avoid copies.
template <class T, class Less>
void merge_sort_rec(std::span<T> in, std::span<T> buffer, bool result_in_buffer,
                    Less less) {
  if (in.size() <= kMergeSortSerialCutoff) {
    std::stable_sort(in.begin(), in.end(), less);
    if (result_in_buffer) {
      std::copy(in.begin(), in.end(), buffer.begin());
    }
    return;
  }
  std::size_t mid = in.size() / 2;
  // Children sort into `in`'s halves or `buffer`'s halves so the merge
  // reads from one array and writes the other (paper Listing 9's
  // split_at / split_at_mut discipline).
  sched::join(
      [&] {
        merge_sort_rec(in.subspan(0, mid), buffer.subspan(0, mid),
                       !result_in_buffer, less);
      },
      [&] {
        merge_sort_rec(in.subspan(mid), buffer.subspan(mid),
                       !result_in_buffer, less);
      });
  std::span<T> src = result_in_buffer ? in : buffer;
  std::span<T> dst = result_in_buffer ? buffer : in;
  parallel_merge(std::span<const T>(src.subspan(0, mid)),
                 std::span<const T>(src.subspan(mid)), dst, less);
}

}  // namespace detail

// Stable parallel merge sort (paper Listing 9).
template <class T, class Less = std::less<T>>
void merge_sort(std::vector<T>& data, Less less = Less()) {
  if (data.size() < 2) return;
  std::vector<T> buffer(data.size());
  detail::merge_sort_rec(std::span<T>(data), std::span<T>(buffer),
                         /*result_in_buffer=*/false, less);
}

}  // namespace rpb::seq
