// The RPB_SERVE knob family for the multi-tenant job server
// (src/serve/server.h), following the RPB_SPLIT / RPB_ARENA / RPB_OBS
// convention: env var resolved once, mirrored by a setter that tests
// and harnesses flip between (not during) served traffic.
//
//   RPB_SERVE=fair|fifo      cross-tenant dispatch policy. "fair"
//                            (default) is per-tenant deficit round
//                            robin — each scheduling round tops every
//                            backlogged tenant's deficit up by a
//                            weight-proportional quantum and dispatches
//                            only what the deficit covers, so one hog
//                            tenant cannot starve the others. "fifo"
//                            is global arrival order, the ablation
//                            baseline bench/serve contrasts against.
//   RPB_SERVE_QUEUE=N        per-tenant admission queue bound (default
//                            64): a submit against a full queue is
//                            rejected with Verdict::kRejectedQueueFull.
//   RPB_SERVE_BATCH=N        batch window (default 8): up to N small
//                            same-kernel jobs of one tenant are
//                            coalesced into a single parallel region.
//                            1 disables coalescing (and makes the
//                            per-request obs windows exact).
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rpb::serve {

// Cross-tenant dispatch policy (see file header).
enum class ServePolicy : int { kFifo = 0, kFairShare = 1 };

inline const char* serve_policy_name(ServePolicy policy) {
  switch (policy) {
    case ServePolicy::kFifo: return "fifo";
    case ServePolicy::kFairShare: return "fair";
  }
  return "?";
}

namespace detail {

inline std::atomic<int> g_serve_policy{-1};     // -1: not yet resolved
inline std::atomic<long> g_serve_queue{-1};     // -1: not yet resolved
inline std::atomic<long> g_serve_batch{-1};     // -1: not yet resolved

inline constexpr std::size_t kDefaultQueueBound = 64;
inline constexpr std::size_t kDefaultBatchWindow = 8;

inline ServePolicy resolve_serve_policy() {
  if (const char* env = std::getenv("RPB_SERVE")) {
    if (std::strcmp(env, "fifo") == 0) return ServePolicy::kFifo;
  }
  return ServePolicy::kFairShare;
}

inline long resolve_positive(const char* name, long fallback) {
  if (const char* env = std::getenv(name)) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace detail

inline ServePolicy serve_policy() {
  int policy = detail::g_serve_policy.load(std::memory_order_relaxed);
  if (policy < 0) {
    policy = static_cast<int>(detail::resolve_serve_policy());
    detail::g_serve_policy.store(policy, std::memory_order_relaxed);
  }
  return static_cast<ServePolicy>(policy);
}

// Benchmark/test knob; safe to flip between (not during) served
// traffic — a JobServer captures all three knobs at construction.
inline void set_serve_policy(ServePolicy policy) {
  detail::g_serve_policy.store(static_cast<int>(policy),
                               std::memory_order_relaxed);
}

inline std::size_t serve_queue_bound() {
  long bound = detail::g_serve_queue.load(std::memory_order_relaxed);
  if (bound < 0) {
    bound = detail::resolve_positive(
        "RPB_SERVE_QUEUE", static_cast<long>(detail::kDefaultQueueBound));
    detail::g_serve_queue.store(bound, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(bound);
}

inline void set_serve_queue_bound(std::size_t bound) {
  detail::g_serve_queue.store(bound > 0 ? static_cast<long>(bound) : 1,
                              std::memory_order_relaxed);
}

inline std::size_t serve_batch_window() {
  long window = detail::g_serve_batch.load(std::memory_order_relaxed);
  if (window < 0) {
    window = detail::resolve_positive(
        "RPB_SERVE_BATCH", static_cast<long>(detail::kDefaultBatchWindow));
    detail::g_serve_batch.store(window, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(window);
}

inline void set_serve_batch_window(std::size_t window) {
  detail::g_serve_batch.store(window > 0 ? static_cast<long>(window) : 1,
                              std::memory_order_relaxed);
}

}  // namespace rpb::serve
