// Request/response vocabulary of the multi-tenant job server. A
// JobRequest names a kernel, a deterministic input derivation (seed,
// n) against the server's shared Workload, and the tenant/priority/
// deadline metadata admission control and the fair-share scheduler
// act on. Responses carry a typed Verdict — admission is an explicit
// decision, never a silent drop — plus the structure-level output
// digest and the request's own latency/work window.
#pragma once

#include <cstddef>
#include <string>

#include "support/defs.h"

namespace rpb::serve {

// The kernels the server fronts (each mapped onto the corresponding
// batch substrate by serve/workload.h).
enum class Kernel : u32 {
  kSort = 0,
  kHistogram,
  kBfs,
  kSssp,
  kSuffixArray,
  kDedup,
  kSpmv,
  kCount
};

inline constexpr std::size_t kNumKernels =
    static_cast<std::size_t>(Kernel::kCount);

inline constexpr const char* kKernelNames[kNumKernels] = {
    "sort", "histogram", "bfs", "sssp", "sa", "dedup", "spmv"};

inline constexpr const char* kernel_name(Kernel k) {
  return kKernelNames[static_cast<std::size_t>(k)];
}

// Admission/dispatch outcome. kAdmitted means the job entered a tenant
// queue; the two kRejected verdicts are admission-time backpressure;
// kShedDeadline is decided at dispatch, when the server's virtual
// clock has already passed the job's deadline (the work is never run).
enum class Verdict : u32 {
  kAdmitted = 0,
  kRejectedQueueFull,
  kRejectedShare,
  kShedDeadline,
};

inline constexpr const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kAdmitted: return "admitted";
    case Verdict::kRejectedQueueFull: return "rejected_queue_full";
    case Verdict::kRejectedShare: return "rejected_share";
    case Verdict::kShedDeadline: return "shed_deadline";
  }
  return "?";
}

struct JobRequest {
  u32 tenant = 0;
  // Tie-break within equal deadlines: higher dispatches first.
  u32 priority = 0;
  // Deadline on the server's *virtual* clock, which advances by the
  // cost (see job_cost) of each dispatched job — deterministic under a
  // deterministic dispatch order, unlike wall time. 0 = no deadline.
  u64 deadline = 0;
  Kernel kernel = Kernel::kSort;
  u64 seed = 0;        // deterministic input derivation (workload.h)
  std::size_t n = 0;   // problem size (elements / vertices / rows)
};

// Admission-control and deficit-accounting cost estimate: one unit per
// input element, floored so zero-size probes still consume budget.
inline u64 job_cost(const JobRequest& req) {
  return req.n > 0 ? static_cast<u64>(req.n) : 1;
}

// The per-request observability window (PR 5 counters diffed around
// this request's batch) plus its latency split. Counter deltas are
// attributed per *batch*: every job coalesced into one region reports
// the region's window and how many jobs shared it (batch_jobs); with a
// batch window of 1 the attribution is exact per request.
struct JobStats {
  double queue_s = 0;       // submit -> dispatch
  double exec_s = 0;        // dispatch -> completion (whole batch)
  u64 jobs_executed = 0;    // pool jobs run inside the batch window
  u64 spawns = 0;           // forks inside the batch window
  u64 steals = 0;           // successful steals inside the batch window
  u64 injected = 0;         // region roots injected (1 per batch)
  u64 arena_leases = 0;     // arena leases opened inside the window
  u64 batch_jobs = 1;       // jobs sharing this window
  u64 batch_seq = 0;        // which dispatched region this job rode in
};

struct JobResult {
  Verdict verdict = Verdict::kAdmitted;
  u64 digest = 0;  // structure-level output hash (0 when shed/rejected)
  JobStats stats;
};

}  // namespace rpb::serve
