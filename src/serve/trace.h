// Deterministic trace generation and open-loop replay for the job
// server. A TraceSpec describes each tenant's traffic as a seeded
// arrival process (exponential inter-arrivals from the counter-based
// Rng — the schedule is a pure function of the spec, never of wall
// clock); build_trace expands it into a timed request list, and
// replay() drives a JobServer open-loop (submitters do not wait for
// completions before sending the next request — the load an overloaded
// server actually faces, which is what makes admission control and
// fair share measurable). bench/serve is a thin CLI over this module.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/request.h"
#include "support/defs.h"

namespace rpb::serve {

class JobServer;

// One tenant's traffic pattern within a trace.
struct TenantTraffic {
  u32 tenant = 0;
  std::vector<Kernel> kernels = {Kernel::kSort};  // cycled per request
  std::size_t min_n = 1 << 10;
  std::size_t max_n = 1 << 12;
  double rate_hz = 1000.0;  // mean open-loop arrival rate
  u32 priority = 0;
  // When nonzero, each request carries deadline = virtual-clock value
  // at build time + slack (in job-cost units accumulated across the
  // whole trace so far — see build_trace).
  u64 deadline_slack = 0;
  std::size_t count = 0;  // requests this tenant sends
};

struct TraceSpec {
  u64 seed = 1;
  std::vector<TenantTraffic> tenants;
};

struct TimedRequest {
  double at_s = 0;  // offset from replay start
  JobRequest req;
};

// Expands the spec into per-tenant request streams merged by arrival
// time (ties broken by tenant id, then per-tenant index: total order
// is deterministic). Request seeds, sizes, and inter-arrival gaps all
// derive from spec.seed via independent Rng streams.
std::vector<TimedRequest> build_trace(const TraceSpec& spec);

// Outcome of one replayed request (indexed like the input trace).
struct ReplayedRequest {
  u32 tenant = 0;
  Kernel kernel = Kernel::kSort;
  Verdict verdict = Verdict::kAdmitted;
  u64 digest = 0;
  // Server-side latency: queue wait + batch execution. Zero for
  // requests rejected at admission.
  double latency_s = 0;
  JobStats stats;
};

struct ReplayResult {
  std::vector<ReplayedRequest> requests;
  double wall_s = 0;  // first submit -> last completion
};

// Replays the trace against the server: one submitter thread per
// tenant sends its requests at their scheduled offsets (scaled by
// time_scale; <1 compresses, 0 = as fast as possible) without waiting
// for completions, then all tickets are awaited. The *schedule* is
// deterministic; wall-clock latencies are measurements, not inputs.
ReplayResult replay(JobServer& server, const std::vector<TimedRequest>& trace,
                    double time_scale = 1.0);

}  // namespace rpb::serve
