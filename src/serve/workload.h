// The immutable datasets a JobServer serves queries against, plus the
// kernel dispatch that turns a (kernel, seed, n) request into a
// structure-level output digest. The server holds one Workload and
// every tenant's requests read it concurrently — requests derive their
// inputs (key slices, sources, probe vectors) deterministically from
// their seed, so a served result is byte-identical to the direct batch
// call `Workload::run` makes: that equivalence is the serve suite's
// correctness gate (tests/serve_test.cpp).
//
// Every kernel's output digest is deterministic: sorts/histograms/
// depths/distances are schedule-independent values, spmv uses the
// bitwise-reproducible merge-path policy, and dedup's first-inserter
// order (the one schedule-dependent output) is canonicalized by
// sorting before hashing — "structure-level" identity, per DESIGN.md's
// determinism policy.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr.h"
#include "serve/request.h"
#include "sparse/csr_matrix.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/hash.h"

namespace rpb::serve {

// Chained order-sensitive hash of a value sequence (the digest all
// kernels reduce their output to).
inline u64 digest_init() { return 0x9e3779b97f4a7c15ull; }
inline u64 digest_step(u64 h, u64 v) { return hash64(h ^ v); }

struct WorkloadConfig {
  std::size_t num_keys = std::size_t{1} << 18;  // shared key pool (u64)
  int graph_scale = 12;                         // rmat, weighted
  std::size_t text_bytes = std::size_t{1} << 15;
  u64 seed = 42;
};

class Workload {
 public:
  explicit Workload(const WorkloadConfig& config = WorkloadConfig{});

  // Execute `kernel` on inputs derived from (seed, n) and return the
  // output digest. Scratch and staging buffers come from `lease` (the
  // per-request arena the server opens around each job); the two-arg
  // overload opens its own lease — the direct batch call.
  u64 run(Kernel kernel, u64 seed, std::size_t n,
          support::ArenaLease& lease) const;
  u64 run(Kernel kernel, u64 seed, std::size_t n) const;

  // Largest meaningful n per kernel (requests are clamped to it).
  std::size_t max_n(Kernel kernel) const;

  const graph::Graph& graph() const { return graph_; }
  std::size_t num_keys() const { return keys_.size(); }

 private:
  std::vector<u64> keys_;
  graph::Graph graph_;
  std::vector<u8> text_;
  sparse::CsrMatrix<f64> matrix_;
};

}  // namespace rpb::serve
