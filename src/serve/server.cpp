#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/counters.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/env.h"

namespace rpb::serve {
namespace {

constexpr u64 kNoDeadline = std::numeric_limits<u64>::max();

inline u64 effective_deadline(const JobRequest& req) {
  return req.deadline == 0 ? kNoDeadline : req.deadline;
}

inline double seconds_between(std::chrono::steady_clock::time_point a,
                              std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

bool JobServer::dispatches_later(const QueuedJob& a, const QueuedJob& b) {
  const u64 da = effective_deadline(a.req);
  const u64 db = effective_deadline(b.req);
  if (da != db) return da > db;
  if (a.req.priority != b.req.priority) return a.req.priority < b.req.priority;
  return a.arrival > b.arrival;
}

JobServer::JobServer(const Workload& workload, ServerConfig config)
    : workload_(workload),
      policy_(config.policy),
      queue_bound_(config.queue_bound > 0 ? config.queue_bound
                                          : serve_queue_bound()),
      batch_window_(config.batch_window > 0 ? config.batch_window
                                            : serve_batch_window()),
      small_job_n_(std::max<std::size_t>(config.small_job_n, 1)),
      deficit_quantum_(std::max<u64>(config.deficit_quantum, 1)),
      share_capacity_(config.share_capacity),
      total_weight_([&] {
        u64 total = 0;
        for (const TenantConfig& t : config.tenants) {
          total += std::max<u32>(t.weight, 1);
        }
        return std::max<u64>(total, 1);
      }()),
      pool_(config.num_threads > 0 ? config.num_threads : default_threads()) {
  assert(!config.tenants.empty() && "JobServer needs at least one tenant");
  tenants_.resize(config.tenants.size());
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    tenants_[i].config = config.tenants[i];
    tenants_[i].config.weight = std::max<u32>(tenants_[i].config.weight, 1);
  }
  paused_ = config.start_paused;
  const std::size_t lanes = std::max<std::size_t>(config.lanes, 1);
  lane_threads_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lane_threads_.emplace_back([this] { lane_loop(); });
  }
}

JobServer::~JobServer() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    stopping_ = true;
    paused_ = false;  // teardown overrides pause: admitted work must finish
  }
  work_cv_.notify_all();
  for (std::thread& t : lane_threads_) t.join();
}

SubmitOutcome JobServer::submit(const JobRequest& request) {
  assert(request.tenant < tenants_.size() && "unknown tenant id");
  const u64 cost = job_cost(request);
  SubmitOutcome outcome;
  {
    std::lock_guard<std::mutex> guard(mu_);
    TenantState& tenant = tenants_[request.tenant];
    tenant.totals.submitted += 1;
    if (tenant.heap.size() >= queue_bound_) {
      tenant.totals.rejected_queue += 1;
      obs::bump(obs::Counter::kServeRejectedQueue);
      outcome.verdict = Verdict::kRejectedQueueFull;
      return outcome;
    }
    // Share rule: a tenant's outstanding queued cost may not exceed its
    // weight-proportional slice of the configured capacity. Comparison
    // is cross-multiplied to stay in integers.
    if (share_capacity_ > 0 &&
        (tenant.queued_cost + cost) * total_weight_ >
            share_capacity_ * static_cast<u64>(tenant.config.weight)) {
      tenant.totals.rejected_share += 1;
      obs::bump(obs::Counter::kServeRejectedShare);
      outcome.verdict = Verdict::kRejectedShare;
      return outcome;
    }
    QueuedJob job;
    job.req = request;
    job.arrival = arrival_seq_++;
    job.submit_time = Clock::now();
    job.ticket = std::make_shared<Ticket>();
    outcome.ticket = job.ticket;
    tenant.heap.push_back(std::move(job));
    std::push_heap(tenant.heap.begin(), tenant.heap.end(), dispatches_later);
    tenant.queued_cost += cost;
    tenant.totals.admitted += 1;
    obs::bump(obs::Counter::kServeAdmitted);
  }
  work_cv_.notify_one();
  return outcome;
}

void JobServer::resume() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void JobServer::pause() {
  std::lock_guard<std::mutex> guard(mu_);
  paused_ = true;
}

void JobServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return !has_queued_locked() && in_flight_batches_ == 0;
  });
}

TenantTotals JobServer::tenant_totals(u32 tenant) const {
  std::lock_guard<std::mutex> guard(mu_);
  assert(tenant < tenants_.size());
  return tenants_[tenant].totals;
}

bool JobServer::has_queued_locked() const {
  for (const TenantState& t : tenants_) {
    if (!t.heap.empty()) return true;
  }
  return false;
}

void JobServer::shed_expired_locked(TenantState& tenant) {
  const u64 now = virtual_now_.load(std::memory_order_relaxed);
  while (!tenant.heap.empty()) {
    const QueuedJob& head = tenant.heap.front();
    const u64 deadline = effective_deadline(head.req);
    if (deadline == kNoDeadline || now <= deadline) return;
    std::pop_heap(tenant.heap.begin(), tenant.heap.end(), dispatches_later);
    QueuedJob shed = std::move(tenant.heap.back());
    tenant.heap.pop_back();
    tenant.queued_cost -= job_cost(shed.req);
    tenant.totals.shed_deadline += 1;
    obs::bump(obs::Counter::kServeShedDeadline);
    JobResult result;
    result.verdict = Verdict::kShedDeadline;
    result.stats.queue_s = seconds_between(shed.submit_time, Clock::now());
    shed.ticket->complete(std::move(result));
  }
}

std::vector<JobServer::QueuedJob> JobServer::batch_from_locked(
    TenantState& tenant, u64* batch_id) {
  std::vector<QueuedJob> batch;
  const bool fair = policy_ == ServePolicy::kFairShare;
  while (!tenant.heap.empty() &&
         batch.size() < std::max<std::size_t>(batch_window_, 1)) {
    shed_expired_locked(tenant);
    if (tenant.heap.empty()) break;
    const QueuedJob& head = tenant.heap.front();
    const u64 cost = job_cost(head.req);
    if (!batch.empty()) {
      // Coalescing beyond the first job: same kernel, both sides small
      // enough that one parallel region amortizes the dispatch.
      if (head.req.kernel != batch.front().req.kernel ||
          head.req.n > small_job_n_ || batch.front().req.n > small_job_n_) {
        break;
      }
    }
    if (fair && cost > tenant.deficit) break;
    std::pop_heap(tenant.heap.begin(), tenant.heap.end(), dispatches_later);
    batch.push_back(std::move(tenant.heap.back()));
    tenant.heap.pop_back();
    tenant.queued_cost -= cost;
    if (fair) tenant.deficit -= cost;
    virtual_now_.fetch_add(cost, std::memory_order_relaxed);
  }
  if (!batch.empty()) *batch_id = batch_seq_++;
  return batch;
}

std::vector<JobServer::QueuedJob> JobServer::next_batch_locked(u64* batch_id) {
  const std::size_t n = tenants_.size();
  if (policy_ == ServePolicy::kFifo) {
    // Pick the tenant whose head job dispatches earliest (EDF order,
    // which collapses to global arrival order when no deadlines are
    // set) — the no-isolation baseline.
    for (TenantState& t : tenants_) shed_expired_locked(t);
    TenantState* best = nullptr;
    for (TenantState& t : tenants_) {
      if (t.heap.empty()) continue;
      if (best == nullptr ||
          dispatches_later(best->heap.front(), t.heap.front())) {
        best = &t;
      }
    }
    if (best == nullptr) return {};
    return batch_from_locked(*best, batch_id);
  }
  // Deficit round robin: visit tenants from the cursor; each backlogged
  // tenant visited earns a weight-proportional quantum, and the first
  // whose head fits its deficit dispatches. Deficits persist across
  // rounds, so every backlogged tenant's turn arrives in bounded
  // rounds regardless of job cost.
  for (;;) {
    bool any_backlog = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (rr_index_ + i) % n;
      TenantState& tenant = tenants_[idx];
      shed_expired_locked(tenant);
      if (tenant.heap.empty()) {
        tenant.deficit = 0;  // classic DRR: no credit while idle
        continue;
      }
      any_backlog = true;
      tenant.deficit +=
          deficit_quantum_ * static_cast<u64>(tenant.config.weight);
      if (job_cost(tenant.heap.front().req) <= tenant.deficit) {
        auto batch = batch_from_locked(tenant, batch_id);
        rr_index_ = (idx + 1) % n;
        if (!batch.empty()) return batch;
        // Everything dispatchable was shed; keep scanning.
        any_backlog = false;
        continue;
      }
    }
    if (!any_backlog && !has_queued_locked()) return {};
  }
}

void JobServer::lane_loop() {
  for (;;) {
    std::vector<QueuedJob> batch;
    u64 batch_id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && has_queued_locked());
      });
      if (!stopping_ || has_queued_locked()) {
        if (paused_ && !stopping_) continue;
        batch = next_batch_locked(&batch_id);
      }
      if (batch.empty()) {
        if (stopping_ && !has_queued_locked()) return;
        // Shedding may have emptied the queues entirely.
        if (!has_queued_locked()) idle_cv_.notify_all();
        continue;
      }
      in_flight_batches_ += 1;
    }
    execute_batch(std::move(batch), batch_id);
    {
      std::lock_guard<std::mutex> guard(mu_);
      in_flight_batches_ -= 1;
      if (in_flight_batches_ == 0 && !has_queued_locked()) {
        idle_cv_.notify_all();
      }
    }
  }
}

void JobServer::execute_batch(std::vector<QueuedJob> batch, u64 batch_id) {
  const auto dispatch_time = Clock::now();
  obs::bump(obs::Counter::kServeBatches);
  obs::bump(obs::Counter::kServeBatchedJobs, batch.size());

  // Per-request obs window: counter totals diffed around this batch's
  // parallel region. Exact attribution when one lane dispatches one
  // job at a time; overlapping lanes make the window an upper bound.
  const bool obs_on = obs::counters_enabled();
  obs::StatsSnapshot before;
  if (obs_on) before = obs::snapshot_counters();

  std::vector<u64> digests(batch.size(), 0);
  {
    // Route every kernel inside onto this server's pool instance, and
    // trip the counter if anything reaches for the global singleton.
    sched::PoolBinding binding(pool_);
    pool_.run([&] {
      sched::GlobalPoolBan ban;
      if (batch.size() == 1) {
        const JobRequest& req = batch.front().req;
        support::ArenaLease lease;  // the request's private scratch
        digests[0] = workload_.run(req.kernel, req.seed, req.n, lease);
      } else {
        // Coalesced small jobs: one region, one unit of work per job,
        // each with its own arena lease (leases are pool-recycled, so
        // per-job leasing stays cheap — see DESIGN.md §6).
        sched::parallel_for(std::size_t{0}, batch.size(),
                           [&](std::size_t i) {
                             sched::GlobalPoolBan nested_ban;
                             const JobRequest& req = batch[i].req;
                             support::ArenaLease lease;
                             digests[i] =
                                 workload_.run(req.kernel, req.seed, req.n,
                                               lease);
                           },
                           /*grain=*/1);
      }
    });
  }

  const auto done_time = Clock::now();
  JobStats window;
  if (obs_on) {
    obs::StatsSnapshot after = obs::snapshot_counters();
    auto delta = [&](obs::Counter c) {
      return after.total(c) - before.total(c);
    };
    window.jobs_executed = delta(obs::Counter::kJobsExecuted);
    window.spawns = delta(obs::Counter::kSpawns);
    window.steals = delta(obs::Counter::kStealsSucceeded);
    window.injected = delta(obs::Counter::kInjectedJobs);
    window.arena_leases = delta(obs::Counter::kArenaLeaseReuses) +
                          delta(obs::Counter::kArenaLeaseCreates);
  }
  window.exec_s = seconds_between(dispatch_time, done_time);
  window.batch_jobs = batch.size();
  window.batch_seq = batch_id;

  std::vector<u32> completed_per_tenant(tenants_.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    JobResult result;
    result.verdict = Verdict::kAdmitted;
    result.digest = digests[i];
    result.stats = window;
    result.stats.queue_s = seconds_between(batch[i].submit_time, dispatch_time);
    completed_per_tenant[batch[i].req.tenant] += 1;
    batch[i].ticket->complete(std::move(result));
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      tenants_[t].totals.completed += completed_per_tenant[t];
    }
  }
}

}  // namespace rpb::serve
