#include "serve/trace.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "serve/server.h"
#include "support/prng.h"

namespace rpb::serve {

std::vector<TimedRequest> build_trace(const TraceSpec& spec) {
  std::vector<TimedRequest> trace;
  Rng root(spec.seed);
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    const TenantTraffic& traffic = spec.tenants[t];
    if (traffic.count == 0 || traffic.kernels.empty()) continue;
    Rng gaps = root.fork(2 * t);
    Rng sizes = root.fork(2 * t + 1);
    double at = 0;
    u64 cost_so_far = 0;
    for (std::size_t i = 0; i < traffic.count; ++i) {
      at += gaps.exponential(i, traffic.rate_hz);
      TimedRequest timed;
      timed.at_s = at;
      JobRequest& req = timed.req;
      req.tenant = traffic.tenant;
      req.priority = traffic.priority;
      req.kernel = traffic.kernels[i % traffic.kernels.size()];
      req.seed = sizes.bits(2 * i);
      const std::size_t lo = std::max<std::size_t>(traffic.min_n, 1);
      const std::size_t hi = std::max(traffic.max_n, lo);
      req.n = lo + static_cast<std::size_t>(
                       sizes.next(2 * i + 1, static_cast<u64>(hi - lo + 1)));
      if (traffic.deadline_slack > 0) {
        // Deadline in virtual time: the cost this tenant has pushed so
        // far plus slack. A server keeping up with the tenant meets
        // it; one running behind (hogged) sheds.
        req.deadline = cost_so_far + traffic.deadline_slack;
      }
      cost_so_far += job_cost(req);
      trace.push_back(timed);
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TimedRequest& a, const TimedRequest& b) {
                     if (a.at_s != b.at_s) return a.at_s < b.at_s;
                     return a.req.tenant < b.req.tenant;
                   });
  return trace;
}

ReplayResult replay(JobServer& server, const std::vector<TimedRequest>& trace,
                    double time_scale) {
  using Clock = std::chrono::steady_clock;
  ReplayResult result;
  result.requests.resize(trace.size());
  std::vector<std::shared_ptr<Ticket>> tickets(trace.size());

  // Pre-split the trace per tenant so each submitter thread walks its
  // own stream in order (indices into the merged trace).
  u32 max_tenant = 0;
  for (const TimedRequest& r : trace) {
    max_tenant = std::max(max_tenant, r.req.tenant);
  }
  std::vector<std::vector<std::size_t>> per_tenant(max_tenant + 1);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    per_tenant[trace[i].req.tenant].push_back(i);
  }

  const auto start = Clock::now();
  std::vector<std::thread> submitters;
  submitters.reserve(per_tenant.size());
  for (const std::vector<std::size_t>& stream : per_tenant) {
    if (stream.empty()) continue;
    submitters.emplace_back([&, stream] {
      for (std::size_t idx : stream) {
        if (time_scale > 0) {
          const auto due =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(trace[idx].at_s *
                                                        time_scale));
          std::this_thread::sleep_until(due);
        }
        SubmitOutcome outcome = server.submit(trace[idx].req);
        result.requests[idx].verdict = outcome.verdict;
        tickets[idx] = std::move(outcome.ticket);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (std::size_t i = 0; i < trace.size(); ++i) {
    ReplayedRequest& out = result.requests[i];
    out.tenant = trace[i].req.tenant;
    out.kernel = trace[i].req.kernel;
    if (!tickets[i]) continue;  // rejected at admission
    const JobResult& job = tickets[i]->wait();
    out.verdict = job.verdict;
    out.digest = job.digest;
    out.stats = job.stats;
    out.latency_s = job.stats.queue_s + job.stats.exec_s;
  }
  result.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace rpb::serve
