// Multi-tenant job server: the admission-controlled service layer in
// front of the kernel substrates (the ROADMAP's "millions of users"
// refactor). Concurrent external submitters enqueue kernel requests
// tagged with tenant/priority/deadline; the server answers each submit
// with a typed Verdict (bounded per-tenant queues and a share cap are
// the backpressure), schedules admitted work across tenants with
// per-tenant deficit round robin over a *constructible* ThreadPool
// instance (never the process-wide singleton — sched::current_pool is
// the seam, sched::GlobalPoolBan the tripwire), coalesces small
// same-kernel jobs into one parallel region, and scopes an arena lease
// plus an obs counter window around every dispatched batch so each
// response carries its own work/steal/latency stats.
//
// Scheduling model. Within a tenant, jobs dispatch in EDF order
// (deadline, then priority desc, then arrival). Across tenants:
//   fifo  the tenant whose head job arrived first — global arrival
//         order when no deadlines are set; the baseline bench/serve
//         contrasts against.
//   fair  deficit round robin (Shreedhar & Varghese): each visited
//         backlogged tenant's deficit grows by a weight-proportional
//         quantum, and it may dispatch only jobs whose cost (job_cost:
//         ~input size) fits its deficit. A hog paying for every byte
//         it serves cannot starve a light tenant; this is the
//         composable-scheduler-instance architecture Kvik argues for
//         (PAPERS.md), with the policy in one pluggable decision.
//
// Deadlines are virtual-time: the server's clock advances by the cost
// of each dispatched job, so shed verdicts are a deterministic
// function of dispatch order, not of wall time (tests replay them
// exactly). Dispatch lanes (config.lanes) bound how many batches
// execute concurrently on the pool; with lanes=1 and batch_window=1
// the per-request obs windows are exact and sum to the pool totals.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/thread_pool.h"
#include "serve/knobs.h"
#include "serve/request.h"
#include "serve/workload.h"
#include "support/defs.h"

namespace rpb::serve {

// Completion handle for one admitted request. wait() blocks until the
// job has executed (or been shed at dispatch) and returns the result;
// handles outlive the server (shared ownership).
class Ticket {
 public:
  const JobResult& wait() {
    done_.wait(0, std::memory_order_acquire);
    return result_;
  }

  bool done() const { return done_.load(std::memory_order_acquire) != 0; }

 private:
  friend class JobServer;
  void complete(JobResult result) {
    result_ = std::move(result);
    done_.store(1, std::memory_order_release);
    done_.notify_all();
  }

  JobResult result_;
  std::atomic<u32> done_{0};
};

struct SubmitOutcome {
  Verdict verdict = Verdict::kAdmitted;
  std::shared_ptr<Ticket> ticket;  // null iff rejected at admission
};

struct TenantConfig {
  u32 weight = 1;  // fair-share weight (deficit quantum multiplier)
};

struct ServerConfig {
  std::vector<TenantConfig> tenants;  // at least one
  std::size_t num_threads = 0;        // pool workers; 0 = default_threads()
  std::size_t lanes = 1;              // concurrent dispatch lanes
  // Captured from the RPB_SERVE knob family when left at the sentinel.
  ServePolicy policy = serve_policy();
  std::size_t queue_bound = 0;    // 0 = serve_queue_bound()
  std::size_t batch_window = 0;   // 0 = serve_batch_window()
  // Jobs with n <= small_job_n are coalescing candidates.
  std::size_t small_job_n = std::size_t{1} << 13;
  // DRR quantum added per visited tenant per round (x weight).
  u64 deficit_quantum = std::size_t{1} << 13;
  // Total outstanding-cost capacity split between tenants by weight; a
  // tenant queueing beyond its share is rejected. 0 = share cap off.
  u64 share_capacity = 0;
  // Construct with dispatch parked (tests build a deterministic queue
  // state, then resume()).
  bool start_paused = false;
};

// Per-tenant verdict/completion accounting (relaxed counters; exact
// once traffic is drained).
struct TenantTotals {
  u64 submitted = 0;
  u64 admitted = 0;
  u64 completed = 0;
  u64 shed_deadline = 0;
  u64 rejected_queue = 0;
  u64 rejected_share = 0;
};

class JobServer {
 public:
  // The workload must outlive the server. The server owns its pool
  // instance: kernels dispatched here never touch ThreadPool::global().
  JobServer(const Workload& workload, ServerConfig config);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  // Thread-safe admission: O(log queue) under the scheduler mutex.
  SubmitOutcome submit(const JobRequest& request);

  // Unpark dispatch (no-op unless start_paused / pause() happened).
  void resume();
  // Park dispatch after the in-flight batches finish.
  void pause();

  // Block until every admitted job has completed (queues empty, no
  // batch in flight). Submissions racing with drain may extend it.
  void drain();

  TenantTotals tenant_totals(u32 tenant) const;
  std::size_t num_tenants() const { return tenants_.size(); }
  sched::ThreadPool& pool() { return pool_; }
  u64 virtual_now() const {
    return virtual_now_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct QueuedJob {
    JobRequest req;
    u64 arrival = 0;  // global arrival sequence number
    Clock::time_point submit_time;
    std::shared_ptr<Ticket> ticket;
  };

  // Min-heap order: earliest deadline first (none = +inf), then higher
  // priority, then arrival. Returns true when a should dispatch later
  // than b (max-heap comparator inversion).
  static bool dispatches_later(const QueuedJob& a, const QueuedJob& b);

  struct TenantState {
    TenantConfig config;
    std::vector<QueuedJob> heap;  // std::push_heap w/ dispatches_later
    u64 queued_cost = 0;
    u64 deficit = 0;
    TenantTotals totals;
  };

  void lane_loop();
  // Forms the next batch; caller holds mu_ and has checked work exists.
  // Sheds expired heads as a side effect; may return empty (everything
  // pending was shed). Writes the dispatched region's sequence number.
  std::vector<QueuedJob> next_batch_locked(u64* batch_id);
  std::vector<QueuedJob> batch_from_locked(TenantState& tenant, u64* batch_id);
  // Drops expired jobs off the tenant's heap head (kShedDeadline).
  void shed_expired_locked(TenantState& tenant);
  void execute_batch(std::vector<QueuedJob> batch, u64 batch_id);
  bool has_queued_locked() const;

  const Workload& workload_;
  const ServePolicy policy_;
  const std::size_t queue_bound_;
  const std::size_t batch_window_;
  const std::size_t small_job_n_;
  const u64 deficit_quantum_;
  const u64 share_capacity_;
  const u64 total_weight_;

  sched::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<TenantState> tenants_;
  std::size_t rr_index_ = 0;        // DRR round-robin cursor
  u64 arrival_seq_ = 0;
  u64 batch_seq_ = 0;
  std::size_t in_flight_batches_ = 0;
  bool paused_ = false;
  bool stopping_ = false;

  std::atomic<u64> virtual_now_{0};

  std::vector<std::thread> lane_threads_;
};

}  // namespace rpb::serve
