#include "serve/workload.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "core/access_mode.h"
#include "core/uninit_buf.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/sssp.h"
#include "seq/dedup.h"
#include "seq/histogram.h"
#include "seq/sample_sort.h"
#include "sparse/spmv.h"
#include "support/hash.h"
#include "support/prng.h"
#include "text/corpus.h"
#include "text/suffix_array.h"

namespace rpb::serve {
namespace {

u64 digest_u64s(std::span<const u64> values) {
  u64 h = digest_init();
  for (u64 v : values) h = digest_step(h, v);
  return h;
}

u64 digest_u32s(std::span<const u32> values) {
  u64 h = digest_init();
  for (u32 v : values) h = digest_step(h, v);
  return h;
}

// A request's window into the shared pool: n items starting at a
// seed-derived offset (always in bounds; the pool is at least n).
std::size_t slice_offset(u64 seed, std::size_t pool, std::size_t n) {
  if (pool <= n) return 0;
  return static_cast<std::size_t>(hash64(seed) % (pool - n));
}

}  // namespace

Workload::Workload(const WorkloadConfig& config)
    : graph_(graph::make_rmat(config.graph_scale, config.seed)) {
  Rng rng(config.seed);
  keys_.resize(std::max<std::size_t>(config.num_keys, 2));
  for (std::size_t i = 0; i < keys_.size(); ++i) keys_[i] = rng.bits(i);
  text_ = text::make_corpus(std::max<std::size_t>(config.text_bytes, 64),
                            config.seed ^ 0x7e57, /*planted_repeat_len=*/0);
  matrix_ = sparse::CsrMatrix<f64>::from_graph(graph_);
}

std::size_t Workload::max_n(Kernel kernel) const {
  switch (kernel) {
    case Kernel::kSort:
    case Kernel::kHistogram:
    case Kernel::kDedup:
      return keys_.size();
    case Kernel::kBfs:
    case Kernel::kSssp:
      return graph_.num_vertices();
    case Kernel::kSuffixArray:
      return text_.size();
    case Kernel::kSpmv:
      return matrix_.view().num_rows();
    case Kernel::kCount:
      break;
  }
  return 1;
}

u64 Workload::run(Kernel kernel, u64 seed, std::size_t n,
                  support::ArenaLease& lease) const {
  support::ArenaScope scope(lease);
  n = std::min(std::max<std::size_t>(n, 1), max_n(kernel));
  switch (kernel) {
    case Kernel::kSort: {
      // sample_sort's interface wants an owning vector; the copy is the
      // request's private working set.
      std::size_t off = slice_offset(seed, keys_.size(), n);
      std::vector<u64> items(keys_.begin() + off, keys_.begin() + off + n);
      seq::sample_sort(items, std::less<u64>(), AccessMode::kUnchecked);
      return digest_u64s(items);
    }
    case Kernel::kHistogram: {
      constexpr std::size_t kBuckets = 256;
      std::size_t off = slice_offset(seed, keys_.size(), n);
      ArenaVec<u64> staged(lease, n);
      for (std::size_t i = 0; i < n; ++i) {
        staged[i] = keys_[off + i] % kBuckets;
      }
      auto counts =
          seq::histogram(staged.cspan(), kBuckets, AccessMode::kUnchecked);
      return digest_u64s(counts);
    }
    case Kernel::kBfs: {
      auto source =
          static_cast<graph::VertexId>(hash64(seed) % graph_.num_vertices());
      auto depths = graph::bfs_level_sync(graph_, source);
      return digest_u32s(depths);
    }
    case Kernel::kSssp: {
      auto source = static_cast<graph::VertexId>(hash64(seed ^ 1) %
                                                 graph_.num_vertices());
      auto dist = graph::sssp_delta_stepping(graph_, source);
      return digest_u64s(dist);
    }
    case Kernel::kSuffixArray: {
      std::size_t off = slice_offset(seed, text_.size(), n);
      auto sa = text::suffix_array(
          std::span<const u8>(text_.data() + off, n), AccessMode::kUnchecked);
      return digest_u32s(sa);
    }
    case Kernel::kDedup: {
      // Fold the slice onto a smaller key range so duplicates exist and
      // the concurrent hash-set insertion has real collisions.
      std::size_t off = slice_offset(seed, keys_.size(), n);
      ArenaVec<u64> staged(lease, n);
      const u64 range = static_cast<u64>(n / 2 + 1);
      for (std::size_t i = 0; i < n; ++i) {
        staged[i] = keys_[off + i] % range;
      }
      auto distinct = seq::dedup(staged.cspan(), AccessMode::kAtomic);
      // First-inserter order is schedule-dependent; the *set* is not.
      // Canonicalize before hashing (structure-level identity).
      std::sort(distinct.begin(), distinct.end());
      return digest_u64s(distinct);
    }
    case Kernel::kSpmv: {
      const sparse::CsrView<f64> a = matrix_.view();
      ArenaVec<f64> x(lease, a.num_cols);
      for (std::size_t i = 0; i < a.num_cols; ++i) {
        x[i] = static_cast<f64>(hash64(seed ^ i) & 0xff) * (1.0 / 256.0);
      }
      ArenaVec<f64> y(lease, a.num_rows());
      sparse::spmv(a, x.cspan(), y.span(), AccessMode::kUnchecked,
                   sparse::SpmvPolicy::kMergePath);
      u64 h = digest_init();
      for (std::size_t i = 0; i < y.size(); ++i) {
        u64 bits;
        static_assert(sizeof(bits) == sizeof(f64));
        std::memcpy(&bits, &y[i], sizeof(bits));
        h = digest_step(h, bits);
      }
      return h;
    }
    case Kernel::kCount:
      break;
  }
  return 0;
}

u64 Workload::run(Kernel kernel, u64 seed, std::size_t n) const {
  support::ArenaLease lease;
  return run(kernel, seed, n, lease);
}

}  // namespace rpb::serve
