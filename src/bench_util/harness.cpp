#include "bench_util/harness.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "support/timer.h"

namespace rpb::bench {

Measurement measure(const std::function<void()>& fn, std::size_t repeats) {
  return measure_with_setup([] {}, fn, repeats);
}

Measurement measure_with_setup(const std::function<void()>& setup,
                               const std::function<void()>& run,
                               std::size_t repeats) {
  if (repeats == 0) repeats = 1;
  setup();
  run();  // warmup, untimed
  Measurement m;
  m.repeats = repeats;
  std::vector<double> times(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    setup();
    Timer timer;
    run();
    times[r] = timer.elapsed();
  }
  double sum = 0;
  m.min_seconds = std::numeric_limits<double>::infinity();
  for (double t : times) {
    sum += t;
    if (t < m.min_seconds) m.min_seconds = t;
  }
  m.mean_seconds = sum / static_cast<double>(repeats);
  double var = 0;
  for (double t : times) {
    var += (t - m.mean_seconds) * (t - m.mean_seconds);
  }
  m.stddev_seconds = std::sqrt(var / static_cast<double>(repeats));
  return m;
}

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::print() const {
  if (rows_.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size()) rule += "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string fmt_ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

double gmean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace rpb::bench
