#include "bench_util/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/counters.h"
#include "support/simd.h"
#include "support/timer.h"

namespace rpb::bench {
namespace {

// Linear-interpolation quantile of an already-sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Measurement measure(const std::function<void()>& fn, std::size_t repeats) {
  return measure_with_setup([] {}, fn, repeats);
}

Measurement measure_with_setup(const std::function<void()>& setup,
                               const std::function<void()>& run,
                               std::size_t repeats) {
  if (repeats == 0) repeats = 1;
  setup();
  run();  // warmup, untimed
  Measurement m;
  m.repeats = repeats;
  std::vector<double> times(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    setup();
    Timer timer;
    run();
    times[r] = timer.elapsed();
  }
  double sum = 0;
  m.min_seconds = std::numeric_limits<double>::infinity();
  for (double t : times) {
    sum += t;
    if (t < m.min_seconds) m.min_seconds = t;
  }
  m.mean_seconds = sum / static_cast<double>(repeats);
  double var = 0;
  for (double t : times) {
    var += (t - m.mean_seconds) * (t - m.mean_seconds);
  }
  m.stddev_seconds = std::sqrt(var / static_cast<double>(repeats));
  std::sort(times.begin(), times.end());
  m.median_seconds = quantile_sorted(times, 0.5);
  m.p10_seconds = quantile_sorted(times, 0.1);
  m.p90_seconds = quantile_sorted(times, 0.9);
  return m;
}

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::print() const {
  if (rows_.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size()) rule += "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string fmt_ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

double gmean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Reads the double value following `"key":` inside record. Returns false
// if the key is missing or the value does not parse as a finite number.
bool read_number_field(const std::string& record, const std::string& key,
                       double* out) {
  std::string needle = "\"" + key + "\":";
  std::size_t pos = record.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = record.c_str() + pos + needle.size();
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool write_bench_json(const std::string& path, const std::string& suite,
                      const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"schema\": \"rpb-bench-v1\",\n  \"suite\": \"%s\",\n",
               json_escape(suite).c_str());
  // Detected features vs active mode: a diff tool needs both to tell a
  // code regression apart from "this box dispatches different bodies".
  const support::SimdLevel detected = support::simd_detected();
  std::fprintf(f,
               "  \"env\": {\"simd\": \"%s\", \"cpu_sse2\": %s, "
               "\"cpu_avx2\": %s, \"cpu_popcnt\": %s},\n",
               support::simd_level_name(support::simd_level()),
               detected >= support::SimdLevel::kSse2 ? "true" : "false",
               detected >= support::SimdLevel::kAvx2 ? "true" : "false",
               support::simd_has_popcnt() ? "true" : "false");
  if (obs::counters_enabled()) {
    // Before the records array on purpose: validate_bench_json treats
    // every object after "records": [ as a record.
    std::fprintf(f, "  \"obs\": %s,\n",
                 obs::snapshot_counters().to_json().c_str());
  }
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %zu, \"n\": %zu, "
                 "\"repeats\": %zu, \"median_s\": %.9e, \"p10_s\": %.9e, "
                 "\"p90_s\": %.9e, \"mean_s\": %.9e",
                 json_escape(r.name).c_str(), r.threads, r.n, r.repeats,
                 r.median_s, r.p10_s, r.p90_s, r.mean_s);
    if (r.has_latency) {
      std::fprintf(f, ", \"p50_s\": %.9e, \"p99_s\": %.9e", r.p50_s, r.p99_s);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  bool ok = std::fclose(f) == 0;
  return ok;
}

bool validate_bench_json(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) return fail(error, "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  // Structural sanity: balanced braces/brackets outside strings.
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth_obj;
    if (c == '}') --depth_obj;
    if (c == '[') ++depth_arr;
    if (c == ']') --depth_arr;
    if (depth_obj < 0 || depth_arr < 0) return fail(error, "unbalanced JSON");
  }
  if (depth_obj != 0 || depth_arr != 0 || in_string) {
    return fail(error, "unbalanced JSON");
  }
  if (text.find("\"schema\": \"rpb-bench-v1\"") == std::string::npos) {
    return fail(error, "missing schema tag rpb-bench-v1");
  }
  std::size_t records_pos = text.find("\"records\": [");
  if (records_pos == std::string::npos) {
    return fail(error, "missing records array");
  }

  // The env feature block is mandatory (and must precede the records
  // array so the record scan below never walks into it).
  std::size_t env_pos = text.find("\"env\": {");
  if (env_pos == std::string::npos || env_pos > records_pos) {
    return fail(error, "missing env block before records array");
  }
  std::string env_head = text.substr(env_pos, records_pos - env_pos);
  for (const char* key :
       {"\"simd\": \"", "\"cpu_sse2\": ", "\"cpu_avx2\": ", "\"cpu_popcnt\": "}) {
    if (env_head.find(key) == std::string::npos) {
      return fail(error, std::string("env block missing field ") + key);
    }
  }

  // Optional obs stats block (RPB_OBS runs): written before the records
  // array, so the record scan below never sees its nested objects.
  std::size_t obs_pos = text.find("\"obs\": {");
  if (obs_pos != std::string::npos) {
    if (obs_pos > records_pos) {
      return fail(error, "obs block must precede records array");
    }
    std::string head = text.substr(obs_pos, records_pos - obs_pos);
    if (head.find("\"counters\": {") == std::string::npos) {
      return fail(error, "obs block missing counters object");
    }
    if (head.find("\"per_worker\": [") == std::string::npos) {
      return fail(error, "obs block missing per_worker array");
    }
  }

  std::size_t record_count = 0;
  std::size_t cursor = records_pos;
  for (;;) {
    std::size_t open = text.find('{', cursor + 1);
    if (open == std::string::npos) break;
    std::size_t close = text.find('}', open);
    if (close == std::string::npos) return fail(error, "truncated record");
    std::string record = text.substr(open, close - open + 1);
    if (record.find("\"name\": \"") == std::string::npos) {
      return fail(error, "record missing name");
    }
    for (const char* key : {"threads", "n", "repeats", "median_s", "p10_s",
                            "p90_s", "mean_s"}) {
      double v = 0;
      if (!read_number_field(record, key, &v) || v < 0) {
        return fail(error, std::string("record missing/invalid field ") + key);
      }
    }
    // Latency percentiles are optional, but when a record carries one
    // it must carry both and both must parse as non-negative numbers.
    const bool has_p50 = record.find("\"p50_s\":") != std::string::npos;
    const bool has_p99 = record.find("\"p99_s\":") != std::string::npos;
    if (has_p50 != has_p99) {
      return fail(error, "record has only one of p50_s/p99_s");
    }
    if (has_p50) {
      for (const char* key : {"p50_s", "p99_s"}) {
        double v = 0;
        if (!read_number_field(record, key, &v) || v < 0) {
          return fail(error, std::string("record invalid latency field ") + key);
        }
      }
    }
    ++record_count;
    cursor = close;
  }
  if (record_count == 0) return fail(error, "no records");
  return true;
}

bool bench_json_has_obs_block(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  std::size_t obs_pos = text.find("\"obs\": {");
  if (obs_pos == std::string::npos) return false;
  return text.find("\"counters\": {", obs_pos) != std::string::npos;
}

}  // namespace rpb::bench
