// Shared measurement/reporting machinery for the table/figure harnesses
// in bench/. The paper reports mean wall-clock over 10 runs at full
// threads and 3 runs at 1 thread (Sec. 7.1); measure() mirrors that.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace rpb::bench {

struct Measurement {
  double mean_seconds = 0;
  double min_seconds = 0;
  double stddev_seconds = 0;
  // Order statistics over the timed repeats (linear interpolation):
  // robust against the occasional scheduling hiccup the mean absorbs.
  double median_seconds = 0;
  double p10_seconds = 0;
  double p90_seconds = 0;
  std::size_t repeats = 0;
};

// Run fn repeatedly (after one untimed warmup) and aggregate.
Measurement measure(const std::function<void()>& fn, std::size_t repeats);

// Like measure(), but runs `setup` untimed before every timed `run`
// (for benchmarks that consume their input, e.g. in-place sorts).
Measurement measure_with_setup(const std::function<void()>& setup,
                               const std::function<void()>& run,
                               std::size_t repeats);

// Fixed-width table printing: header then rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_seconds(double s);
std::string fmt_ratio(double r);

// Geometric mean of positive values (the paper's gmean summary).
double gmean(const std::vector<double>& values);

// One line of a machine-readable perf-trajectory file (BENCH_*.json):
// a primitive measured at one thread count and input size.
struct BenchRecord {
  std::string name;  // primitive/variant, e.g. "parallel_for_trivial/lazy"
  std::size_t threads = 0;
  std::size_t n = 0;
  std::size_t repeats = 0;
  double median_s = 0;
  double p10_s = 0;
  double p90_s = 0;
  double mean_s = 0;
  // Optional latency percentiles (serve-style request-latency records,
  // where the sample is per-request latencies rather than run repeats).
  // Emitted only when has_latency is set; validators treat them as
  // optional but type-check them when present.
  bool has_latency = false;
  double p50_s = 0;
  double p99_s = 0;
};

// Writes {"schema":"rpb-bench-v1","suite":...,"records":[...]} to path.
// Every file carries an "env" object recording the detected CPU vector
// features (sse2/avx2/popcnt) and the active RPB_SIMD mode at write
// time, so a baseline diff can tell "code got slower" apart from "this
// box dispatches different bodies" (bench_compare.py warns on feature
// mismatch). When RPB_OBS is active (obs::counters_enabled()), an "obs"
// object with the counter snapshot is emitted between the env block and
// the records array. Returns false on I/O failure.
bool write_bench_json(const std::string& path, const std::string& suite,
                      const std::vector<BenchRecord>& records);

// Structural check of a file produced by write_bench_json: schema tag,
// balanced nesting, the env feature block, at least one record, and
// every record carrying all required fields with finite non-negative
// timings. An "obs" block, if present, must carry the counter totals
// object. On failure returns false and describes the problem in *error
// (if non-null).
bool validate_bench_json(const std::string& path, std::string* error);

// True when the file carries the optional "obs" stats block (with its
// counters object) — what the RPB_OBS=counters smoke test asserts.
bool bench_json_has_obs_block(const std::string& path);

}  // namespace rpb::bench
