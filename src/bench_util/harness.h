// Shared measurement/reporting machinery for the table/figure harnesses
// in bench/. The paper reports mean wall-clock over 10 runs at full
// threads and 3 runs at 1 thread (Sec. 7.1); measure() mirrors that.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace rpb::bench {

struct Measurement {
  double mean_seconds = 0;
  double min_seconds = 0;
  double stddev_seconds = 0;
  std::size_t repeats = 0;
};

// Run fn repeatedly (after one untimed warmup) and aggregate.
Measurement measure(const std::function<void()>& fn, std::size_t repeats);

// Like measure(), but runs `setup` untimed before every timed `run`
// (for benchmarks that consume their input, e.g. in-place sorts).
Measurement measure_with_setup(const std::function<void()>& setup,
                               const std::function<void()>& run,
                               std::size_t repeats);

// Fixed-width table printing: header then rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_seconds(double s);
std::string fmt_ratio(double r);

// Geometric mean of positive values (the paper's gmean summary).
double gmean(const std::vector<double>& values);

}  // namespace rpb::bench
