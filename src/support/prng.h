// Deterministic, seekable PRNG used by all input generators and
// randomized algorithms. Counter-based (stateless per draw) so parallel
// tasks can draw independent values without shared mutable state: the
// i-th value of a stream is a pure function of (seed, i).
#pragma once

#include <cmath>

#include "support/hash.h"

namespace rpb {

class Rng {
 public:
  explicit constexpr Rng(u64 seed) : seed_(mix64(seed)) {}

  // i-th raw 64-bit draw of this stream.
  constexpr u64 bits(u64 i) const { return hash64(seed_ ^ mix64(i)); }

  // Uniform in [0, bound). Slightly biased for huge bounds; fine for
  // workload generation.
  constexpr u64 next(u64 i, u64 bound) const { return bits(i) % bound; }

  // Uniform double in [0, 1).
  constexpr double uniform(u64 i) const {
    return static_cast<double>(bits(i) >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed double with the given rate (PBBS's
  // exponential input distribution for sort/dedup/hist/isort).
  double exponential(u64 i, double rate = 1.0) const {
    // Guard against log(0): uniform() < 1 always, so 1-u > 0.
    return -std::log(1.0 - uniform(i)) / rate;
  }

  // Derive an independent stream (e.g. per phase or per structure).
  constexpr Rng fork(u64 stream) const { return Rng(seed_ ^ mix64(~stream)); }

 private:
  u64 seed_;
};

}  // namespace rpb
