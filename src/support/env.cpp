#include "support/env.h"

#include <cstdlib>
#include <thread>

namespace rpb {

std::size_t default_threads() {
  if (const char* env = std::getenv("RPB_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace rpb
