// Process-environment helpers: default thread count resolution shared by
// the pool, benches, and tests.
#pragma once

#include <cstddef>

namespace rpb {

// Number of worker threads to use by default: RPB_THREADS env var if
// set, otherwise std::thread::hardware_concurrency() (min 1).
std::size_t default_threads();

}  // namespace rpb
