// Common small definitions shared by every rpb subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rpb {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
// Value types of the sparse kernel suite (src/sparse): IEEE binary32/64.
using f32 = float;
using f64 = double;

// Destructive false sharing shows up at cache-line granularity; pad
// per-thread mutable state to this.
inline constexpr std::size_t kCacheLineBytes = 64;

// True when compiling under ThreadSanitizer (-DRPB_SANITIZE=thread).
// TSAN does not model standalone atomic fences, so fence-synchronized
// code (the Chase-Lev deque) selects stronger per-operation orderings
// when this is set; everything else is unaffected.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanEnabled = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanEnabled = true;
#else
inline constexpr bool kTsanEnabled = false;
#endif
#else
inline constexpr bool kTsanEnabled = false;
#endif

}  // namespace rpb
