// Common small definitions shared by every rpb subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rpb {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// Destructive false sharing shows up at cache-line granularity; pad
// per-thread mutable state to this.
inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace rpb
