// Minimal command-line flag parsing shared by benches and examples.
// Flags look like: --name value  or  --name=value  or  --flag (boolean).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rpb {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& dflt) const;
  std::int64_t get_int(const std::string& name, std::int64_t dflt) const;
  double get_double(const std::string& name, double dflt) const;

  // Non-flag positional arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rpb
