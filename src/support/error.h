// Error types for the "comfortable" tier of the paper's fear spectrum:
// run-time validation failures whose symptom is close to the cause.
#pragma once

#include <stdexcept>
#include <string>

namespace rpb {

// Thrown when a checked irregular pattern (par_ind_iter_mut /
// par_ind_chunks_mut) detects that the caller's independence contract is
// violated — the C++ analogue of the paper's interior-unsafe run-time
// checks panicking.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace rpb
