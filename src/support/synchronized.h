// Mutex-encapsulated value (CppCoreGuidelines CP.50: "define a mutex
// together with the data it guards"). This is the C++ analogue of the
// paper's Listing 1 discussion of Rust's Mutex<T>/RwLock<T>: the lock
// *owns* the data, so unsynchronized access is unrepresentable and the
// guard's destructor makes forgetting to unlock impossible.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <utility>

namespace rpb {

template <class T>
class Synchronized {
 public:
  Synchronized() = default;
  explicit Synchronized(T initial) : value_(std::move(initial)) {}

  Synchronized(const Synchronized&) = delete;
  Synchronized& operator=(const Synchronized&) = delete;

  class WriteGuard {
   public:
    T& operator*() { return owner_->value_; }
    T* operator->() { return &owner_->value_; }

   private:
    friend class Synchronized;
    explicit WriteGuard(Synchronized* owner)
        : owner_(owner), lock_(owner->mutex_) {}
    Synchronized* owner_;
    std::unique_lock<std::shared_mutex> lock_;
  };

  class ReadGuard {
   public:
    const T& operator*() const { return owner_->value_; }
    const T* operator->() const { return &owner_->value_; }

   private:
    friend class Synchronized;
    explicit ReadGuard(const Synchronized* owner)
        : owner_(owner), lock_(owner->mutex_) {}
    const Synchronized* owner_;
    std::shared_lock<std::shared_mutex> lock_;
  };

  // Exclusive access (Rust's lock()/write()).
  WriteGuard write() { return WriteGuard(this); }
  // Shared access (Rust's read()).
  ReadGuard read() const { return ReadGuard(this); }

  // Run f with exclusive access; returns f's result.
  template <class F>
  decltype(auto) with(F&& f) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return f(value_);
  }

 private:
  mutable std::shared_mutex mutex_;
  T value_{};
};

}  // namespace rpb
