// Process-wide workspace arena for kernel scratch memory. Every hot
// kernel used to allocate (and, via std::vector, zero-fill) fresh
// scratch buffers on each invocation — the "zero-init tax" the paper's
// Sec. 5 discusses for safe Rust's vec![0; n] versus PBBS's
// uninitialized C++ buffers, plus a malloc round-trip per buffer. An
// Arena instead retains geometrically-grown chunks across invocations
// and hands out bump-pointer allocations, so the steady-state per-call
// setup is a few pointer adjustments. Arenas are leased RAII-style
// from a mutex-guarded pool (the core/mark_table.h design): each lease
// is exclusive to one logical call chain, nested kernels lease their
// own arena, and the mutex handoff plus the scheduler's fork/join
// synchronization keep reuse TSAN-clean. The RPB_ARENA knob (mirrored
// by set_arena_mode) selects the ablation spectrum: "on" (default,
// arena-backed scratch), "off" (plain heap allocation per buffer, no
// pooling), "zeroed" (heap allocation plus zero-fill — the legacy
// vec![0; n] discipline, kept as the ablation baseline for
// bench/ablation_alloc).
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "support/defs.h"

namespace rpb::support {

// Scratch-allocation discipline (see file header). The enum order is
// the ablation spectrum from most to least per-call work.
enum class ArenaMode : int { kZeroed = 0, kOff = 1, kOn = 2 };

namespace detail {

inline std::atomic<int> g_arena_mode{-1};  // -1: not yet resolved

inline ArenaMode resolve_arena_mode() {
  if (const char* env = std::getenv("RPB_ARENA")) {
    if (std::strcmp(env, "off") == 0) return ArenaMode::kOff;
    if (std::strcmp(env, "zeroed") == 0) return ArenaMode::kZeroed;
  }
  return ArenaMode::kOn;
}

}  // namespace detail

inline ArenaMode arena_mode() {
  int mode = detail::g_arena_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(detail::resolve_arena_mode());
    detail::g_arena_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<ArenaMode>(mode);
}

// Benchmark/test knob; safe to flip between (not during) leased
// regions — mirrors par::set_check_mode for the RPB_CHECK_FUSE knob.
inline void set_arena_mode(ArenaMode mode) {
  detail::g_arena_mode.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
}

// Bump allocator over a list of retained chunks. Rewinding (to a
// marker or fully) never releases memory: chunks survive to serve the
// next lease, which is where the amortization comes from. Growth is
// geometric in the retained footprint, so any allocation sequence
// settles into O(1) chunks.
class Arena {
 public:
  struct Marker {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  // Bytes must be served with align <= alignof(std::max_align_t)
  // (::operator new's guarantee for the chunk storage).
  void* allocate(std::size_t bytes, std::size_t align) {
    assert(align != 0 && (align & (align - 1)) == 0 &&
           align <= alignof(std::max_align_t));
    for (;;) {
      if (active_ < chunks_.size()) {
        Chunk& c = chunks_[active_];
        std::size_t off = (c.used + align - 1) & ~(align - 1);
        if (off + bytes <= c.size) {
          // The cache-line pad staggers consecutive buffers: kernels
          // allocate several same-size (power-of-two-ish) arrays and
          // stream them together, and packing them back to back maps
          // the hot index of each onto the same L1/L2 sets. malloc's
          // block headers break that alignment by accident; we do it on
          // purpose.
          c.used = off + bytes + kPadBytes;
          return c.data.get() + off;
        }
        if (active_ + 1 < chunks_.size()) {
          ++active_;
          continue;
        }
      }
      std::size_t want = std::max(bytes + align, kMinChunkBytes);
      want = std::bit_ceil(std::max(want, retained_bytes_));
      obs::bump(obs::Counter::kArenaChunkAllocs);
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want, 0});
      retained_bytes_ += want;
      active_ = chunks_.size() - 1;
    }
  }

  Marker mark() const {
    if (chunks_.empty()) return Marker{};
    return Marker{active_, chunks_[active_].used};
  }

  // Frees nothing: resets bump offsets so the marked position (and the
  // chunks behind it) can be reused.
  void rewind(Marker m) {
    if (chunks_.empty()) return;
    for (std::size_t c = m.chunk + 1; c < chunks_.size(); ++c) {
      chunks_[c].used = 0;
    }
    chunks_[m.chunk].used = m.used;
    active_ = m.chunk;
  }

  void rewind_all() { rewind(Marker{}); }

  // Pool observability: total chunk bytes this arena holds on to.
  std::size_t retained_bytes() const { return retained_bytes_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinChunkBytes = std::size_t{1} << 16;
  static constexpr std::size_t kPadBytes = 64;  // one cache line

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t retained_bytes_ = 0;
};

namespace detail {

struct ArenaPool {
  std::mutex mu;
  std::vector<std::unique_ptr<Arena>> idle;
  std::size_t created = 0;
  // Concurrent leases beyond this many come from plain construction
  // and are dropped on release instead of retained forever.
  static constexpr std::size_t kMaxIdle = 8;
};

inline ArenaPool& arena_pool() {
  static ArenaPool pool;
  return pool;
}

}  // namespace detail

// Leases an arena from the pool in ArenaMode::kOn (constructing one
// when every pooled arena is held by a concurrent call chain); in the
// heap modes the lease holds no arena and buffers fall back to plain
// allocation (core/uninit_buf.h consults mode()). The mode is captured
// at construction so a lease is internally consistent even if the
// knob flips mid-flight.
class ArenaLease {
 public:
  ArenaLease() : mode_(support::arena_mode()) {
    if (mode_ != ArenaMode::kOn) return;
    auto& pool = detail::arena_pool();
    {
      std::lock_guard<std::mutex> guard(pool.mu);
      if (!pool.idle.empty()) {
        arena_ = std::move(pool.idle.back());
        pool.idle.pop_back();
        obs::bump(obs::Counter::kArenaLeaseReuses);
        return;
      }
      ++pool.created;
    }
    obs::bump(obs::Counter::kArenaLeaseCreates);
    arena_ = std::make_unique<Arena>();
  }

  ~ArenaLease() {
    if (!arena_) return;
    arena_->rewind_all();
    auto& pool = detail::arena_pool();
    std::lock_guard<std::mutex> guard(pool.mu);
    if (pool.idle.size() < detail::ArenaPool::kMaxIdle) {
      pool.idle.push_back(std::move(arena_));
    }
  }

  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  ArenaMode mode() const { return mode_; }

  // Null in the heap modes.
  Arena* arena() { return arena_.get(); }

  void* allocate(std::size_t bytes, std::size_t align) {
    assert(arena_ != nullptr);
    return arena_->allocate(bytes, align);
  }

 private:
  ArenaMode mode_;
  std::unique_ptr<Arena> arena_;
};

// RAII sub-scope inside a lease: buffers allocated after the scope
// opens are reclaimed (arena space rewound) when it closes. Use around
// per-round scratch inside loops so the arena's high-water mark is one
// round, not the sum of all rounds. No-op in the heap modes, where
// each buffer frees itself on destruction.
class ArenaScope {
 public:
  explicit ArenaScope(ArenaLease& lease) : arena_(lease.arena()) {
    if (arena_) marker_ = arena_->mark();
  }
  ~ArenaScope() {
    if (arena_) arena_->rewind(marker_);
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Marker marker_;
};

// Pool observability for tests/benches: arenas sitting idle, and total
// arenas ever constructed (steady-state reuse keeps the latter flat).
inline std::size_t arena_pool_idle() {
  auto& pool = detail::arena_pool();
  std::lock_guard<std::mutex> guard(pool.mu);
  return pool.idle.size();
}

inline std::size_t arena_pool_created() {
  auto& pool = detail::arena_pool();
  std::lock_guard<std::mutex> guard(pool.mu);
  return pool.created;
}

// Test hook: drop every idle arena (e.g. to measure creation counts
// from a clean slate). Leased arenas are unaffected.
inline void arena_pool_clear() {
  auto& pool = detail::arena_pool();
  std::lock_guard<std::mutex> guard(pool.mu);
  pool.idle.clear();
}

}  // namespace rpb::support
