// Portable explicit-SIMD layer for the kernel inner loops. PRs 1-4
// removed the runtime taxes (region overhead, check setup, allocation,
// multi-pass traffic); what remains on one core is the scalar inner
// loop itself, so this header gives every kernel family an explicit
// vector path behind the repo's knob convention:
//
//   * Dispatch. The SSE2 tier is compile-time on x86-64 (the baseline
//     ISA guarantees it); the AVX2/POPCNT tiers are compiled with GCC
//     `target` attributes — no global -march flag, so one binary runs
//     everywhere — and selected once from CPUID. `RPB_SIMD=on|off`
//     (mirrored by support::set_simd_mode, default on) matches the
//     RPB_SPLIT/RPB_ARENA/RPB_OBS convention, so every ablation
//     harness gets a scalar arm for free; set_simd_level pins a
//     specific tier (clamped to what the CPU offers) for the
//     scalar/sse2/avx2 arms of bench/ablation_simd.
//   * Mandatory scalar fallback. Every entry point has a scalar body
//     that is the semantic definition; vector bodies must match it
//     bit-for-bit (tests/simd_test.cpp runs the differential suite).
//     Building with -DRPB_FORCE_SCALAR=ON compiles the vector bodies
//     out entirely, which is how CI keeps the fallback from rotting.
//   * Tails and alignment. Arena buffers carry no alignment promise
//     beyond alignof(std::max_align_t) and arbitrary lengths, so every
//     loop uses unaligned loads and handles the sub-width tail with a
//     scalar epilogue — the degenerate mask that never reads or writes
//     a byte past n (a masked vector tail would over-read the exact-
//     size heap blocks RPB_ARENA=off hands out). DESIGN.md "Masked
//     tails" discusses the trade.
//
// The loop inventory (who calls what) lives with the call sites:
// core/primitives.h (scan upsweep/downsweep, popcount), seq/histogram
// (binning), seq/integer_sort.h (digit extraction + counting),
// text/suffix_array.cpp (rank-boundary flagging), core/checks.h
// (epoch-compare candidate scan), sparse/spmm.h (dense-panel axpy).
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "support/defs.h"

#if defined(__x86_64__) && !defined(RPB_FORCE_SCALAR)
#define RPB_SIMD_X86 1
#include <immintrin.h>
#else
#define RPB_SIMD_X86 0
#endif

namespace rpb::support {

// Vector tiers, ordered: selection clamps to the detected maximum.
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

namespace detail {

inline std::atomic<int> g_simd_level{-1};  // -1: not yet resolved

#if RPB_SIMD_X86
inline bool cpuid_avx2() { return __builtin_cpu_supports("avx2") != 0; }
inline bool cpuid_popcnt() { return __builtin_cpu_supports("popcnt") != 0; }
#else
inline bool cpuid_avx2() { return false; }
inline bool cpuid_popcnt() { return false; }
#endif

}  // namespace detail

// Highest tier this build + CPU can execute: the compile-time baseline
// (SSE2 is architectural on x86-64) raised by runtime CPUID for AVX2.
inline SimdLevel simd_detected() {
#if RPB_SIMD_X86
  static const SimdLevel detected =
      detail::cpuid_avx2() ? SimdLevel::kAvx2 : SimdLevel::kSse2;
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

// Whether the scalar popcount fallback can be upgraded to the hardware
// instruction (emitted via a target("popcnt") body, CPUID-gated — the
// plain build targets baseline x86-64, where std::popcount lowers to
// the SWAR sequence).
inline bool simd_has_popcnt() {
#if RPB_SIMD_X86
  static const bool has = detail::cpuid_popcnt();
  return has;
#else
  return false;
#endif
}

namespace detail {

// RPB_SIMD: "off" forces scalar everywhere; "on" (or unset) uses the
// detected maximum; a tier name pins that tier (clamped to detected) —
// the env-var form of the ablation arms.
inline SimdLevel resolve_simd_level() {
  if (const char* env = std::getenv("RPB_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return SimdLevel::kScalar;
    }
    if (std::strcmp(env, "sse2") == 0) {
      return std::min(SimdLevel::kSse2, simd_detected());
    }
    if (std::strcmp(env, "avx2") == 0) {
      return std::min(SimdLevel::kAvx2, simd_detected());
    }
  }
  return simd_detected();
}

}  // namespace detail

// The active tier every dispatching loop reads: one relaxed load plus
// a predictable branch, the same off-path cost model as RPB_OBS.
inline SimdLevel simd_level() {
  int level = detail::g_simd_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(detail::resolve_simd_level());
    detail::g_simd_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

// Pin a tier (bench arms); clamped to what this build/CPU supports.
// Safe to flip between (not during) parallel regions — mirrors
// set_arena_mode / set_check_mode.
inline void set_simd_level(SimdLevel level) {
  detail::g_simd_level.store(
      static_cast<int>(std::min(level, simd_detected())),
      std::memory_order_relaxed);
}

// The RPB_SIMD=on|off knob as a setter: on restores the detected
// maximum, off forces the scalar fallback.
inline void set_simd_mode(bool on) {
  set_simd_level(on ? simd_detected() : SimdLevel::kScalar);
}

inline bool simd_enabled() { return simd_level() != SimdLevel::kScalar; }

}  // namespace rpb::support

namespace rpb::simd {

using support::SimdLevel;

// ---------------------------------------------------------------------------
// Shared bit-mask word helpers (the word-iteration idiom PR 4 grew three
// private copies of — primitives.h, mis, spec_for all route here now).
// ---------------------------------------------------------------------------

// Mask selecting the live bits of the tail word of an n-bit mask: all
// ones when n is a multiple of 64.
inline constexpr u64 tail_word_mask(std::size_t n) {
  return (n & 63) != 0 ? (u64{1} << (n & 63)) - 1 : ~u64{0};
}

// Calls fn(base + bit_position) for every set bit, ascending — the
// countr_zero/clear-lowest walk every emit loop used to hand-roll.
template <class Fn>
inline void visit_set_bits(u64 word, std::size_t base, Fn&& fn) {
  while (word != 0) {
    fn(base + static_cast<std::size_t>(std::countr_zero(word)));
    word &= word - 1;
  }
}

// ---------------------------------------------------------------------------
// Vector bodies. Each op is a scalar definition plus per-tier bodies
// compiled with target attributes; the public entry dispatches once on
// support::simd_level(). All loads are unaligned; all tails are scalar.
// ---------------------------------------------------------------------------

namespace detail {

// ---- sum of u64 (scan upsweep / block reduce) ----

inline u64 sum_u64_scalar(const u64* p, std::size_t n) {
  u64 acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += p[i];
  return acc;
}

#if RPB_SIMD_X86

inline u64 sum_u64_sse2(const u64* p, std::size_t n) {
  __m128i acc0 = _mm_setzero_si128(), acc1 = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm_add_epi64(
        acc0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)));
    acc1 = _mm_add_epi64(
        acc1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 2)));
  }
  acc0 = _mm_add_epi64(acc0, acc1);
  alignas(16) u64 lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc0);
  u64 acc = lanes[0] + lanes[1];
  for (; i < n; ++i) acc += p[i];
  return acc;
}

__attribute__((target("avx2"))) inline u64 sum_u64_avx2(const u64* p,
                                                        std::size_t n) {
  __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 4)));
  }
  acc0 = _mm256_add_epi64(acc0, acc1);
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  u64 acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) acc += p[i];
  return acc;
}

#endif  // RPB_SIMD_X86

// ---- prefix sums of u64 (scan downsweep) ----
//
// The in-register formulation: within a vector of 4 lanes, two
// shift-and-add rounds turn [a b c d] into [a a+b a+b+c a+b+c+d]; the
// running total is broadcast in, and the last lane becomes the next
// vector's carry. The loop-carried dependency is one broadcast per 4
// elements instead of one add per element.

inline u64 prefix_ex_u64_scalar(u64* p, std::size_t n, u64 acc) {
  for (std::size_t i = 0; i < n; ++i) {
    u64 next = acc + p[i];
    p[i] = acc;
    acc = next;
  }
  return acc;
}

inline u64 prefix_in_u64_scalar(u64* p, std::size_t n, u64 acc) {
  for (std::size_t i = 0; i < n; ++i) {
    acc += p[i];
    p[i] = acc;
  }
  return acc;
}

inline u64 prefix_ex_into_u64_scalar(const u64* in, u64* out, std::size_t n,
                                     u64 acc) {
  for (std::size_t i = 0; i < n; ++i) {
    u64 next = acc + in[i];
    out[i] = acc;
    acc = next;
  }
  return acc;
}

// There is deliberately no SSE2 tier for the prefix family: with two
// 64-bit lanes, every iteration keeps a shuffle on the carry chain and
// only retires two elements for it, which measures ~1.8x SLOWER than
// the scalar one-add-per-element chain. The SSE2 dispatch falls through
// to the scalar body (same pattern as flag_adjacent_neq_u64).

#if RPB_SIMD_X86

// One 4-lane inclusive step: [a b c d] -> [a a+b a+b+c a+b+c+d].
// 64-bit lanes cross the 128-bit boundary, so the two rounds are a
// 128-bit in-lane shift plus a lane permute.
__attribute__((target("avx2"))) inline __m256i incl4_avx2(__m256i v) {
  v = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));  // [a a+b c c+d]
  // +2 lanes: broadcast the low half's total (lane 1 = a+b) into the
  // high half only -> add [0 0 a+b a+b].
  __m256i bcast = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 1, 1, 1));
  __m256i two = _mm256_blend_epi32(_mm256_setzero_si256(), bcast, 0xF0);
  return _mm256_add_epi64(v, two);
}

// All-lanes broadcast of the vector's running total (lane 3 of an
// inclusive prefix). Off the carry chain: depends only on the in-lane
// prefix, so it pipelines with the next iteration's loads.
__attribute__((target("avx2"))) inline __m256i total4_avx2(__m256i inc) {
  return _mm256_permute4x64_epi64(inc, _MM_SHUFFLE(3, 3, 3, 3));
}

// Exclusive shift with a zero in lane 0 (carry-free local form; the
// caller adds the broadcast carry afterwards).
__attribute__((target("avx2"))) inline __m256i excl4_local_avx2(__m256i inc) {
  __m256i shifted = _mm256_permute4x64_epi64(inc, _MM_SHUFFLE(2, 1, 0, 0));
  return _mm256_blend_epi32(shifted, _mm256_setzero_si256(), 0x03);
}

// The prefix bodies process two vectors per iteration on purpose: the
// single-vector form keeps a permute (3-cycle latency) on the carry
// chain, which loses to the scalar loop's one-add-per-element chain.
// With carry-free local prefixes/totals computed off-chain, the only
// serialized work per 8 elements is one vector add.
__attribute__((target("avx2"))) inline u64 prefix_in_u64_avx2(u64* p,
                                                              std::size_t n,
                                                              u64 acc) {
  std::size_t i = 0;
  __m256i carry = _mm256_set1_epi64x(static_cast<long long>(acc));
  for (; i + 8 <= n; i += 8) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 4));
    __m256i inc0 = incl4_avx2(v0);
    __m256i inc1 = incl4_avx2(v1);
    __m256i t0 = total4_avx2(inc0);
    __m256i t01 = _mm256_add_epi64(t0, total4_avx2(inc1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + i),
                        _mm256_add_epi64(inc0, carry));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + i + 4),
                        _mm256_add_epi64(inc1, _mm256_add_epi64(carry, t0)));
    carry = _mm256_add_epi64(carry, t01);
  }
  u64 a = static_cast<u64>(_mm256_extract_epi64(carry, 3));
  for (; i < n; ++i) {
    a += p[i];
    p[i] = a;
  }
  return a;
}

__attribute__((target("avx2"))) inline u64 prefix_ex_u64_avx2(u64* p,
                                                              std::size_t n,
                                                              u64 acc) {
  std::size_t i = 0;
  __m256i carry = _mm256_set1_epi64x(static_cast<long long>(acc));
  for (; i + 8 <= n; i += 8) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 4));
    __m256i inc0 = incl4_avx2(v0);
    __m256i inc1 = incl4_avx2(v1);
    __m256i t0 = total4_avx2(inc0);
    __m256i t01 = _mm256_add_epi64(t0, total4_avx2(inc1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + i),
                        _mm256_add_epi64(excl4_local_avx2(inc0), carry));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(p + i + 4),
        _mm256_add_epi64(excl4_local_avx2(inc1),
                         _mm256_add_epi64(carry, t0)));
    carry = _mm256_add_epi64(carry, t01);
  }
  u64 a = static_cast<u64>(_mm256_extract_epi64(carry, 3));
  for (; i < n; ++i) {
    u64 next = a + p[i];
    p[i] = a;
    a = next;
  }
  return a;
}

__attribute__((target("avx2"))) inline u64 prefix_ex_into_u64_avx2(
    const u64* in, u64* out, std::size_t n, u64 acc) {
  std::size_t i = 0;
  __m256i carry = _mm256_set1_epi64x(static_cast<long long>(acc));
  for (; i + 8 <= n; i += 8) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i + 4));
    __m256i inc0 = incl4_avx2(v0);
    __m256i inc1 = incl4_avx2(v1);
    __m256i t0 = total4_avx2(inc0);
    __m256i t01 = _mm256_add_epi64(t0, total4_avx2(inc1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(excl4_local_avx2(inc0), carry));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i + 4),
        _mm256_add_epi64(excl4_local_avx2(inc1),
                         _mm256_add_epi64(carry, t0)));
    carry = _mm256_add_epi64(carry, t01);
  }
  u64 a = static_cast<u64>(_mm256_extract_epi64(carry, 3));
  for (; i < n; ++i) {
    u64 next = a + in[i];
    out[i] = a;
    a = next;
  }
  return a;
}

#endif  // RPB_SIMD_X86

// ---- popcount over u64 words (bit-flag counting) ----

inline std::size_t popcount_words_scalar(const u64* words, std::size_t nw) {
  std::size_t c = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    c += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return c;
}

#if RPB_SIMD_X86

// Baseline x86-64 lowers std::popcount to the SWAR sequence; the
// hardware instruction is CPUID-gated, so it gets its own tier body.
__attribute__((target("popcnt"))) inline std::size_t popcount_words_hw(
    const u64* words, std::size_t nw) {
  std::size_t c0 = 0, c1 = 0;
  std::size_t w = 0;
  for (; w + 2 <= nw; w += 2) {
    c0 += static_cast<std::size_t>(std::popcount(words[w]));
    c1 += static_cast<std::size_t>(std::popcount(words[w + 1]));
  }
  if (w < nw) c0 += static_cast<std::size_t>(std::popcount(words[w]));
  return c0 + c1;
}

// Nibble-LUT popcount (Mula): per-byte counts via pshufb on the two
// nibbles, horizontally accumulated with sad_epu8.
__attribute__((target("avx2"))) inline std::size_t popcount_words_avx2(
    const u64* words, std::size_t nw) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= nw; w += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t c = static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] +
                                           lanes[3]);
  for (; w < nw; ++w) c += static_cast<std::size_t>(std::popcount(words[w]));
  return c;
}

#endif  // RPB_SIMD_X86

// ---- radix digit extraction + per-digit counting ----
//
// Digits are extracted vector-wide (shift + mask over 4 keys at a
// time); the increments stay scalar but land in lane-private tables,
// which breaks the store-to-load dependence a run of equal digits
// creates in the single-table loop. stride_words lets the same body
// walk plain u64 arrays (stride 1) and the key word of wider records
// (suffix array's {key, suffix} items, stride 2).

inline void digit_count_u64_scalar(const u64* keys, std::size_t stride_words,
                                   std::size_t n, int shift,
                                   u64* counts /* 256, zeroed */) {
  for (std::size_t i = 0; i < n; ++i) {
    ++counts[(keys[i * stride_words] >> shift) & 255];
  }
}

#if RPB_SIMD_X86

inline void digit_count_u64_sse2(const u64* keys, std::size_t stride_words,
                                 std::size_t n, int shift, u64* counts) {
  alignas(16) u64 lane1[256] = {};
  const __m128i mask = _mm_set1_epi64x(255);
  std::size_t i = 0;
  if (stride_words == 1) {
    for (; i + 2 <= n; i += 2) {
      __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
      __m128i d = _mm_and_si128(_mm_srli_epi64(v, shift), mask);
      // movq extracts, not a store/reload: a 16-byte store feeding two
      // 8-byte loads stalls store-forwarding on every iteration.
      ++counts[static_cast<u64>(_mm_cvtsi128_si64(d))];
      ++lane1[static_cast<u64>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(d, d)))];
    }
  } else {
    for (; i + 2 <= n; i += 2) {
      ++counts[(keys[i * stride_words] >> shift) & 255];
      ++lane1[(keys[(i + 1) * stride_words] >> shift) & 255];
    }
  }
  for (; i < n; ++i) ++counts[(keys[i * stride_words] >> shift) & 255];
  for (std::size_t d = 0; d < 256; d += 2) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + d));
    __m128i b = _mm_load_si128(reinterpret_cast<const __m128i*>(lane1 + d));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(counts + d),
                     _mm_add_epi64(a, b));
  }
}

__attribute__((target("avx2"))) inline void digit_count_u64_avx2(
    const u64* keys, std::size_t stride_words, std::size_t n, int shift,
    u64* counts) {
  // Lanes 1-3 count privately; lane 0 counts straight into the output
  // table, so the merge only has three addends.
  alignas(32) u64 lanes[3][256] = {};
  const __m256i mask = _mm256_set1_epi64x(255);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v;
    if (stride_words == 1) {
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    } else if (stride_words == 2) {
      // Two vectors of {key, payload} pairs -> one vector of keys.
      __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + i * 2));
      __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + i * 2 + 4));
      __m256i k0 = _mm256_permute4x64_epi64(v0, _MM_SHUFFLE(3, 1, 2, 0));
      __m256i k1 = _mm256_permute4x64_epi64(v1, _MM_SHUFFLE(3, 1, 2, 0));
      v = _mm256_permute2x128_si256(k0, k1, 0x20);
    } else {
      v = _mm256_set_epi64x(
          static_cast<long long>(keys[(i + 3) * stride_words]),
          static_cast<long long>(keys[(i + 2) * stride_words]),
          static_cast<long long>(keys[(i + 1) * stride_words]),
          static_cast<long long>(keys[i * stride_words]));
    }
    __m256i d = _mm256_and_si256(_mm256_srli_epi64(v, shift), mask);
    // Register extracts, not a store/reload: a 32-byte store feeding
    // four 8-byte loads stalls store-forwarding on every iteration.
    __m128i lo = _mm256_castsi256_si128(d);
    __m128i hi = _mm256_extracti128_si256(d, 1);
    ++counts[static_cast<u64>(_mm_cvtsi128_si64(lo))];
    ++lanes[0][static_cast<u64>(_mm_extract_epi64(lo, 1))];
    ++lanes[1][static_cast<u64>(_mm_cvtsi128_si64(hi))];
    ++lanes[2][static_cast<u64>(_mm_extract_epi64(hi, 1))];
  }
  for (; i < n; ++i) ++counts[(keys[i * stride_words] >> shift) & 255];
  for (std::size_t d = 0; d < 256; d += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + d));
    __m256i b0 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(&lanes[0][d]));
    __m256i b1 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(&lanes[1][d]));
    __m256i b2 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(&lanes[2][d]));
    __m256i s = _mm256_add_epi64(_mm256_add_epi64(a, b0),
                                 _mm256_add_epi64(b1, b2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + d), s);
  }
}

#endif  // RPB_SIMD_X86

// ---- histogram binning (keys are bucket indices, bounded by
// num_buckets) ----
//
// Same lane-privatization idea as the digit counter, but the table size
// is a runtime num_buckets, so the extra lanes come from caller scratch
// (zeroed, kLanes-1 tables of num_buckets each).

inline constexpr std::size_t kBinLanes = 4;

inline void bin_count_u64_scalar(const u64* keys, std::size_t n, u64* counts) {
  for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
}

#if RPB_SIMD_X86

inline void bin_count_u64_sse2(const u64* keys, std::size_t n, u64* counts,
                               u64* lane_scratch, std::size_t num_buckets) {
  u64* t1 = lane_scratch;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    ++counts[keys[i]];
    ++t1[keys[i + 1]];
  }
  for (; i < n; ++i) ++counts[keys[i]];
  // Split at an explicit whole-vector bound (not a running cursor): the
  // optimizer can then prove both trip counts and unroll cleanly.
  const std::size_t dw = num_buckets & ~std::size_t{1};
  for (std::size_t d = 0; d < dw; d += 2) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + d));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t1 + d));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(counts + d),
                     _mm_add_epi64(a, b));
  }
  for (std::size_t d = dw; d < num_buckets; ++d) counts[d] += t1[d];
}

__attribute__((target("avx2"))) inline void bin_count_u64_avx2(
    const u64* keys, std::size_t n, u64* counts, u64* lane_scratch,
    std::size_t num_buckets) {
  u64* t1 = lane_scratch;
  u64* t2 = lane_scratch + num_buckets;
  u64* t3 = lane_scratch + 2 * num_buckets;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    // Register extracts, not a store/reload (store-forwarding stall).
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    ++counts[static_cast<u64>(_mm_cvtsi128_si64(lo))];
    ++t1[static_cast<u64>(_mm_extract_epi64(lo, 1))];
    ++t2[static_cast<u64>(_mm_cvtsi128_si64(hi))];
    ++t3[static_cast<u64>(_mm_extract_epi64(hi, 1))];
  }
  for (; i < n; ++i) ++counts[keys[i]];
  // Explicit whole-vector bound, same reasoning as the SSE2 body.
  const std::size_t dw = num_buckets & ~std::size_t{3};
  for (std::size_t d = 0; d < dw; d += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + d));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t1 + d));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t2 + d));
    __m256i b2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t3 + d));
    __m256i s = _mm256_add_epi64(_mm256_add_epi64(a, b0),
                                 _mm256_add_epi64(b1, b2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(counts + d), s);
  }
  for (std::size_t d = dw; d < num_buckets; ++d) {
    counts[d] += t1[d] + t2[d] + t3[d];
  }
}

#endif  // RPB_SIMD_X86

// ---- suffix-array rank-comparison boundary flagging ----
//
// flags[j] = (j > 0 && key(j) != key(j-1)) for j in [lo, hi), key(j) =
// base[j * stride_words]; returns the block's flag sum. The unaligned
// load at j-1 makes the "previous" vector free — no shuffle chain.

inline u64 flag_neq_u64_scalar(const u64* base, std::size_t stride_words,
                               std::size_t lo, std::size_t hi, u64* flags) {
  u64 acc = 0;
  for (std::size_t j = lo; j < hi; ++j) {
    u64 f = j > 0 && base[j * stride_words] != base[(j - 1) * stride_words]
                ? 1
                : 0;
    flags[j] = f;
    acc += f;
  }
  return acc;
}

#if RPB_SIMD_X86

__attribute__((target("avx2"))) inline u64 flag_neq_u64_avx2(
    const u64* base, std::size_t stride_words, std::size_t lo, std::size_t hi,
    u64* flags) {
  u64 acc = 0;
  std::size_t j = lo;
  // Peel j == 0 (defined as 0) and keep the vector body off the j-1
  // underread.
  if (j == 0 && j < hi) {
    flags[0] = 0;
    ++j;
  }
  __m256i vacc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(1);
  if (stride_words == 1) {
    for (; j + 4 <= hi; j += 4) {
      __m256i cur =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + j));
      __m256i prev =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + j - 1));
      __m256i eq = _mm256_cmpeq_epi64(cur, prev);
      __m256i f = _mm256_andnot_si256(eq, ones);  // 1 where different
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(flags + j), f);
      vacc = _mm256_add_epi64(vacc, f);
    }
  } else if (stride_words == 2) {
    for (; j + 4 <= hi; j += 4) {
      // Gather the key words of records j-1..j+3 (stride 16 bytes).
      __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + (j - 1) * 2));
      __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + (j + 1) * 2));
      __m256i k0 = _mm256_permute4x64_epi64(v0, _MM_SHUFFLE(3, 1, 2, 0));
      __m256i k1 = _mm256_permute4x64_epi64(v1, _MM_SHUFFLE(3, 1, 2, 0));
      __m256i prev = _mm256_permute2x128_si256(k0, k1, 0x20);  // j-1..j+2
      __m256i cur = _mm256_alignr_epi8(
          _mm256_permute2x128_si256(prev, prev, 0x81),
          prev, 8);  // j..j+2 plus key[j+3] patched below
      cur = _mm256_insert_epi64(
          cur, static_cast<long long>(base[(j + 3) * 2]), 3);
      __m256i eq = _mm256_cmpeq_epi64(cur, prev);
      __m256i f = _mm256_andnot_si256(eq, ones);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(flags + j), f);
      vacc = _mm256_add_epi64(vacc, f);
    }
  }
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vacc);
  acc += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; j < hi; ++j) {
    u64 f =
        base[j * stride_words] != base[(j - 1) * stride_words] ? 1 : 0;
    flags[j] = f;
    acc += f;
  }
  return acc;
}

#endif  // RPB_SIMD_X86

// ---- dense axpy: out[j] += a * x[j] (SpMM's k-wide inner loop) ----
//
// Deliberately mul-then-add, never FMA: each lane is an independent
// two-op chain, so the vector bodies are bit-identical to the scalar
// definition under IEEE semantics. An FMA would skip the intermediate
// rounding and break the differential suite's byte-compare (the plain
// build targets baseline x86-64 and cannot auto-emit FMA either, so
// scalar and vector agree everywhere).

inline void axpy_f32_scalar(f32* out, const f32* x, f32 a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] += a * x[j];
}

inline void axpy_f64_scalar(f64* out, const f64* x, f64 a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) out[j] += a * x[j];
}

#if RPB_SIMD_X86

inline void axpy_f32_sse2(f32* out, const f32* x, f32 a, std::size_t n) {
  const __m128 va = _mm_set1_ps(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m128 prod = _mm_mul_ps(va, _mm_loadu_ps(x + j));
    _mm_storeu_ps(out + j, _mm_add_ps(_mm_loadu_ps(out + j), prod));
  }
  for (; j < n; ++j) out[j] += a * x[j];
}

inline void axpy_f64_sse2(f64* out, const f64* x, f64 a, std::size_t n) {
  const __m128d va = _mm_set1_pd(a);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    __m128d prod = _mm_mul_pd(va, _mm_loadu_pd(x + j));
    _mm_storeu_pd(out + j, _mm_add_pd(_mm_loadu_pd(out + j), prod));
  }
  for (; j < n; ++j) out[j] += a * x[j];
}

__attribute__((target("avx2"))) inline void axpy_f32_avx2(f32* out,
                                                          const f32* x, f32 a,
                                                          std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + j));
    _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), prod));
  }
  for (; j < n; ++j) out[j] += a * x[j];
}

__attribute__((target("avx2"))) inline void axpy_f64_avx2(f64* out,
                                                          const f64* x, f64 a,
                                                          std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + j));
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(out + j), prod));
  }
  for (; j < n; ++j) out[j] += a * x[j];
}

#endif  // RPB_SIMD_X86

// ---- epoch-compare unique-offset engine (checked tier, sequential
// fallback only) ----
//
// Lane-parallel candidate scan for the mark-table uniqueness check:
// per 4-offset chunk, (1) unsigned bounds compare (sign-flip trick —
// AVX2 only has signed 64-bit compares), (2) intra-chunk duplicate
// test via two rotated self-compares (rot1 + rot2 cover all 6 lane
// pairs), (3) gather of the four u32 epoch slots vs the broadcast
// stamp. A chunk that passes all three is PROVEN clean — everything
// before it is stamped, so a gather hit is a genuine duplicate, not a
// maybe — and its lanes are stamped + applied in ascending order. The
// first chunk with any candidate stops the walk; the caller's serial
// ascending loop resumes there and decides the reported index, which
// is what keeps failure messages byte-identical to RPB_SIMD=off
// (DESIGN.md "Lane-parallel checks stay deterministic"). The gather is
// a plain (non-atomic) read, which is exactly why this engine is only
// called from the single-threaded sequential fallback, never from the
// parallel claim path.

#if RPB_SIMD_X86

template <class Apply>
__attribute__((target("avx2"))) std::size_t unique_stamp_apply_u64_avx2(
    const u64* offsets, std::size_t count, std::size_t bound, u32* slots,
    u32 stamp, const Apply& apply) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(u64{1} << 63));
  const __m256i bound_x =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(bound)),
                       sign);
  const __m128i stamp4 = _mm_set1_epi32(static_cast<int>(stamp));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + i));
    __m256i in_bounds =
        _mm256_cmpgt_epi64(bound_x, _mm256_xor_si256(v, sign));
    if (_mm256_movemask_epi8(in_bounds) != -1) break;
    __m256i rot1 = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(0, 3, 2, 1));
    __m256i rot2 = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
    __m256i dup = _mm256_or_si256(_mm256_cmpeq_epi64(v, rot1),
                                  _mm256_cmpeq_epi64(v, rot2));
    if (_mm256_movemask_epi8(dup) != 0) break;
    // All lanes in bounds, so the gather cannot fault.
    __m128i g = _mm256_i64gather_epi32(reinterpret_cast<const int*>(slots),
                                       v, 4);
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(g, stamp4)) != 0) break;
    for (std::size_t k = 0; k < 4; ++k) {
      std::size_t off = static_cast<std::size_t>(offsets[i + k]);
      slots[off] = stamp;
      apply(i + k, off);
    }
  }
  return i;
}

#endif  // RPB_SIMD_X86

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatching entry points (the API the kernels call).
// ---------------------------------------------------------------------------

// Stamp-and-apply the longest provably-clean prefix of offsets (see the
// engine comment above); returns how many offsets were consumed. The
// caller runs its serial ascending check loop from the returned
// position — from 0 in scalar/SSE2 mode (the rotated-compare + gather
// combination only pays on AVX2), so the scalar loop IS the semantics.
template <class Apply>
std::size_t unique_stamp_apply_u64(const u64* offsets, std::size_t count,
                                   std::size_t bound, u32* slots, u32 stamp,
                                   const Apply& apply) {
#if RPB_SIMD_X86
  if (support::simd_level() == SimdLevel::kAvx2) {
    return detail::unique_stamp_apply_u64_avx2(offsets, count, bound, slots,
                                               stamp, apply);
  }
#else
  (void)offsets;
  (void)count;
  (void)bound;
  (void)slots;
  (void)stamp;
  (void)apply;
#endif
  return 0;
}

inline u64 sum_u64(const u64* p, std::size_t n) {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      return detail::sum_u64_avx2(p, n);
    case SimdLevel::kSse2:
      return detail::sum_u64_sse2(p, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return detail::sum_u64_scalar(p, n);
}

// In-place exclusive prefix sum seeded with acc; returns the total.
// AVX2-only: the SSE2 tier takes the scalar body (see the note above
// the detail implementations).
inline u64 prefix_exclusive_sum_u64(u64* p, std::size_t n, u64 acc) {
#if RPB_SIMD_X86
  if (support::simd_level() == SimdLevel::kAvx2) {
    return detail::prefix_ex_u64_avx2(p, n, acc);
  }
#endif
  return detail::prefix_ex_u64_scalar(p, n, acc);
}

inline u64 prefix_inclusive_sum_u64(u64* p, std::size_t n, u64 acc) {
#if RPB_SIMD_X86
  if (support::simd_level() == SimdLevel::kAvx2) {
    return detail::prefix_in_u64_avx2(p, n, acc);
  }
#endif
  return detail::prefix_in_u64_scalar(p, n, acc);
}

inline u64 prefix_exclusive_sum_into_u64(const u64* in, u64* out,
                                         std::size_t n, u64 acc) {
#if RPB_SIMD_X86
  if (support::simd_level() == SimdLevel::kAvx2) {
    return detail::prefix_ex_into_u64_avx2(in, out, n, acc);
  }
#endif
  return detail::prefix_ex_into_u64_scalar(in, out, n, acc);
}

// Popcount of nw whole words (callers mask the tail word themselves —
// see tail_word_mask). The SSE2 tier upgrades to the hardware popcnt
// when CPUID offers it; AVX2 uses the nibble-LUT formulation.
inline std::size_t popcount_words(const u64* words, std::size_t nw) {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      return detail::popcount_words_avx2(words, nw);
    case SimdLevel::kSse2:
      if (support::simd_has_popcnt()) {
        return detail::popcount_words_hw(words, nw);
      }
      break;
    case SimdLevel::kScalar:
      break;
  }
#endif
  return detail::popcount_words_scalar(words, nw);
}

// Adds 256 8-bit-digit counts of key words at the given stride/shift
// into counts[256] (not zeroed here: callers may accumulate).
inline void digit_count_u64(const u64* keys, std::size_t stride_words,
                            std::size_t n, int shift, u64* counts) {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      detail::digit_count_u64_avx2(keys, stride_words, n, shift, counts);
      return;
    case SimdLevel::kSse2:
      detail::digit_count_u64_sse2(keys, stride_words, n, shift, counts);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  detail::digit_count_u64_scalar(keys, stride_words, n, shift, counts);
}

// Number of private lane tables bin_count_u64 needs beyond the output
// table itself (each num_buckets wide, zeroed by the caller). Zero in
// scalar mode: the fallback counts straight into `counts`.
inline std::size_t bin_count_extra_lanes() {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      return detail::kBinLanes - 1;
    case SimdLevel::kSse2:
      return 1;
    case SimdLevel::kScalar:
      break;
  }
#endif
  return 0;
}

// Histogram binning: adds each keys[i] (already a bucket index <
// num_buckets) into counts[num_buckets]. lane_scratch must hold
// bin_count_extra_lanes() * num_buckets zeroed u64s.
inline void bin_count_u64(const u64* keys, std::size_t n, u64* counts,
                          u64* lane_scratch, std::size_t num_buckets) {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      detail::bin_count_u64_avx2(keys, n, counts, lane_scratch, num_buckets);
      return;
    case SimdLevel::kSse2:
      detail::bin_count_u64_sse2(keys, n, counts, lane_scratch, num_buckets);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)lane_scratch;
  (void)num_buckets;
#endif
  detail::bin_count_u64_scalar(keys, n, counts);
}

// Boundary flags for the suffix array's rank rebuild: flags[j] =
// (j > 0 && key(j) != key(j-1)) over [lo, hi); returns the block sum.
// The AVX2 tier covers strides 1 and 2; anything else (and SSE2, where
// the shuffle chain eats the win) takes the scalar body.
inline u64 flag_adjacent_neq_u64(const u64* base, std::size_t stride_words,
                                 std::size_t lo, std::size_t hi, u64* flags) {
#if RPB_SIMD_X86
  if (support::simd_level() == SimdLevel::kAvx2 &&
      (stride_words == 1 || stride_words == 2)) {
    return detail::flag_neq_u64_avx2(base, stride_words, lo, hi, flags);
  }
#endif
  return detail::flag_neq_u64_scalar(base, stride_words, lo, hi, flags);
}

// out[j] += a * x[j] for j in [0, n) — SpMM's register-blocked inner
// loop over a dense row panel. Bit-identical across tiers (no FMA; see
// the detail comment).
inline void axpy(f32* out, const f32* x, f32 a, std::size_t n) {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      detail::axpy_f32_avx2(out, x, a, n);
      return;
    case SimdLevel::kSse2:
      detail::axpy_f32_sse2(out, x, a, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  detail::axpy_f32_scalar(out, x, a, n);
}

inline void axpy(f64* out, const f64* x, f64 a, std::size_t n) {
#if RPB_SIMD_X86
  switch (support::simd_level()) {
    case SimdLevel::kAvx2:
      detail::axpy_f64_avx2(out, x, a, n);
      return;
    case SimdLevel::kSse2:
      detail::axpy_f64_sse2(out, x, a, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  detail::axpy_f64_scalar(out, x, a, n);
}

}  // namespace rpb::simd
