// Wall-clock timing for the benchmark harnesses (the paper reports
// wall-clock time, Sec. 7.1).
#pragma once

#include <chrono>

namespace rpb {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rpb
