// The PBBS 64-bit mix hash (paper appendix, Listing 10). Used as the
// canonical cheap "task" for the Fig. 6 microbenchmark, and as the mixing
// stage of our deterministic PRNG.
#pragma once

#include "support/defs.h"

namespace rpb {

// Stateless 64->64 bit mixer; identical constants to PBBS's hash64.
constexpr u64 hash64(u64 v) {
  v = v * 3935559000370003845ull + 2691343689449507681ull;
  v ^= v >> 21;
  v ^= v << 37;
  v ^= v >> 4;
  v = v * 4768777513237032717ull;
  v ^= v << 20;
  v ^= v >> 41;
  v ^= v << 5;
  return v;
}

// Cheap secondary mixer (splitmix64 finalizer) for combining seeds.
constexpr u64 mix64(u64 v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

}  // namespace rpb
