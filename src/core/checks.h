// Run-time independence checks backing the "comfortable" tier: the
// parallel offset-uniqueness check of par_ind_iter_mut (paper Sec. 5.1,
// deliberately expensive — Fig. 5(a) measures it) and the cheap
// monotonicity check of par_ind_chunks_mut.
//
// Three selectable uniqueness expressions (CheckMode / RPB_CHECK_FUSE):
//   kBitmap — the original per-call byte bitmap: O(bound) allocation +
//             zero-fill on every check, then a marking pass, then the
//             caller's separate write pass. Kept as the Fig. 5(a)
//             ablation baseline.
//   kSplit  — epoch-stamped pooled mark tables (core/mark_table.h):
//             amortized O(1) setup, but still a distinct check pass
//             before the caller's write pass (no writes land on
//             failure, like kBitmap).
//   kFused  — the default: validation (bounds + epoch-claim uniqueness)
//             and the caller's write happen in the same parallel
//             region, halving traversals. On failure the region still
//             completes: writes at indices that passed validation have
//             landed, writes at violating indices are suppressed.
//             Below check_fuse_threshold() the fused path degrades to a
//             sequential loop that stops at the first violation, so
//             exactly the writes before the reported index landed.
//
// Failure reporting is deterministic in every mode: parallel passes
// only flag that a violation exists (write_min keeps the lowest
// *detected* index), and the thrown message is recomputed by a serial
// ascending rescan, so the reported index is always the first index at
// which a left-to-right validation would fail — independent of thread
// schedule.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/atomics.h"
#include "core/mark_table.h"
#include "obs/counters.h"
#include "sched/parallel.h"
#include "support/defs.h"
#include "support/error.h"
#include "support/simd.h"

namespace rpb::par {

// Strategy for the SngInd uniqueness check (see file header).
enum class CheckMode : int { kBitmap = 0, kSplit = 1, kFused = 2 };

namespace detail {

inline constexpr std::size_t kDefaultFuseThreshold = 4096;
inline constexpr u64 kNoBadIndex = ~u64{0};

inline std::atomic<int> g_check_mode{-1};          // -1: not yet resolved
inline std::atomic<i64> g_fuse_threshold{-1};      // -1: not yet resolved

// RPB_CHECK_FUSE: "bitmap" / "split" select the two-pass expressions,
// "fused" (or unset) the fused one, and a bare integer selects fused
// with that sequential-fallback threshold (0 = always parallel).
inline CheckMode resolve_check_mode() {
  if (const char* env = std::getenv("RPB_CHECK_FUSE")) {
    if (std::strcmp(env, "bitmap") == 0) return CheckMode::kBitmap;
    if (std::strcmp(env, "split") == 0) return CheckMode::kSplit;
  }
  return CheckMode::kFused;
}

inline std::size_t resolve_fuse_threshold() {
  if (const char* env = std::getenv("RPB_CHECK_FUSE")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return kDefaultFuseThreshold;
}

}  // namespace detail

inline CheckMode check_mode() {
  int mode = detail::g_check_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = static_cast<int>(detail::resolve_check_mode());
    detail::g_check_mode.store(mode, std::memory_order_relaxed);
  }
  return static_cast<CheckMode>(mode);
}

// Benchmark/test knob; safe to flip between (not during) checks —
// mirrors sched::set_split_mode for the RPB_SPLIT knob.
inline void set_check_mode(CheckMode mode) {
  detail::g_check_mode.store(static_cast<int>(mode),
                             std::memory_order_relaxed);
}

// Below this count the fused path runs sequentially: a tiny check-and-
// write region costs more in fork/injection than it saves in overlap.
inline std::size_t check_fuse_threshold() {
  i64 threshold = detail::g_fuse_threshold.load(std::memory_order_relaxed);
  if (threshold < 0) {
    threshold = static_cast<i64>(detail::resolve_fuse_threshold());
    detail::g_fuse_threshold.store(threshold, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(threshold);
}

inline void set_check_fuse_threshold(std::size_t threshold) {
  detail::g_fuse_threshold.store(static_cast<i64>(threshold),
                                 std::memory_order_relaxed);
}

namespace detail {

inline std::string oob_message(std::size_t index) {
  return "par_ind_iter_mut: offset out of bounds at index " +
         std::to_string(index);
}

inline std::string dup_message(std::size_t offset, std::size_t index) {
  return "par_ind_iter_mut: duplicate offset " + std::to_string(offset) +
         " at index " + std::to_string(index);
}

// Deterministic failure reporting: rescan serially in ascending index
// order (index_of must be pure, which the pattern API already requires)
// and throw for the first index a left-to-right validation rejects.
// Cold path — only reached after a parallel pass detected a violation.
template <class IndexFn>
[[noreturn]] void throw_first_unique_violation(std::size_t count,
                                               std::size_t bound,
                                               const IndexFn& index_of,
                                               MarkTable& table) {
  const u32 stamp = table.begin_check(bound);
  u32* slots = table.slots();
  for (std::size_t i = 0; i < count; ++i) {
    auto off = static_cast<std::size_t>(index_of(i));
    if (off >= bound) throw CheckFailure(oob_message(i));
    if (slots[off] == stamp) throw CheckFailure(dup_message(off, i));
    slots[off] = stamp;
  }
  throw CheckFailure(
      "par_ind_iter_mut: violation detected in parallel but not "
      "reproducible serially (impure index function?)");
}

}  // namespace detail

// Validates index_of(i) for i in [0, count) — every value in [0, bound)
// and no two equal — and, where validation succeeds, immediately calls
// apply(i, off) in the same region. This is the fused check-and-write
// engine behind par_ind_iter_mut's default checked expression; pass a
// no-op apply to get a pure epoch-table check. Throws CheckFailure on
// violation with the deterministic lowest-index message (see file
// header for which writes have landed when it throws).
template <class IndexFn, class Apply>
void fused_check_apply(std::size_t count, std::size_t bound,
                       const IndexFn& index_of, const Apply& apply,
                       std::size_t grain = 0) {
  MarkTableLease lease;
  const u32 stamp = lease->begin_check(bound);
  u32* slots = lease->slots();

  if (count <= check_fuse_threshold()) {
    // Sequential fallback: ascending order means the first violation
    // found is already the canonical one, and no later write lands.
    for (std::size_t i = 0; i < count; ++i) {
      auto off = static_cast<std::size_t>(index_of(i));
      if (off >= bound || slots[off] == stamp) {
        obs::bump(obs::Counter::kCheckedFailed);
        if (off >= bound) throw CheckFailure(detail::oob_message(i));
        throw CheckFailure(detail::dup_message(off, i));
      }
      slots[off] = stamp;
      apply(i, off);
    }
    obs::bump(obs::Counter::kCheckedPassed);
    return;
  }

  u64 first_bad = detail::kNoBadIndex;
  sched::parallel_for(
      0, count,
      [&](std::size_t i) {
        auto off = static_cast<std::size_t>(index_of(i));
        if (off >= bound) {
          write_min(&first_bad, static_cast<u64>(i));
          return;
        }
        // Epoch claim: exactly one task per offset observes the
        // pre-stamp value and proceeds to write; later claimants see
        // the stamp and report. The winner's write cannot race with a
        // loser (losers never touch data), so the fused region is as
        // race-free as check-then-write.
        std::atomic_ref<u32> slot(slots[off]);
        if (slot.exchange(stamp, std::memory_order_relaxed) == stamp) {
          write_min(&first_bad, static_cast<u64>(i));
          return;
        }
        apply(i, off);
      },
      grain);
  if (relaxed_load(&first_bad) != detail::kNoBadIndex) {
    obs::bump(obs::Counter::kCheckedFailed);
    detail::throw_first_unique_violation(count, bound, index_of, *lease);
  }
  obs::bump(obs::Counter::kCheckedPassed);
}

// Span form of the fused engine, for callers whose offsets are already
// materialized (par_ind_iter_mut, check_unique_offsets — i.e. all of
// them today). Semantically identical to the IndexFn form; the u64-
// offset sequential fallback additionally runs the lane-parallel
// candidate scan (support/simd.h unique_stamp_apply_u64): vector
// bounds/duplicate/epoch compares stamp-and-apply provably-clean
// 4-offset chunks, and the serial ascending loop resumes at the first
// candidate chunk, so it still decides the reported index — failure
// messages are byte-identical to RPB_SIMD=off. The parallel path above
// the fuse threshold is untouched (its claims must stay atomic; a
// vector gather of the epoch slots would be a racy plain read there).
template <class Index, class Apply>
void fused_check_apply(std::span<const Index> offsets, std::size_t bound,
                       const Apply& apply, std::size_t grain = 0) {
  const std::size_t count = offsets.size();
  if constexpr (std::is_same_v<Index, u64>) {
    if (count <= check_fuse_threshold()) {
      MarkTableLease lease;
      const u32 stamp = lease->begin_check(bound);
      u32* slots = lease->slots();
      const std::size_t done = simd::unique_stamp_apply_u64(
          offsets.data(), count, bound, slots, stamp, apply);
      for (std::size_t i = done; i < count; ++i) {
        auto off = static_cast<std::size_t>(offsets[i]);
        if (off >= bound || slots[off] == stamp) {
          obs::bump(obs::Counter::kCheckedFailed);
          if (off >= bound) throw CheckFailure(detail::oob_message(i));
          throw CheckFailure(detail::dup_message(off, i));
        }
        slots[off] = stamp;
        apply(i, off);
      }
      obs::bump(obs::Counter::kCheckedPassed);
      return;
    }
  }
  fused_check_apply(
      count, bound,
      [&](std::size_t i) { return static_cast<std::size_t>(offsets[i]); },
      apply, grain);
}

// Legacy bitmap expression, kept callable as the Fig. 5(a) ablation
// baseline: the O(bound) std::vector<u8> allocation + zero-fill is part
// of the measured per-call cost.
template <class Index>
void check_unique_offsets_bitmap(std::span<const Index> offsets,
                                 std::size_t bound) {
  std::vector<u8> marks(bound, 0);
  u64 first_bad = detail::kNoBadIndex;
  sched::parallel_for(0, offsets.size(), [&](std::size_t i) {
    auto off = static_cast<std::size_t>(offsets[i]);
    if (off >= bound) {
      write_min(&first_bad, static_cast<u64>(i));
      return;
    }
    std::atomic_ref<u8> mark(marks[off]);
    if (mark.exchange(1, std::memory_order_relaxed) != 0) {
      write_min(&first_bad, static_cast<u64>(i));
    }
  });
  if (relaxed_load(&first_bad) != detail::kNoBadIndex) {
    obs::bump(obs::Counter::kCheckedFailed);
    MarkTableLease lease;
    detail::throw_first_unique_violation(
        offsets.size(), bound,
        [&](std::size_t i) { return static_cast<std::size_t>(offsets[i]); },
        *lease);
  }
  obs::bump(obs::Counter::kCheckedPassed);
}

// Verifies every offsets[i] is in [0, bound) and no two are equal;
// throws CheckFailure on violation. Dispatches on check_mode(): the
// epoch-table expression (amortized O(1) setup) unless the legacy
// bitmap baseline was selected.
template <class Index>
void check_unique_offsets(std::span<const Index> offsets, std::size_t bound) {
  if (check_mode() == CheckMode::kBitmap) {
    check_unique_offsets_bitmap(offsets, bound);
    return;
  }
  fused_check_apply(offsets, bound, [](std::size_t, std::size_t) {});
}

// Verifies offsets is monotonically non-decreasing with offsets.back()
// <= bound (chunk boundaries). O(m) scan — cheap, as the paper notes.
// write_min keeps the lowest violating index, so the message is stable
// across runs and thread schedules (a descent at index i is a property
// of the input alone, unlike the uniqueness check's claim races).
template <class Index>
void check_monotonic_offsets(std::span<const Index> offsets,
                             std::size_t bound) {
  if (offsets.empty()) return;
  u64 first_bad = detail::kNoBadIndex;
  sched::parallel_for(0, offsets.size() - 1, [&](std::size_t i) {
    if (offsets[i] > offsets[i + 1]) {
      write_min(&first_bad, static_cast<u64>(i));
    }
  });
  u64 bad = relaxed_load(&first_bad);
  if (bad != detail::kNoBadIndex) {
    obs::bump(obs::Counter::kCheckedFailed);
    throw CheckFailure("par_ind_chunks_mut: offsets not monotonic at index " +
                       std::to_string(bad));
  }
  if (static_cast<std::size_t>(offsets.back()) > bound) {
    obs::bump(obs::Counter::kCheckedFailed);
    throw CheckFailure("par_ind_chunks_mut: final offset exceeds data size");
  }
  obs::bump(obs::Counter::kCheckedPassed);
}

// Verifies every indices[i] < bound — the gather-safety check of the
// sparse kernels' checked tier (column ids against the dense-operand
// length). Unlike check_unique_offsets, duplicates are fine: a CSR row
// may reference a column twice. write_min keeps the lowest violating
// index (a property of the input alone), so the message is stable
// across runs and thread schedules.
template <class Index>
void check_indices_in_bounds(std::span<const Index> indices,
                             std::size_t bound) {
  u64 first_bad = detail::kNoBadIndex;
  sched::parallel_for(0, indices.size(), [&](std::size_t i) {
    if (static_cast<std::size_t>(indices[i]) >= bound) {
      write_min(&first_bad, static_cast<u64>(i));
    }
  });
  u64 bad = relaxed_load(&first_bad);
  if (bad != detail::kNoBadIndex) {
    obs::bump(obs::Counter::kCheckedFailed);
    throw CheckFailure("sparse: column index out of bounds at nonzero " +
                       std::to_string(bad));
  }
  obs::bump(obs::Counter::kCheckedPassed);
}

}  // namespace rpb::par
