// Run-time independence checks backing the "comfortable" tier: the
// parallel offset-uniqueness check of par_ind_iter_mut (paper Sec. 5.1,
// deliberately expensive — Fig. 5(a) measures it) and the cheap
// monotonicity check of par_ind_chunks_mut.
#pragma once

#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "sched/parallel.h"
#include "support/defs.h"
#include "support/error.h"

namespace rpb::par {

// Verifies every offsets[i] is in [0, bound) and no two are equal.
// Parallel byte-bitmap marking; throws CheckFailure on violation. The
// O(bound) bitmap allocation + reset is part of the check's real cost.
template <class Index>
void check_unique_offsets(std::span<const Index> offsets, std::size_t bound) {
  std::vector<u8> marks(bound, 0);
  std::atomic<i64> bad_at{-1};
  sched::parallel_for(0, offsets.size(), [&](std::size_t i) {
    auto off = static_cast<std::size_t>(offsets[i]);
    if (off >= bound) {
      i64 expected = -1;
      bad_at.compare_exchange_strong(expected, static_cast<i64>(i));
      return;
    }
    std::atomic_ref<u8> mark(marks[off]);
    if (mark.exchange(1, std::memory_order_relaxed) != 0) {
      i64 expected = -1;
      bad_at.compare_exchange_strong(expected, static_cast<i64>(i));
    }
  });
  i64 bad = bad_at.load();
  if (bad >= 0) {
    auto off = static_cast<std::size_t>(offsets[bad]);
    throw CheckFailure(
        off >= bound
            ? "par_ind_iter_mut: offset out of bounds at index " +
                  std::to_string(bad)
            : "par_ind_iter_mut: duplicate offset " + std::to_string(off) +
                  " at index " + std::to_string(bad));
  }
}

// Verifies offsets is monotonically non-decreasing with offsets.back()
// <= bound (chunk boundaries). O(m) scan — cheap, as the paper notes.
template <class Index>
void check_monotonic_offsets(std::span<const Index> offsets,
                             std::size_t bound) {
  if (offsets.empty()) return;
  std::atomic<i64> bad_at{-1};
  sched::parallel_for(0, offsets.size() - 1, [&](std::size_t i) {
    if (offsets[i] > offsets[i + 1]) {
      i64 expected = -1;
      bad_at.compare_exchange_strong(expected, static_cast<i64>(i));
    }
  });
  i64 bad = bad_at.load();
  if (bad >= 0) {
    throw CheckFailure("par_ind_chunks_mut: offsets not monotonic at index " +
                       std::to_string(bad));
  }
  if (static_cast<std::size_t>(offsets.back()) > bound) {
    throw CheckFailure("par_ind_chunks_mut: final offset exceeds data size");
  }
}

}  // namespace rpb::par
