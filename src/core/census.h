// Static pattern census: the machinery behind the paper's Table 1,
// Table 3 and Fig. 3. Every benchmark module declares, next to its
// implementation, the parallel call-sites it contains — which pattern,
// how many distinct shared-data accesses appear at that site, and which
// phase it belongs to. The harness aggregates these declarations into
// the benchmark x pattern matrix and the access-share distribution.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rpb::census {

enum class Pattern { kRO, kStride, kBlock, kDC, kSngInd, kRngInd, kAW };
enum class Dispatch { kStatic, kDynamic };
enum class Fear { kFearless, kComfortable, kScared };

inline constexpr Pattern kAllPatterns[] = {
    Pattern::kRO,     Pattern::kStride, Pattern::kBlock, Pattern::kDC,
    Pattern::kSngInd, Pattern::kRngInd, Pattern::kAW};

// One parallel call-site in a benchmark.
struct Site {
  Pattern pattern;
  // Number of statically distinct accesses to shared data structures at
  // this site (the unit of Fig. 3's percentages).
  int shared_accesses;
  const char* phase;
};

// The census of one benchmark.
struct BenchmarkCensus {
  std::string name;
  Dispatch dispatch;
  std::vector<Site> sites;

  bool uses(Pattern p) const;
  int accesses(Pattern p) const;
  int total_accesses() const;
};

// Fear tier each pattern's recommended expression achieves (Table 3).
Fear fear_of(Pattern p);

const char* name_of(Pattern p);
const char* name_of(Fear f);
const char* name_of(Dispatch d);

// The recommended parallel expression per pattern (Table 3's middle
// column, translated to this library).
const char* expression_of(Pattern p);

}  // namespace rpb::census
