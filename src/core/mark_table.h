// Epoch-stamped mark tables backing the comfortable tier's uniqueness
// check (core/checks.h). The legacy expression allocated and zero-filled
// an O(bound) byte bitmap on every check; a MarkTable instead keeps a
// u32 slot array alive across checks and treats "slot == current epoch"
// as marked, so invalidating every mark is one counter bump. The
// O(bound) fill survives only in two cold places: growing a table past
// its high-water bound and the u32 epoch wraparound reset (once every
// ~4 billion checks per table). Tables are leased from a process-wide
// pool RAII-style, making the per-check setup amortized O(1) even for
// callers like the radix sort that check once per pass per round.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "support/defs.h"

namespace rpb::par {

class MarkTable {
 public:
  // Prepare the table for one check over offsets in [0, bound): grows
  // the slot array if this bound is a new high-water mark and bumps the
  // epoch, which invalidates every prior mark in O(1). Returns the
  // stamp value that means "marked during this check".
  u32 begin_check(std::size_t bound) {
    if (bound > slots_.size()) {
      // New slots start at 0, which is never a live stamp; surviving
      // slots hold stamps strictly below the post-increment epoch.
      slots_.resize(bound, 0);
    }
    if (++epoch_ == 0) {
      // u32 wraparound: stale slots could otherwise collide with
      // re-issued stamps, so pay the one O(bound) reset per 2^32 - 1
      // checks and restart above the never-marked value 0.
      std::fill(slots_.begin(), slots_.end(), 0);
      epoch_ = 1;
    }
    return epoch_;
  }

  u32* slots() { return slots_.data(); }
  std::size_t capacity() const { return slots_.size(); }
  u32 epoch() const { return epoch_; }

  // Test hook: jump the counter (e.g. to UINT32_MAX - 1) so the
  // wraparound reset is reachable without 2^32 real checks.
  void set_epoch_for_test(u32 epoch) { epoch_ = epoch; }

 private:
  std::vector<u32> slots_;
  u32 epoch_ = 0;
};

namespace detail {

struct MarkTablePool {
  std::mutex mu;
  std::vector<std::unique_ptr<MarkTable>> idle;
  std::size_t created = 0;
  // Concurrent leases beyond this many come from plain allocation and
  // are dropped on release instead of retained forever.
  static constexpr std::size_t kMaxIdle = 32;
};

inline MarkTablePool& mark_table_pool() {
  static MarkTablePool pool;
  return pool;
}

}  // namespace detail

// Leases a table from the pool (or constructs one when every pooled
// table is held by a concurrent check — nested parallel regions may
// check independently at the same time) and returns it on destruction.
class MarkTableLease {
 public:
  MarkTableLease() {
    obs::bump(obs::Counter::kMarkTableLeases);
    auto& pool = detail::mark_table_pool();
    {
      std::lock_guard<std::mutex> guard(pool.mu);
      if (!pool.idle.empty()) {
        table_ = std::move(pool.idle.back());
        pool.idle.pop_back();
        return;
      }
      ++pool.created;
    }
    table_ = std::make_unique<MarkTable>();
  }

  ~MarkTableLease() {
    auto& pool = detail::mark_table_pool();
    std::lock_guard<std::mutex> guard(pool.mu);
    if (pool.idle.size() < detail::MarkTablePool::kMaxIdle) {
      pool.idle.push_back(std::move(table_));
    }
  }

  MarkTableLease(const MarkTableLease&) = delete;
  MarkTableLease& operator=(const MarkTableLease&) = delete;

  MarkTable& operator*() { return *table_; }
  MarkTable* operator->() { return table_.get(); }

 private:
  std::unique_ptr<MarkTable> table_;
};

// Pool observability for tests/benches: tables sitting idle, and total
// tables ever constructed (steady-state reuse keeps the latter flat).
inline std::size_t mark_table_pool_idle() {
  auto& pool = detail::mark_table_pool();
  std::lock_guard<std::mutex> guard(pool.mu);
  return pool.idle.size();
}

inline std::size_t mark_table_pool_created() {
  auto& pool = detail::mark_table_pool();
  std::lock_guard<std::mutex> guard(pool.mu);
  return pool.created;
}

// Test hook: drop every idle table (e.g. to measure creation counts
// from a clean slate). Leased tables are unaffected.
inline void mark_table_pool_clear() {
  auto& pool = detail::mark_table_pool();
  std::lock_guard<std::mutex> guard(pool.mu);
  pool.idle.clear();
}

}  // namespace rpb::par
