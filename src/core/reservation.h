// Priority reservation cell for deterministic reservations (PBBS's
// `reservation` type): tasks bid for a shared resource with write_min;
// the lowest index wins, and losers observe the loss in their commit.
#pragma once

#include <limits>

#include "core/atomics.h"
#include "support/defs.h"

namespace rpb::par {

class Reservation {
 public:
  static constexpr i64 kNone = std::numeric_limits<i64>::max();

  void reserve(i64 priority) { write_min(&cell_, priority); }
  bool check(i64 priority) const { return relaxed_load(&cell_) == priority; }
  bool reserved() const { return relaxed_load(&cell_) != kNone; }
  void reset() { relaxed_store(&cell_, kNone); }

 private:
  i64 cell_ = kNone;
};

}  // namespace rpb::par
