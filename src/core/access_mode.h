// The expression-choice axis of the paper's evaluation: every irregular
// call-site (SngInd / RngInd / AW) can be expressed four ways, and the
// benchmarks thread this choice through so the harness can measure each
// (paper Fig. 4 uses Unchecked, Fig. 5(a) Checked, Fig. 5(b)
// Atomic/Locked).
#pragma once

#include <string>

namespace rpb {

enum class AccessMode {
  // Raw indexed writes, no validation — the paper's unsafe-Rust / C++
  // expression ("scared", fast).
  kUnchecked,
  // Run-time validation of the independence contract before the
  // parallel phase — the paper's par_ind_iter_mut ("comfortable").
  kChecked,
  // Relaxed atomic loads/stores placating the type system without
  // guaranteeing uniqueness ("scared", near zero-cost).
  kAtomic,
  // Mutex-per-element/bucket synchronization for types too big for
  // atomics ("scared", expensive — the paper's hist 4x).
  kLocked,
};

std::string to_string(AccessMode mode);

// Parses "unchecked" / "checked" / "atomic" / "locked" (CLI flag).
AccessMode parse_access_mode(const std::string& name);

}  // namespace rpb
