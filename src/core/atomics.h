// Small lock-free building blocks used across the irregular benchmarks:
// priority updates (write-min / write-max) and relaxed access helpers
// built on C++20 std::atomic_ref, the analogue of the paper's
// "tag loads and stores with Relaxed ordering" expression.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace rpb {

// Atomically ensure *target <= value; returns true iff this call
// lowered the stored value (priority update of Shun et al.).
template <class T>
bool write_min(T* target, T value,
               std::memory_order order = std::memory_order_relaxed) {
  std::atomic_ref<T> ref(*target);
  T current = ref.load(order);
  while (value < current) {
    if (ref.compare_exchange_weak(current, value, order, order)) return true;
  }
  return false;
}

// Atomically ensure *target >= value; returns true iff this call raised
// the stored value.
template <class T>
bool write_max(T* target, T value,
               std::memory_order order = std::memory_order_relaxed) {
  std::atomic_ref<T> ref(*target);
  T current = ref.load(order);
  while (value > current) {
    if (ref.compare_exchange_weak(current, value, order, order)) return true;
  }
  return false;
}

template <class T>
T relaxed_load(const T* target) {
  return std::atomic_ref<const T>(*target).load(std::memory_order_relaxed);
}

template <class T>
void relaxed_store(T* target, T value) {
  std::atomic_ref<T>(*target).store(value, std::memory_order_relaxed);
}

// Relaxed word-wise store of a trivially copyable object — the paper's
// "placate the type system with Relaxed atomics" expression for values
// wider than a machine word (the SngInd scatter's atomic variant). The
// object itself is NOT stored atomically; each 32-bit word is. That is
// exactly as strong as what relaxed per-field stores give safe Rust,
// and is race-free in the data-race sense when (as the algorithm
// guarantees) destinations are unique.
template <class T>
inline constexpr bool kWordWiseStorable =
    std::is_trivially_copyable_v<T> &&
    sizeof(T) % sizeof(std::uint32_t) == 0 &&
    alignof(T) >= alignof(std::uint32_t);

template <class T>
void relaxed_store_object(T* dst, const T& src) {
  static_assert(kWordWiseStorable<T>);
  std::uint32_t words[sizeof(T) / sizeof(std::uint32_t)];
  __builtin_memcpy(words, &src, sizeof(T));
  auto* out = reinterpret_cast<std::uint32_t*>(dst);
  for (std::size_t w = 0; w < sizeof(T) / sizeof(std::uint32_t); ++w) {
    std::atomic_ref<std::uint32_t>(out[w]).store(words[w],
                                                 std::memory_order_relaxed);
  }
}

template <class T>
bool cas(T* target, T expected, T desired,
         std::memory_order order = std::memory_order_acq_rel) {
  std::atomic_ref<T> ref(*target);
  return ref.compare_exchange_strong(expected, desired, order,
                                     std::memory_order_relaxed);
}

}  // namespace rpb
