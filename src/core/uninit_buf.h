// Uninitialized scratch buffers over the workspace arena
// (support/arena.h). A safe-Rust vec![0; n] zero-fills memory the
// algorithm is about to overwrite anyway; PBBS's C++ kernels skip that
// with uninitialized buffers (paper Sec. 5's MaybeUninit gap).
// UninitBuf<T> is that uninitialized buffer for trivially-copyable
// payloads: arena-backed under ArenaMode::kOn, a plain heap block in
// the heap modes (zero-filled in kZeroed, reproducing the legacy
// discipline for the ablation baseline). The contract is the same one
// the kernels already satisfied with fresh vectors: every element is
// written before it is read. A poison mode (RPB_POISON /
// set_buf_poison, default on in debug builds) fills fresh buffers with
// 0xA5 so a read-before-write shows up as deterministic garbage
// instead of silently-correct zeros or stale prior contents.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/arena.h"
#include "support/defs.h"

namespace rpb {

// The byte poisoned buffers are filled with: large enough that a u32 /
// u64 / pointer read of poisoned memory is conspicuous (0xa5a5...).
inline constexpr u8 kUninitPoisonByte = 0xA5;

namespace detail {

inline std::atomic<int> g_buf_poison{-1};  // -1: not yet resolved

inline bool resolve_buf_poison() {
  if (const char* env = std::getenv("RPB_POISON")) {
    if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
      return true;
    }
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
      return false;
    }
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace detail

inline bool buf_poison() {
  int poison = detail::g_buf_poison.load(std::memory_order_relaxed);
  if (poison < 0) {
    poison = detail::resolve_buf_poison() ? 1 : 0;
    detail::g_buf_poison.store(poison, std::memory_order_relaxed);
  }
  return poison != 0;
}

// Test/debug knob; safe to flip between (not during) allocations.
inline void set_buf_poison(bool poison) {
  detail::g_buf_poison.store(poison ? 1 : 0, std::memory_order_relaxed);
}

// A fixed-size buffer of trivially-copyable T whose contents start
// uninitialized (or zeroed on request / in kZeroed mode). Arena-backed
// storage is reclaimed by the owning lease (or an ArenaScope), not by
// this object's destructor, so an UninitBuf must not outlive the lease
// it was allocated from; heap-backed storage frees itself. Move-only.
template <class T>
class UninitBuf {
  static_assert(std::is_trivially_copyable_v<T>,
                "UninitBuf skips construction: payloads must be "
                "trivially copyable");
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "arena chunks only guarantee fundamental alignment");

 public:
  enum class Fill { kNone, kZero };

  UninitBuf() = default;

  UninitBuf(support::ArenaLease& lease, std::size_t n, Fill fill)
      : size_(n) {
    if (n == 0) return;
    const std::size_t bytes = n * sizeof(T);
    if (lease.mode() == support::ArenaMode::kOn) {
      ptr_ = static_cast<T*>(lease.allocate(bytes, alignof(T)));
    } else {
      ptr_ = static_cast<T*>(::operator new(bytes));
      heap_ = true;
    }
    if (fill == Fill::kZero || lease.mode() == support::ArenaMode::kZeroed) {
      std::memset(ptr_, 0, bytes);
    } else if (buf_poison()) {
      std::memset(ptr_, kUninitPoisonByte, bytes);
    }
  }

  UninitBuf(UninitBuf&& other) noexcept
      : ptr_(std::exchange(other.ptr_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        heap_(std::exchange(other.heap_, false)) {}

  UninitBuf& operator=(UninitBuf&& other) noexcept {
    if (this != &other) {
      release();
      ptr_ = std::exchange(other.ptr_, nullptr);
      size_ = std::exchange(other.size_, 0);
      heap_ = std::exchange(other.heap_, false);
    }
    return *this;
  }

  UninitBuf(const UninitBuf&) = delete;
  UninitBuf& operator=(const UninitBuf&) = delete;

  ~UninitBuf() { release(); }

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return ptr_[i]; }
  const T& operator[](std::size_t i) const { return ptr_[i]; }
  T* begin() { return ptr_; }
  T* end() { return ptr_ + size_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }
  std::span<T> span() { return std::span<T>(ptr_, size_); }
  std::span<const T> span() const { return std::span<const T>(ptr_, size_); }
  // Deduction helper: pattern APIs take span<const Index>.
  std::span<const T> cspan() const { return std::span<const T>(ptr_, size_); }

 private:
  void release() {
    if (heap_) ::operator delete(ptr_);
    ptr_ = nullptr;
    size_ = 0;
    heap_ = false;
  }

  T* ptr_ = nullptr;
  std::size_t size_ = 0;
  bool heap_ = false;
};

// Allocation entry points the kernels read naturally: uninit_buf for
// scratch that is fully written before any read, zeroed_buf for
// counter arrays whose algorithm genuinely needs the zeros.
template <class T>
UninitBuf<T> uninit_buf(support::ArenaLease& lease, std::size_t n) {
  return UninitBuf<T>(lease, n, UninitBuf<T>::Fill::kNone);
}

template <class T>
UninitBuf<T> zeroed_buf(support::ArenaLease& lease, std::size_t n) {
  return UninitBuf<T>(lease, n, UninitBuf<T>::Fill::kZero);
}

// Generic-scratch counterpart for templated kernels (sample_sort's
// element buffers): arena-backed and uninitialized when T qualifies,
// a value-initialized std::vector otherwise — non-trivial payloads
// keep the construction the language requires.
template <class T>
class ArenaVec {
  static constexpr bool kArenaEligible =
      std::is_trivially_copyable_v<T> &&
      alignof(T) <= alignof(std::max_align_t);

 public:
  ArenaVec([[maybe_unused]] support::ArenaLease& lease, std::size_t n) {
    if constexpr (kArenaEligible) {
      storage_ = UninitBuf<T>(lease, n, UninitBuf<T>::Fill::kNone);
    } else {
      storage_.resize(n);
    }
  }

  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }
  std::size_t size() const { return storage_.size(); }
  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }
  T* begin() { return storage_.data(); }
  T* end() { return storage_.data() + storage_.size(); }
  std::span<T> span() { return std::span<T>(storage_.data(), storage_.size()); }
  std::span<const T> span() const {
    return std::span<const T>(storage_.data(), storage_.size());
  }
  std::span<const T> cspan() const {
    return std::span<const T>(storage_.data(), storage_.size());
  }

 private:
  std::conditional_t<kArenaEligible, UninitBuf<T>, std::vector<T>> storage_;
};

}  // namespace rpb
