#include "core/census.h"

namespace rpb::census {

bool BenchmarkCensus::uses(Pattern p) const {
  for (const Site& s : sites) {
    if (s.pattern == p) return true;
  }
  return false;
}

int BenchmarkCensus::accesses(Pattern p) const {
  int total = 0;
  for (const Site& s : sites) {
    if (s.pattern == p) total += s.shared_accesses;
  }
  return total;
}

int BenchmarkCensus::total_accesses() const {
  int total = 0;
  for (const Site& s : sites) total += s.shared_accesses;
  return total;
}

Fear fear_of(Pattern p) {
  switch (p) {
    case Pattern::kRO:
    case Pattern::kStride:
    case Pattern::kBlock:
    case Pattern::kDC:
      return Fear::kFearless;
    case Pattern::kSngInd:
    case Pattern::kRngInd:
      return Fear::kComfortable;
    case Pattern::kAW:
      return Fear::kScared;
  }
  return Fear::kScared;
}

const char* name_of(Pattern p) {
  switch (p) {
    case Pattern::kRO:
      return "RO";
    case Pattern::kStride:
      return "Stride";
    case Pattern::kBlock:
      return "Block";
    case Pattern::kDC:
      return "D&C";
    case Pattern::kSngInd:
      return "SngInd";
    case Pattern::kRngInd:
      return "RngInd";
    case Pattern::kAW:
      return "AW";
  }
  return "?";
}

const char* name_of(Fear f) {
  switch (f) {
    case Fear::kFearless:
      return "Fearless";
    case Fear::kComfortable:
      return "Comfortable";
    case Fear::kScared:
      return "Scared";
  }
  return "?";
}

const char* name_of(Dispatch d) {
  return d == Dispatch::kStatic ? "static" : "dynamic";
}

const char* expression_of(Pattern p) {
  switch (p) {
    case Pattern::kRO:
      return "par_iter";
    case Pattern::kStride:
      return "par_iter_mut";
    case Pattern::kBlock:
      return "par_chunks_mut";
    case Pattern::kDC:
      return "join";
    case Pattern::kSngInd:
      return "par_ind_iter_mut";
    case Pattern::kRngInd:
      return "par_ind_chunks_mut";
    case Pattern::kAW:
      return "atomics / mutexes";
  }
  return "?";
}

}  // namespace rpb::census
