// Foundational data-parallel primitives (scan, pack, counting) that the
// pattern library and every benchmark build on. These correspond to the
// "scan" and "pack" algorithmic patterns the paper inventories from
// Structured Parallel Programming (Sec. 7.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/parallel.h"
#include "support/defs.h"

namespace rpb::par {

// Exclusive in-place prefix scan under op (associative, identity id).
// Returns the total reduction of the original contents.
//
// Two-pass blocked algorithm: per-block reduce, serial scan of the
// (few) block sums, then per-block local scan with offset — the
// classic work-efficient formulation.
template <class T, class Op>
T scan_exclusive(std::span<T> data, T identity, Op op) {
  const std::size_t n = data.size();
  if (n == 0) return identity;
  const std::size_t threads = sched::ThreadPool::global().num_threads();
  const std::size_t block = sched::detail::default_block(n, threads);
  const std::size_t num_blocks = (n + block - 1) / block;

  if (num_blocks == 1) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) {
      T next = op(acc, data[i]);
      data[i] = acc;
      acc = next;
    }
    return acc;
  }

  std::vector<T> sums(num_blocks, identity);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = op(acc, data[i]);
        sums[b] = acc;
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }

  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        T acc = sums[b];
        for (std::size_t i = lo; i < hi; ++i) {
          T next = op(acc, data[i]);
          data[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

// Exclusive prefix-sum specialization (the pervasive case).
template <class T>
T scan_exclusive_sum(std::span<T> data) {
  return scan_exclusive(data, T{}, [](T a, T b) { return a + b; });
}

// Indices i in [0, flags.size()) with flags[i] != 0, in order.
template <class Index = std::size_t>
std::vector<Index> pack_index(std::span<const u8> flags) {
  const std::size_t n = flags.size();
  std::vector<std::size_t> counts;
  const std::size_t threads = sched::ThreadPool::global().num_threads();
  const std::size_t block = sched::detail::default_block(n, threads);
  const std::size_t num_blocks = (n + block - 1) / block;
  counts.assign(num_blocks, 0);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += flags[i] != 0;
        counts[b] = c;
      },
      1);
  std::size_t total = scan_exclusive_sum(std::span<std::size_t>(counts));
  std::vector<Index> out(total);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        std::size_t pos = counts[b];
        for (std::size_t i = lo; i < hi; ++i) {
          if (flags[i] != 0) out[pos++] = static_cast<Index>(i);
        }
      },
      1);
  return out;
}

// Stable parallel filter: elements of `in` whose predicate holds.
template <class T, class Pred>
std::vector<T> pack(std::span<const T> in, Pred pred) {
  const std::size_t n = in.size();
  std::vector<u8> flags(n);
  sched::parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(in[i]) ? 1 : 0; });
  std::vector<std::size_t> idx = pack_index(std::span<const u8>(flags));
  std::vector<T> out(idx.size());
  sched::parallel_for(0, idx.size(), [&](std::size_t i) { out[i] = in[idx[i]]; });
  return out;
}

// Parallel count of positions satisfying pred.
template <class Pred>
std::size_t count_if(std::size_t begin, std::size_t end, Pred pred) {
  return sched::parallel_reduce_range(
      begin, end, std::size_t{0},
      [&](std::size_t lo, std::size_t hi) {
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
        return c;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
}

}  // namespace rpb::par
