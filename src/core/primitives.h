// Foundational data-parallel primitives (scan, pack, counting) that the
// pattern library and every benchmark build on. These correspond to the
// "scan" and "pack" algorithmic patterns the paper inventories from
// Structured Parallel Programming (Sec. 7.1).
//
// The family is fused, arena-backed, and allocation-free in steady
// state (DESIGN.md "Fused scan/pack primitives"):
//
//   * Scans lease their block-sums array from the workspace arena pool
//     (support/arena.h) instead of heap-allocating it per call.
//   * map_scan_* fuses the value-producing pass with the scan: the map
//     functional is invoked exactly once per index (side effects are
//     allowed) inside the upsweep, so "write values, then scan them"
//     collapses from three passes over memory to two.
//   * pack evaluates its predicate exactly once per element, staging
//     survivors in block-local arena scratch during the count pass and
//     concatenating with a parallel copy — two passes over the input
//     instead of the naive four (flags, counts, scan, gather), with the
//     intermediate u8 flags array gone entirely.
//   * Pack results are returned through UninitBuf storage allocated
//     from a caller-provided lease (never zero-initialized, valid while
//     the lease lives), or written into caller spans via *_into forms.
//   * The bit-flag path (fill_bit_flags / pack_index_bits) stores 64
//     flags per u64 word and scans them with popcount, for kernels that
//     materialize a frontier/keep mask anyway.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/simd.h"

namespace rpb::par {

namespace detail {

struct BlockGeom {
  std::size_t block = 0;
  std::size_t num_blocks = 0;
};

inline BlockGeom block_geom(std::size_t n) {
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t block = sched::detail::default_block(n, threads);
  return BlockGeom{block, (n + block - 1) / block};
}

// The *_sum wrappers use this named op (not an anonymous lambda) so the
// blocked scans can recognize "u64 prefix sum" — the pervasive case: all
// scan-sum call sites in the repo are u64 spans — and route each block's
// upsweep reduce and downsweep prefix through support/simd.h. A generic
// Op stays on the scalar bodies.
struct SumOp {
  template <class T>
  T operator()(T a, T b) const {
    return a + b;
  }
};

template <class T, class Op>
inline constexpr bool kSimdSum =
    std::is_same_v<T, u64> && std::is_same_v<std::remove_cvref_t<Op>, SumOp>;

// Per-block inner loops of the two-pass scans, constexpr-dispatched so
// the u64-sum instantiations become vector loops (simd.h dispatches
// again on the active RPB_SIMD level; its scalar fallback is the exact
// loop in the else branch).

template <class T, class Op>
T block_reduce(const T* data, std::size_t lo, std::size_t hi, T acc, Op op) {
  if constexpr (kSimdSum<T, Op>) {
    return acc + simd::sum_u64(data + lo, hi - lo);
  } else {
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, data[i]);
    return acc;
  }
}

template <class T, class Op>
T block_scan_exclusive(T* data, std::size_t lo, std::size_t hi, T acc, Op op) {
  if constexpr (kSimdSum<T, Op>) {
    return simd::prefix_exclusive_sum_u64(data + lo, hi - lo, acc);
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      T next = op(acc, data[i]);
      data[i] = acc;
      acc = next;
    }
    return acc;
  }
}

template <class T, class Op>
T block_scan_inclusive(T* data, std::size_t lo, std::size_t hi, T acc, Op op) {
  if constexpr (kSimdSum<T, Op>) {
    return simd::prefix_inclusive_sum_u64(data + lo, hi - lo, acc);
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      acc = op(acc, data[i]);
      data[i] = acc;
    }
    return acc;
  }
}

template <class T, class Op>
T block_scan_exclusive_into(const T* in, T* out, std::size_t lo,
                            std::size_t hi, T acc, Op op) {
  if constexpr (kSimdSum<T, Op>) {
    return simd::prefix_exclusive_sum_into_u64(in + lo, out + lo, hi - lo,
                                               acc);
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      T next = op(acc, in[i]);
      out[i] = acc;
      acc = next;
    }
    return acc;
  }
}

// map-scan upsweep: stage map(i) into out (exactly once, in index
// order) and return the block reduction. The u64-sum form stages first
// and vector-sums the staged (cache-resident) block, trading a second
// read of the block for breaking the one-add-per-cycle carry chain.
template <class T, class Map, class Op>
T block_map_stage(Map& map, T* out, std::size_t lo, std::size_t hi, T acc,
                  Op op) {
  if constexpr (kSimdSum<T, Op>) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = map(i);
    return acc + simd::sum_u64(out + lo, hi - lo);
  } else {
    for (std::size_t i = lo; i < hi; ++i) {
      T value = map(i);
      out[i] = value;
      acc = op(acc, value);
    }
    return acc;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Scans. All blocked forms use the classic two-pass work-efficient
// formulation (per-block reduce, serial scan of the few block sums,
// per-block local scan with offset); the sums array is arena-leased, so
// a steady-state call performs no heap allocation.
// ---------------------------------------------------------------------------

// Exclusive in-place prefix scan under op (associative, identity id).
// Returns the total reduction of the original contents.
template <class T, class Op>
T scan_exclusive(std::span<T> data, T identity, Op op) {
  const std::size_t n = data.size();
  if (n == 0) return identity;
  const auto [block, num_blocks] = detail::block_geom(n);

  if (num_blocks == 1) {
    return detail::block_scan_exclusive(data.data(), 0, n, identity, op);
  }

  support::ArenaLease scratch;
  ArenaVec<T> sums(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        sums[b] = detail::block_reduce(data.data(), lo, hi, identity, op);
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }

  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        detail::block_scan_exclusive(data.data(), lo, hi, sums[b], op);
      },
      1);
  return total;
}

// Exclusive prefix-sum specialization (the pervasive case).
template <class T>
T scan_exclusive_sum(std::span<T> data) {
  return scan_exclusive(data, T{}, detail::SumOp{});
}

// Inclusive in-place prefix scan; returns the total reduction.
template <class T, class Op>
T scan_inclusive(std::span<T> data, T identity, Op op) {
  const std::size_t n = data.size();
  if (n == 0) return identity;
  const auto [block, num_blocks] = detail::block_geom(n);

  if (num_blocks == 1) {
    return detail::block_scan_inclusive(data.data(), 0, n, identity, op);
  }

  support::ArenaLease scratch;
  ArenaVec<T> sums(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        sums[b] = detail::block_reduce(data.data(), lo, hi, identity, op);
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }

  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        detail::block_scan_inclusive(data.data(), lo, hi, sums[b], op);
      },
      1);
  return total;
}

template <class T>
T scan_inclusive_sum(std::span<T> data) {
  return scan_inclusive(data, T{}, detail::SumOp{});
}

// Out-of-place exclusive scan: out[i] = op-reduction of in[0..i), in is
// untouched. Fuses what used to be "scan in place, then copy to the
// destination" (e.g. CSR offsets) into the scan's own two passes.
template <class T, class Op>
T scan_exclusive_into(std::span<const T> in, std::span<T> out, T identity,
                      Op op) {
  const std::size_t n = in.size();
  assert(out.size() >= n);
  if (n == 0) return identity;
  const auto [block, num_blocks] = detail::block_geom(n);

  if (num_blocks == 1) {
    return detail::block_scan_exclusive_into(in.data(), out.data(), 0, n,
                                             identity, op);
  }

  support::ArenaLease scratch;
  ArenaVec<T> sums(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        sums[b] = detail::block_reduce(in.data(), lo, hi, identity, op);
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }

  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        detail::block_scan_exclusive_into(in.data(), out.data(), lo, hi,
                                          sums[b], op);
      },
      1);
  return total;
}

template <class T>
T scan_exclusive_sum_into(std::span<const T> in, std::span<T> out) {
  return scan_exclusive_into(in, out, T{}, detail::SumOp{});
}

// ---------------------------------------------------------------------------
// Fused map + scan: out[i] = scan of map(0), ..., map(i-1) (exclusive)
// or ..., map(i) (inclusive). map is invoked EXACTLY ONCE per index, in
// index order within each block — so it may carry side effects (e.g.
// BFS's claim pass records discoveries while returning its count). The
// mapped values are staged into `out` during the upsweep and replaced
// by prefixes in the downsweep: two passes over memory instead of the
// three that "parallel_for writing values, then scan" costs.
// ---------------------------------------------------------------------------

template <class T, class Map, class Op>
T map_scan_exclusive(std::size_t n, Map map, std::span<T> out, T identity,
                     Op op) {
  assert(out.size() >= n);
  if (n == 0) return identity;
  const auto [block, num_blocks] = detail::block_geom(n);

  if (num_blocks == 1) {
    // Stage map(i) (once, in order), then scan the staged block — the
    // same shape as the blocked path so the u64-sum form vectorizes.
    T staged = detail::block_map_stage(map, out.data(), 0, n, identity, op);
    detail::block_scan_exclusive(out.data(), 0, n, identity, op);
    return staged;
  }

  support::ArenaLease scratch;
  ArenaVec<T> sums(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        sums[b] = detail::block_map_stage(map, out.data(), lo, hi, identity,
                                          op);
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }

  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        detail::block_scan_exclusive(out.data(), lo, hi, sums[b], op);
      },
      1);
  return total;
}

template <class T, class Map>
T map_scan_exclusive_sum(std::size_t n, Map map, std::span<T> out) {
  return map_scan_exclusive(n, map, out, T{}, detail::SumOp{});
}

// Inclusive variant: out[i] includes map(i).
template <class T, class Map, class Op>
T map_scan_inclusive(std::size_t n, Map map, std::span<T> out, T identity,
                     Op op) {
  assert(out.size() >= n);
  if (n == 0) return identity;
  const auto [block, num_blocks] = detail::block_geom(n);

  if (num_blocks == 1) {
    T staged = detail::block_map_stage(map, out.data(), 0, n, identity, op);
    detail::block_scan_inclusive(out.data(), 0, n, identity, op);
    return staged;
  }

  support::ArenaLease scratch;
  ArenaVec<T> sums(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        sums[b] = detail::block_map_stage(map, out.data(), lo, hi, identity,
                                          op);
      },
      1);

  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }

  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        detail::block_scan_inclusive(out.data(), lo, hi, sums[b], op);
      },
      1);
  return total;
}

template <class T, class Map>
T map_scan_inclusive_sum(std::size_t n, Map map, std::span<T> out) {
  return map_scan_inclusive(n, map, out, T{}, detail::SumOp{});
}

// ---------------------------------------------------------------------------
// Pack family. Fused pred-once staging (see DESIGN.md for why this is
// safe under work stealing): pass 1 evaluates value(i) once per index —
// in index order within each block — and stages survivors into
// block-local scratch slices; after a serial scan of the (few) block
// counts, pass 2 concatenates the slices. Stability follows from
// blocks covering index ranges in order.
// ---------------------------------------------------------------------------

namespace detail {

// Core of every pack: value(i) returns (keep, staged_value). sink is
// called once with the survivor total and must return the destination
// pointer; returns the total. Stage scratch and block counts come from
// an internal lease, so the caller's arena receives only what sink
// allocates from it.
template <class V, class ValueFn, class Sink>
std::size_t fused_pack(std::size_t n, ValueFn value, Sink sink) {
  if (n == 0) {
    sink(std::size_t{0});
    return 0;
  }
  const auto [block, num_blocks] = block_geom(n);

  support::ArenaLease scratch;
  auto stage = uninit_buf<V>(scratch, n);
  auto counts = uninit_buf<std::size_t>(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&, block = block](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        V* slot = stage.data() + lo;
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          auto [keep, v] = value(i);
          if (keep) slot[c++] = v;
        }
        counts[b] = c;
      },
      1);

  std::size_t total = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t c = counts[b];
    counts[b] = total;
    total += c;
  }

  V* dst = sink(total);
  if (total != 0) {
    sched::parallel_for(
        0, num_blocks,
        [&, block = block](std::size_t b) {
          std::size_t lo = b * block;
          std::size_t next = b + 1 < num_blocks ? counts[b + 1] : total;
          std::size_t c = next - counts[b];
          if (c != 0) {
            std::memcpy(dst + counts[b], stage.data() + lo, c * sizeof(V));
          }
        },
        1);
  }
  return total;
}

}  // namespace detail

// Stable parallel filter: elements of `in` whose predicate holds, in an
// arena buffer from `lease` (valid while the lease lives). pred is
// invoked exactly once per element, in index order within each block,
// so side-effecting predicates (hash-set inserts, claim attempts) are
// well-defined.
template <class T, class Pred>
UninitBuf<T> pack(support::ArenaLease& lease, std::span<const T> in,
                  Pred pred) {
  UninitBuf<T> out;
  detail::fused_pack<T>(
      in.size(),
      [&](std::size_t i) { return std::pair<bool, T>(pred(in[i]), in[i]); },
      [&](std::size_t total) {
        out = uninit_buf<T>(lease, total);
        return out.data();
      });
  return out;
}

// pack with an index-aware predicate pred(i, elem).
template <class T, class Pred>
UninitBuf<T> pack_indexed(support::ArenaLease& lease, std::span<const T> in,
                          Pred pred) {
  UninitBuf<T> out;
  detail::fused_pack<T>(
      in.size(),
      [&](std::size_t i) { return std::pair<bool, T>(pred(i, in[i]), in[i]); },
      [&](std::size_t total) {
        out = uninit_buf<T>(lease, total);
        return out.data();
      });
  return out;
}

// Filter into caller storage (for ping-pong buffers reused across
// rounds, e.g. frontiers): returns the survivor count; dst must have
// room for every survivor (dst.size() >= in.size() always suffices).
template <class T, class Pred>
std::size_t pack_into(std::span<const T> in, Pred pred, std::span<T> dst) {
  return detail::fused_pack<T>(
      in.size(),
      [&](std::size_t i) { return std::pair<bool, T>(pred(in[i]), in[i]); },
      [&](std::size_t total) {
        assert(dst.size() >= total);
        (void)total;
        return dst.data();
      });
}

// Indices i in [0, n) whose pred(i) holds, in order; pred invoked
// exactly once per index. The fused form of "write flags, pack_index".
template <class Index = std::size_t, class Pred>
UninitBuf<Index> pack_index_if(support::ArenaLease& lease, std::size_t n,
                               Pred pred) {
  UninitBuf<Index> out;
  detail::fused_pack<Index>(
      n,
      [&](std::size_t i) {
        return std::pair<bool, Index>(pred(i), static_cast<Index>(i));
      },
      [&](std::size_t total) {
        out = uninit_buf<Index>(lease, total);
        return out.data();
      });
  return out;
}

// Indices i in [0, flags.size()) with flags[i] != 0, in order.
template <class Index = std::size_t>
UninitBuf<Index> pack_index(support::ArenaLease& lease,
                            std::span<const u8> flags) {
  return pack_index_if<Index>(lease, flags.size(),
                              [&](std::size_t i) { return flags[i] != 0; });
}

// ---------------------------------------------------------------------------
// Bit-packed flags: 64 flags per u64 word, counted with popcount. For
// kernels that materialize a frontier/keep mask, this shrinks the mask
// (and the counting pass's memory traffic) 8x versus u8 flags.
// ---------------------------------------------------------------------------

inline constexpr std::size_t bit_words(std::size_t n) {
  return (n + 63) / 64;
}

inline bool test_bit(std::span<const u64> words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

// words[w] bit (i & 63) = pred(i) for i in [0, n); pred is invoked
// exactly once per index. Each task owns whole words, so there are no
// sub-word write races; bits past n in the tail word are zero.
template <class Pred>
void fill_bit_flags(std::span<u64> words, std::size_t n, Pred pred) {
  const std::size_t nw = bit_words(n);
  assert(words.size() >= nw);
  sched::parallel_for(0, nw, [&](std::size_t w) {
    const std::size_t lo = w * 64;
    const std::size_t hi = std::min(n, lo + 64);
    u64 bits = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      bits |= static_cast<u64>(pred(i) ? 1 : 0) << (i - lo);
    }
    words[w] = bits;
  });
}

// Indices of set bits in [0, n), in order. The counting pass reads one
// word (64 flags) per popcount; the emit pass walks set bits with
// countr_zero.
template <class Index = std::size_t>
UninitBuf<Index> pack_index_bits(support::ArenaLease& lease,
                                 std::span<const u64> words, std::size_t n) {
  const std::size_t nw = bit_words(n);
  assert(words.size() >= nw);
  if (n == 0) return uninit_buf<Index>(lease, 0);
  // Mask for the (possibly partial) tail word.
  const u64 tail_mask = simd::tail_word_mask(n);
  auto word_at = [&](std::size_t w) {
    u64 bits = words[w];
    return w + 1 == nw ? bits & tail_mask : bits;
  };

  const std::size_t threads = sched::current_pool().num_threads();
  // Word-granular blocks: the same leaves-per-worker target as
  // default_block, but the floor is in words (64 flags each).
  const std::size_t block =
      std::max<std::size_t>(64, nw / (8 * threads) + 1);
  const std::size_t num_blocks = (nw + block - 1) / block;

  support::ArenaLease scratch;
  auto counts = uninit_buf<std::size_t>(scratch, num_blocks);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(nw, lo + block);
        // Whole words vector-popcount; the (masked) tail word, if this
        // block owns it, is counted separately.
        std::size_t whole = hi == nw ? hi - 1 : hi;
        std::size_t c = whole > lo
                            ? simd::popcount_words(words.data() + lo,
                                                   whole - lo)
                            : 0;
        if (hi == nw) {
          c += static_cast<std::size_t>(std::popcount(word_at(nw - 1)));
        }
        counts[b] = c;
      },
      1);

  std::size_t total = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::size_t c = counts[b];
    counts[b] = total;
    total += c;
  }

  auto out = uninit_buf<Index>(lease, total);
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(nw, lo + block);
        std::size_t pos = counts[b];
        for (std::size_t w = lo; w < hi; ++w) {
          simd::visit_set_bits(word_at(w), w * 64, [&](std::size_t i) {
            out[pos++] = static_cast<Index>(i);
          });
        }
      },
      1);
  return out;
}

// ---------------------------------------------------------------------------
// Counting.
// ---------------------------------------------------------------------------

// Parallel count of positions satisfying pred.
template <class Pred>
std::size_t count_if(std::size_t begin, std::size_t end, Pred pred) {
  return sched::parallel_reduce_range(
      begin, end, std::size_t{0},
      [&](std::size_t lo, std::size_t hi) {
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
        return c;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
}

// Popcount over a bit-flag mask covering [0, n).
inline std::size_t count_bits(std::span<const u64> words, std::size_t n) {
  const std::size_t nw = bit_words(n);
  assert(words.size() >= nw);
  if (n == 0) return 0;
  const u64 tail_mask = simd::tail_word_mask(n);
  return sched::parallel_reduce_range(
      0, nw, std::size_t{0},
      [&](std::size_t lo, std::size_t hi) {
        std::size_t whole = hi == nw ? hi - 1 : hi;
        std::size_t c =
            whole > lo ? simd::popcount_words(words.data() + lo, whole - lo)
                       : 0;
        if (hi == nw) {
          c += static_cast<std::size_t>(
              std::popcount(words[nw - 1] & tail_mask));
        }
        return c;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
}

}  // namespace rpb::par
