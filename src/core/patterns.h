// The paper's parallel access-pattern vocabulary (Table 3) as a C++
// library. Fearless patterns (RO / Stride / Block / D&C) hand each task
// a disjoint element or chunk, so correct use cannot race; irregular
// patterns (SngInd / RngInd) take an AccessMode selecting between the
// unchecked ("scary") and checked ("comfortable") expressions the paper
// compares. AW has no generic expression — benchmarks synchronize
// explicitly with core/atomics.h or mutexes.
#pragma once

#include <span>
#include <vector>

#include "core/access_mode.h"
#include "core/checks.h"
#include "sched/parallel.h"

namespace rpb::par {

// --- Fearless tier -------------------------------------------------------

// RO: read-only traversal; body(i, elem) sees a const reference.
template <class T, class F>
void par_iter(std::span<const T> data, F body, std::size_t grain = 0) {
  sched::parallel_for(
      0, data.size(), [&](std::size_t i) { body(i, data[i]); }, grain);
}

// Stride: task i mutates exactly element i (paper Listing 4(e)).
template <class T, class F>
void par_iter_mut(std::span<T> data, F body, std::size_t grain = 0) {
  sched::parallel_for(
      0, data.size(), [&](std::size_t i) { body(i, data[i]); }, grain);
}

// Block: task i mutates the i-th fixed-size chunk (paper Listing 5).
// body(chunk_index, chunk_span); the final chunk may be short.
template <class T, class F>
void par_chunks_mut(std::span<T> data, std::size_t chunk_size, F body) {
  const std::size_t n = data.size();
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
  sched::parallel_for(
      0, chunks,
      [&](std::size_t c) {
        std::size_t lo = c * chunk_size;
        std::size_t hi = std::min(n, lo + chunk_size);
        body(c, data.subspan(lo, hi - lo));
      },
      1);
}

// --- Comfortable tier (run-time-checked irregular) -----------------------

// SngInd: task i mutates data[offsets[i]] (paper Listing 6(f)). The
// algorithm must guarantee unique offsets; kChecked validates that
// claim and throws CheckFailure if the translation of algorithm to
// code got it wrong. Under the default CheckMode::kFused the
// validation and the write share one parallel region (see checks.h for
// the per-mode cost model and which writes land on failure); the
// two-pass modes check first and write only on success.
template <class T, class Index, class F>
void par_ind_iter_mut(std::span<T> data, std::span<const Index> offsets,
                      F body, AccessMode mode = AccessMode::kChecked,
                      std::size_t grain = 0) {
  if (mode == AccessMode::kChecked) {
    if (check_mode() == CheckMode::kFused) {
      // Span form: small counts take the lane-parallel candidate scan
      // over the materialized offsets (checks.h).
      fused_check_apply(
          offsets, data.size(),
          [&](std::size_t i, std::size_t off) { body(i, data[off]); }, grain);
      return;
    }
    check_unique_offsets(offsets, data.size());
  }
  sched::parallel_for(
      0, offsets.size(),
      [&](std::size_t i) { body(i, data[static_cast<std::size_t>(offsets[i])]); },
      grain);
}

// SngInd generalized beyond offset arrays (paper Sec. 5.1): indices
// come from a pure function of the task id. The fused expression never
// materializes the indices (the epoch table is the only auxiliary
// state); the bitmap baseline still pays the O(count) index vector its
// check requires.
template <class T, class IndexFn, class F>
void par_ind_iter_mut_fn(std::span<T> data, std::size_t count,
                         IndexFn index_of, F body,
                         AccessMode mode = AccessMode::kChecked,
                         std::size_t grain = 0) {
  if (mode == AccessMode::kChecked) {
    switch (check_mode()) {
      case CheckMode::kFused:
        fused_check_apply(
            count, data.size(),
            [&](std::size_t i) {
              return static_cast<std::size_t>(index_of(i));
            },
            [&](std::size_t i, std::size_t off) { body(i, data[off]); },
            grain);
        return;
      case CheckMode::kSplit:
        // Pure check through the epoch table, directly off the index
        // function — no materialization, then a separate write pass.
        fused_check_apply(
            count, data.size(),
            [&](std::size_t i) {
              return static_cast<std::size_t>(index_of(i));
            },
            [](std::size_t, std::size_t) {}, grain);
        break;
      case CheckMode::kBitmap: {
        std::vector<std::size_t> indices(count);
        sched::parallel_for(
            0, count,
            [&](std::size_t i) {
              indices[i] = static_cast<std::size_t>(index_of(i));
            },
            grain);
        check_unique_offsets_bitmap(std::span<const std::size_t>(indices),
                                    data.size());
        break;
      }
    }
  }
  sched::parallel_for(
      0, count,
      [&](std::size_t i) {
        body(i, data[static_cast<std::size_t>(index_of(i))]);
      },
      grain);
}

// RngInd: task i mutates data[offsets[i] .. offsets[i+1]) (paper
// Listing 7(c)). offsets has k+1 entries for k tasks; kChecked verifies
// monotonicity — cheap, so "comfort is an easier trade-off to accept".
// grain batches that many consecutive chunks per task: the default 1
// gives every chunk its own task (right when chunks are large), 0 asks
// the scheduler for its default grain (right when chunks are tiny and
// per-chunk fork overhead would dominate, e.g. alphabet-sized ranges).
template <class T, class Index, class F>
void par_ind_chunks_mut(std::span<T> data, std::span<const Index> offsets,
                        F body, AccessMode mode = AccessMode::kChecked,
                        std::size_t grain = 1) {
  if (offsets.size() < 2) return;
  if (mode == AccessMode::kChecked) {
    check_monotonic_offsets(offsets, data.size());
  }
  sched::parallel_for(
      0, offsets.size() - 1,
      [&](std::size_t i) {
        auto lo = static_cast<std::size_t>(offsets[i]);
        auto hi = static_cast<std::size_t>(offsets[i + 1]);
        body(i, data.subspan(lo, hi - lo));
      },
      grain);
}

}  // namespace rpb::par
