// Deterministic reservations (Blelloch et al., PPoPP'12): the generic
// speculative-for framework PBBS uses for its irregular benchmarks. We
// use it for maximal matching and Delaunay refinement.
//
// A Step exposes:
//   bool reserve(size_t i)  — try to reserve the shared cells task i
//                             needs, using write_min with priority i;
//                             return false to drop the task entirely.
//   bool commit(size_t i)   — re-check that i still holds all its
//                             reservations; if so apply the update and
//                             return true, else return false (retry in
//                             a later round).
//
// Rounds take a prefix of the remaining iterations plus earlier
// failures; priorities are the original indices, so the result is
// deterministic regardless of thread schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "core/primitives.h"
#include "sched/parallel.h"
#include "support/defs.h"

namespace rpb::par {

struct SpecForStats {
  std::size_t rounds = 0;
  std::size_t retries = 0;  // total commit failures across rounds
};

// RoundEnd is called (serially) after each round's commits — e.g. to
// grow per-resource reservation state that commits allocated.
template <class Step, class RoundEnd>
SpecForStats speculative_for(Step& step, std::size_t begin, std::size_t end,
                             std::size_t round_size, RoundEnd round_end) {
  SpecForStats stats;
  if (round_size == 0) round_size = 1;
  std::vector<std::size_t> active;
  active.reserve(round_size);
  std::vector<u8> retry_flags;
  std::size_t next = begin;

  while (next < end || !active.empty()) {
    // Top up the round with fresh iterations after the carried-over
    // failures (which keep their original, higher priorities).
    while (active.size() < round_size && next < end) {
      active.push_back(next++);
    }
    const std::size_t m = active.size();
    retry_flags.assign(m, 0);

    // Phase 1: all reservations, in parallel. write_min makes the
    // lowest index win every contested cell.
    std::vector<u8> reserved(m, 0);
    sched::parallel_for(0, m, [&](std::size_t i) {
      reserved[i] = step.reserve(active[i]) ? 1 : 0;
    });

    // Phase 2: commits. A task that reserved but no longer holds all
    // its cells failed to a higher-priority task and retries.
    sched::parallel_for(0, m, [&](std::size_t i) {
      if (reserved[i] != 0 && !step.commit(active[i])) retry_flags[i] = 1;
    });

    // Pack the failures, preserving order (= priority).
    std::vector<std::size_t> failed_positions =
        pack_index(std::span<const u8>(retry_flags));
    std::vector<std::size_t> carried(failed_positions.size());
    sched::parallel_for(0, failed_positions.size(), [&](std::size_t i) {
      carried[i] = active[failed_positions[i]];
    });
    stats.retries += carried.size();
    active = std::move(carried);
    ++stats.rounds;
    round_end();
  }
  return stats;
}

template <class Step>
SpecForStats speculative_for(Step& step, std::size_t begin, std::size_t end,
                             std::size_t round_size) {
  return speculative_for(step, begin, end, round_size, [] {});
}

}  // namespace rpb::par
