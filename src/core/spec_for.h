// Deterministic reservations (Blelloch et al., PPoPP'12): the generic
// speculative-for framework PBBS uses for its irregular benchmarks. We
// use it for maximal matching and Delaunay refinement.
//
// A Step exposes:
//   bool reserve(size_t i)  — try to reserve the shared cells task i
//                             needs, using write_min with priority i;
//                             return false to drop the task entirely.
//   bool commit(size_t i)   — re-check that i still holds all its
//                             reservations; if so apply the update and
//                             return true, else return false (retry in
//                             a later round).
//
// Rounds take a prefix of the remaining iterations plus earlier
// failures; priorities are the original indices, so the result is
// deterministic regardless of thread schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "support/arena.h"
#include "support/defs.h"
#include "support/simd.h"

namespace rpb::par {

struct SpecForStats {
  std::size_t rounds = 0;
  std::size_t retries = 0;  // total commit failures across rounds
};

// RoundEnd is called (serially) after each round's commits — e.g. to
// grow per-resource reservation state that commits allocated.
//
// Round bookkeeping (reserved/retry masks, the packed failure list) is
// bit-packed and leased from the workspace arena, rewound per round;
// the old code heap-allocated and zero-filled two u8 arrays plus two
// index vectors every round. reserve()/commit() run under
// fill_bit_flags, whose tasks own whole mask words — each index is
// visited exactly once, so the phase semantics match the old
// parallel_for exactly.
template <class Step, class RoundEnd>
SpecForStats speculative_for(Step& step, std::size_t begin, std::size_t end,
                             std::size_t round_size, RoundEnd round_end) {
  SpecForStats stats;
  if (round_size == 0) round_size = 1;
  std::vector<std::size_t> active;
  active.reserve(round_size);
  std::vector<std::size_t> carried;  // reused across rounds
  std::size_t next = begin;
  support::ArenaLease arena;

  while (next < end || !active.empty()) {
    // Top up the round with fresh iterations after the carried-over
    // failures (which keep their original, higher priorities).
    while (active.size() < round_size && next < end) {
      active.push_back(next++);
    }
    const std::size_t m = active.size();
    support::ArenaScope round(arena);

    // Phase 1: all reservations, in parallel. write_min makes the
    // lowest index win every contested cell.
    auto reserved = uninit_buf<u64>(arena, bit_words(m));
    fill_bit_flags(reserved.span(), m,
                   [&](std::size_t i) { return step.reserve(active[i]); });

    // Phase 2: commits. A task that reserved but no longer holds all
    // its cells failed to a higher-priority task and retries. Walk the
    // reserved mask's set bits per word (the shared simd.h idiom,
    // replacing this file's test-every-index probe): commit runs once
    // per reserved index, in order, and each task still owns whole
    // retry words.
    auto retry = uninit_buf<u64>(arena, bit_words(m));
    const std::size_t nw = bit_words(m);
    sched::parallel_for(0, nw, [&](std::size_t w) {
      // fill_bit_flags zeroed reserved bits past m, so no tail mask.
      u64 bits = 0;
      simd::visit_set_bits(reserved[w], w * 64, [&](std::size_t i) {
        if (!step.commit(active[i])) bits |= u64{1} << (i & 63);
      });
      retry[w] = bits;
    });

    // Pack the failures, preserving order (= priority).
    auto failed = pack_index_bits<std::size_t>(arena, retry.cspan(), m);
    carried.resize(failed.size());
    sched::parallel_for(0, failed.size(), [&](std::size_t i) {
      carried[i] = active[failed[i]];
    });
    stats.retries += carried.size();
    std::swap(active, carried);
    ++stats.rounds;
    round_end();
  }
  return stats;
}

template <class Step>
SpecForStats speculative_for(Step& step, std::size_t begin, std::size_t end,
                             std::size_t round_size) {
  return speculative_for(step, begin, end, round_size, [] {});
}

}  // namespace rpb::par
