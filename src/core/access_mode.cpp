#include "core/access_mode.h"

#include <stdexcept>

namespace rpb {

std::string to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kUnchecked:
      return "unchecked";
    case AccessMode::kChecked:
      return "checked";
    case AccessMode::kAtomic:
      return "atomic";
    case AccessMode::kLocked:
      return "locked";
  }
  return "?";
}

AccessMode parse_access_mode(const std::string& name) {
  if (name == "unchecked") return AccessMode::kUnchecked;
  if (name == "checked") return AccessMode::kChecked;
  if (name == "atomic") return AccessMode::kAtomic;
  if (name == "locked") return AccessMode::kLocked;
  throw std::invalid_argument("unknown access mode: " + name);
}

}  // namespace rpb
