// Regenerates the paper's Fig. 3: the distribution of shared-data
// accesses in parallel regions across the seven patterns, and the
// supported-by split (safe Rust / interior-unsafe static checks /
// not supported or dynamic checks). Paper reference values: RO 11%,
// Stride 52%, Block 3%, D&C 5%, SngInd 13%, RngInd 7%, AW 9%;
// irregular total 29%.
#include <cstdio>

#include "bench_util/harness.h"
#include "core/census.h"
#include "suite.h"

using namespace rpb;

int main() {
  int total = 0;
  int per_pattern[7] = {0};
  for (const census::BenchmarkCensus* c : bench::Suite::all_censuses()) {
    for (census::Pattern p : census::kAllPatterns) {
      per_pattern[static_cast<int>(p)] += c->accesses(p);
    }
    total += c->total_accesses();
  }

  std::printf("Fig. 3: distribution of access patterns in the suite\n\n");
  bench::Table table({"pattern", "accesses", "share", "paper", "tier"});
  // Paper's Fig. 3 reference shares, in kAllPatterns order.
  const char* paper_share[7] = {"11%", "52%", "3%", "5%", "13%", "7%", "9%"};
  double shares[7];
  for (census::Pattern p : census::kAllPatterns) {
    int idx = static_cast<int>(p);
    shares[idx] = 100.0 * per_pattern[idx] / static_cast<double>(total);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", shares[idx]);
    table.add_row({census::name_of(p), std::to_string(per_pattern[idx]), buf,
                   paper_share[idx], census::name_of(census::fear_of(p))});
  }
  table.print();
  using census::Pattern;
  double safe_rust = shares[static_cast<int>(Pattern::kRO)];
  double static_checked = shares[static_cast<int>(Pattern::kStride)] +
                          shares[static_cast<int>(Pattern::kBlock)] +
                          shares[static_cast<int>(Pattern::kDC)];
  double irregular = shares[static_cast<int>(Pattern::kSngInd)] +
                     shares[static_cast<int>(Pattern::kRngInd)] +
                     shares[static_cast<int>(Pattern::kAW)];
  std::printf(
      "\nsupported by safe Rust:                     %5.1f%%  (paper: 11%%)\n"
      "supported by interior-unsafe static checks: %5.1f%%  (paper: 60%%)\n"
      "not supported or dynamic checks (irregular):%5.1f%%  (paper: 29%%)\n",
      safe_rust, static_checked, irregular);
  return 0;
}
