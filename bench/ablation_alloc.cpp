// Allocation/zero-init tax ablation (the workspace-arena counterpart of
// the check-machinery harness in fig5a_indcheck.cpp). Safe Rust's
// vec![0; n] pays a malloc round-trip plus an O(n) zero-fill for every
// scratch buffer; PBBS-style C++ takes uninitialized memory and a
// reused workspace. The RPB_ARENA knob exposes the spectrum:
//
//   malloc_zeroed  (RPB_ARENA=zeroed)  heap alloc + memset 0 per buffer
//                                      — the safe-Rust baseline.
//   malloc_uninit  (RPB_ARENA=off)     heap alloc, no fill — kills the
//                                      zero-init tax only.
//   arena_uninit   (RPB_ARENA=on)      pooled bump-pointer workspace,
//                                      no fill — kills the malloc
//                                      round-trip too (default).
//
// Usage:
//   --json PATH [--smoke]  emit rpb-bench-v1 records (BENCH_alloc.json),
//                          amortized per kernel invocation (many
//                          invocations per timed sample, per repo
//                          convention), and self-validate the file.
//                          --smoke shrinks sizes so CI checks the
//                          schema without gating on timing.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "core/uninit_buf.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "seq/sample_sort.h"
#include "support/arena.h"
#include "support/env.h"
#include "text/bwt.h"
#include "text/corpus.h"
#include "text/suffix_array.h"

using namespace rpb;

namespace {

struct AllocVariant {
  const char* name;
  support::ArenaMode mode;
};

constexpr AllocVariant kVariants[] = {
    {"malloc_zeroed", support::ArenaMode::kZeroed},
    {"malloc_uninit", support::ArenaMode::kOff},
    {"arena_uninit", support::ArenaMode::kOn},
};

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, std::size_t inner,
                               bench::Measurement m) {
  m.median_seconds /= static_cast<double>(inner);
  m.p10_seconds /= static_cast<double>(inner);
  m.p90_seconds /= static_cast<double>(inner);
  m.mean_seconds /= static_cast<double>(inner);
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

int run_json_harness(const std::string& path, bool smoke) {
  const std::size_t repeats = smoke ? 3 : 9;
  // Small-to-mid inputs on purpose: the allocation tax is a per-call
  // constant plus an O(n) fill, so it is proportionally largest exactly
  // where the paper's inner-loop kernels live (per-round radix passes,
  // per-level BFS frontiers), not on one giant buffer.
  const std::size_t sort_n = smoke ? (std::size_t{1} << 14)
                                   : (std::size_t{1} << 15);
  const std::size_t sa_n = smoke ? 1024 : 4096;
  const std::size_t small_n = 4096;
  const std::size_t scratch_n = std::size_t{1} << 16;
  const std::size_t inner_sort = smoke ? 2 : 20;
  const std::size_t inner_sa = smoke ? 2 : 20;
  const std::size_t inner_small = smoke ? 10 : 200;
  const std::size_t inner_bwt = smoke ? 3 : 50;
  const std::size_t hw = default_threads();
  std::vector<std::size_t> thread_counts{1, 2, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  const support::ArenaMode saved_mode = support::arena_mode();
  const bool saved_poison = buf_poison();
  set_buf_poison(false);  // poison fills would masquerade as zero-fills

  // Pristine inputs, regenerated per thread count is pointless — build
  // once. Sorts copy from these inside the timed loop (the copy cost is
  // identical across variants, so deltas attribute to allocation).
  auto sort_input = seq::exponential_doubles(sort_n, 4.0, 0xa110c);
  auto isort_input = seq::exponential_keys(small_n, u64{1} << 32, 0xa110c);
  auto hist_input = seq::exponential_keys(small_n, 256, 0xa110c);
  auto sa_text = text::make_corpus(sa_n, 55);
  auto bwt_text = text::make_corpus(smoke ? 1024 : 2048, 56);
  auto bwt = text::bwt_encode(bwt_text);

  std::vector<bench::BenchRecord> records;
  double sort_zeroed_hw = 0, sort_arena_hw = 0;
  double sa_zeroed_hw = 0, sa_arena_hw = 0;

  for (std::size_t threads : thread_counts) {
    sched::ThreadPool::reset_global(threads);
    for (const AllocVariant& v : kVariants) {
      support::set_arena_mode(v.mode);
      support::arena_pool_clear();  // each variant starts cold

      // Raw lease+allocate+touch: the tax in isolation. One write per
      // page so the work term stays negligible next to the fill.
      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_small; ++r) {
                support::ArenaLease arena;
                auto buf = uninit_buf<u64>(arena, scratch_n);
                for (std::size_t i = 0; i < scratch_n; i += 512) buf[i] = i;
              }
            },
            repeats);
        records.push_back(make_record(
            std::string("alloc/scratch_setup/") + v.name, threads, scratch_n,
            inner_small, m));
      }

      {
        std::vector<double> work(sort_n);
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_sort; ++r) {
                std::copy(sort_input.begin(), sort_input.end(), work.begin());
                seq::sample_sort(work, std::less<double>(),
                                 AccessMode::kChecked);
              }
            },
            repeats);
        records.push_back(make_record(std::string("alloc/sample_sort/") +
                                          v.name,
                                      threads, sort_n, inner_sort, m));
      }

      {
        // All-equal keys ride the splitter-dedup fast path: no bucket
        // sort, so the remaining work is classification plus copies and
        // the scratch fill is a first-order cost — the regime where the
        // zero-init tax actually bites a comparison sort.
        std::vector<double> work(sort_n);
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_sort; ++r) {
                std::fill(work.begin(), work.end(), 3.14);
                seq::sample_sort(work, std::less<double>(),
                                 AccessMode::kChecked);
              }
            },
            repeats);
        records.push_back(make_record(std::string("alloc/sample_sort_equal/") +
                                          v.name,
                                      threads, sort_n, inner_sort, m));
        if (threads == hw) {
          if (v.mode == support::ArenaMode::kZeroed) {
            sort_zeroed_hw = records.back().median_s;
          }
          if (v.mode == support::ArenaMode::kOn) {
            sort_arena_hw = records.back().median_s;
          }
        }
      }

      {
        // kChecked: the comfortable tier re-buys dest/cursors scratch
        // every radix pass, so this is where the per-round allocation
        // tax concentrates.
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_sa; ++r) {
                auto sa = text::suffix_array(sa_text, AccessMode::kChecked);
                if (sa.size() != sa_text.size()) std::abort();
              }
            },
            repeats);
        records.push_back(make_record(std::string("alloc/suffix_array/") +
                                          v.name,
                                      threads, sa_n, inner_sa, m));
        if (threads == hw) {
          if (v.mode == support::ArenaMode::kZeroed) {
            sa_zeroed_hw = records.back().median_s;
          }
          if (v.mode == support::ArenaMode::kOn) {
            sa_arena_hw = records.back().median_s;
          }
        }
      }

      {
        std::vector<u64> work(small_n);
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_small; ++r) {
                std::copy(isort_input.begin(), isort_input.end(), work.begin());
                seq::integer_sort(work, 32, AccessMode::kUnchecked);
              }
            },
            repeats);
        records.push_back(make_record(std::string("alloc/integer_sort/") +
                                          v.name,
                                      threads, small_n, inner_small, m));
      }

      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_small; ++r) {
                auto counts =
                    seq::histogram(hist_input, 256, AccessMode::kChecked);
                if (counts.size() != 256) std::abort();
              }
            },
            repeats);
        records.push_back(make_record(std::string("alloc/histogram/") +
                                          v.name,
                                      threads, small_n, inner_small, m));
      }

      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_bwt; ++r) {
                auto text = text::bwt_decode(bwt, AccessMode::kUnchecked);
                if (text.size() != bwt.size() - 1) std::abort();
              }
            },
            repeats);
        records.push_back(make_record(std::string("alloc/bwt_decode/") +
                                          v.name,
                                      threads, bwt.size(), inner_bwt, m));
      }
    }
  }

  support::set_arena_mode(saved_mode);
  set_buf_poison(saved_poison);

  if (int rc = bench::emit_bench_json(path, "alloc", records)) return rc;
  std::printf(
      "per-invocation @%zu threads, malloc_zeroed vs arena_uninit:\n"
      "  sample_sort_equal n=%zu: %s vs %s (%.2fx)\n"
      "  suffix_array n=%zu: %s vs %s (%.2fx)\n",
      hw, sort_n, bench::fmt_seconds(sort_zeroed_hw).c_str(),
      bench::fmt_seconds(sort_arena_hw).c_str(),
      sort_zeroed_hw / std::max(sort_arena_hw, 1e-9), sa_n,
      bench::fmt_seconds(sa_zeroed_hw).c_str(),
      bench::fmt_seconds(sa_arena_hw).c_str(),
      sa_zeroed_hw / std::max(sa_arena_hw, 1e-9));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (int rc = bench::require_json_only(cli, argv[0])) return rc;
  return run_json_harness(cli.json_path, cli.smoke);
}
