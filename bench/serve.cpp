// Trace-replay latency harness for the serve subsystem: one shared
// Workload, three server runs over the same seeded two-tenant trace —
// tenant 0 solo (its no-contention baseline), then tenants 0+1 under
// fair-share, then under fifo. Tenant 0 is well behaved (modest open-
// loop rate, fixed-size jobs); tenant 1 is a hog flooding small sorts
// faster than the pool drains them. The claim under test: fair-share
// keeps tenant 0's p99 near its solo baseline while the hog's own p99
// degrades, and fifo — where every tenant-0 request queues behind the
// hog's accumulated backlog — does not.
//
// JSON mode emits rpb-bench-v1 with two records per (scenario, tenant):
//   serve/<scenario>/t<k>/latency  median/p10/p90/mean over per-request
//                                  latencies, plus p50_s/p99_s
//   serve/<scenario>/t<k>/rate    inverse throughput (wall seconds per
//                                  completed request)
// The replay *schedule* is deterministic (seeded arrival process, see
// serve/trace.h); the latencies are measurements.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "serve/workload.h"
#include "support/env.h"

namespace rpb {
namespace {

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double pos = q * static_cast<double>(v.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct TenantSummary {
  std::size_t completed = 0;
  std::size_t shed = 0;
  double p50 = 0, p99 = 0, p10 = 0, p90 = 0, mean = 0;
};

TenantSummary summarize(const serve::ReplayResult& result, u32 tenant) {
  TenantSummary s;
  std::vector<double> lat;
  for (const serve::ReplayedRequest& r : result.requests) {
    if (r.tenant != tenant) continue;
    if (r.verdict == serve::Verdict::kShedDeadline) {
      s.shed += 1;
      continue;
    }
    if (r.verdict != serve::Verdict::kAdmitted) continue;
    lat.push_back(r.latency_s);
  }
  s.completed = lat.size();
  if (lat.empty()) return s;
  double sum = 0;
  for (double v : lat) sum += v;
  s.mean = sum / static_cast<double>(lat.size());
  s.p10 = quantile(lat, 0.10);
  s.p50 = quantile(lat, 0.50);
  s.p90 = quantile(lat, 0.90);
  s.p99 = quantile(lat, 0.99);
  return s;
}

serve::TraceSpec make_spec(bool smoke, bool with_hog) {
  serve::TraceSpec spec;
  spec.seed = 20240613;
  // Tenant 0's jobs are big enough that execution dominates its solo
  // latency, while the hog's jobs are small: under fair share tenant
  // 0's extra wait is bounded by a fraction of one small hog batch,
  // keeping its p99 near solo, while under fifo it queues behind the
  // hog's entire accumulated backlog.
  serve::TenantTraffic good;
  good.tenant = 0;
  good.kernels = {serve::Kernel::kSort, serve::Kernel::kHistogram,
                  serve::Kernel::kSpmv};
  good.min_n = good.max_n = std::size_t{1} << 15;
  good.rate_hz = 200.0;
  good.count = smoke ? 40 : 120;
  spec.tenants.push_back(good);
  if (with_hog) {
    serve::TenantTraffic hog;
    hog.tenant = 1;
    hog.kernels = {serve::Kernel::kSort};
    hog.min_n = std::size_t{1} << 9;
    hog.max_n = std::size_t{1} << 10;
    hog.rate_hz = 20000.0;
    hog.count = smoke ? 3000 : 12000;
    spec.tenants.push_back(hog);
  }
  return spec;
}

serve::ReplayResult run_scenario(const serve::Workload& workload,
                                 std::size_t threads, serve::ServePolicy policy,
                                 bool smoke, bool with_hog) {
  serve::ServerConfig config;
  // The hog pays for flooding through deficit accounting, not through
  // admission: an effectively unbounded queue keeps every request
  // admitted so the latency contrast is purely scheduling.
  config.tenants = {{/*weight=*/4}, {/*weight=*/1}};
  if (!with_hog) config.tenants.resize(1);
  config.num_threads = threads;
  // One dispatch lane: every batch gets the whole pool, so the
  // well-behaved tenant's execution is never stretched by a hog batch
  // running beside it — its fair-share wait is bounded by the residual
  // of one small coalesced hog region. (Multi-lane overlap is covered
  // by tests/serve_test.cpp.)
  config.lanes = 1;
  config.policy = policy;
  config.queue_bound = std::size_t{1} << 16;
  config.batch_window = 8;
  config.deficit_quantum = u64{1} << 14;
  serve::JobServer server(workload, config);
  auto trace = serve::build_trace(make_spec(smoke, with_hog));
  auto result = serve::replay(server, trace, /*time_scale=*/1.0);
  server.drain();
  return result;
}

}  // namespace
}  // namespace rpb

int main(int argc, char** argv) {
  using namespace rpb;
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (int rc = bench::require_json_only(cli, argv[0]); rc != 0) return rc;
  const bool smoke = cli.smoke;
  const std::size_t threads = default_threads();

  std::printf("# serve trace replay: threads=%zu smoke=%d\n", threads,
              smoke ? 1 : 0);
  serve::WorkloadConfig wconfig;
  if (smoke) {
    wconfig.num_keys = std::size_t{1} << 16;
    wconfig.graph_scale = 10;
    wconfig.text_bytes = std::size_t{1} << 13;
  }
  serve::Workload workload(wconfig);
  // Warmup: touch every kernel once outside the timed scenarios so
  // first-use costs (arena growth, lazy pool structures, page faults)
  // don't land in the solo baseline's tail.
  for (std::size_t k = 0; k < serve::kNumKernels; ++k) {
    workload.run(static_cast<serve::Kernel>(k), /*seed=*/1,
                 /*n=*/std::size_t{1} << 12);
  }

  struct Scenario {
    const char* name;
    serve::ServePolicy policy;
    bool with_hog;
  };
  const Scenario scenarios[] = {
      {"solo", serve::ServePolicy::kFairShare, false},
      {"fair", serve::ServePolicy::kFairShare, true},
      {"fifo", serve::ServePolicy::kFifo, true},
  };

  std::vector<bench::BenchRecord> records;
  TenantSummary solo0, fair0, fifo0, fair1, fifo1;
  for (const Scenario& sc : scenarios) {
    serve::ReplayResult result =
        run_scenario(workload, threads, sc.policy, smoke, sc.with_hog);
    const u32 num_tenants = sc.with_hog ? 2 : 1;
    for (u32 t = 0; t < num_tenants; ++t) {
      TenantSummary s = summarize(result, t);
      std::printf(
          "# %-4s t%u: completed=%zu p50=%s p99=%s wall=%s\n", sc.name, t,
          s.completed, bench::fmt_seconds(s.p50).c_str(),
          bench::fmt_seconds(s.p99).c_str(),
          bench::fmt_seconds(result.wall_s).c_str());
      bench::BenchRecord lat;
      lat.name = std::string("serve/") + sc.name + "/t" + std::to_string(t) +
                 "/latency";
      lat.threads = threads;
      lat.n = s.completed;
      lat.repeats = s.completed;
      lat.median_s = s.p50;
      lat.p10_s = s.p10;
      lat.p90_s = s.p90;
      lat.mean_s = s.mean;
      lat.has_latency = true;
      lat.p50_s = s.p50;
      lat.p99_s = s.p99;
      records.push_back(lat);

      bench::BenchRecord rate;
      rate.name = std::string("serve/") + sc.name + "/t" + std::to_string(t) +
                  "/rate";
      rate.threads = threads;
      rate.n = s.completed;
      rate.repeats = 1;
      const double per_req =
          s.completed > 0 ? result.wall_s / static_cast<double>(s.completed)
                          : 0;
      rate.median_s = rate.p10_s = rate.p90_s = rate.mean_s = per_req;
      records.push_back(rate);

      if (sc.policy == serve::ServePolicy::kFairShare && !sc.with_hog &&
          t == 0) {
        solo0 = s;
      } else if (sc.policy == serve::ServePolicy::kFairShare && t == 0) {
        fair0 = s;
      } else if (sc.policy == serve::ServePolicy::kFairShare && t == 1) {
        fair1 = s;
      } else if (t == 0) {
        fifo0 = s;
      } else {
        fifo1 = s;
      }
    }
  }

  // The fairness verdict the acceptance criterion reads: under fair
  // share the well-behaved tenant's tail should hold near its solo
  // baseline while the hog's degrades; under fifo it should not.
  if (solo0.p99 > 0) {
    const double fair_blowup = fair0.p99 / solo0.p99;
    const double fifo_blowup = fifo0.p99 / solo0.p99;
    std::printf("# t0 p99 blowup vs solo: fair=%.2fx fifo=%.2fx "
                "(hog p99 fair=%s fifo=%s)\n",
                fair_blowup, fifo_blowup,
                bench::fmt_seconds(fair1.p99).c_str(),
                bench::fmt_seconds(fifo1.p99).c_str());
    std::printf("# fair-share isolation: %s (fair<=2x: %s, fifo>fair: %s)\n",
                fair_blowup <= 2.0 && fifo_blowup > fair_blowup ? "OK"
                                                                : "WEAK",
                fair_blowup <= 2.0 ? "yes" : "no",
                fifo_blowup > fair_blowup ? "yes" : "no");
  }

  return bench::emit_bench_json(cli.json_path, "serve", records);
}
