// The 20 benchmark-input pairs of the paper's evaluation (Fig. 4's
// x-axis), each runnable under the expression variants the paper
// compares. Shared by the fig4/fig5 harnesses.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/census.h"

namespace rpb::bench {

// The expression-choice axis, mapped per benchmark (see suite.cpp):
enum class Variant {
  kPerf,         // the paper's performance expression: unsafe/unchecked
                 // SngInd+AW, cheap-checked RngInd off
  kRecommended,  // the paper's RPB default: unsafe SngInd/AW, checked RngInd
  kChecked,      // SngInd uniqueness checks ON (Fig. 5a)
  kSync,         // unnecessary synchronization: relaxed atomics, or
                 // mutexes where atomics cannot apply (Fig. 5b)
};

const char* name_of(Variant v);

struct BenchCase {
  std::string name;       // e.g. "mis-link"
  std::string benchmark;  // e.g. "mis"
  const census::BenchmarkCensus* census = nullptr;
  // Untimed per-repetition setup (e.g. refresh a to-be-sorted copy).
  std::function<void()> setup;
  // The timed region.
  std::function<void(Variant)> run;
  // Whether kSync differs from kPerf for this benchmark (false for the
  // benchmarks whose only implementation already synchronizes).
  bool sync_is_distinct = false;
  // Whether kChecked differs from kPerf (i.e. the benchmark has a
  // SngInd uniqueness-check expression).
  bool check_is_distinct = false;
};

// Scale shifts all default input sizes: size >> (-scale) for negative,
// size << scale for positive.
class Suite {
 public:
  explicit Suite(int scale = 0);
  ~Suite();

  std::vector<BenchCase>& cases() { return cases_; }

  // All 14 benchmark censuses (Table 1 / Table 3 / Fig. 3).
  static std::vector<const census::BenchmarkCensus*> all_censuses();

 private:
  struct Inputs;
  std::unique_ptr<Inputs> inputs_;
  std::vector<BenchCase> cases_;
};

}  // namespace rpb::bench
