// Vector-vs-scalar ablation for the RPB_SIMD layer (support/simd.h).
// One arm per dispatch level (scalar, sse2, avx2 — clamped to what the
// box actually supports), pinned via support::set_simd_level, all at a
// single thread so the arms differ only in the inner-loop bodies.
//
// Loop rows time the five converted inner loops directly through the
// public simd:: entry points, at cache-resident sizes so compute (not
// memory bandwidth) dominates:
//
//   scan_upsweep     block reduction (sum_u64) under every scan
//   scan_downsweep   exclusive prefix sum (prefix_exclusive_sum_into)
//   histogram_bin    bounded-key binning with lane-private tables
//   radix_digit      digit extraction + per-digit counting (radix sort)
//   boundary_flag    adjacent-rank compare over stride-2 records (SA)
//   check_engine     epoch-compare mark-table scan (fused_check_apply)
//
// Kernel rows run the shipped kernels end to end under each level for
// context: the loop wins diluted by the scalar phases around them.
//
// Usage:
//   --json PATH [--smoke]  emit rpb-bench-v1 records (BENCH_simd),
//                          amortized per invocation, self-validated.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "core/checks.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "support/arena.h"
#include "support/env.h"
#include "support/hash.h"
#include "support/simd.h"
#include "text/suffix_array.h"

using namespace rpb;

namespace {

volatile u64 g_sink;  // defeats dead-code elimination of timed results
template <class T>
void keep(T v) {
  g_sink = static_cast<u64>(v);
}

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, std::size_t inner,
                               bench::Measurement m) {
  m.median_seconds /= static_cast<double>(inner);
  m.p10_seconds /= static_cast<double>(inner);
  m.p90_seconds /= static_cast<double>(inner);
  m.mean_seconds /= static_cast<double>(inner);
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

int run_json_harness(const std::string& path, bool smoke) {
  const std::size_t repeats = smoke ? 3 : 9;
  const std::size_t n = smoke ? (std::size_t{1} << 13)   // loop rows:
                              : (std::size_t{1} << 14);  // L1/L2-resident
  const std::size_t inner = smoke ? 8 : 32;
  const std::size_t inner_kernel = smoke ? 2 : 4;
  const std::size_t check_count = smoke ? 1024 : 4096;
  const std::size_t sa_n = smoke ? (std::size_t{1} << 11)
                                 : (std::size_t{1} << 13);
  const std::size_t kBuckets = 256;

  // One thread: the arms must differ only in the vector bodies, not in
  // scheduling noise. (The blocked structure above the loops is
  // identical either way.)
  sched::ThreadPool::reset_global(1);
  const support::SimdLevel saved_level = support::simd_level();
  const std::size_t saved_fuse = par::check_fuse_threshold();
  const bool saved_poison = buf_poison();
  set_buf_poison(false);  // poison fills would masquerade as work

  std::vector<support::SimdLevel> levels{support::SimdLevel::kScalar};
  if (support::simd_detected() >= support::SimdLevel::kSse2) {
    levels.push_back(support::SimdLevel::kSse2);
  }
  if (support::simd_detected() >= support::SimdLevel::kAvx2) {
    levels.push_back(support::SimdLevel::kAvx2);
  }

  // Inputs shared by every arm.
  std::vector<u64> values(n);
  std::vector<u64> keys(n);           // < kBuckets, for binning
  std::vector<u64> ranks(2 * n);      // stride-2 {key, payload} records
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = hash64(i) & 0xff;
    keys[i] = hash64(i) % kBuckets;
    ranks[2 * i] = hash64(i / 3);     // runs of equal keys, like SA rounds
    ranks[2 * i + 1] = i;
  }
  std::vector<u64> offsets(check_count);  // a permutation: always passes
  std::iota(offsets.begin(), offsets.end(), u64{0});
  for (std::size_t i = check_count; i > 1; --i) {
    std::swap(offsets[i - 1], offsets[hash64(i) % i]);
  }
  std::vector<u8> text(sa_n);
  for (std::size_t i = 0; i < sa_n; ++i) {
    text[i] = static_cast<u8>('a' + hash64(i) % 4);
  }
  auto sort_keys = [&] {
    std::vector<u64> k(n);
    for (std::size_t i = 0; i < n; ++i) k[i] = hash64(i);
    return k;
  }();

  std::vector<bench::BenchRecord> records;
  // median per (row, level) for the printed speedup summary
  std::vector<std::pair<std::string, double>> loop_medians;

  for (support::SimdLevel level : levels) {
    support::set_simd_level(level);
    const std::string tag = support::simd_level_name(level);
    auto add = [&](const std::string& row, std::size_t row_n,
                   std::size_t row_inner, bench::Measurement m, bool loop) {
      records.push_back(
          make_record("simd/" + row + "/" + tag, 1, row_n, row_inner, m));
      if (loop) loop_medians.emplace_back(row + "/" + tag,
                                          records.back().median_s);
    };

    // -- Loop rows: the five converted inner loops, measured directly.
    {
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              keep(simd::sum_u64(values.data(), n));
            }
          },
          repeats);
      add("scan_upsweep", n, inner, m, true);
    }
    {
      std::vector<u64> out(n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              keep(simd::prefix_exclusive_sum_into_u64(values.data(),
                                                       out.data(), n, 0));
            }
          },
          repeats);
      add("scan_downsweep", n, inner, m, true);
    }
    {
      // Scratch sized for the widest dispatch (3 extra AVX2 lanes); the
      // zeroing is part of the kernel (histogram_binned zeroes its
      // block-local tables the same way).
      std::vector<u64> counts(kBuckets);
      std::vector<u64> scratch(3 * kBuckets);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              std::memset(counts.data(), 0, kBuckets * sizeof(u64));
              std::memset(scratch.data(), 0,
                          simd::bin_count_extra_lanes() * kBuckets *
                              sizeof(u64));
              simd::bin_count_u64(keys.data(), n, counts.data(),
                                  scratch.data(), kBuckets);
              keep(counts[0]);
            }
          },
          repeats);
      add("histogram_bin", n, inner, m, true);
    }
    {
      alignas(32) u64 counts[seq::kRadix];
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              std::memset(counts, 0, sizeof(counts));
              simd::digit_count_u64(sort_keys.data(), 1, n, 8, counts);
              keep(counts[0]);
            }
          },
          repeats);
      add("radix_digit", n, inner, m, true);
    }
    {
      std::vector<u64> flags(n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              keep(simd::flag_adjacent_neq_u64(ranks.data(), 2, 0, n,
                                               flags.data()));
            }
          },
          repeats);
      add("boundary_flag", n, inner, m, true);
    }
    {
      // Raise the fuse threshold so the sequential lane-parallel engine
      // (not the parallel claim path) is what gets timed.
      par::set_check_fuse_threshold(check_count);
      std::vector<u64> cells(check_count);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              par::fused_check_apply(
                  std::span<const u64>(offsets), check_count,
                  [&](std::size_t i, std::size_t off) { cells[off] = i; });
              keep(cells[0]);
            }
          },
          repeats);
      par::set_check_fuse_threshold(saved_fuse);
      add("check_engine", check_count, inner, m, true);
    }

    // -- Kernel rows: shipped kernels end to end under this level.
    {
      support::ArenaLease arena;
      auto work = uninit_buf<u64>(arena, n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner_kernel; ++r) {
              std::memcpy(work.data(), values.data(), n * sizeof(u64));
              keep(par::scan_exclusive_sum(work.span()));
            }
          },
          repeats);
      add("kernel_scan", n, inner_kernel, m, false);
    }
    {
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner_kernel; ++r) {
              auto h = seq::histogram(keys, kBuckets, AccessMode::kUnchecked);
              keep(h[0]);
            }
          },
          repeats);
      add("kernel_histogram", n, inner_kernel, m, false);
    }
    {
      std::vector<u64> work(n);
      auto m = bench::measure_with_setup(
          [&] { work = sort_keys; },
          [&] {
            seq::integer_sort(work, 64, AccessMode::kUnchecked);
            keep(work[0]);
          },
          repeats);
      add("kernel_integer_sort", n, 1, m, false);
    }
    {
      auto m = bench::measure(
          [&] {
            auto sa = text::suffix_array(std::span<const u8>(text),
                                         AccessMode::kUnchecked);
            keep(sa[0]);
          },
          repeats);
      add("kernel_suffix_array", sa_n, 1, m, false);
    }
  }

  support::set_simd_level(saved_level);
  par::set_check_fuse_threshold(saved_fuse);
  set_buf_poison(saved_poison);

  if (int rc = bench::emit_bench_json(path, "simd", records)) return rc;

  // Speedup summary: scalar arm vs best vector arm, per loop row.
  for (const char* row : {"scan_upsweep", "scan_downsweep", "histogram_bin",
                          "radix_digit", "boundary_flag", "check_engine"}) {
    double scalar = 0, best = 1e300;
    for (const auto& [name, median] : loop_medians) {
      if (name.rfind(std::string(row) + "/", 0) != 0) continue;
      if (name == std::string(row) + "/scalar") {
        scalar = median;
      } else {
        best = std::min(best, median);
      }
    }
    if (scalar > 0 && best < 1e300) {
      std::printf("%-16s scalar %s, best vector %s (%.2fx)\n", row,
                  bench::fmt_seconds(scalar).c_str(),
                  bench::fmt_seconds(best).c_str(),
                  scalar / std::max(best, 1e-12));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (int rc = bench::require_json_only(cli, argv[0])) return rc;
  return run_json_harness(cli.json_path, cli.smoke);
}
