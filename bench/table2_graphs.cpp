// Regenerates the paper's Table 2: the input graphs and their
// characteristics (|V|, |E|, |E|/|V|), at this repo's laptop scale.
#include <cstdio>
#include <string>

#include "bench_util/harness.h"
#include "common.h"
#include "graph/generators.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);

  struct Row {
    const char* name;
    const char* shorthand;
    const char* paper_ratio;
    int scale;
    u64 seed;
  };
  // Same base scales as the benchmark suite (bench/suite.cpp).
  const Row rows[] = {
      {"Hyperlink-like power law", "link", "20.1", 15, 104},
      {"R-MAT graph", "rmat", "6.0", 15, 106},
      {"Road-like grid", "road", "2.4", 17, 105},
  };

  std::printf("Table 2: input graphs and their characteristics\n\n");
  bench::Table table({"name", "shorthand", "|V|", "|E| (directed)",
                      "|E|/|V|", "paper |E|/|V|"});
  for (const Row& r : rows) {
    graph::Graph g = graph::make_named(
        r.shorthand, std::max(10, r.scale + opt.scale), r.seed);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f", g.average_degree());
    table.add_row({r.name, r.shorthand, std::to_string(g.num_vertices()),
                   std::to_string(g.num_edges()), ratio, r.paper_ratio});
  }
  table.print();
  std::printf(
      "\npaper inputs: link |V|=101M, rmat |V|=34M, road |V|=24M; this repo\n"
      "generates laptop-scale graphs in the same degree regimes.\n");
  return 0;
}
