// Regenerates the paper's Fig. 5(b): the cost of replacing unsafe code
// with unnecessary synchronization — relaxed atomics where types allow
// (near zero-cost: all bars ~1.0), and bucket mutexes for hist's
// multi-word accumulators (the paper's 4.0x outlier).
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "suite.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::Suite suite(opt.scale);

  std::printf("\nFig. 5(b): overhead of unnecessary synchronization "
              "(sync / unchecked)\n\n");
  bench::Table table({"pair", "unchecked", "sync", "overhead", "sync kind"});
  for (auto& c : suite.cases()) {
    // The paper's Fig. 5(b) set: bw, lrs, sa, mis-*, mm-*, msf-*, sf-*,
    // hist. mm/sf/msf's only implementation already uses the relaxed
    // atomics the paper describes as near zero-cost; they are reported
    // as 1.00x by construction and marked "inherent".
    bool in_fig5b = c.benchmark == "bw" || c.benchmark == "lrs" ||
                    c.benchmark == "sa" || c.benchmark == "mis" ||
                    c.benchmark == "mm" || c.benchmark == "msf" ||
                    c.benchmark == "sf" || c.benchmark == "hist";
    if (!in_fig5b) continue;
    if (!c.sync_is_distinct) {
      table.add_row({c.name, "-", "-", "1.00x", "relaxed atomics (inherent)"});
      continue;
    }
    auto fast = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kPerf); }, opt.repeats);
    auto sync = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kSync); }, opt.repeats);
    const char* kind = c.benchmark == "hist" ? "bucket mutexes"
                                             : "relaxed atomics";
    table.add_row({c.name, bench::fmt_seconds(fast.mean_seconds),
                   bench::fmt_seconds(sync.mean_seconds),
                   bench::fmt_ratio(sync.mean_seconds / fast.mean_seconds),
                   kind});
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(paper: atomics near zero-cost; hist 4.0x with mutexes "
              "because its buckets are too big for atomics)\n");
  return 0;
}
