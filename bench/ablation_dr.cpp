// Construction ablation for the Delaunay substrate (src/geom): the
// serial incremental Bowyer-Watson build against the grid-decomposed
// parallel build (geom/build.h), on a uniform point cloud and a
// clustered (Gaussian-mixture) one, in both access tiers. The
// incremental arm inserts in hash-shuffled order, so every locate walks
// ~O(sqrt(n)) triangles from a cold hint; the decomposed arm buckets
// points into grid cells, walks each cell from its own hot hint (O(1)
// locality), retriangulates cell interiors with no synchronization at
// all (territory containment, DESIGN.md section 6), and stitches the
// leftovers through the spec_for reservation engine. Both arms produce
// the bitwise-identical triangulation — the summary hard-fails if the
// structure hashes diverge across policies, tiers, or thread counts.
//
// Box caveat (EXPERIMENTS.md "Delaunay construction"): on a single
// hardware core the parallel wave phase timeshares, so the decomposed
// win measured here is the serialization-surviving component — locate
// locality from per-cell hints plus the allocation-free cavity ring
// linking — not idle-core wall-clock.
//
// Usage:
//   --json PATH [--smoke]  emit rpb-bench-v1 records (BENCH_dr),
//                          self-validated. Threads come from
//                          RPB_THREADS (the smoke gate pins 4).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "geom/build.h"
#include "geom/delaunay.h"
#include "geom/points.h"
#include "obs/counters.h"
#include "obs/obs.h"
#include "sched/thread_pool.h"
#include "support/env.h"

using namespace rpb;

namespace {

volatile u64 g_sink;  // defeats dead-code elimination of timed results
void keep(u64 v) { g_sink = v; }

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, bench::Measurement m) {
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

struct Input {
  const char* label;
  std::vector<geom::Point> pts;
};

int run_json_harness(const std::string& path, bool smoke) {
  const std::size_t repeats = smoke ? 3 : 5;
  const std::size_t n = smoke ? (std::size_t{1} << 14) : 120000;

  const std::size_t threads = default_threads();
  sched::ThreadPool::reset_global(threads);
  std::printf("# threads=%zu repeats=%zu n=%zu\n", threads, repeats, n);

  // Uniform fills every grid cell evenly — the decomposition's best
  // case. Clustered (64 Gaussian blobs) skews cell occupancy the way
  // the power-law R-MAT skews row degree in ablation_spmv: crowded
  // cells defer more boundary points into the stitch.
  std::vector<Input> inputs;
  inputs.push_back({"uniform", geom::uniform_points(n, 23)});
  inputs.push_back({"clustered", geom::clustered_points(n, 23)});

  std::vector<bench::BenchRecord> records;
  // (input, policy) -> unchecked median, for the printed summary
  std::vector<std::pair<std::string, double>> medians;
  // every (input, policy, tier) fingerprint must agree per input
  struct HashRow {
    std::string arm;
    const char* input;
    u64 hash;
  };
  std::vector<HashRow> hashes;

  struct Arm {
    const char* name;
    geom::DrPolicy policy;
  };
  const Arm arms[] = {
      {"incremental", geom::DrPolicy::kIncremental},
      {"decomposed", geom::DrPolicy::kDecomposed},
  };

  for (const Input& in : inputs) {
    for (const Arm& arm : arms) {
      for (AccessMode mode : {AccessMode::kUnchecked, AccessMode::kChecked}) {
        const char* tier =
            mode == AccessMode::kChecked ? "checked" : "unchecked";
        u64 hash = 0;
        // The Mesh constructor (arena allocation) is inside the timed
        // region for both arms: building the arena is part of building
        // the triangulation.
        auto m = bench::measure(
            [&] {
              geom::Mesh mesh(in.pts);
              geom::build_delaunay(mesh, arm.policy, mode);
              hash = mesh.structure_hash();
              keep(hash);
            },
            repeats);
        std::string name =
            std::string("dr_build/") + in.label + "/" + arm.name + "/" + tier;
        records.push_back(make_record(name, threads, n, m));
        hashes.push_back({std::string(arm.name) + "/" + tier, in.label, hash});
        if (mode == AccessMode::kUnchecked) {
          medians.emplace_back(std::string(in.label) + "/" + arm.name,
                               records.back().median_s);
        }
      }
    }
  }

  if (int rc = bench::emit_bench_json(path, "dr", records)) return rc;

  // Determinism gate: within each input, every arm x tier must produce
  // the same structure hash — and so must a single-threaded decomposed
  // rebuild (schedule independence, the PR's headline claim).
  bool hashes_ok = true;
  for (const Input& in : inputs) {
    u64 expect = 0;
    bool first = true;
    for (const HashRow& row : hashes) {
      if (std::string(row.input) != in.label) continue;
      if (first) {
        expect = row.hash;
        first = false;
      } else if (row.hash != expect) {
        std::fprintf(stderr, "FAIL: %s %s hash %016llx != %016llx\n",
                     in.label, row.arm.c_str(),
                     static_cast<unsigned long long>(row.hash),
                     static_cast<unsigned long long>(expect));
        hashes_ok = false;
      }
    }
    sched::ThreadPool::reset_global(1);
    geom::Mesh mesh(in.pts);
    geom::build_delaunay(mesh, geom::DrPolicy::kDecomposed);
    sched::ThreadPool::reset_global(threads);
    if (mesh.structure_hash() != expect) {
      std::fprintf(stderr, "FAIL: %s decomposed@1thread hash diverged\n",
                   in.label);
      hashes_ok = false;
    }
  }
  std::printf("structure hashes: %s\n",
              hashes_ok ? "identical across policies, tiers, and threads"
                        : "DIVERGED");

  // Phase breakdown + obs counters for one instrumented decomposed
  // build per input (untimed; counters need RPB_OBS=counters).
  for (const Input& in : inputs) {
    const obs::ObsMode saved_obs = obs::mode();
    obs::set_mode(obs::ObsMode::kCounters);
    obs::reset_counters();
    geom::Mesh mesh(in.pts);
    const geom::BuildStats s =
        geom::build_delaunay(mesh, geom::DrPolicy::kDecomposed);
    auto snap = obs::snapshot_counters();
    obs::set_mode(saved_obs);
    std::printf(
        "%-10s grid=%zux%zu rounds=%zu bootstrap=%zu interior=%zu "
        "deferred=%zu stitch=%zu waves=%zu | cavity_tris=%llu "
        "conflicts=%llu retries=%llu\n",
        in.label, s.grid, s.grid, s.rounds, s.seed_inserts,
        s.interior_inserts, s.deferred, s.stitch_inserts, s.waves,
        static_cast<unsigned long long>(
            snap.total(obs::Counter::kDrCavityTris)),
        static_cast<unsigned long long>(
            snap.total(obs::Counter::kDrReserveConflicts)),
        static_cast<unsigned long long>(
            snap.total(obs::Counter::kDrStitchRetries)));
    std::printf(
        "%-10s phases: seed=%.3fs interior=%.3fs (bucket=%.3fs) "
        "stitch=%.3fs over %zu stitch rounds\n",
        in.label, s.seed_s, s.interior_s, s.bucket_s, s.stitch_s,
        s.stitch_rounds);
  }

  for (const char* label : {"uniform", "clustered"}) {
    double inc = 0, dec = 0;
    for (const auto& [name, median] : medians) {
      if (name == std::string(label) + "/incremental") inc = median;
      if (name == std::string(label) + "/decomposed") dec = median;
    }
    if (inc > 0 && dec > 0) {
      std::printf("%-10s incremental %s vs decomposed %s: %.2fx\n", label,
                  bench::fmt_seconds(inc).c_str(),
                  bench::fmt_seconds(dec).c_str(),
                  inc / std::max(dec, 1e-12));
    }
  }
  return hashes_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (int rc = bench::require_json_only(cli, argv[0])) return rc;
  return run_json_harness(cli.json_path, cli.smoke);
}
