// Regenerates the paper's Fig. 5(a): the overhead of replacing unsafe
// SngInd writes with the interior-unsafe par_ind_iter_mut and its
// run-time uniqueness check, on the three benchmarks that integrate it
// (bw, lrs, sa). Paper reference: bw ~1.0x, lrs up to ~2.8x, sa ~2.5x.
//
// Two modes:
//   (default)              the suite-level Fig. 5(a) table below.
//   --json PATH [--smoke]  the check-machinery ablation harness:
//                          measures the SngInd scatter per check
//                          expression (unchecked / legacy bitmap /
//                          epoch-split / fused) per thread count,
//                          amortized per parallel region (many regions
//                          per timed sample, per repo convention),
//                          emits PATH in the rpb-bench-v1 schema
//                          (BENCH_indcheck.json) and self-validates
//                          it. --smoke shrinks sizes so CI can check
//                          the schema without gating on timing.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "core/checks.h"
#include "core/patterns.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "support/env.h"
#include "suite.h"

using namespace rpb;

namespace {

struct CheckVariant {
  const char* name;
  AccessMode mode;
  par::CheckMode check;
};

constexpr CheckVariant kVariants[] = {
    {"unchecked", AccessMode::kUnchecked, par::CheckMode::kFused},
    {"bitmap", AccessMode::kChecked, par::CheckMode::kBitmap},
    {"epoch_split", AccessMode::kChecked, par::CheckMode::kSplit},
    {"fused", AccessMode::kChecked, par::CheckMode::kFused},
};

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, std::size_t inner,
                               bench::Measurement m) {
  m.median_seconds /= static_cast<double>(inner);
  m.p10_seconds /= static_cast<double>(inner);
  m.p90_seconds /= static_cast<double>(inner);
  m.mean_seconds /= static_cast<double>(inner);
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

int run_json_harness(const std::string& path, bool smoke) {
  const std::size_t repeats = smoke ? 3 : 9;
  // Two regimes: a small scatter where the legacy bitmap's O(bound)
  // alloc+memset dominates the useful work (the per-bucket/per-round
  // call shape of integer_sort / sample_sort / histogram / bwt), and a
  // large scatter where the fused single traversal is what shows.
  const std::size_t small_n = 4096;
  const std::size_t large_n = smoke ? (std::size_t{1} << 14)
                                    : (std::size_t{1} << 20);
  const std::size_t inner_small = smoke ? 50 : 400;
  const std::size_t inner_large = smoke ? 5 : 40;
  const std::size_t hw = default_threads();
  std::vector<std::size_t> thread_counts{1, 2, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::vector<bench::BenchRecord> records;
  double small_bitmap_hw = 0, small_fused_hw = 0;
  double large_bitmap_hw = 0, large_fused_hw = 0;
  double large_unchecked_hw = 0;

  for (std::size_t threads : thread_counts) {
    sched::ThreadPool::reset_global(threads);
    struct Regime {
      const char* label;
      std::size_t n;
      std::size_t inner;
    };
    for (Regime regime : {Regime{"sngind_scatter_region", small_n,
                                 inner_small},
                          Regime{"sngind_scatter_region", large_n,
                                 inner_large}}) {
      auto offsets = seq::random_permutation(regime.n, 0xf1650a + regime.n);
      std::vector<u64> out(regime.n, 0);
      for (const CheckVariant& v : kVariants) {
        par::set_check_mode(v.check);
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < regime.inner; ++r) {
                par::par_ind_iter_mut(
                    std::span<u64>(out), std::span<const u32>(offsets),
                    [](std::size_t i, u64& slot) { slot = i; }, v.mode);
              }
            },
            repeats);
        records.push_back(make_record(std::string(regime.label) + "/" + v.name,
                                      threads, regime.n, regime.inner, m));
        if (threads == hw) {
          const bench::BenchRecord& r = records.back();
          if (regime.n == small_n) {
            if (std::strcmp(v.name, "bitmap") == 0) small_bitmap_hw = r.median_s;
            if (std::strcmp(v.name, "fused") == 0) small_fused_hw = r.median_s;
          } else {
            if (std::strcmp(v.name, "bitmap") == 0) large_bitmap_hw = r.median_s;
            if (std::strcmp(v.name, "fused") == 0) large_fused_hw = r.median_s;
            if (std::strcmp(v.name, "unchecked") == 0) {
              large_unchecked_hw = r.median_s;
            }
          }
        }
      }
    }

    // Function-indexed SngInd (paper Sec. 5.1): the fused expression
    // skips the O(n) index materialization the bitmap baseline needs.
    {
      const std::size_t n = large_n;
      auto perm = seq::random_permutation(n, 0xfeed5eed);
      std::vector<u64> out(n, 0);
      for (const CheckVariant& v : kVariants) {
        par::set_check_mode(v.check);
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_large; ++r) {
                par::par_ind_iter_mut_fn(
                    std::span<u64>(out), n,
                    [&](std::size_t i) { return perm[i]; },
                    [](std::size_t i, u64& slot) { slot = i; }, v.mode);
              }
            },
            repeats);
        records.push_back(make_record(std::string("sngind_fn_region/") +
                                          v.name,
                                      threads, n, inner_large, m));
      }
    }
  }
  par::set_check_mode(par::CheckMode::kFused);

  if (int rc = bench::emit_bench_json(path, "indcheck", records)) return rc;
  double fused_floor_small = std::max(small_fused_hw, 1e-9);
  double fused_floor_large = std::max(large_fused_hw, 1e-9);
  std::printf(
      "per-region checked SngInd scatter @%zu threads:\n"
      "  n=%zu: bitmap %s, fused %s (%.2fx)\n"
      "  n=%zu: bitmap %s, fused %s (%.2fx); unchecked %s\n",
      hw, small_n, bench::fmt_seconds(small_bitmap_hw).c_str(),
      bench::fmt_seconds(small_fused_hw).c_str(),
      small_bitmap_hw / fused_floor_small, large_n,
      bench::fmt_seconds(large_bitmap_hw).c_str(),
      bench::fmt_seconds(large_fused_hw).c_str(),
      large_bitmap_hw / fused_floor_large,
      bench::fmt_seconds(large_unchecked_hw).c_str());
  return 0;
}

int run_suite_table(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::Suite suite(opt.scale);

  std::printf("\nFig. 5(a): overhead of dynamic offset checking (SngInd), "
              "checked / unchecked\n\n");
  bench::Table table({"bench", "unchecked", "checked", "overhead"});
  for (auto& c : suite.cases()) {
    if (!c.check_is_distinct) continue;
    if (c.benchmark != "bw" && c.benchmark != "lrs" && c.benchmark != "sa") {
      continue;
    }
    auto fast = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kPerf); }, opt.repeats);
    auto checked = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kChecked); }, opt.repeats);
    table.add_row({c.name, bench::fmt_seconds(fast.mean_seconds),
                   bench::fmt_seconds(checked.mean_seconds),
                   bench::fmt_ratio(checked.mean_seconds / fast.mean_seconds)});
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(paper: bw ~1x [SngInd is a small phase], lrs/sa large "
              "overhead and worse scaling)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (cli.error) return 1;
  if (!cli.json_path.empty()) return run_json_harness(cli.json_path, cli.smoke);
  return run_suite_table(static_cast<int>(cli.passthrough.size()),
                         cli.passthrough.data());
}
