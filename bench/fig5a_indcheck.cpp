// Regenerates the paper's Fig. 5(a): the overhead of replacing unsafe
// SngInd writes with the interior-unsafe par_ind_iter_mut and its
// run-time uniqueness check, on the three benchmarks that integrate it
// (bw, lrs, sa). Paper reference: bw ~1.0x, lrs up to ~2.8x, sa ~2.5x.
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "suite.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::Suite suite(opt.scale);

  std::printf("\nFig. 5(a): overhead of dynamic offset checking (SngInd), "
              "checked / unchecked\n\n");
  bench::Table table({"bench", "unchecked", "checked", "overhead"});
  for (auto& c : suite.cases()) {
    if (!c.check_is_distinct) continue;
    if (c.benchmark != "bw" && c.benchmark != "lrs" && c.benchmark != "sa") {
      continue;
    }
    auto fast = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kPerf); }, opt.repeats);
    auto checked = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kChecked); }, opt.repeats);
    table.add_row({c.name, bench::fmt_seconds(fast.mean_seconds),
                   bench::fmt_seconds(checked.mean_seconds),
                   bench::fmt_ratio(checked.mean_seconds / fast.mean_seconds)});
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(paper: bw ~1x [SngInd is a small phase], lrs/sa large "
              "overhead and worse scaling)\n");
  return 0;
}
