// Ablation (DESIGN.md Sec. 6): fork-join grain size for parallel_for.
// Too-small grains drown in task overhead; too-large grains starve the
// thieves. The default heuristic targets ~8 leaves per worker.
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "sched/parallel.h"
#include "support/hash.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = std::size_t{1} << (24 + opt.scale);
  std::vector<u64> data(n);
  sched::parallel_for(0, n, [&](std::size_t i) { data[i] = i; });

  std::printf("\nAblation: parallel_for grain size (n=%zu)\n\n", n);
  const std::size_t grains[] = {1, 64, 1024, 16384, 262144, 0 /*default*/};
  std::vector<double> means;
  for (std::size_t grain : grains) {
    auto m = bench::measure(
        [&] {
          sched::parallel_for(
              0, n, [&](std::size_t i) { data[i] = hash64(data[i]); }, grain);
        },
        opt.repeats);
    means.push_back(m.mean_seconds);
  }
  double default_time = means.back();

  bench::Table table({"grain", "time", "vs default"});
  for (std::size_t g = 0; g < std::size(grains); ++g) {
    table.add_row({grains[g] == 0 ? "default" : std::to_string(grains[g]),
                   bench::fmt_seconds(means[g]),
                   bench::fmt_ratio(means[g] / default_time)});
  }
  table.print();
  return 0;
}
