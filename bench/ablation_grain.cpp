// Ablation (DESIGN.md Sec. 6): fork-join grain size x splitting
// strategy for parallel_for. Eager splitting forks every leaf up front,
// so small grains drown in task overhead; the adaptive (lazy) splitter
// forks only on observed demand, which flattens the small-grain cliff
// while keeping the same steal-driven balance. The default heuristic
// targets ~8 leaves per worker.
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "sched/parallel.h"
#include "support/hash.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = std::size_t{1} << (24 + opt.scale);
  std::vector<u64> data(n);
  sched::parallel_for(0, n, [&](std::size_t i) { data[i] = i; });

  std::printf("\nAblation: parallel_for grain x split strategy (n=%zu)\n\n",
              n);
  const std::size_t grains[] = {1, 64, 1024, 16384, 262144, 0 /*default*/};
  std::vector<double> eager_means, lazy_means;
  for (std::size_t grain : grains) {
    for (sched::SplitMode mode :
         {sched::SplitMode::kEager, sched::SplitMode::kLazy}) {
      sched::set_split_mode(mode);
      auto m = bench::measure(
          [&] {
            sched::parallel_for(
                0, n, [&](std::size_t i) { data[i] = hash64(data[i]); },
                grain);
          },
          opt.repeats);
      (mode == sched::SplitMode::kEager ? eager_means : lazy_means)
          .push_back(m.mean_seconds);
    }
  }
  sched::set_split_mode(opt.split);
  double lazy_default = lazy_means.back();

  bench::Table table({"grain", "eager", "lazy", "lazy/eager", "vs default"});
  for (std::size_t g = 0; g < std::size(grains); ++g) {
    table.add_row({grains[g] == 0 ? "default" : std::to_string(grains[g]),
                   bench::fmt_seconds(eager_means[g]),
                   bench::fmt_seconds(lazy_means[g]),
                   bench::fmt_ratio(lazy_means[g] / eager_means[g]),
                   bench::fmt_ratio(lazy_means[g] / lazy_default)});
  }
  table.print();
  return 0;
}
