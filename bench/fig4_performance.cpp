// Regenerates the paper's Fig. 4: execution time of the recommended
// expression ("RPB"/Rust side) against the raw unchecked expression
// (the C++/OpenCilk side), for all 20 benchmark-input pairs.
//
// Substitution (DESIGN.md): instead of two languages on two runtimes,
// both sides run on this library's work-stealing runtime; the variable
// isolated is the expression choice, which is what the paper's Fig. 4
// attributes the 1-thread gap to. Run with --threads 1 for Fig. 4(a);
// at full threads plus --compare-1t the harness also prints the
// scaling-relative-to-1-thread dots of Fig. 4(b).
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "suite.h"
#include "support/cli.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  Cli cli(argc, argv);
  const bool compare_1t = cli.has("compare-1t") && opt.threads > 1;

  bench::Suite suite(opt.scale);

  std::printf("\nFig. 4: execution time, recommended (RPB) vs unchecked "
              "(C++ equivalent), %zu threads\n\n", opt.threads);
  std::vector<std::string> header{"pair", "unchecked", "recommended",
                                  "rec/unchecked"};
  if (compare_1t) header.push_back("scaling vs 1t");
  bench::Table table(header);

  std::vector<double> ratios;
  for (auto& c : suite.cases()) {
    auto perf = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kPerf); }, opt.repeats);
    auto rec = bench::measure_with_setup(
        c.setup, [&] { c.run(bench::Variant::kRecommended); }, opt.repeats);
    double ratio = rec.mean_seconds / perf.mean_seconds;
    ratios.push_back(ratio);
    std::vector<std::string> row{c.name, bench::fmt_seconds(perf.mean_seconds),
                                 bench::fmt_seconds(rec.mean_seconds),
                                 bench::fmt_ratio(ratio)};
    if (compare_1t) {
      sched::ThreadPool::reset_global(1);
      setenv("RPB_THREADS", "1", 1);
      auto one = bench::measure_with_setup(
          c.setup, [&] { c.run(bench::Variant::kRecommended); },
          std::max<std::size_t>(1, opt.repeats / 2));
      setenv("RPB_THREADS", std::to_string(opt.threads).c_str(), 1);
      sched::ThreadPool::reset_global(opt.threads);
      row.push_back(bench::fmt_ratio(one.mean_seconds / rec.mean_seconds));
    }
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  table.print();
  std::printf("\ngmean recommended/unchecked: %.3fx\n", bench::gmean(ratios));
  std::printf(
      "(paper: RPB 1.09x faster than C++ at 1 thread, 1.44x slower at 24; the\n"
      " language/runtime gap is not reproducible in a single-language repo —\n"
      " see EXPERIMENTS.md for the mapping of claims.)\n");
  return 0;
}
