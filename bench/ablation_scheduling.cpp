// Ablation (extension, DESIGN.md): dynamic (MultiQueue) vs static-ish
// (level-synchronous / delta-stepping) task dispatch for bfs and sssp
// on the two graph regimes. The paper's Sec. 6 argues dispatch does not
// change *fear*; this bench shows it does change *performance*:
// frontier methods suffer on long-diameter road graphs (many tiny
// rounds), the MultiQueue doesn't care about diameter.
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/sssp.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  graph::Graph road = graph::make_named("road", 17 + opt.scale, 105);
  graph::Graph link = graph::make_named("link", 15 + opt.scale, 104);

  std::printf("\nAblation: task dispatch strategy for bfs / sssp\n\n");
  bench::Table table({"bench", "graph", "multiqueue", "frontier-based",
                      "frontier/mq"});
  for (const auto& [name, g] :
       {std::pair<const char*, const graph::Graph*>{"road", &road},
        {"link", &link}}) {
    auto mq_bfs = bench::measure(
        [&] { graph::bfs_multiqueue(*g, 0, opt.threads); }, opt.repeats);
    auto ls_bfs = bench::measure([&] { graph::bfs_level_sync(*g, 0); },
                                 opt.repeats);
    table.add_row({"bfs", name, bench::fmt_seconds(mq_bfs.mean_seconds),
                   bench::fmt_seconds(ls_bfs.mean_seconds),
                   bench::fmt_ratio(ls_bfs.mean_seconds /
                                    mq_bfs.mean_seconds)});
    auto mq_sssp = bench::measure(
        [&] { graph::sssp_multiqueue(*g, 0, opt.threads); }, opt.repeats);
    auto ds_sssp = bench::measure(
        [&] { graph::sssp_delta_stepping(*g, 0); }, opt.repeats);
    table.add_row({"sssp", name, bench::fmt_seconds(mq_sssp.mean_seconds),
                   bench::fmt_seconds(ds_sssp.mean_seconds),
                   bench::fmt_ratio(ds_sssp.mean_seconds /
                                    mq_sssp.mean_seconds)});
    std::fflush(stdout);
  }
  table.print();
  return 0;
}
