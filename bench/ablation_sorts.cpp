// Ablation (extension, DESIGN.md): the comparison-sort design space —
// PBBS-style sample sort (the paper's `sort` benchmark), the paper's
// Listing 9 merge sort, and serial std::sort as the floor.
#include <algorithm>
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "seq/generators.h"
#include "seq/merge_sort.h"
#include "seq/sample_sort.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = std::size_t{1} << (20 + opt.scale);
  auto input = seq::exponential_doubles(n, 1.0, 77);
  std::vector<double> v;
  auto setup = [&] { v = input; };

  std::printf("\nAblation: comparison sorts (n=%zu doubles)\n\n", n);
  bench::Table table({"sort", "time", "vs std::sort"});
  auto std_sort = bench::measure_with_setup(
      setup, [&] { std::sort(v.begin(), v.end()); }, opt.repeats);
  table.add_row({"std::sort (serial)", bench::fmt_seconds(std_sort.mean_seconds),
                 "1.00x"});
  auto sample = bench::measure_with_setup(
      setup, [&] { seq::sample_sort(v, std::less<double>(),
                                    AccessMode::kChecked); },
      opt.repeats);
  table.add_row({"sample_sort (checked)", bench::fmt_seconds(sample.mean_seconds),
                 bench::fmt_ratio(sample.mean_seconds / std_sort.mean_seconds)});
  auto merge = bench::measure_with_setup(
      setup, [&] { seq::merge_sort(v); }, opt.repeats);
  table.add_row({"merge_sort (Listing 9)", bench::fmt_seconds(merge.mean_seconds),
                 bench::fmt_ratio(merge.mean_seconds / std_sort.mean_seconds)});
  table.print();
  return 0;
}
