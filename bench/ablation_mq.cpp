// Ablation (DESIGN.md Sec. 6): the MultiQueue's queue multiplier c
// (#sub-queues = c x threads). Small c contends on locks; large c
// degrades priority quality, costing extra relaxations in sssp.
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "graph/generators.h"
#include "graph/sssp.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  graph::Graph road = graph::make_named("road", 17 + opt.scale, 105);
  graph::Graph link = graph::make_named("link", 15 + opt.scale, 104);

  std::printf("\nAblation: MultiQueue queue multiplier (sssp)\n\n");
  bench::Table table({"graph", "c", "time"});
  for (const auto& [name, g] :
       {std::pair<const char*, const graph::Graph*>{"road", &road},
        {"link", &link}}) {
    for (std::size_t c : {1, 2, 4, 8, 16}) {
      auto m = bench::measure(
          [&] { graph::sssp_multiqueue(*g, 0, opt.threads, c); }, opt.repeats);
      table.add_row({name, std::to_string(c),
                     bench::fmt_seconds(m.mean_seconds)});
      std::fflush(stdout);
    }
  }
  table.print();
  return 0;
}
