// Regenerates the paper's Table 1 (benchmark x access-pattern matrix
// with task-dispatch column) and Table 3 (pattern -> expression ->
// fearlessness) from the per-benchmark censuses declared next to each
// implementation.
#include <cstdio>

#include "bench_util/harness.h"
#include "core/census.h"
#include "suite.h"

using namespace rpb;

int main() {
  std::printf("Table 1: ported benchmarks and their parallel access patterns\n\n");
  bench::Table table({"bench", "RO", "Stride", "Block", "D&C", "SngInd",
                      "RngInd", "AW", "dispatch"});
  for (const census::BenchmarkCensus* c : bench::Suite::all_censuses()) {
    std::vector<std::string> row{c->name};
    for (census::Pattern p : census::kAllPatterns) {
      row.push_back(c->uses(p) ? "x" : "");
    }
    row.push_back(name_of(c->dispatch));
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nTable 3: studied patterns and their safety levels\n\n");
  bench::Table t3({"pattern", "parallel expression", "fearlessness"});
  for (census::Pattern p : census::kAllPatterns) {
    t3.add_row({census::name_of(p), census::expression_of(p),
                census::name_of(census::fear_of(p))});
  }
  t3.print();
  return 0;
}
