#include "suite.h"

#include <algorithm>
#include <stdexcept>

#include "geom/build.h"
#include "geom/points.h"
#include "geom/refine.h"
#include "graph/bfs.h"
#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/matching.h"
#include "graph/mis.h"
#include "graph/sssp.h"
#include "seq/dedup.h"
#include "seq/generators.h"
#include "seq/histogram.h"
#include "seq/integer_sort.h"
#include "seq/sample_sort.h"
#include "support/env.h"
#include "text/bwt.h"
#include "text/corpus.h"
#include "text/lcp.h"
#include "text/suffix_array.h"

namespace rpb::bench {

const char* name_of(Variant v) {
  switch (v) {
    case Variant::kPerf:
      return "perf";
    case Variant::kRecommended:
      return "recommended";
    case Variant::kChecked:
      return "checked";
    case Variant::kSync:
      return "sync";
  }
  return "?";
}

namespace {

std::size_t scaled(std::size_t base, int scale) {
  if (scale >= 0) return base << scale;
  std::size_t s = base >> (-scale);
  return std::max<std::size_t>(1024, s);
}

int scaled_graph(int base_log, int scale) {
  return std::max(10, base_log + scale);
}

// The paper's RPB uses unsafe SngInd/AW and the cheap RngInd check; map
// the variant axis onto AccessMode for benchmarks whose knob is the
// SngInd expression.
AccessMode sngind_mode(Variant v) {
  switch (v) {
    case Variant::kPerf:
    case Variant::kRecommended:
      return AccessMode::kUnchecked;
    case Variant::kChecked:
      return AccessMode::kChecked;
    case Variant::kSync:
      return AccessMode::kAtomic;
  }
  return AccessMode::kUnchecked;
}

}  // namespace

struct Suite::Inputs {
  // text
  std::vector<u8> corpus_sa, corpus_bw_encoded;
  // geometry
  std::vector<geom::Point> kuzmin;
  std::unique_ptr<geom::Mesh> dr_mesh;  // refreshed by dr's setup
  u64 dr_hash = 0;                      // first-run fingerprint (verify)
  // graphs
  graph::Graph link, road, rmat;
  std::vector<graph::Edge> link_edges, road_edges, rmat_edges;
  // sequences
  std::vector<double> sort_input, sort_scratch;
  std::vector<u64> dedup_keys, hist_keys, isort_keys, isort_scratch;
};

Suite::Suite(int scale) : inputs_(std::make_unique<Inputs>()) {
  Inputs& in = *inputs_;

  // ---- inputs (all generation untimed, deterministic seeds) ----------
  // Planted repeat scales with the corpus so lrs's self-check holds at
  // any --scale.
  const std::size_t sa_len = scaled(1u << 17, scale);
  const std::size_t plant = std::max<std::size_t>(16, sa_len / 64);
  in.corpus_sa = text::make_corpus(sa_len, 101, plant);
  {
    auto bw_text = text::make_corpus(scaled(1u << 19, scale), 102, 4096);
    in.corpus_bw_encoded = text::bwt_encode(std::span<const u8>(bw_text));
  }
  in.kuzmin = geom::kuzmin_points(scaled(10000, scale), 103);

  in.link = graph::make_named("link", scaled_graph(15, scale), 104);
  in.road = graph::make_named("road", scaled_graph(17, scale), 105);
  in.rmat = graph::make_named("rmat", scaled_graph(15, scale), 106);
  in.link_edges = in.link.undirected_edges();
  in.road_edges = in.road.undirected_edges();
  in.rmat_edges = in.rmat.undirected_edges();

  in.sort_input = seq::exponential_doubles(scaled(1u << 20, scale), 1.0, 107);
  in.dedup_keys = seq::exponential_keys(scaled(1u << 21, scale), 1u << 17, 108);
  in.hist_keys = seq::exponential_keys(scaled(1u << 21, scale), 1u << 16, 109);
  in.isort_keys = seq::exponential_keys(scaled(1u << 21, scale),
                                        u64{1} << 32, 110);

  // ---- text benchmarks ------------------------------------------------
  cases_.push_back(BenchCase{
      "bw", "bw", &text::bw_census(), [] {},
      [&in](Variant v) {
        auto out = text::bwt_decode(std::span<const u8>(in.corpus_bw_encoded),
                                    sngind_mode(v));
        if (out.empty()) throw std::logic_error("bw produced nothing");
      },
      /*sync_is_distinct=*/true, /*check_is_distinct=*/true});

  cases_.push_back(BenchCase{
      "lrs", "lrs", &text::lrs_census(), [] {},
      [&in, plant](Variant v) {
        auto r = text::longest_repeated_substring(
            std::span<const u8>(in.corpus_sa), sngind_mode(v));
        if (r.length < plant) throw std::logic_error("lrs missed the plant");
      },
      true, true});

  cases_.push_back(BenchCase{
      "sa", "sa", &text::sa_census(), [] {},
      [&in](Variant v) {
        auto sa = text::suffix_array(std::span<const u8>(in.corpus_sa),
                                     sngind_mode(v));
        if (sa.size() != in.corpus_sa.size()) {
          throw std::logic_error("sa wrong size");
        }
      },
      true, true});

  // ---- geometry -------------------------------------------------------
  // Construction policy comes from RPB_DR (geom::dr_policy()), so
  // figure runs exercise whichever arm the environment selects; the
  // checked variant turns on the bucketing validation tier. The mesh
  // arena is allocated untimed in setup; run builds, refines, and
  // verifies (Euler identity + a stable structure fingerprint across
  // repetitions and variants — the build is deterministic per policy).
  cases_.push_back(BenchCase{
      "dr", "dr", &geom::dr_census(),
      [&in] {
        in.dr_mesh =
            std::make_unique<geom::Mesh>(in.kuzmin, in.kuzmin.size() * 4);
      },
      [&in](Variant v) {
        if (!in.dr_mesh) {  // defensive: run without a prior setup
          in.dr_mesh =
              std::make_unique<geom::Mesh>(in.kuzmin, in.kuzmin.size() * 4);
        }
        geom::Mesh& mesh = *in.dr_mesh;
        const AccessMode mode = v == Variant::kChecked
                                    ? AccessMode::kChecked
                                    : AccessMode::kUnchecked;
        const geom::BuildStats built =
            geom::build_delaunay(mesh, geom::dr_policy(), mode);
        geom::RefineConfig config;
        config.max_insertions = in.kuzmin.size() * 3;
        const geom::RefineStats refined = geom::refine(mesh, config);
        const std::size_t expect =
            2 * (built.inserted + refined.inserted) + 1;
        if (mesh.num_live_triangles() != expect) {
          throw std::logic_error("dr: Euler identity violated");
        }
        const u64 hash = mesh.structure_hash();
        if (in.dr_hash == 0) in.dr_hash = hash;
        if (hash != in.dr_hash) {
          throw std::logic_error("dr: structure hash drifted across runs");
        }
      },
      /*sync_is_distinct=*/false, /*check_is_distinct=*/true});

  // ---- graph benchmarks ----------------------------------------------
  auto add_mis = [&](const std::string& which, const graph::Graph& g) {
    cases_.push_back(BenchCase{
        "mis-" + which, "mis", &graph::mis_census(), [] {},
        [&g](Variant v) {
          auto mode = v == Variant::kSync ? AccessMode::kAtomic
                                          : AccessMode::kUnchecked;
          graph::maximal_independent_set(g, mode);
        },
        true, false});
  };
  add_mis("link", in.link);
  add_mis("road", in.road);

  auto add_mm = [&](const std::string& which, const graph::Graph& g,
                    const std::vector<graph::Edge>& edges) {
    cases_.push_back(BenchCase{
        "mm-" + which, "mm", &graph::mm_census(), [] {},
        [&g, &edges](Variant) {
          graph::maximal_matching(g.num_vertices(), edges);
        },
        false, false});
  };
  add_mm("road", in.road, in.road_edges);
  add_mm("rmat", in.rmat, in.rmat_edges);

  auto add_sf = [&](const std::string& which, const graph::Graph& g,
                    const std::vector<graph::Edge>& edges) {
    cases_.push_back(BenchCase{
        "sf-" + which, "sf", &graph::sf_census(), [] {},
        [&g, &edges](Variant) { graph::spanning_forest(g.num_vertices(), edges); },
        false, false});
  };
  add_sf("link", in.link, in.link_edges);
  add_sf("road", in.road, in.road_edges);

  auto add_msf = [&](const std::string& which, const graph::Graph& g,
                     const std::vector<graph::Edge>& edges) {
    cases_.push_back(BenchCase{
        "msf-" + which, "msf", &graph::msf_census(), [] {},
        [&g, &edges](Variant) {
          graph::minimum_spanning_forest(g.num_vertices(), edges);
        },
        false, false});
  };
  add_msf("rmat", in.rmat, in.rmat_edges);
  add_msf("road", in.road, in.road_edges);

  // ---- sequence benchmarks -------------------------------------------
  cases_.push_back(BenchCase{
      "sort", "sort", &seq::sort_census(),
      [&in] { in.sort_scratch = in.sort_input; },
      [&in](Variant v) {
        // kPerf skips even the cheap RngInd monotonicity check; the
        // recommended expression keeps it on (paper Sec. 7.3).
        auto mode = v == Variant::kPerf ? AccessMode::kUnchecked
                                        : AccessMode::kChecked;
        seq::sample_sort(in.sort_scratch, std::less<double>(), mode);
      },
      false, false});

  cases_.push_back(BenchCase{
      "dedup", "dedup", &seq::dedup_census(), [] {},
      [&in](Variant v) {
        auto mode = v == Variant::kSync ? AccessMode::kLocked
                                        : AccessMode::kAtomic;
        seq::dedup(std::span<const u64>(in.dedup_keys), mode);
      },
      true, false});

  cases_.push_back(BenchCase{
      "hist", "hist", &seq::hist_census(), [] {},
      [&in](Variant v) {
        // The struct-accumulator histogram: private copies normally,
        // bucket mutexes under kSync (the paper's 4x hist bar).
        auto mode = v == Variant::kSync ? AccessMode::kLocked
                                        : AccessMode::kUnchecked;
        seq::histogram_stats(std::span<const u64>(in.hist_keys), 1u << 16,
                             mode);
      },
      true, false});

  cases_.push_back(BenchCase{
      "isort", "isort", &seq::isort_census(),
      [&in] { in.isort_scratch = in.isort_keys; },
      [&in](Variant v) {
        seq::integer_sort(in.isort_scratch, 32, sngind_mode(v));
      },
      true, true});

  // ---- MultiQueue benchmarks (dynamic dispatch) ------------------------
  auto add_bfs = [&](const std::string& which, const graph::Graph& g) {
    cases_.push_back(BenchCase{
        "bfs-" + which, "bfs", &graph::bfs_census(), [] {},
        [&g](Variant) { graph::bfs_multiqueue(g, 0); },
        false, false});
  };
  add_bfs("road", in.road);
  add_bfs("link", in.link);

  auto add_sssp = [&](const std::string& which, const graph::Graph& g) {
    cases_.push_back(BenchCase{
        "sssp-" + which, "sssp", &graph::sssp_census(), [] {},
        [&g](Variant) { graph::sssp_multiqueue(g, 0); },
        false, false});
  };
  add_sssp("link", in.link);
  add_sssp("road", in.road);
}

Suite::~Suite() = default;

std::vector<const census::BenchmarkCensus*> Suite::all_censuses() {
  return {
      &text::bw_census(),    &text::lrs_census(),  &text::sa_census(),
      &geom::dr_census(),    &graph::mis_census(), &graph::mm_census(),
      &graph::sf_census(),   &graph::msf_census(), &seq::sort_census(),
      &seq::dedup_census(),  &seq::hist_census(),  &seq::isort_census(),
      &graph::bfs_census(),  &graph::sssp_census(),
  };
}

}  // namespace rpb::bench
