// Shared CLI handling for the table/figure harnesses: --threads,
// --repeats, --scale, --split.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "support/cli.h"
#include "support/env.h"

namespace rpb::bench {

struct Options {
  std::size_t threads = 0;
  std::size_t repeats = 3;
  int scale = 0;
  sched::SplitMode split = sched::SplitMode::kLazy;
};

inline Options parse_options(int argc, char** argv) {
  Cli cli(argc, argv);
  Options opt;
  opt.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  if (opt.threads == 0) opt.threads = default_threads();
  opt.repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  opt.scale = static_cast<int>(cli.get_int("scale", 0));
  std::string split = cli.get("split", "");
  if (split.empty()) {
    opt.split = sched::split_mode();  // RPB_SPLIT or lazy
  } else if (split == "eager") {
    opt.split = sched::SplitMode::kEager;
  } else {
    if (split != "lazy")
      std::fprintf(stderr, "# warning: unknown --split '%s', using lazy\n",
                   split.c_str());
    opt.split = sched::SplitMode::kLazy;
  }
  sched::set_split_mode(opt.split);
  // Propagate to everything that reads the default (MQ executors spawn
  // their own workers and consult RPB_THREADS at run time).
  setenv("RPB_THREADS", std::to_string(opt.threads).c_str(), 1);
  sched::ThreadPool::reset_global(opt.threads);
  std::printf("# threads=%zu repeats=%zu scale=%d split=%s\n", opt.threads,
              opt.repeats, opt.scale,
              opt.split == sched::SplitMode::kLazy ? "lazy" : "eager");
  return opt;
}

}  // namespace rpb::bench
