// Shared CLI handling for the table/figure harnesses: --threads,
// --repeats, --scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sched/thread_pool.h"
#include "support/cli.h"
#include "support/env.h"

namespace rpb::bench {

struct Options {
  std::size_t threads = 0;
  std::size_t repeats = 3;
  int scale = 0;
};

inline Options parse_options(int argc, char** argv) {
  Cli cli(argc, argv);
  Options opt;
  opt.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  if (opt.threads == 0) opt.threads = default_threads();
  opt.repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  opt.scale = static_cast<int>(cli.get_int("scale", 0));
  // Propagate to everything that reads the default (MQ executors spawn
  // their own workers and consult RPB_THREADS at run time).
  setenv("RPB_THREADS", std::to_string(opt.threads).c_str(), 1);
  sched::ThreadPool::reset_global(opt.threads);
  std::printf("# threads=%zu repeats=%zu scale=%d\n", opt.threads, opt.repeats,
              opt.scale);
  return opt;
}

}  // namespace rpb::bench
