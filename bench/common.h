// Shared CLI handling for the table/figure harnesses: --threads,
// --repeats, --scale, --split — plus the rpb-bench-v1 front end
// (--json/--trace/--smoke/--require-obs parsing and the write-validate-
// report epilogue) that every ablation harness used to carry a private
// copy of.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "geom/build.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "support/cli.h"
#include "support/env.h"

namespace rpb::bench {

struct Options {
  std::size_t threads = 0;
  std::size_t repeats = 3;
  int scale = 0;
  sched::SplitMode split = sched::SplitMode::kLazy;
  geom::DrPolicy dr = geom::DrPolicy::kDecomposed;
};

inline Options parse_options(int argc, char** argv) {
  Cli cli(argc, argv);
  Options opt;
  opt.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  if (opt.threads == 0) opt.threads = default_threads();
  opt.repeats = static_cast<std::size_t>(cli.get_int("repeats", 3));
  opt.scale = static_cast<int>(cli.get_int("scale", 0));
  std::string split = cli.get("split", "");
  if (split.empty()) {
    opt.split = sched::split_mode();  // RPB_SPLIT or lazy
  } else if (split == "eager") {
    opt.split = sched::SplitMode::kEager;
  } else {
    if (split != "lazy")
      std::fprintf(stderr, "# warning: unknown --split '%s', using lazy\n",
                   split.c_str());
    opt.split = sched::SplitMode::kLazy;
  }
  sched::set_split_mode(opt.split);
  // --dr overrides RPB_DR, so figure runs can exercise both Delaunay
  // construction arms without touching the environment.
  std::string dr = cli.get("dr", "");
  if (dr.empty()) {
    opt.dr = geom::dr_policy();  // RPB_DR or decomposed
  } else {
    try {
      opt.dr = geom::parse_dr_policy(dr);
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr, "# warning: unknown --dr '%s', using decomposed\n",
                   dr.c_str());
      opt.dr = geom::DrPolicy::kDecomposed;
    }
    geom::set_dr_policy(opt.dr);
  }
  // Propagate to everything that reads the default (MQ executors spawn
  // their own workers and consult RPB_THREADS at run time).
  setenv("RPB_THREADS", std::to_string(opt.threads).c_str(), 1);
  sched::ThreadPool::reset_global(opt.threads);
  std::printf("# threads=%zu repeats=%zu scale=%d split=%s dr=%s\n",
              opt.threads, opt.repeats, opt.scale,
              opt.split == sched::SplitMode::kLazy ? "lazy" : "eager",
              geom::dr_policy_name(opt.dr));
  return opt;
}

// The rpb-bench-v1 flags shared by the ablation/regression harnesses.
// Unrecognized arguments land in `passthrough` (argv[0] first) for
// harnesses with a table or google-benchmark mode behind the JSON one;
// json-only harnesses reject them via require_json_only below.
struct JsonCli {
  std::string json_path;
  std::string trace_path;
  bool smoke = false;
  bool require_obs = false;
  bool error = false;  // malformed flag; message already on stderr
  std::vector<char*> passthrough;
};

namespace detail {

// --flag PATH and --flag=PATH forms; returns true when argv[i] was this
// flag (consumed, possibly advancing i), setting cli.error on a missing
// or empty path.
inline bool parse_path_flag(JsonCli& cli, const char* flag, int argc,
                            char** argv, int& i, std::string* out) {
  const std::size_t len = std::strlen(flag);
  if (std::strcmp(argv[i], flag) == 0) {
    if (i + 1 >= argc || argv[i + 1][0] == '\0') {
      std::fprintf(stderr, "error: %s requires an output path\n", flag);
      cli.error = true;
    } else {
      *out = argv[++i];
    }
    return true;
  }
  if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
    *out = argv[i] + len + 1;
    if (out->empty()) {
      std::fprintf(stderr, "error: %s requires an output path\n", flag);
      cli.error = true;
    }
    return true;
  }
  return false;
}

}  // namespace detail

inline JsonCli parse_json_cli(int argc, char** argv) {
  JsonCli cli;
  cli.passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (detail::parse_path_flag(cli, "--json", argc, argv, i,
                                &cli.json_path) ||
        detail::parse_path_flag(cli, "--trace", argc, argv, i,
                                &cli.trace_path)) {
      if (cli.error) return cli;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      cli.smoke = true;
    } else if (std::strcmp(argv[i], "--require-obs") == 0) {
      cli.require_obs = true;
    } else {
      cli.passthrough.push_back(argv[i]);
    }
  }
  return cli;
}

// For harnesses whose only mode is --json: returns 0 when the parse
// produced exactly a JSON path, 1 (with a usage message) otherwise.
inline int require_json_only(const JsonCli& cli, const char* argv0) {
  if (cli.error) return 1;
  if (cli.json_path.empty() || cli.passthrough.size() > 1 ||
      !cli.trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --json PATH [--smoke]\n"
                 "(this harness has no table mode; see EXPERIMENTS.md)\n",
                 argv0);
    return 1;
  }
  return 0;
}

// The write-validate-report epilogue every JSON harness ends with:
// writes `records` as an rpb-bench-v1 document, re-reads it through the
// schema validator, optionally insists on the obs stats block, and
// prints the one-line receipt. Returns the harness exit code.
inline int emit_bench_json(const std::string& path, const std::string& suite,
                           const std::vector<BenchRecord>& records,
                           bool require_obs = false) {
  if (!write_bench_json(path, suite, records)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::string error;
  if (!validate_bench_json(path, &error)) {
    std::fprintf(stderr, "error: %s fails schema validation: %s\n",
                 path.c_str(), error.c_str());
    return 1;
  }
  if (require_obs && !bench_json_has_obs_block(path)) {
    std::fprintf(stderr,
                 "error: %s has no obs stats block (run with "
                 "RPB_OBS=counters)\n",
                 path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records, schema ok)\n", path.c_str(),
              records.size());
  return 0;
}

}  // namespace rpb::bench
