// google-benchmark microbenchmarks of the runtime substrate: fork-join
// overhead, scan/pack/reduce primitives, sorting kernels, MultiQueue
// operations, and concurrent hash-set inserts.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/primitives.h"
#include "seq/stencil.h"
#include "seq/hash_map.h"
#include "core/spec_for.h"
#include "core/reservation.h"
#include "core/atomics.h"
#include "sched/multiqueue.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/hash_table.h"
#include "seq/integer_sort.h"
#include "seq/sample_sort.h"
#include "support/hash.h"

using namespace rpb;

namespace {

void BM_ParallelForOverhead(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u64> data(n, 1);
  for (auto _ : state) {
    sched::parallel_for(0, n, [&](std::size_t i) { data[i] += 1; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 22);

void BM_Join(benchmark::State& state) {
  auto& pool = sched::ThreadPool::global();
  for (auto _ : state) {
    int a = 0, b = 0;
    pool.run([&] {
      pool.join([&] { a = 1; }, [&] { b = 2; });
    });
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_Join);

void BM_Reduce(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    u64 total = sched::parallel_reduce(
        0, n, u64{0}, [](std::size_t i) { return hash64(i); },
        [](u64 a, u64 b) { return a + b; });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 22);

void BM_ScanExclusive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u64> data(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::scan_exclusive_sum(std::span<u64>(data)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 16)->Arg(1 << 22);

void BM_PackIndex(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u8> flags(n);
  for (std::size_t i = 0; i < n; ++i) flags[i] = hash64(i) & 1;
  for (auto _ : state) {
    auto idx = par::pack_index(std::span<const u8>(flags));
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_PackIndex)->Arg(1 << 20);

void BM_IntegerSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto input = seq::exponential_keys(n, u64{1} << 32, 7);
  std::vector<u64> keys;
  for (auto _ : state) {
    state.PauseTiming();
    keys = input;
    state.ResumeTiming();
    seq::integer_sort(keys, 32, AccessMode::kUnchecked);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 20);

void BM_SampleSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto input = seq::exponential_doubles(n, 1.0, 9);
  std::vector<double> values;
  for (auto _ : state) {
    state.PauseTiming();
    values = input;
    state.ResumeTiming();
    seq::sample_sort(values, std::less<double>(), AccessMode::kChecked);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_SampleSort)->Arg(1 << 20);

struct IdentityKey {
  u64 operator()(u64 v) const { return v; }
};

void BM_MultiQueuePushPop(benchmark::State& state) {
  sched::MultiQueue<u64, IdentityKey> mq(4);
  u64 rng = 1;
  for (auto _ : state) {
    mq.push(hash64(rng), rng);
    benchmark::DoNotOptimize(mq.try_pop(rng));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_MultiQueuePushPop);

void BM_HashMapInsertOrAdd(benchmark::State& state) {
  const std::size_t keys = 1 << 10;
  seq::ConcurrentHashMap map(keys);
  std::size_t i = 0;
  for (auto _ : state) {
    map.insert_or_add(hash64(i) % keys, 1);
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_HashMapInsertOrAdd);

void BM_WriteMinUncontended(benchmark::State& state) {
  std::vector<u64> cells(1 << 16, ~u64{0});
  std::size_t i = 0;
  for (auto _ : state) {
    write_min(&cells[i & 0xffff], hash64(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_WriteMinUncontended);

void BM_JacobiStep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n * n, 1.0), b(n * n);
  for (auto _ : state) {
    seq::jacobi_step(std::span<const double>(a), std::span<double>(b), n, n);
    std::swap(a, b);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n * n));
}
BENCHMARK(BM_JacobiStep)->Arg(512);

void BM_SpeculativeForSlotClaim(benchmark::State& state) {
  // Contended deterministic reservations: 64k tasks over 1k slots.
  for (auto _ : state) {
    constexpr std::size_t kSlots = 1024, kTasks = 1 << 16;
    std::vector<par::Reservation> r(kSlots);
    std::vector<i64> owner(kSlots, -1);
    struct Step {
      std::vector<par::Reservation>& r;
      std::vector<i64>& owner;
      bool reserve(std::size_t i) {
        std::size_t slot = i % owner.size();
        if (relaxed_load(&owner[slot]) >= 0) return false;
        r[slot].reserve(static_cast<i64>(i));
        return true;
      }
      bool commit(std::size_t i) {
        std::size_t slot = i % owner.size();
        if (!r[slot].check(static_cast<i64>(i))) return false;
        relaxed_store(&owner[slot], static_cast<i64>(i));
        r[slot].reset();
        return true;
      }
    } step{r, owner};
    par::speculative_for(step, 0, kTasks, 8192);
    benchmark::DoNotOptimize(owner.data());
  }
}
BENCHMARK(BM_SpeculativeForSlotClaim);

void BM_HashSetInsert(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  auto keys = seq::uniform_keys(n, ~u64{0} - 1, 13);
  std::size_t i = 0;
  seq::ConcurrentHashSet set(n * 2, AccessMode::kAtomic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.insert(keys[i]));
    i = (i + 1) % n;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_HashSetInsert);

}  // namespace

BENCHMARK_MAIN();
