// google-benchmark microbenchmarks of the runtime substrate: fork-join
// overhead, scan/pack/reduce primitives, sorting kernels, MultiQueue
// operations, and concurrent hash-set inserts.
//
// Three modes:
//   (default)              the google-benchmark suite below.
//   --json PATH [--smoke]  the perf-regression harness: measures the
//                          scheduler primitives per thread count with
//                          median/p10/p90 stats, emits PATH in the
//                          rpb-bench-v1 schema (bench_out/BENCH_sched_*
//                          by convention; baselines in bench/), and
//                          self-validates it. --smoke shrinks sizes so
//                          CI can check the schema without gating on
//                          timing. --require-obs additionally fails
//                          unless the file carries the "obs" stats block
//                          (run with RPB_OBS=counters).
//   --trace PATH           traced sample_sort run: forces RPB_OBS=trace,
//                          sorts 1M doubles, writes the Chrome trace to
//                          PATH, and prints work/span plus a counter
//                          summary (steal success, lazy split decisions).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "core/primitives.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "seq/stencil.h"
#include "seq/hash_map.h"
#include "core/spec_for.h"
#include "core/reservation.h"
#include "core/atomics.h"
#include "sched/multiqueue.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "seq/generators.h"
#include "seq/hash_table.h"
#include "seq/integer_sort.h"
#include "seq/sample_sort.h"
#include "support/arena.h"
#include "support/env.h"
#include "support/hash.h"
#include "support/timer.h"

using namespace rpb;

namespace {

void BM_ParallelForOverhead(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u64> data(n, 1);
  for (auto _ : state) {
    sched::parallel_for(0, n, [&](std::size_t i) { data[i] += 1; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 22);

void BM_Join(benchmark::State& state) {
  auto& pool = sched::ThreadPool::global();
  for (auto _ : state) {
    int a = 0, b = 0;
    pool.run([&] {
      pool.join([&] { a = 1; }, [&] { b = 2; });
    });
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_Join);

void BM_Reduce(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    u64 total = sched::parallel_reduce(
        0, n, u64{0}, [](std::size_t i) { return hash64(i); },
        [](u64 a, u64 b) { return a + b; });
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 22);

void BM_ScanExclusive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u64> data(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::scan_exclusive_sum(std::span<u64>(data)));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 16)->Arg(1 << 22);

void BM_PackIndex(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u8> flags(n);
  for (std::size_t i = 0; i < n; ++i) flags[i] = hash64(i) & 1;
  for (auto _ : state) {
    // Lease per call: the realistic per-call cost of the primitive.
    support::ArenaLease lease;
    auto idx = par::pack_index(lease, std::span<const u8>(flags));
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_PackIndex)->Arg(1 << 20);

void BM_IntegerSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto input = seq::exponential_keys(n, u64{1} << 32, 7);
  std::vector<u64> keys;
  for (auto _ : state) {
    state.PauseTiming();
    keys = input;
    state.ResumeTiming();
    seq::integer_sort(keys, 32, AccessMode::kUnchecked);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 20);

void BM_SampleSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto input = seq::exponential_doubles(n, 1.0, 9);
  std::vector<double> values;
  for (auto _ : state) {
    state.PauseTiming();
    values = input;
    state.ResumeTiming();
    seq::sample_sort(values, std::less<double>(), AccessMode::kChecked);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_SampleSort)->Arg(1 << 20);

struct IdentityKey {
  u64 operator()(u64 v) const { return v; }
};

void BM_MultiQueuePushPop(benchmark::State& state) {
  sched::MultiQueue<u64, IdentityKey> mq(4);
  u64 rng = 1;
  for (auto _ : state) {
    mq.push(hash64(rng), rng);
    benchmark::DoNotOptimize(mq.try_pop(rng));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_MultiQueuePushPop);

void BM_HashMapInsertOrAdd(benchmark::State& state) {
  const std::size_t keys = 1 << 10;
  seq::ConcurrentHashMap map(keys);
  std::size_t i = 0;
  for (auto _ : state) {
    map.insert_or_add(hash64(i) % keys, 1);
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_HashMapInsertOrAdd);

void BM_WriteMinUncontended(benchmark::State& state) {
  std::vector<u64> cells(1 << 16, ~u64{0});
  std::size_t i = 0;
  for (auto _ : state) {
    write_min(&cells[i & 0xffff], hash64(i));
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_WriteMinUncontended);

void BM_JacobiStep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n * n, 1.0), b(n * n);
  for (auto _ : state) {
    seq::jacobi_step(std::span<const double>(a), std::span<double>(b), n, n);
    std::swap(a, b);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n * n));
}
BENCHMARK(BM_JacobiStep)->Arg(512);

void BM_SpeculativeForSlotClaim(benchmark::State& state) {
  // Contended deterministic reservations: 64k tasks over 1k slots.
  for (auto _ : state) {
    constexpr std::size_t kSlots = 1024, kTasks = 1 << 16;
    std::vector<par::Reservation> r(kSlots);
    std::vector<i64> owner(kSlots, -1);
    struct Step {
      std::vector<par::Reservation>& r;
      std::vector<i64>& owner;
      bool reserve(std::size_t i) {
        std::size_t slot = i % owner.size();
        if (relaxed_load(&owner[slot]) >= 0) return false;
        r[slot].reserve(static_cast<i64>(i));
        return true;
      }
      bool commit(std::size_t i) {
        std::size_t slot = i % owner.size();
        if (!r[slot].check(static_cast<i64>(i))) return false;
        relaxed_store(&owner[slot], static_cast<i64>(i));
        r[slot].reset();
        return true;
      }
    } step{r, owner};
    par::speculative_for(step, 0, kTasks, 8192);
    benchmark::DoNotOptimize(owner.data());
  }
}
BENCHMARK(BM_SpeculativeForSlotClaim);

void BM_HashSetInsert(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  auto keys = seq::uniform_keys(n, ~u64{0} - 1, 13);
  std::size_t i = 0;
  seq::ConcurrentHashSet set(n * 2, AccessMode::kAtomic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.insert(keys[i]));
    i = (i + 1) % n;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_HashSetInsert);

// ---------------------------------------------------------------------
// Perf-regression harness (--json): the trajectory file every future PR
// compares against. One record per primitive x split-mode x thread
// count; "parallel_for_overhead/*" records are the trivial-body cost
// with the raw sequential loop subtracted (median-to-median), i.e. what
// the scheduler itself charges.

const char* mode_name(sched::SplitMode mode) {
  return mode == sched::SplitMode::kLazy ? "lazy" : "eager";
}

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, const bench::Measurement& m) {
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

int run_json_harness(const std::string& path, bool smoke, bool require_obs) {
  const std::size_t n = smoke ? (std::size_t{1} << 16) : 10'000'000;
  const std::size_t repeats = smoke ? 3 : 9;
  // Region-overhead metric: many parallel regions over a small array per
  // timed sample, so the per-region scheduler cost (injection, forks,
  // split checks) dominates the timer instead of drowning in a
  // memory-bound 10M-element sweep.
  const std::size_t small_n = 4096;
  const std::size_t inner = smoke ? 50 : 400;
  const std::size_t hw = default_threads();
  std::vector<std::size_t> thread_counts{1, 2, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::vector<bench::BenchRecord> records;
  double overhead_eager_hw = 0, overhead_lazy_hw = 0;

  for (std::size_t threads : thread_counts) {
    sched::ThreadPool::reset_global(threads);
    std::vector<u64> data(n, 1);
    std::vector<u64> small(small_n, 1);

    // Per-region baseline: the same small sweep with no scheduler.
    auto raw_small = bench::measure(
        [&] {
          for (std::size_t r = 0; r < inner; ++r) {
            for (std::size_t i = 0; i < small_n; ++i) small[i] += 1;
            benchmark::DoNotOptimize(small.data());
          }
        },
        repeats);
    bench::Measurement raw_region = raw_small;
    raw_region.median_seconds /= static_cast<double>(inner);
    raw_region.p10_seconds /= static_cast<double>(inner);
    raw_region.p90_seconds /= static_cast<double>(inner);
    raw_region.mean_seconds /= static_cast<double>(inner);
    records.push_back(
        make_record("raw_loop_region", threads, small_n, raw_region));

    for (sched::SplitMode mode :
         {sched::SplitMode::kEager, sched::SplitMode::kLazy}) {
      sched::set_split_mode(mode);
      // Total-time trajectory at the big size (memory-bound; the
      // scheduler must not make it worse).
      auto pf = bench::measure(
          [&] {
            sched::parallel_for(0, n, [&](std::size_t i) { data[i] += 1; });
            benchmark::DoNotOptimize(data.data());
          },
          repeats);
      records.push_back(make_record(
          std::string("parallel_for_trivial/") + mode_name(mode), threads, n,
          pf));

      // Amortized per-region cost and overhead-above-raw.
      auto region = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              sched::parallel_for(0, small_n,
                                  [&](std::size_t i) { small[i] += 1; });
              benchmark::DoNotOptimize(small.data());
            }
          },
          repeats);
      bench::Measurement rc = region;
      rc.median_seconds /= static_cast<double>(inner);
      rc.p10_seconds /= static_cast<double>(inner);
      rc.p90_seconds /= static_cast<double>(inner);
      rc.mean_seconds /= static_cast<double>(inner);
      records.push_back(make_record(
          std::string("parallel_for_region_cost/") + mode_name(mode), threads,
          small_n, rc));
      bench::Measurement om;
      om.repeats = repeats;
      om.median_seconds =
          std::max(0.0, rc.median_seconds - raw_region.median_seconds);
      om.p10_seconds =
          std::max(0.0, rc.p10_seconds - raw_region.median_seconds);
      om.p90_seconds =
          std::max(0.0, rc.p90_seconds - raw_region.median_seconds);
      om.mean_seconds =
          std::max(0.0, rc.mean_seconds - raw_region.mean_seconds);
      records.push_back(make_record(
          std::string("parallel_for_overhead/") + mode_name(mode), threads,
          small_n, om));
      if (threads == hw) {
        (mode == sched::SplitMode::kEager ? overhead_eager_hw
                                          : overhead_lazy_hw) =
            om.median_seconds;
      }

      auto rd = bench::measure(
          [&] {
            u64 total = sched::parallel_reduce(
                0, n, u64{0}, [](std::size_t i) { return hash64(i); },
                [](u64 a, u64 b) { return a + b; });
            benchmark::DoNotOptimize(total);
          },
          repeats);
      records.push_back(make_record(
          std::string("parallel_reduce_hash/") + mode_name(mode), threads, n,
          rd));
    }
    sched::set_split_mode(sched::SplitMode::kLazy);

    auto jn = bench::measure(
        [&] {
          auto& pool = sched::ThreadPool::global();
          int a = 0, b = 0;
          pool.run([&] {
            pool.join([&] { a = 1; }, [&] { b = 2; });
          });
          benchmark::DoNotOptimize(a + b);
        },
        repeats);
    records.push_back(make_record("join_pair", threads, 1, jn));

    auto sc = bench::measure(
        [&] {
          benchmark::DoNotOptimize(
              par::scan_exclusive_sum(std::span<u64>(data)));
        },
        repeats);
    records.push_back(make_record("scan_exclusive_sum", threads, n, sc));

    std::vector<u8> flags(n);
    for (std::size_t i = 0; i < n; ++i) flags[i] = hash64(i) & 1;
    auto pk = bench::measure(
        [&] {
          support::ArenaLease lease;
          auto idx = par::pack_index(lease, std::span<const u8>(flags));
          benchmark::DoNotOptimize(idx.data());
        },
        repeats);
    records.push_back(make_record("pack_index", threads, n, pk));
  }

  if (int rc = bench::emit_bench_json(path, "sched", records, require_obs)) {
    return rc;
  }
  // Floor at 10ns so a fully-inlined lazy region (overhead below timer
  // resolution) yields a finite, conservative ratio.
  double lazy_floor = std::max(overhead_lazy_hw, 1e-8);
  std::printf(
      "per-region parallel_for overhead @%zu threads (region n=%zu): "
      "eager %s, lazy %s, improvement %.2fx\n",
      hw, small_n, bench::fmt_seconds(overhead_eager_hw).c_str(),
      bench::fmt_seconds(overhead_lazy_hw).c_str(),
      overhead_eager_hw / lazy_floor);
  return 0;
}

// Traced sample_sort run: the source of the EXPERIMENTS.md trace-derived
// findings and the input for tools/trace_summary.py. Respects RPB_SPLIT
// and RPB_THREADS so split strategies can be compared under the trace.
int run_trace_harness(const std::string& path) {
  obs::set_mode(obs::ObsMode::kTrace);
  sched::ThreadPool::reset_global(default_threads());
  const std::size_t n = std::size_t{1} << 20;
  auto input = seq::exponential_doubles(n, 1.0, 9);

  // Warmup: populate arena/mark-table pools and spin the workers up so
  // the recorded trace shows steady-state behavior.
  std::vector<double> values = input;
  seq::sample_sort(values, std::less<double>(), AccessMode::kChecked);

  obs::reset_counters();
  obs::clear_trace();
  values = input;
  Timer timer;
  seq::sample_sort(values, std::less<double>(), AccessMode::kChecked);
  double elapsed = timer.elapsed();

  if (!obs::write_trace(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  obs::WorkSpan ws = obs::work_span();
  obs::StatsSnapshot snap = obs::snapshot_counters();
  u64 attempted = snap.total(obs::Counter::kStealsAttempted);
  u64 succeeded = snap.total(obs::Counter::kStealsSucceeded);
  u64 taken = snap.total(obs::Counter::kLazySplitsTaken);
  u64 elided = snap.total(obs::Counter::kLazySplitsElided);
  std::printf("wrote %s (%zu events, %zu dropped)\n", path.c_str(),
              obs::trace_event_count(), obs::trace_dropped_count());
  std::printf(
      "sample_sort n=%zu threads=%zu split=%s: %s wall, work %s, span %s, "
      "W/S %.2f over %zu scopes\n",
      n, sched::ThreadPool::global().num_threads(),
      mode_name(sched::split_mode()), bench::fmt_seconds(elapsed).c_str(),
      bench::fmt_seconds(ws.work_seconds).c_str(),
      bench::fmt_seconds(ws.span_seconds).c_str(), ws.parallelism(),
      ws.scopes);
  std::printf(
      "steals: %llu/%llu succeeded (%.1f%%); lazy splits: %llu taken, "
      "%llu elided; spawns %llu, injected %llu\n",
      static_cast<unsigned long long>(succeeded),
      static_cast<unsigned long long>(attempted),
      attempted > 0 ? 100.0 * static_cast<double>(succeeded) /
                          static_cast<double>(attempted)
                    : 0.0,
      static_cast<unsigned long long>(taken),
      static_cast<unsigned long long>(elided),
      static_cast<unsigned long long>(snap.total(obs::Counter::kSpawns)),
      static_cast<unsigned long long>(
          snap.total(obs::Counter::kInjectedJobs)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (cli.error) return 1;
  if (!cli.trace_path.empty()) return run_trace_harness(cli.trace_path);
  if (!cli.json_path.empty()) {
    return run_json_harness(cli.json_path, cli.smoke, cli.require_obs);
  }
  int pass_argc = static_cast<int>(cli.passthrough.size());
  benchmark::Initialize(&pass_argc, cli.passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             cli.passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
