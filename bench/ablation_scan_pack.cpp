// Multi-pass memory-tax ablation for the scan/pack primitive family.
// The fused primitives (core/primitives.h) collapse "write flags, count
// them, scan the counts, gather the survivors" — four passes over
// memory plus two zero-initialized heap vectors — into two passes over
// arena scratch with the predicate evaluated exactly once per element.
// The arms isolate where the win comes from:
//
//   naive  heap-allocated, zero-initialized scratch, four-pass pack /
//          three-pass pack_index / write-then-scan — a faithful local
//          copy of the pre-fusion primitives.
//   arena  the same multi-pass structure, but scratch leased
//          uninitialized from the workspace arena: kills the
//          malloc+memset tax only.
//   fused  the shipped primitives: pred/map evaluated once, staged in
//          block-local scratch, two passes total.
//   bits   the bit-packed flag path (64 flags per u64 word, popcount
//          counting) for index packs that materialize a mask anyway.
//
// Kernel rows time dedup / MIS / BFS end to end under RPB_ARENA=zeroed
// (the safe-Rust-style baseline: every scratch buffer heap-allocated
// and zero-filled) vs the default arena mode, both running the fused
// primitives underneath.
//
// Usage:
//   --json PATH [--smoke]  emit rpb-bench-v1 records (BENCH_scanpack)
//                          amortized per invocation, self-validated.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "core/primitives.h"
#include "core/uninit_buf.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/mis.h"
#include "sched/parallel.h"
#include "sched/thread_pool.h"
#include "seq/dedup.h"
#include "seq/generators.h"
#include "support/arena.h"
#include "support/env.h"
#include "support/hash.h"

using namespace rpb;

namespace {

volatile u64 g_sink;  // defeats dead-code elimination of timed results
template <class T>
void keep(T v) {
  g_sink = static_cast<u64>(v);
}

// --- Faithful local copies of the pre-fusion primitives (naive arm) ---

u64 naive_scan_exclusive_sum(std::span<u64> data) {
  const std::size_t n = data.size();
  if (n == 0) return 0;
  const std::size_t threads = sched::current_pool().num_threads();
  const std::size_t block = sched::detail::default_block(n, threads);
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<u64> sums(num_blocks);  // heap + zero-init, per call
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        u64 acc = 0;
        for (std::size_t i = lo; i < hi; ++i) acc += data[i];
        sums[b] = acc;
      },
      1);
  u64 total = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    u64 c = sums[b];
    sums[b] = total;
    total += c;
  }
  sched::parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::size_t lo = b * block, hi = std::min(n, lo + block);
        u64 acc = sums[b];
        for (std::size_t i = lo; i < hi; ++i) {
          u64 next = acc + data[i];
          data[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

std::vector<std::size_t> naive_pack_index(std::span<const u8> flags) {
  const std::size_t n = flags.size();
  std::vector<u64> counts(n);  // heap + zero-init
  sched::parallel_for(0, n,
                      [&](std::size_t i) { counts[i] = flags[i] ? 1 : 0; });
  u64 total = naive_scan_exclusive_sum(std::span<u64>(counts));
  std::vector<std::size_t> out(total);  // zero-init before overwrite
  sched::parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[counts[i]] = i;
  });
  return out;
}

template <class Pred>
std::vector<u64> naive_pack(std::span<const u64> in, Pred pred) {
  std::vector<u8> flags(in.size());  // heap + zero-init
  sched::parallel_for(0, in.size(),
                      [&](std::size_t i) { flags[i] = pred(in[i]) ? 1 : 0; });
  std::vector<std::size_t> idx = naive_pack_index(flags);
  std::vector<u64> out(idx.size());  // zero-init before overwrite
  sched::parallel_for(0, idx.size(),
                      [&](std::size_t i) { out[i] = in[idx[i]]; });
  return out;
}

// --- Multi-pass structure on arena scratch (arena arm) ---

template <class Pred>
std::size_t arena_pack(std::span<const u64> in, Pred pred,
                       std::span<u64> dst) {
  support::ArenaLease arena;
  auto flags = uninit_buf<u8>(arena, in.size());
  sched::parallel_for(0, in.size(),
                      [&](std::size_t i) { flags[i] = pred(in[i]) ? 1 : 0; });
  auto counts = uninit_buf<u64>(arena, in.size());
  sched::parallel_for(0, in.size(),
                      [&](std::size_t i) { counts[i] = flags[i] ? 1 : 0; });
  u64 total = par::scan_exclusive_sum(counts.span());
  sched::parallel_for(0, in.size(), [&](std::size_t i) {
    if (flags[i]) dst[counts[i]] = in[i];
  });
  return total;
}

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, std::size_t inner,
                               bench::Measurement m) {
  m.median_seconds /= static_cast<double>(inner);
  m.p10_seconds /= static_cast<double>(inner);
  m.p90_seconds /= static_cast<double>(inner);
  m.mean_seconds /= static_cast<double>(inner);
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

int run_json_harness(const std::string& path, bool smoke) {
  const std::size_t repeats = smoke ? 3 : 9;
  const std::size_t n = smoke ? (std::size_t{1} << 14)
                              : (std::size_t{1} << 20);
  const std::size_t inner = smoke ? 4 : 8;
  const std::size_t inner_kernel = smoke ? 2 : 4;
  const int rmat_scale = smoke ? 10 : 14;
  const std::size_t dedup_n = smoke ? (std::size_t{1} << 12)
                                    : (std::size_t{1} << 16);
  const std::size_t hw = default_threads();
  std::vector<std::size_t> thread_counts{1, 2, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  const support::ArenaMode saved_mode = support::arena_mode();
  const bool saved_poison = buf_poison();
  set_buf_poison(false);  // poison fills would masquerade as work

  // 50% survivors: the frontier/keep regime every kernel lives in.
  // Sparse (1%) stresses the counting passes relative to the output.
  std::vector<u64> values(n);
  std::vector<u8> flags_dense(n), flags_sparse(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = hash64(i);
    flags_dense[i] = values[i] & 1;
    flags_sparse[i] = values[i] % 100 == 0;
  }
  auto pred_dense = [](u64 x) { return (x & 1) != 0; };
  auto keys = seq::exponential_keys(dedup_n, dedup_n / 2, 0x5ca9);
  auto g = graph::make_rmat(rmat_scale, 0x5ca9);

  std::vector<bench::BenchRecord> records;
  double pack_naive_1t = 0, pack_fused_1t = 0;

  for (std::size_t threads : thread_counts) {
    sched::ThreadPool::reset_global(threads);
    support::set_arena_mode(support::ArenaMode::kOn);
    support::arena_pool_clear();

    // -- scan: write values then scan them, vs one fused map_scan.
    {
      std::vector<u64> work(n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              sched::parallel_for(0, n, [&](std::size_t i) {
                work[i] = values[i] & 7;
              });
              keep(naive_scan_exclusive_sum(std::span<u64>(work)));
            }
          },
          repeats);
      records.push_back(make_record("scanpack/scan/naive", threads, n,
                                    inner, m));
    }
    {
      support::ArenaLease arena;
      auto work = uninit_buf<u64>(arena, n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              sched::parallel_for(0, n, [&](std::size_t i) {
                work[i] = values[i] & 7;
              });
              keep(par::scan_exclusive_sum(work.span()));
            }
          },
          repeats);
      records.push_back(make_record("scanpack/scan/arena", threads, n,
                                    inner, m));
    }
    {
      support::ArenaLease arena;
      auto work = uninit_buf<u64>(arena, n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              keep(par::map_scan_exclusive_sum(
                  n, [&](std::size_t i) { return values[i] & 7; },
                  work.span()));
            }
          },
          repeats);
      records.push_back(make_record("scanpack/scan/fused", threads, n,
                                    inner, m));
    }

    // -- pack: 50% survivors by value.
    {
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              auto out = naive_pack(std::span<const u64>(values), pred_dense);
              keep(out.size());
            }
          },
          repeats);
      records.push_back(make_record("scanpack/pack/naive", threads, n,
                                    inner, m));
      if (threads == 1) pack_naive_1t = records.back().median_s;
    }
    {
      support::ArenaLease arena;
      auto dst = uninit_buf<u64>(arena, n);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              keep(arena_pack(std::span<const u64>(values), pred_dense,
                                     dst.span()));
            }
          },
          repeats);
      records.push_back(make_record("scanpack/pack/arena", threads, n,
                                    inner, m));
    }
    {
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner; ++r) {
              support::ArenaLease lease;
              auto out =
                  par::pack(lease, std::span<const u64>(values), pred_dense);
              keep(out.size());
            }
          },
          repeats);
      records.push_back(make_record("scanpack/pack/fused", threads, n,
                                    inner, m));
      if (threads == 1) pack_fused_1t = records.back().median_s;
    }

    // -- pack_index over dense (50%) and sparse (1%) masks.
    for (const auto& [label, flags] :
         {std::pair<const char*, const std::vector<u8>*>{"dense",
                                                         &flags_dense},
          {"sparse", &flags_sparse}}) {
      std::string base = std::string("scanpack/pack_index_") + label + "/";
      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner; ++r) {
                auto idx = naive_pack_index(std::span<const u8>(*flags));
                keep(idx.size());
              }
            },
            repeats);
        records.push_back(make_record(base + "naive", threads, n, inner, m));
      }
      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner; ++r) {
                support::ArenaLease lease;
                auto idx =
                    par::pack_index(lease, std::span<const u8>(*flags));
                keep(idx.size());
              }
            },
            repeats);
        records.push_back(make_record(base + "fused", threads, n, inner, m));
      }
      {
        // The mask-producing pass is part of this arm on purpose: the
        // bit path's contract is "you were going to materialize a mask
        // anyway — make it 8x smaller".
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner; ++r) {
                support::ArenaLease lease;
                auto words = uninit_buf<u64>(lease, par::bit_words(n));
                par::fill_bit_flags(words.span(), n, [&](std::size_t i) {
                  return (*flags)[i] != 0;
                });
                auto idx =
                    par::pack_index_bits<u32>(lease, words.cspan(), n);
                keep(idx.size());
              }
            },
            repeats);
        records.push_back(make_record(base + "bits", threads, n, inner, m));
      }
    }

    // -- Kernel rows: fused primitives underneath in both arms; the arm
    // is the arena mode (zeroed = heap + memset for every scratch
    // buffer, the safe-Rust shape; arena = the default).
    for (const auto& [label, mode] :
         {std::pair<const char*, support::ArenaMode>{
              "zeroed", support::ArenaMode::kZeroed},
          {"arena", support::ArenaMode::kOn}}) {
      support::set_arena_mode(mode);
      support::arena_pool_clear();
      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_kernel; ++r) {
                auto uniq = seq::dedup(keys, AccessMode::kAtomic);
                keep(uniq.size());
              }
            },
            repeats);
        records.push_back(make_record(std::string("scanpack/dedup/") + label,
                                      threads, dedup_n, inner_kernel, m));
      }
      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_kernel; ++r) {
                auto state =
                    graph::maximal_independent_set(g, AccessMode::kAtomic);
                keep(state.size());
              }
            },
            repeats);
        records.push_back(make_record(std::string("scanpack/mis/") + label,
                                      threads, g.num_vertices(),
                                      inner_kernel, m));
      }
      {
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner_kernel; ++r) {
                auto levels = graph::bfs_level_sync(g, 0);
                keep(levels.size());
              }
            },
            repeats);
        records.push_back(make_record(std::string("scanpack/bfs/") + label,
                                      threads, g.num_vertices(),
                                      inner_kernel, m));
      }
    }
    support::set_arena_mode(support::ArenaMode::kOn);
  }

  support::set_arena_mode(saved_mode);
  set_buf_poison(saved_poison);

  if (int rc = bench::emit_bench_json(path, "scanpack", records)) return rc;
  std::printf("pack n=%zu @1 thread, naive four-pass vs fused: %s vs %s "
              "(%.2fx)\n",
              n, bench::fmt_seconds(pack_naive_1t).c_str(),
              bench::fmt_seconds(pack_fused_1t).c_str(),
              pack_naive_1t / std::max(pack_fused_1t, 1e-9));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (int rc = bench::require_json_only(cli, argv[0])) return rc;
  return run_json_harness(cli.json_path, cli.smoke);
}
