// Ablation (extension, DESIGN.md): the BWT decode tail. The serial
// cycle chase is O(n) but sequential; the pointer-doubling parallel
// chase pays O(n log k) extra work to cut the chain into k independent
// segments. At 1 thread the serial chase must win; the crossover moves
// left as cores grow.
#include <cstdio>

#include "bench_util/harness.h"
#include "common.h"
#include "text/bwt.h"
#include "text/corpus.h"

using namespace rpb;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  const std::size_t n = std::size_t{1} << (20 + opt.scale);
  auto text = text::make_corpus(n, 55, 4096);
  auto encoded = text::bwt_encode(std::span<const u8>(text));

  std::printf("\nAblation: BWT decode tail, serial chase vs pointer-doubling "
              "parallel chase (n=%zu)\n\n", n);
  bench::Table table({"decode", "time", "vs serial"});
  auto serial = bench::measure(
      [&] { text::bwt_decode(std::span<const u8>(encoded)); }, opt.repeats);
  table.add_row({"serial chase", bench::fmt_seconds(serial.mean_seconds),
                 "1.00x"});
  for (std::size_t segments : {4ul, 16ul, 64ul, 0ul /*auto*/}) {
    auto m = bench::measure(
        [&] {
          text::bwt_decode_parallel_chase(std::span<const u8>(encoded),
                                          AccessMode::kUnchecked, segments);
        },
        opt.repeats);
    std::string label = segments == 0
                            ? "parallel chase (auto segments)"
                            : "parallel chase (k=" + std::to_string(segments) +
                                  ")";
    table.add_row({label, bench::fmt_seconds(m.mean_seconds),
                   bench::fmt_ratio(m.mean_seconds / serial.mean_seconds)});
  }
  table.print();
  return 0;
}
