// Load-balance ablation for the sparse kernel suite (src/sparse): the
// naive one-task-per-row RngInd expression of SpMV against the
// merge-path decomposition, on a uniform R-MAT and a skewed power-law
// R-MAT, in both access tiers. The naive arm (`rowpar`) is exactly the
// shape par_ind_chunks_mut defaults to — grain=1, so the scheduler
// fields one stealable task per row and pays fork/steal churn
// proportional to rows; `rowpar_grained` is the honest middle arm at
// the scheduler's amortized default grain; `mergepath` fields
// O((rows+nnz)/grain) equal tasks regardless of the degree
// distribution. SpMM (k=8 dense columns) and SpGEMM rows give the rest
// of the suite a perf trajectory in the same file.
//
// Box caveat (EXPERIMENTS.md "SpMV load balancing"): on a single
// hardware core, oversubscribed workers timeshare, so skew shows up as
// per-row scheduling overhead rather than idle-worker wall-clock; the
// rowpar-vs-mergepath gap here measures task-granularity overhead, the
// component of the merge-path win that survives serialization.
//
// Usage:
//   --json PATH [--smoke]  emit rpb-bench-v1 records (BENCH_spmv),
//                          amortized per invocation, self-validated.
// Threads come from RPB_THREADS (the smoke gate pins 4).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "graph/generators.h"
#include "obs/counters.h"
#include "sched/thread_pool.h"
#include "sparse/sparse.h"
#include "support/env.h"
#include "support/hash.h"

using namespace rpb;

namespace {

volatile u64 g_sink;  // defeats dead-code elimination of timed results
void keep(f64 v) { g_sink = static_cast<u64>(v); }

bench::BenchRecord make_record(std::string name, std::size_t threads,
                               std::size_t n, std::size_t inner,
                               bench::Measurement m) {
  m.median_seconds /= static_cast<double>(inner);
  m.p10_seconds /= static_cast<double>(inner);
  m.p90_seconds /= static_cast<double>(inner);
  m.mean_seconds /= static_cast<double>(inner);
  bench::BenchRecord r;
  r.name = std::move(name);
  r.threads = threads;
  r.n = n;
  r.repeats = m.repeats;
  r.median_s = m.median_seconds;
  r.p10_s = m.p10_seconds;
  r.p90_s = m.p90_seconds;
  r.mean_s = m.mean_seconds;
  return r;
}

// p-th percentile (nearest-rank) of rows-owned-per-task, from the same
// input-pure partition the kernel executes.
std::size_t rows_per_task_pct(const std::vector<std::size_t>& sorted,
                              double p) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct Input {
  const char* label;
  graph::Graph graph;
  sparse::CsrMatrix<f64> mat;
};

int run_json_harness(const std::string& path, bool smoke) {
  const std::size_t repeats = smoke ? 3 : 9;
  const int scale = smoke ? 12 : 15;
  const std::size_t inner = smoke ? 4 : 8;
  const double avg_degree = 8.0;

  const std::size_t threads = default_threads();
  sched::ThreadPool::reset_global(threads);
  std::printf("# threads=%zu repeats=%zu scale=%d\n", threads, repeats, scale);

  // Uniform: all four R-MAT quadrants equal — degrees concentrate near
  // the mean. Skew: the paper generators' power-law regime pushed
  // harder (a=0.60), giving a heavy tail the naive row mapping cannot
  // balance.
  std::vector<Input> inputs;
  {
    const std::size_t n = std::size_t{1} << scale;
    auto uni = graph::rmat_edges(scale, avg_degree, 0.25, 0.25, 0.25, 17);
    auto skw = graph::rmat_edges(scale, avg_degree, 0.60, 0.19, 0.19, 17);
    Input u{"uniform", graph::Graph::from_edges(n, uni, false, false), {}};
    u.mat = sparse::CsrMatrix<f64>::from_graph(u.graph);
    inputs.push_back(std::move(u));
    Input s{"skew", graph::Graph::from_edges(n, skw, false, false), {}};
    s.mat = sparse::CsrMatrix<f64>::from_graph(s.graph);
    inputs.push_back(std::move(s));
  }

  std::vector<bench::BenchRecord> records;
  // (matrix, policy) -> unchecked median, for the printed summary
  std::vector<std::pair<std::string, double>> medians;

  for (Input& in : inputs) {
    const sparse::CsrView<f64> a = in.mat.view();
    const std::size_t num_rows = a.num_rows();
    std::vector<f64> x(a.num_cols);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<f64>(hash64(i) & 0xff) * (1.0 / 256.0);
    }
    std::vector<f64> y(num_rows);

    struct Arm {
      const char* name;
      sparse::SpmvPolicy policy;
      std::size_t grain;  // 0 = the policy's / scheduler's default
    };
    const Arm arms[] = {
        {"rowpar", sparse::SpmvPolicy::kRowPar, 1},
        {"rowpar_grained", sparse::SpmvPolicy::kRowPar, 0},
        {"mergepath", sparse::SpmvPolicy::kMergePath, 0},
    };
    for (const Arm& arm : arms) {
      for (AccessMode mode : {AccessMode::kUnchecked, AccessMode::kChecked}) {
        const char* tier =
            mode == AccessMode::kChecked ? "checked" : "unchecked";
        auto m = bench::measure(
            [&] {
              for (std::size_t r = 0; r < inner; ++r) {
                if (arm.policy == sparse::SpmvPolicy::kRowPar) {
                  if (mode == AccessMode::kChecked) {
                    sparse::spmv(a, std::span<const f64>(x), std::span<f64>(y),
                                 mode, arm.policy, arm.grain);
                  } else {
                    sparse::spmv_row_par(a, std::span<const f64>(x),
                                         std::span<f64>(y), arm.grain);
                  }
                } else {
                  sparse::spmv(a, std::span<const f64>(x), std::span<f64>(y),
                               mode, arm.policy, arm.grain);
                }
                keep(y[0]);
              }
            },
            repeats);
        std::string name = std::string("spmv/") + in.label + "/" + arm.name +
                           "/" + tier;
        records.push_back(make_record(name, threads, num_rows, inner, m));
        if (mode == AccessMode::kUnchecked) {
          medians.emplace_back(std::string(in.label) + "/" + arm.name,
                               records.back().median_s);
        }
      }
    }

    // SpMM context row: the same traversal amortized over 8 dense
    // columns (unchecked; the checked delta is spmv's).
    {
      const std::size_t k = 8;
      std::vector<f64> xm(a.num_cols * k);
      for (std::size_t i = 0; i < xm.size(); ++i) {
        xm[i] = static_cast<f64>(hash64(i) & 0xff) * (1.0 / 256.0);
      }
      std::vector<f64> ym(num_rows * k);
      const std::size_t inner_mm = std::max<std::size_t>(1, inner / 4);
      auto m = bench::measure(
          [&] {
            for (std::size_t r = 0; r < inner_mm; ++r) {
              sparse::spmm(a, std::span<const f64>(xm), std::span<f64>(ym), k,
                           AccessMode::kUnchecked);
              keep(ym[0]);
            }
          },
          repeats);
      records.push_back(make_record(std::string("spmm/") + in.label + "/k8",
                                    threads, num_rows, inner_mm, m));
    }
  }

  // SpGEMM context row: A·A on a smaller uniform R-MAT (output nnz
  // grows ~degree^2, so the operand is scaled down to keep the smoke
  // run bounded).
  {
    const int gscale = scale - 3;
    const std::size_t n = std::size_t{1} << gscale;
    auto edges = graph::rmat_edges(gscale, avg_degree, 0.25, 0.25, 0.25, 17);
    auto g = graph::Graph::from_edges(n, edges, false, false);
    auto mat = sparse::CsrMatrix<f64>::from_graph(g);
    const sparse::CsrView<f64> a = mat.view();
    auto m = bench::measure(
        [&] {
          auto c = sparse::spgemm(a, a, AccessMode::kUnchecked);
          keep(static_cast<f64>(c.nnz()));
        },
        repeats);
    records.push_back(make_record("spgemm/uniform/aa", threads, n, 1, m));
  }

  if (int rc = bench::emit_bench_json(path, "spmv", records)) return rc;

  // Partition + instrumentation summary for the skewed input: the
  // merge-path task count, how many carries the fix-up applied, and the
  // rows-per-task spread (p50/p99) that quantifies how unequal the
  // naive row mapping's tasks were.
  for (const Input& in : inputs) {
    const sparse::CsrView<f64> a = in.mat.view();
    const std::size_t items = a.num_rows() + a.nnz();
    const std::size_t ntasks = sparse::merge_path_tasks(a.num_rows(), a.nnz());
    std::vector<std::size_t> rows_per_task(ntasks);
    for (std::size_t t = 0; t < ntasks; ++t) {
      auto b = sparse::merge_path_search(
          a.offsets, std::min(t * sparse::kMergePathGrain, items));
      auto e = sparse::merge_path_search(
          a.offsets, std::min((t + 1) * sparse::kMergePathGrain, items));
      rows_per_task[t] = e.row - b.row;
    }
    std::sort(rows_per_task.begin(), rows_per_task.end());

    const obs::ObsMode saved_obs = obs::mode();
    obs::set_mode(obs::ObsMode::kCounters);
    obs::reset_counters();
    std::vector<f64> x(a.num_cols, 1.0), y(a.num_rows());
    sparse::spmv(a, std::span<const f64>(x), std::span<f64>(y),
                 AccessMode::kUnchecked, sparse::SpmvPolicy::kMergePath);
    auto snap = obs::snapshot_counters();
    obs::set_mode(saved_obs);

    std::printf(
        "%-8s rows=%zu nnz=%zu max_degree=%zu | mergepath tasks=%llu "
        "carry_fixups=%llu rows/task p50=%zu p99=%zu\n",
        in.label, a.num_rows(), a.nnz(), in.graph.max_degree(),
        static_cast<unsigned long long>(
            snap.total(obs::Counter::kSparseMergeTasks)),
        static_cast<unsigned long long>(
            snap.total(obs::Counter::kSparseCarryFixups)),
        rows_per_task_pct(rows_per_task, 0.50),
        rows_per_task_pct(rows_per_task, 0.99));
  }

  for (const char* label : {"uniform", "skew"}) {
    double rowpar = 0, merge = 0;
    for (const auto& [name, median] : medians) {
      if (name == std::string(label) + "/rowpar") rowpar = median;
      if (name == std::string(label) + "/mergepath") merge = median;
    }
    if (rowpar > 0 && merge > 0) {
      std::printf("%-8s rowpar %s vs mergepath %s: %.2fx\n", label,
                  bench::fmt_seconds(rowpar).c_str(),
                  bench::fmt_seconds(merge).c_str(),
                  rowpar / std::max(merge, 1e-12));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonCli cli = bench::parse_json_cli(argc, argv);
  if (int rc = bench::require_json_only(cli, argv[0])) return rc;
  return run_json_harness(cli.json_path, cli.smoke);
}
