// Regenerates the paper's appendix Fig. 6: run times and lines-of-code
// of five parallelization strategies for element-wise hashing of a
// large vector — serial, thread-per-task (Listing 13, which the paper
// reports as panicking at scale), thread-per-core chunks (Listing 14),
// a mutex-guarded job queue (Listing 15), and the work-stealing pool
// standing in for Rayon (Listing 12).
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "common.h"
#include "sched/parallel.h"
#include "support/hash.h"

using namespace rpb;

namespace {

// The paper's task (Listing 10): replace each element with its hash.
void task(u64& e) { e = hash64(e); }

void serial_hash(std::vector<u64>& v) {
  for (u64& e : v) task(e);
}

// Listing 13: one thread per element. Only viable for tiny inputs; the
// harness runs it on a prefix and reports the extrapolated cost.
void thread_per_task(std::vector<u64>& v) {
  std::vector<std::thread> threads;
  threads.reserve(v.size());
  for (u64& e : v) threads.emplace_back([&e] { task(e); });
  for (auto& t : threads) t.join();
}

// Listing 14: one thread per core over equal chunks.
void thread_per_core(std::vector<u64>& v, std::size_t num_threads) {
  std::size_t per = (v.size() + num_threads - 1) / num_threads;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < num_threads; ++t) {
    std::size_t lo = std::min(v.size(), t * per);
    std::size_t hi = std::min(v.size(), lo + per);
    threads.emplace_back([&v, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) task(v[i]);
    });
  }
  for (auto& t : threads) t.join();
}

// Listing 15: worker threads pulling fixed-size jobs off a mutexed
// queue.
void job_queue(std::vector<u64>& v, std::size_t num_threads) {
  constexpr std::size_t kJob = 10000;
  std::atomic<std::size_t> next{0};
  std::mutex queue_mutex;  // the paper's Mutex<Chunks>: serialize takes
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        std::size_t lo;
        {
          std::lock_guard<std::mutex> take_guard(queue_mutex);
          lo = next.fetch_add(kJob, std::memory_order_relaxed);
        }
        if (lo >= v.size()) return;
        std::size_t hi = std::min(v.size(), lo + kJob);
        for (std::size_t i = lo; i < hi; ++i) task(v[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
}

// Listing 12: the data-parallel library (Rayon there, our pool here).
void pool_hash(std::vector<u64>& v) {
  sched::parallel_for(0, v.size(), [&](std::size_t i) { task(v[i]); });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  std::size_t n = std::size_t{1} << (26 + opt.scale);
  std::size_t n_tiny = 10000;  // thread-per-task prefix

  std::vector<u64> input(n);
  sched::parallel_for(0, n, [&](std::size_t i) { input[i] = i; });
  std::vector<u64> v;

  std::printf("\nFig. 6: strategies for element-wise hashing of %zu elements\n\n",
              n);
  bench::Table table({"strategy", "time", "vs serial", "LoC (paper)"});

  auto setup = [&] { v = input; };
  auto serial = bench::measure_with_setup(setup, [&] { serial_hash(v); },
                                          opt.repeats);
  table.add_row({"serial (L11)", bench::fmt_seconds(serial.mean_seconds),
                 "1.00x", "4"});

  // Thread-per-task measured on a prefix, extrapolated; at the full
  // size it exhausts thread resources like the paper's panic.
  {
    std::vector<u64> tiny(input.begin(),
                          input.begin() + static_cast<std::ptrdiff_t>(n_tiny));
    std::vector<u64> scratch;
    auto m = bench::measure_with_setup([&] { scratch = tiny; },
                                       [&] { thread_per_task(scratch); },
                                       std::max<std::size_t>(1, opt.repeats / 3));
    double extrapolated =
        m.mean_seconds * static_cast<double>(n) / static_cast<double>(n_tiny);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0fx (panics at full size)",
                  extrapolated / serial.mean_seconds);
    table.add_row({"thread per task (L13)",
                   bench::fmt_seconds(extrapolated) + " (extrap.)", buf, "8"});
  }

  auto per_core = bench::measure_with_setup(
      setup, [&] { thread_per_core(v, opt.threads); }, opt.repeats);
  table.add_row({"thread per core (L14)",
                 bench::fmt_seconds(per_core.mean_seconds),
                 bench::fmt_ratio(per_core.mean_seconds / serial.mean_seconds),
                 "14"});

  auto jobs = bench::measure_with_setup(
      setup, [&] { job_queue(v, opt.threads); }, opt.repeats);
  table.add_row({"job queue (L15)", bench::fmt_seconds(jobs.mean_seconds),
                 bench::fmt_ratio(jobs.mean_seconds / serial.mean_seconds),
                 "24"});

  auto pool = bench::measure_with_setup(setup, [&] { pool_hash(v); },
                                        opt.repeats);
  table.add_row({"work-stealing pool (L12)",
                 bench::fmt_seconds(pool.mean_seconds),
                 bench::fmt_ratio(pool.mean_seconds / serial.mean_seconds),
                 "5"});

  table.print();
  std::printf("\n(paper, 16 cores: Rayon fastest with the fewest LoC; thread-"
              "per-task panics; job queue ~mid)\n");
  return 0;
}
