#!/usr/bin/env python3
"""Diff two rpb-bench-v1 JSON files (see src/bench_util/harness.h).

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance PCT] [--allow-unmatched]

Records are keyed by (name, threads, n). A record regresses when its
current median exceeds the baseline median by more than --tolerance
percent (one-sided: getting faster never fails). Records present in one
file but not the other fail the run unless --allow-unmatched is given —
a silently vanished record is how coverage rots.

Every record must carry the full rpb-bench-v1 field set (repeats,
median_s, p10_s, p90_s, mean_s) with finite non-negative values — a
record that drops a field is a writer bug, not a benchmark result. The
files' "env" blocks (detected CPU features + active RPB_SIMD mode) are
compared and a mismatch prints a warning, never a failure: different
vector dispatch explains a timing delta but does not excuse schema rot.

Exit codes: 0 ok, 1 regression or unmatched records, 2 bad input.
Stdlib only, so the ctest step needs nothing beyond a Python 3
interpreter.
"""

import argparse
import json
import math
import sys

SCHEMA = "rpb-bench-v1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema is {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        sys.exit(f"error: {path}: no records")
    table = {}
    for r in records:
        try:
            key = (r["name"], int(r["threads"]), int(r["n"]))
        except (KeyError, TypeError, ValueError) as e:
            sys.exit(f"error: {path}: malformed record {r!r}: {e}")
        for field in ("repeats", "median_s", "p10_s", "p90_s", "mean_s"):
            try:
                v = float(r[field])
            except (KeyError, TypeError, ValueError) as e:
                sys.exit(f"error: {path}: record {key} missing/invalid "
                         f"field {field!r}: {e}")
            if not math.isfinite(v) or v < 0:
                sys.exit(f"error: {path}: record {key} has bad {field}: {v!r}")
        if key in table:
            sys.exit(f"error: {path}: duplicate record key {key}")
        table[key] = float(r["median_s"])
    env = doc.get("env")
    if env is not None and not isinstance(env, dict):
        sys.exit(f"error: {path}: env block is not an object")
    return doc.get("suite", "?"), table, env


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=40.0,
                    help="allowed median slowdown in percent (default 40)")
    ap.add_argument("--allow-unmatched", action="store_true",
                    help="ignore records present in only one file")
    args = ap.parse_args()
    if args.tolerance < 0:
        sys.exit("error: --tolerance must be >= 0")

    base_suite, base, base_env = load(args.baseline)
    cur_suite, cur, cur_env = load(args.current)
    if base_suite != cur_suite:
        sys.exit(f"error: suite mismatch: {base_suite!r} vs {cur_suite!r}")

    # Feature drift is informative, not fatal: a baseline recorded on an
    # AVX2 box compared on an SSE2-only box (or under RPB_SIMD=off) will
    # time different code — flag it so a regression reads correctly.
    if base_env is not None and cur_env is not None:
        keys = sorted(set(base_env) | set(cur_env))
        drift = [k for k in keys if base_env.get(k) != cur_env.get(k)]
        if drift:
            for k in drift:
                print(f"warning: env mismatch on {k!r}: baseline "
                      f"{base_env.get(k)!r} vs current {cur_env.get(k)!r}")
            print("warning: timings below compare different vector "
                  "dispatch; regressions may be environmental")
    elif (base_env is None) != (cur_env is None):
        which = "baseline" if base_env is None else "current"
        print(f"warning: {which} file has no env block; cannot compare "
              "CPU feature dispatch")

    failures = []
    ratios = []
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        ratio = c / b if b > 0 else math.inf if c > 0 else 1.0
        ratios.append(ratio)
        limit = 1.0 + args.tolerance / 100.0
        name = "{} t={} n={}".format(*key)
        if ratio > limit:
            failures.append(f"REGRESSION {name}: {b:.3e}s -> {c:.3e}s "
                            f"({ratio:.2f}x > {limit:.2f}x)")

    for key in sorted(base.keys() - cur.keys()):
        msg = "MISSING {} t={} n={} (in baseline only)".format(*key)
        if args.allow_unmatched:
            print(f"note: {msg}")
        else:
            failures.append(msg)
    for key in sorted(cur.keys() - base.keys()):
        msg = "NEW {} t={} n={} (in current only)".format(*key)
        if args.allow_unmatched:
            print(f"note: {msg}")
        else:
            failures.append(msg)

    matched = len(base.keys() & cur.keys())
    finite = [r for r in ratios if math.isfinite(r) and r > 0]
    if finite:
        g = math.exp(sum(math.log(r) for r in finite) / len(finite))
        print(f"{matched} matched records, gmean current/baseline = {g:.3f}x "
              f"(tolerance {args.tolerance:.0f}%)")
    for f in failures:
        print(f)
    if failures:
        print(f"FAIL: {len(failures)} problem(s)")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
