#!/usr/bin/env python3
"""Diff two rpb-bench-v1 JSON files (see src/bench_util/harness.h).

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance PCT] [--allow-unmatched]
    bench_compare.py --check

Records are keyed by (name, threads, n). A record regresses when its
current median exceeds the baseline median by more than --tolerance
percent (one-sided: getting faster never fails). Records present in one
file but not the other fail the run unless --allow-unmatched is given —
a silently vanished record is how coverage rots.

Every record must carry the full rpb-bench-v1 field set (repeats,
median_s, p10_s, p90_s, mean_s) with finite non-negative values — a
record that drops a field is a writer bug, not a benchmark result.
Latency-percentile records (the serve harness) may additionally carry
p50_s/p99_s; the pair is optional per record but must arrive together
and parse as finite non-negative numbers, and a record whose baseline
counterpart has the pair must keep it (a latency record silently
downgrading to a plain timing record is schema rot). The
files' "env" blocks (detected CPU features + active RPB_SIMD mode) are
compared and a mismatch prints a warning, never a failure: different
vector dispatch explains a timing delta but does not excuse schema rot.

--check runs the comparator against generated fixture files (match,
regression, vanished record, missing/garbage input) and verifies each
exit path — the ctest self-test.

Exit codes: 0 ok, 1 regression or unmatched records, 2 bad input.
Bad input is always a single actionable line on stderr, never a
traceback. Stdlib only, so the ctest step needs nothing beyond a
Python 3 interpreter.
"""

import argparse
import json
import math
import os
import sys
import tempfile

SCHEMA = "rpb-bench-v1"


def die(msg):
    """Bad input: one actionable line on stderr, exit 2 (per docstring)."""
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        die(f"{path} does not exist — regenerate it by running the "
            f"harness with --json (committed baselines live in "
            f"bench/baselines/; see EXPERIMENTS.md)")
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: top-level JSON is {type(doc).__name__}, expected an "
            f"object with 'schema' and 'records'")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        die(f"{path}: no records")
    table = {}
    for r in records:
        if not isinstance(r, dict):
            die(f"{path}: record is {type(r).__name__}, expected an object")
        try:
            key = (r["name"], int(r["threads"]), int(r["n"]))
        except (KeyError, TypeError, ValueError) as e:
            die(f"{path}: malformed record {r!r}: {e}")
        for field in ("repeats", "median_s", "p10_s", "p90_s", "mean_s"):
            try:
                v = float(r[field])
            except (KeyError, TypeError, ValueError) as e:
                die(f"{path}: record {key} missing/invalid field "
                    f"{field!r}: {e}")
            if not math.isfinite(v) or v < 0:
                die(f"{path}: record {key} has bad {field}: {v!r}")
        has_latency = "p50_s" in r or "p99_s" in r
        if has_latency:
            if ("p50_s" in r) != ("p99_s" in r):
                die(f"{path}: record {key} has only one of p50_s/p99_s")
            for field in ("p50_s", "p99_s"):
                try:
                    v = float(r[field])
                except (TypeError, ValueError) as e:
                    die(f"{path}: record {key} invalid latency field "
                        f"{field!r}: {e}")
                if not math.isfinite(v) or v < 0:
                    die(f"{path}: record {key} has bad {field}: {v!r}")
        if key in table:
            die(f"{path}: duplicate record key {key}")
        table[key] = (float(r["median_s"]), has_latency)
    env = doc.get("env")
    if env is not None and not isinstance(env, dict):
        die(f"{path}: env block is not an object")
    return doc.get("suite", "?"), table, env


def compare(baseline, current, tolerance, allow_unmatched):
    base_suite, base, base_env = load(baseline)
    cur_suite, cur, cur_env = load(current)
    if base_suite != cur_suite:
        die(f"suite mismatch: {base_suite!r} vs {cur_suite!r}")

    # Feature drift is informative, not fatal: a baseline recorded on an
    # AVX2 box compared on an SSE2-only box (or under RPB_SIMD=off) will
    # time different code — flag it so a regression reads correctly.
    if base_env is not None and cur_env is not None:
        keys = sorted(set(base_env) | set(cur_env))
        drift = [k for k in keys if base_env.get(k) != cur_env.get(k)]
        if drift:
            for k in drift:
                print(f"warning: env mismatch on {k!r}: baseline "
                      f"{base_env.get(k)!r} vs current {cur_env.get(k)!r}")
            print("warning: timings below compare different vector "
                  "dispatch; regressions may be environmental")
    elif (base_env is None) != (cur_env is None):
        which = "baseline" if base_env is None else "current"
        print(f"warning: {which} file has no env block; cannot compare "
              "CPU feature dispatch")

    failures = []
    ratios = []
    for key in sorted(base.keys() & cur.keys()):
        (b, b_lat), (c, c_lat) = base[key], cur[key]
        ratio = c / b if b > 0 else math.inf if c > 0 else 1.0
        ratios.append(ratio)
        limit = 1.0 + tolerance / 100.0
        name = "{} t={} n={}".format(*key)
        if ratio > limit:
            failures.append(f"REGRESSION {name}: {b:.3e}s -> {c:.3e}s "
                            f"({ratio:.2f}x > {limit:.2f}x)")
        if b_lat and not c_lat:
            failures.append(f"SCHEMA {name}: baseline record carries "
                            f"p50_s/p99_s but current dropped them")

    for key in sorted(base.keys() - cur.keys()):
        msg = "MISSING {} t={} n={} (in baseline only)".format(*key)
        if allow_unmatched:
            print(f"note: {msg}")
        else:
            failures.append(msg)
    for key in sorted(cur.keys() - base.keys()):
        msg = "NEW {} t={} n={} (in current only)".format(*key)
        if allow_unmatched:
            print(f"note: {msg}")
        else:
            failures.append(msg)

    matched = len(base.keys() & cur.keys())
    finite = [r for r in ratios if math.isfinite(r) and r > 0]
    if finite:
        g = math.exp(sum(math.log(r) for r in finite) / len(finite))
        print(f"{matched} matched records, gmean current/baseline = {g:.3f}x "
              f"(tolerance {tolerance:.0f}%)")
    for f in failures:
        print(f)
    if failures:
        print(f"FAIL: {len(failures)} problem(s)")
        return 1
    print("OK")
    return 0


def _record(name, median, threads=1, n=1024, p50=None, p99=None):
    r = {"name": name, "threads": threads, "n": n, "repeats": 3,
         "median_s": median, "p10_s": median, "p90_s": median,
         "mean_s": median}
    if p50 is not None:
        r["p50_s"] = p50
    if p99 is not None:
        r["p99_s"] = p99
    return r


def _doc(records):
    return {"schema": SCHEMA, "suite": "selftest", "records": records}


def run_check():
    """Exercise every exit path against generated fixtures (ctest)."""
    failures = []

    def expect(label, got, want):
        if got != want:
            failures.append(f"{label}: exit {got}, expected {want}")

    def run(base_doc, cur_doc, label, want, tolerance=50.0, raw=None):
        with tempfile.TemporaryDirectory() as d:
            bp = os.path.join(d, "base.json")
            cp = os.path.join(d, "cur.json")
            with open(bp, "w", encoding="utf-8") as f:
                if raw is not None:
                    f.write(raw)
                else:
                    json.dump(base_doc, f)
            with open(cp, "w", encoding="utf-8") as f:
                json.dump(cur_doc, f)
            try:
                rc = compare(bp, cp, tolerance, False)
            except SystemExit as e:
                rc = e.code if isinstance(e.code, int) else 1
            expect(label, rc, want)

    ok = _doc([_record("alpha", 1e-3), _record("beta", 2e-3)])
    slow = _doc([_record("alpha", 1e-3), _record("beta", 8e-3)])
    vanished = _doc([_record("alpha", 1e-3)])
    lat = _doc([_record("serve/p", 1e-3, p50=1e-3, p99=4e-3)])
    lat_slow = _doc([_record("serve/p", 8e-3, p50=8e-3, p99=3e-2)])
    lat_dropped = _doc([_record("serve/p", 1e-3)])
    lat_half = _doc([_record("serve/p", 1e-3, p50=1e-3)])
    lat_bad = _doc([_record("serve/p", 1e-3, p50=-1.0, p99=4e-3)])

    run(ok, ok, "identical files pass", 0)
    run(ok, slow, "4x median regresses past 50%", 1)
    run(slow, ok, "getting faster never fails", 0)
    run(ok, vanished, "vanished record fails", 1)
    run(vanished, ok, "new record fails", 1)
    run(ok, ok, "non-dict top level is bad input", 2, raw="[1, 2, 3]")
    run(ok, ok, "garbage JSON is bad input", 2, raw="not json{")
    run(_doc([{"name": "x", "threads": 1, "n": 1}]), ok,
        "record missing fields is bad input", 2)
    run(lat, lat, "latency records pass", 0)
    run(lat, lat_slow, "latency median regression fails", 1)
    run(lat, lat_dropped, "dropping p50/p99 vs baseline fails", 1)
    run(lat_dropped, lat, "gaining p50/p99 is fine", 0)
    run(lat, lat_half, "only one of p50/p99 is bad input", 2)
    run(lat, lat_bad, "negative p50 is bad input", 2)

    with tempfile.TemporaryDirectory() as d:
        cp = os.path.join(d, "cur.json")
        with open(cp, "w", encoding="utf-8") as f:
            json.dump(ok, f)
        try:
            rc = compare(os.path.join(d, "no_such_baseline.json"), cp,
                         50.0, False)
        except SystemExit as e:
            rc = e.code if isinstance(e.code, int) else 1
        expect("missing baseline is bad input", rc, 2)

    if failures:
        for f in failures:
            print(f"check FAILED: {f}", file=sys.stderr)
        return 1
    print("check ok")
    return 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--check":
        return run_check()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=40.0,
                    help="allowed median slowdown in percent (default 40)")
    ap.add_argument("--allow-unmatched", action="store_true",
                    help="ignore records present in only one file")
    args = ap.parse_args()
    if args.tolerance < 0:
        die("--tolerance must be >= 0")
    return compare(args.baseline, args.current, args.tolerance,
                   args.allow_unmatched)


if __name__ == "__main__":
    sys.exit(main())
