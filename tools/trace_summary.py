#!/usr/bin/env python3
"""Summarize an rpb Chrome trace-event JSON (obs::write_trace output).

Usage:
    trace_summary.py TRACE.json
    trace_summary.py --check

Renders a per-phase/per-worker self-time table from the B/E event
stream, then a work/span summary (the same estimator obs::work_span
implements in C++: self time = duration minus same-worker child time,
span = deepest self-time chain through per-worker scope nesting, so
W >= S and W/S is the measured parallelism of what the trace saw).

--check runs the parser against an embedded two-worker sample and
verifies the table and W/S invariants — the ctest self-test.

Exit codes: 0 ok, 1 check failure, 2 bad input. Stdlib only, so the
ctest step needs nothing beyond a Python 3 interpreter.
"""

import json
import sys
from collections import defaultdict


def load_events(doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit("error: no traceEvents array")
    for ev in events:
        for key in ("name", "ph", "tid", "ts"):
            if key not in ev:
                sys.exit(f"error: event missing {key!r}: {ev}")
        if ev["ph"] not in ("B", "E"):
            sys.exit(f"error: unexpected phase {ev['ph']!r}")
    return events


def analyze(events):
    """Per-(phase, worker) self time + work/span, via stack simulation.

    Returns (self_us[(name, tid)], scope_counts[(name, tid)], work_us,
    span_us, scopes). Events must be time-ordered per tid (write_trace
    emits a globally sorted merge, which is enough).
    """
    self_us = defaultdict(float)
    scope_counts = defaultdict(int)
    stacks = defaultdict(list)  # tid -> [[name, begin_ts, child_us, child_span]]
    work_us = 0.0
    span_us = 0.0
    scopes = 0
    for ev in events:
        tid = ev["tid"]
        stack = stacks[tid]
        if ev["ph"] == "B":
            stack.append([ev["name"], float(ev["ts"]), 0.0, 0.0])
            continue
        if not stack:
            continue  # begin lost to ring wraparound
        name, begin, child_us, child_span = stack.pop()
        if name != ev["name"]:
            # Wraparound broke the nesting reconstruction; drop lineage.
            stack.clear()
            continue
        dur = max(0.0, float(ev["ts"]) - begin)
        self_time = max(0.0, dur - child_us)
        span_through = self_time + child_span
        key = (name, tid)
        self_us[key] += self_time
        scope_counts[key] += 1
        work_us += self_time
        scopes += 1
        if stack:
            stack[-1][2] += dur
            stack[-1][3] = max(stack[-1][3], span_through)
        else:
            span_us = max(span_us, span_through)
    return self_us, scope_counts, work_us, span_us, scopes


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:.2f} ms"
    return f"{us:.1f} us"


def print_summary(self_us, scope_counts, work_us, span_us, scopes):
    phases = sorted({name for name, _ in self_us})
    workers = sorted({tid for _, tid in self_us})
    header = ["phase"] + [f"w{tid}" for tid in workers] + ["total", "scopes"]
    rows = [header]
    for name in phases:
        cells = [name]
        total = 0.0
        count = 0
        for tid in workers:
            us = self_us.get((name, tid), 0.0)
            total += us
            count += scope_counts.get((name, tid), 0)
            cells.append(fmt_us(us) if us > 0 else "-")
        cells.append(fmt_us(total))
        cells.append(str(count))
        rows.append(cells)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    for i, row in enumerate(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))
    parallelism = work_us / span_us if span_us > 0 else 0.0
    print(f"\nwork W = {fmt_us(work_us)}, span S = {fmt_us(span_us)}, "
          f"W/S = {parallelism:.2f} over {scopes} scopes "
          f"across {len(workers)} workers")


# Two workers: w0 runs a root phase with a nested leaf, w1 runs a stolen
# leaf concurrently. Self times: root 60us (100 - 40 child), w0 leaf
# 40us, w1 leaf 50us -> W = 150us; span = root self + deepest same-
# worker child chain = 60 + 40 = 100us.
CHECK_SAMPLE = {
    "traceEvents": [
        {"name": "sort", "ph": "B", "tid": 0, "ts": 0.0},
        {"name": "sort", "ph": "B", "tid": 1, "ts": 10.0},
        {"name": "sort", "ph": "B", "tid": 0, "ts": 30.0},
        {"name": "sort", "ph": "E", "tid": 1, "ts": 60.0},
        {"name": "sort", "ph": "E", "tid": 0, "ts": 70.0},
        {"name": "sort", "ph": "E", "tid": 0, "ts": 100.0},
    ]
}


def run_check():
    events = load_events(CHECK_SAMPLE)
    self_us, scope_counts, work_us, span_us, scopes = analyze(events)
    failures = []
    if scopes != 3:
        failures.append(f"expected 3 scopes, got {scopes}")
    if abs(work_us - 150.0) > 1e-9:
        failures.append(f"expected W=150us, got {work_us}")
    if abs(span_us - 100.0) > 1e-9:
        failures.append(f"expected S=100us, got {span_us}")
    if work_us < span_us:
        failures.append("W < S")
    if abs(self_us[("sort", 0)] - 100.0) > 1e-9:
        failures.append(f"w0 self {self_us[('sort', 0)]} != 100")
    if abs(self_us[("sort", 1)] - 50.0) > 1e-9:
        failures.append(f"w1 self {self_us[('sort', 1)]} != 50")
    # An unmatched E (wraparound casualty) must not crash or count.
    _, _, w2, _, s2 = analyze(
        [{"name": "x", "ph": "E", "tid": 0, "ts": 5.0}])
    if s2 != 0 or w2 != 0.0:
        failures.append("orphan end event was counted")
    if failures:
        for f in failures:
            print(f"check FAILED: {f}", file=sys.stderr)
        return 1
    print_summary(self_us, scope_counts, work_us, span_us, scopes)
    print("check ok")
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--check":
        return run_check()
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {argv[1]}: {e}")
    events = load_events(doc)
    if not events:
        sys.exit("error: empty trace")
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    print(f"{argv[1]}: {len(events)} events, {dropped} dropped\n")
    print_summary(*analyze(events))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
